/// Ablation — measuring through a recursive cache vs directly at the
/// authoritative servers (DESIGN.md choice; paper §6.1: "We query the
/// authoritative name server ... directly, to make sure we get a fresh
/// answer (i.e., not from a cache)").
///
/// We watch the same lease lifecycle through both paths and measure the
/// observation error a cache introduces: PTR removals appear up to a TTL
/// late (inflating Fig. 7 lingering times) and PTR additions can hide
/// behind negatively cached NXDOMAINs.

#include "bench_common.hpp"
#include "dns/cache.hpp"
#include "dns/update.hpp"
#include "net/arpa.hpp"
#include "util/stats.hpp"

using namespace rdns;

int main() {
  bench::heading("A3", "Ablation — cached vs direct rDNS measurement");
  bench::paper_note("the paper bypasses caches for freshness; this quantifies the "
                    "observation error a cache would have introduced");

  dns::AuthoritativeServer server;
  dns::SoaRdata soa;
  soa.mname = dns::DnsName::must_parse("ns1.x.edu");
  soa.rname = dns::DnsName::must_parse("hostmaster.x.edu");
  server.add_zone(dns::DnsName::must_parse("128.10.in-addr.arpa"), soa);
  dns::LoopbackTransport transport{server};
  const dns::DnsName zone_origin = dns::DnsName::must_parse("128.10.in-addr.arpa");

  const std::uint32_t kTtl = 300;
  util::Rng rng{77};

  // Simulate 400 lease lifecycles: PTR added at t0, removed at t0+session;
  // both observers poll every 60 s. Measure when each first notices the
  // removal.
  util::EmpiricalCdf direct_delay, cached_delay;
  std::uint64_t cached_missed_adds = 0;
  dns::CachingResolver cached{transport, 100000, kTtl};
  dns::StubResolver direct{transport};

  util::SimTime now = 0;
  for (int i = 0; i < 400; ++i) {
    const net::Ipv4Addr address{0x0A800000u + 16 + static_cast<std::uint32_t>(i % 200)};
    now += rng.uniform_int(400, 1200);

    // Both observers probe before the client joins (this is what seeds the
    // poisonous negative cache entries).
    (void)direct.lookup_ptr(address, now);
    const bool cached_saw_absent =
        cached.lookup_ptr(address, now).status != dns::LookupStatus::Ok;

    // Client joins: the DDNS bridge publishes the PTR.
    const util::SimTime joined = now + rng.uniform_int(30, 90);
    (void)server.handle(dns::make_ptr_replace(
        static_cast<std::uint16_t>(i), zone_origin, address,
        dns::DnsName::must_parse("brians-iphone.wifi.x.edu"), kTtl));

    // Early probe (1-4 minutes in): through the cache this often still
    // hits the poisonous negative entry from the pre-join probe.
    const util::SimTime mid = joined + rng.uniform_int(60, 240);
    const bool direct_sees = direct.lookup_ptr(address, mid).status == dns::LookupStatus::Ok;
    const bool cached_sees = cached.lookup_ptr(address, mid).status == dns::LookupStatus::Ok;
    if (direct_sees && !cached_sees && cached_saw_absent) ++cached_missed_adds;

    // Client leaves mid-way through a monitoring campaign: both observers
    // poll every 60 s from the start of the (established) session, through
    // the departure, until they notice the PTR is gone. The cached path
    // keeps refreshing its entry at TTL boundaries, so at removal time it
    // holds an up-to-TTL-old positive copy.
    const util::SimTime monitor_from = joined + kTtl + 30;  // past the negative entry
    const util::SimTime left = monitor_from + rng.uniform_int(120, 5400);
    bool removed = false;
    std::optional<double> direct_seen, cached_seen;
    for (util::SimTime t = monitor_from; t < left + 3 * util::kHour; t += 60) {
      if (!removed && t >= left) {
        (void)server.handle(dns::make_ptr_delete(static_cast<std::uint16_t>(i), zone_origin,
                                                 address));
        removed = true;
      }
      if (!direct_seen && direct.lookup_ptr(address, t).status != dns::LookupStatus::Ok) {
        if (removed) direct_seen = static_cast<double>(t - left) / 60.0;
      }
      if (!cached_seen && cached.lookup_ptr(address, t).status != dns::LookupStatus::Ok) {
        if (removed) cached_seen = static_cast<double>(t - left) / 60.0;
      }
      if (direct_seen && cached_seen) break;
    }
    if (direct_seen) direct_delay.add(*direct_seen);
    if (cached_seen) cached_delay.add(*cached_seen);
    now = left + rng.uniform_int(3900, 4800);  // let stale state drain between runs
  }

  std::printf("\nremoval-detection delay (minutes) over %zu lifecycles, 60 s polling:\n",
              direct_delay.size());
  std::printf("%-10s %10s %10s %10s\n", "path", "median", "p90", "max");
  std::printf("%-10s %10.1f %10.1f %10.1f\n", "direct", direct_delay.percentile(50),
              direct_delay.percentile(90), direct_delay.percentile(100));
  std::printf("%-10s %10.1f %10.1f %10.1f\n", "cached", cached_delay.percentile(50),
              cached_delay.percentile(90), cached_delay.percentile(100));
  std::printf("\ncached path: %llu of 400 mid-session probes still hidden behind a "
              "negatively cached NXDOMAIN\n",
              static_cast<unsigned long long>(cached_missed_adds));
  std::printf("cache hit rate over the run: %.0f%%\n",
              100.0 * cached.cache_stats().hit_rate());

  bench::ShapeChecks checks;
  checks.expect(direct_delay.percentile(90) <= 2.0,
                "direct measurement detects removals within the polling interval");
  checks.expect(cached_delay.percentile(50) >= direct_delay.percentile(50) + 1.0,
                "the cache delays removal detection (stale positive answers)");
  checks.expect(cached_delay.percentile(90) >= 3.0,
                "cache-induced delay approaches the record TTL (5 minutes)");
  checks.expect(cached_missed_adds > 0,
                "negative caching also hides newly joined clients (phase-1 errors)");
  return checks.exit_code();
}
