/// Ablation — DDNS policy spectrum (DESIGN.md choice #5, paper §8):
/// run the SAME network under the four DHCP→DNS policies and measure what
/// each leaks: identifier exposure (does the §5 pipeline identify it?),
/// dynamics exposure (does the §4 heuristic flag it?), and the lingering
/// behaviour. Demonstrates that hashing removes identifiers but not
/// dynamics, and static-generic removes both — the paper's mitigation
/// argument, quantified.

#include "bench_common.hpp"
#include "core/mitigation.hpp"

using namespace rdns;

namespace {

struct Outcome {
  std::size_t dynamic_blocks = 0;
  std::size_t identified = 0;
  std::uint64_t name_leaks = 0;
  std::size_t distinct_ptrs = 0;
};

Outcome run_policy(dhcp::DdnsPolicy policy) {
  sim::OrgSpec org;
  org.name = "subject";
  org.type = sim::OrgType::Academic;
  org.suffix = dns::DnsName::must_parse("subject-university.edu");
  org.announced = {net::Prefix::must_parse("10.75.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.75.64.0/23");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 150;
  seg.named_device_frac = 0.85;
  seg.ddns_policy = policy;
  org.segments = {seg};
  org.seed = 2024;

  sim::World world;
  sim::Organization& subject = world.add_org(std::move(org));
  world.start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 1, 31});

  core::DynamicityDetector detector;
  core::PtrCorpus corpus;
  struct Tee final : scan::SnapshotSink {
    std::vector<scan::SnapshotSink*> sinks;
    void on_row(const util::CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const util::CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  } tee;
  tee.sinks = {&detector, &corpus};
  scan::SweepDriver driver{world, 14, 1};
  (void)driver.run(util::CivilDate{2021, 1, 2}, util::CivilDate{2021, 1, 30}, tee);

  Outcome outcome;
  core::DynamicityConfig dyn;
  dyn.min_days_over = 5;
  const auto dynamicity = detector.analyze(dyn);
  outcome.dynamic_blocks = dynamicity.dynamic_count;

  core::PtrCorpus dynamic_corpus;
  dynamic_corpus.restrict_to(dynamicity.dynamic_blocks());
  for (const auto& [hostname, entry] : corpus.entries()) dynamic_corpus.add_entry(entry);
  core::LeakConfig leak;
  leak.min_unique_names = 20;
  outcome.identified = core::identify_leaking_networks(dynamic_corpus, leak).identified.size();
  outcome.distinct_ptrs = corpus.distinct_hostnames();

  const auto audit = core::audit_organization(subject);
  outcome.name_leaks = audit.owner_name_leaks;
  return outcome;
}

}  // namespace

int main() {
  bench::heading("A1", "Ablation — the DDNS policy spectrum (§8 mitigations)");
  bench::paper_note("carry-over leaks identifiers AND dynamics; hashing hides identifiers "
                    "but not dynamics; static-generic/none hide both");

  std::printf("\n%-22s %14s %12s %12s %14s\n", "policy", "dynamic /24s", "identified",
              "name leaks", "distinct PTRs");

  bench::ShapeChecks checks;
  Outcome carry, hashed, generic, none;
  for (const auto policy :
       {dhcp::DdnsPolicy::CarryOverClientId, dhcp::DdnsPolicy::HashedClientId,
        dhcp::DdnsPolicy::StaticGeneric, dhcp::DdnsPolicy::None}) {
    const Outcome outcome = run_policy(policy);
    std::printf("%-22s %14zu %12zu %12llu %14zu\n", dhcp::to_string(policy),
                outcome.dynamic_blocks, outcome.identified,
                static_cast<unsigned long long>(outcome.name_leaks), outcome.distinct_ptrs);
    switch (policy) {
      case dhcp::DdnsPolicy::CarryOverClientId: carry = outcome; break;
      case dhcp::DdnsPolicy::HashedClientId: hashed = outcome; break;
      case dhcp::DdnsPolicy::StaticGeneric: generic = outcome; break;
      case dhcp::DdnsPolicy::None: none = outcome; break;
    }
  }

  checks.expect(carry.dynamic_blocks > 0 && carry.identified == 1 && carry.name_leaks > 0,
                "carry-over: dynamic, identified, leaking names");
  checks.expect(hashed.dynamic_blocks > 0 && hashed.identified == 0 && hashed.name_leaks == 0,
                "hashed: still dynamic (presence observable) but no identifiers");
  checks.expect(generic.dynamic_blocks == 0 && generic.identified == 0 &&
                    generic.name_leaks == 0,
                "static-generic: neither dynamic nor leaking");
  checks.expect(none.dynamic_blocks == 0 && none.distinct_ptrs == 0,
                "none: nothing published at all");
  return checks.exit_code();
}
