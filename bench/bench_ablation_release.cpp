/// Ablation — DHCP RELEASE behaviour (the paper's closing future-work
/// question: "do clients that can send releases actually do so and is,
/// instead, not doing so a possible defense mechanism?").
///
/// We sweep the fraction of clean releases across otherwise identical
/// networks and measure how long PTR records linger after clients leave.
/// Clean releases remove the PTR within minutes; silent leavers are only
/// cleaned up at lease expiry — so suppressing RELEASE delays the outside
/// observer's signal by up to a lease time.

#include "bench_common.hpp"
#include "core/timing.hpp"

using namespace rdns;

namespace {

struct SweepPoint {
  double release_prob;
  std::size_t usable;
  double within_15;   ///< CDF at 15 minutes
  double median;
};

SweepPoint run_with_release_prob(double release_prob) {
  sim::OrgSpec org;
  org.name = "Academic-R";
  org.type = sim::OrgType::Academic;
  org.suffix = dns::DnsName::must_parse("release-test.edu");
  org.announced = {net::Prefix::must_parse("10.76.0.0/16")};
  sim::SegmentSpec seg;
  seg.label = "wifi";
  seg.prefix = net::Prefix::must_parse("10.76.64.0/24");
  seg.schedule = sim::ScheduleKind::OfficeWorker;
  seg.user_count = 35;
  seg.lease_seconds = 3600;
  seg.clean_release_override = release_prob;
  org.segments = {seg};
  org.seed = 4096;  // identical network modulo the release behaviour

  sim::World world;
  world.add_org(std::move(org));
  world.start(util::CivilDate{2021, 11, 1}, util::CivilDate{2021, 11, 8});

  scan::ReactiveEngine::Config config;
  config.seed = 11;
  scan::ReactiveEngine engine{
      world, {{"Academic-R", {net::Prefix::must_parse("10.76.64.0/24")}}}, config};
  engine.run(util::to_sim_time(util::CivilDate{2021, 11, 1}),
             util::to_sim_time(util::CivilDate{2021, 11, 6}));

  const auto usable = core::usable_groups(engine.groups());
  util::EmpiricalCdf cdf;
  for (const auto* g : usable) cdf.add(g->linger_minutes());

  SweepPoint point;
  point.release_prob = release_prob;
  point.usable = usable.size();
  point.within_15 = cdf.size() ? cdf.at(15.0) : 0.0;
  point.median = cdf.size() ? cdf.percentile(50) : 0.0;
  return point;
}

}  // namespace

int main() {
  bench::heading("A2", "Ablation — DHCP RELEASE behaviour vs PTR lingering");
  bench::paper_note("clean releases remove the PTR within ~5 minutes; silent leavers "
                    "linger until lease expiry (the Fig. 7a hourly peaks) — so "
                    "suppressing RELEASE delays the outside observer");

  std::printf("\n%-16s %8s %14s %16s\n", "P(RELEASE)", "usable", "<=15 min", "median linger");
  std::vector<SweepPoint> points;
  for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const SweepPoint point = run_with_release_prob(p);
    std::printf("%-16.2f %8zu %13.0f%% %13.0f min\n", point.release_prob, point.usable,
                100 * point.within_15, point.median);
    points.push_back(point);
  }

  bench::ShapeChecks checks;
  for (const auto& point : points) {
    checks.expect(point.usable > 30,
                  util::format("enough usable groups at P=%.2f", point.release_prob));
  }
  // Monotonicity: more clean releases -> more fast removals.
  checks.expect(points.front().within_15 < points.back().within_15,
                "fast-removal fraction grows with the release probability");
  checks.expect(points.back().within_15 > 0.6,
                "with universal RELEASE most records vanish within 15 minutes");
  checks.expect(points.front().within_15 < 0.35,
                "with no RELEASE, removals wait for lease expiry");
  checks.expect(points.front().median > points.back().median + 10.0,
                "median lingering shrinks by tens of minutes as releases increase");
  std::printf("\n=> A client that never sends RELEASE hides its departure for up to a\n"
              "   full lease time — the (weak) defence the paper flags as future work.\n");
  return checks.exit_code();
}
