#pragma once
/// \file bench_common.hpp
/// Shared helpers for the experiment benches. Each bench regenerates one
/// table or figure of the paper: it builds the appropriate synthetic world,
/// runs the measurement + analysis pipeline, prints the paper's rows/series
/// (figures as ASCII charts) and a paper-vs-measured shape comparison.
///
/// Absolute numbers intentionally differ from the paper: the substrate is a
/// scaled-down simulator, not the Internet. EXPERIMENTS.md records the
/// shape checks.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/pipeline.hpp"
#include "scan/campaign.hpp"
#include "util/ascii_chart.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace rdns::bench {

/// Record run provenance for a bench: the manifest lands in the
/// BENCH_*.metrics.json snapshot (via write_snapshot_json) and is available
/// through manifest_json() for the bench's own BENCH_*.json document.
inline util::journal::RunManifest record_bench_manifest(const std::string& bench,
                                                        std::uint64_t seed,
                                                        const sim::World* world = nullptr) {
  util::journal::RunManifest manifest;
  manifest.tool = "bench." + bench;
  manifest.version = util::journal::version_string();
  manifest.seed = seed;
  manifest.world_digest = world != nullptr ? world->config_digest() : 0;
  manifest.threads = util::ThreadPool::global().size();
  util::journal::Journal::global().set_manifest(manifest);
  return manifest;
}

/// Parse an optional `--threads N` argument (0 = auto) and size the global
/// pool accordingly. Call from main() before any pipeline work; returns the
/// effective worker count. Benches always collect timing series (busy-time,
/// chunk latency): they exist to measure, so the per-chunk clock reads are
/// part of the workload being characterized.
inline unsigned configure_threads(int argc, char** argv) {
  util::metrics::set_collect_timing(true);
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string{argv[i]} == "--threads") {
      util::ThreadPool::set_global_size(
          static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10)));
      break;
    }
  }
  return util::ThreadPool::global().size();
}

/// Dump the global metrics registry + span tree next to a bench's
/// BENCH_*.json: `derive_metrics_path("BENCH_parallel.json")` names the
/// sibling file `BENCH_parallel.metrics.json`.
inline std::string derive_metrics_path(const std::string& results_path) {
  const std::string suffix = ".json";
  if (results_path.size() > suffix.size() &&
      results_path.compare(results_path.size() - suffix.size(), suffix.size(), suffix) == 0) {
    return results_path.substr(0, results_path.size() - suffix.size()) + ".metrics.json";
  }
  return results_path + ".metrics.json";
}

inline void write_metrics_snapshot(const std::string& results_path) {
  const std::string path = derive_metrics_path(results_path);
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  util::trace::write_snapshot_json(out, util::metrics::Registry::global(),
                                   util::trace::Tracer::global());
  std::printf("wrote %s\n", path.c_str());
}

inline void heading(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
  std::printf("threads:  %u (of %u hardware)\n", util::ThreadPool::global().size(),
              std::thread::hardware_concurrency());
}

inline void paper_note(const std::string& text) {
  std::printf("paper:    %s\n", text.c_str());
}

inline void measured_note(const std::string& text) {
  std::printf("measured: %s\n", text.c_str());
}

/// Pass/fail shape check with a visible verdict (also drives exit codes).
class ShapeChecks {
 public:
  void expect(bool ok, const std::string& what) {
    std::printf("  [%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISMATCH", what.c_str());
    if (!ok) ++failures_;
  }

  [[nodiscard]] int exit_code() const noexcept { return failures_ == 0 ? 0 : 1; }
  [[nodiscard]] int failures() const noexcept { return failures_; }

 private:
  int failures_ = 0;
};

/// The standard campaign setup shared by the Table 3/4/5 and Fig. 6/7
/// benches: the paper world plus the reactive engine over a scaled-down
/// campaign window.
struct CampaignRun {
  std::unique_ptr<sim::World> world;
  std::unique_ptr<scan::SupplementalCampaign> campaign;
};

inline CampaignRun run_paper_campaign(std::uint64_t seed, double population_scale,
                                      util::CivilDate from, util::CivilDate to,
                                      bool with_dns_faults = false) {
  core::WorldScale scale;
  scale.population = population_scale;
  CampaignRun run;
  run.world = core::make_paper_world(seed, scale);
  record_bench_manifest("paper_campaign", seed, run.world.get());
  if (with_dns_faults) {
    // Mild transient failures on every org's servers (Fig. 6 taxonomy).
    for (auto& org : run.world->orgs()) {
      org->dns().set_faults(dns::FaultPolicy{0.004, 0.002});
    }
  }
  // The world must start before the campaign window to let populations
  // settle in (the paper's networks were in steady state when probed).
  run.world->start(util::add_days(from, -1), util::add_days(to, 1));
  scan::CampaignWindow window;
  window.from = from;
  window.to = to;
  run.campaign = std::make_unique<scan::SupplementalCampaign>(
      *run.world, scan::paper_targets(*run.world), window);
  run.campaign->run();
  return run;
}

}  // namespace rdns::bench
