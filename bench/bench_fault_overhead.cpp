/// Overhead of the fault-injection gate (util::faults) on the hot sweep
/// path. The design claim: disabled (the default), should_fail() is one
/// relaxed atomic load and a branch, so arming-capable builds pay nothing
/// measurable when chaos is off.
///
/// Three measurements, each the minimum over several full wire sweeps
/// (min is the classic noise-robust wall-time estimator: every source of
/// interference only ever adds time):
///   A. injector disabled — the shipping default;
///   B. injector armed with a vanishingly small probability — the gate and
///      per-site probability load are exercised on every query, but no
///      fault ever fires (isolates gate cost from fault handling);
///   C. the flaky-dns profile — what a chaos run actually costs
///      (informational: retries and backoff accounting dominate).
/// Plus a direct microbench of the disabled gate (ns per should_fail call).
///
/// Results land in BENCH_faults.json. The shape check asserts B stays
/// within 5% of A: the architectural target is <1%, but a shared 1-core
/// container cannot resolve 1% of a sub-second sweep reliably, so the
/// gate is held to a lenient bound here and to the ns/op microbench.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/faults.hpp"

namespace {

using namespace rdns;

double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

/// One timed wire sweep of `world` at `date` (wall seconds).
double timed_sweep(sim::World& world, const util::CivilDate& date, std::uint64_t* rows_out) {
  std::ostringstream csv;
  scan::CsvSnapshotSink sink{csv};
  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = scan::sweep_wire(world, date, sink);
  const auto t1 = std::chrono::steady_clock::now();
  if (rows_out != nullptr) *rows_out = rows;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using util::CivilDate;
  using util::faults::Injector;
  using util::faults::Site;
  rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("FAULTS", "fault-injection gate overhead on the wire sweep");

  std::string json_path = "BENCH_faults.json";
  int reps = 7;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string{argv[i]} == "--out") json_path = argv[i + 1];
    if (std::string{argv[i]} == "--reps") reps = std::atoi(argv[i + 1]);
  }

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(7, /*org_count=*/2, scale);
  rdns::bench::record_bench_manifest("fault_overhead", 7, world.get());
  const CivilDate date{2021, 11, 3};
  world->start(util::add_days(date, -2), util::add_days(date, 1));
  world->run_until(util::to_sim_time(date) + 14 * util::kHour);

  // B's profile: armed but inert — every query consults the gate and the
  // per-site probability, no fault ever fires (p ~ 2^-60 per decision).
  util::faults::Profile inert;
  inert.name = "bench-inert";
  inert.probability[static_cast<std::size_t>(Site::DnsTimeout)] = 1e-18;

  // The three configurations are interleaved per round (A,B,C, A,B,C, ...)
  // rather than timed in blocks: on a shared 1-core container the clock
  // drifts over the run, and block timing would charge that drift to
  // whichever configuration ran last. One unmeasured warm-up sweep first.
  std::uint64_t rows = 0;
  Injector::global().disable();
  (void)timed_sweep(*world, date, &rows);
  std::vector<double> disabled_times, armed_times, flaky_times;
  for (int rep = 0; rep < reps; ++rep) {
    Injector::global().disable();
    disabled_times.push_back(timed_sweep(*world, date, nullptr));
    Injector::global().configure(inert);
    armed_times.push_back(timed_sweep(*world, date, nullptr));
    Injector::global().configure(*util::faults::find_profile("flaky-dns"));
    flaky_times.push_back(timed_sweep(*world, date, nullptr));
  }
  Injector::global().disable();
  const double disabled_s = best(disabled_times);
  const double armed_s = best(armed_times);
  const double flaky_s = best(flaky_times);

  // Microbench: the disabled gate itself. Entities vary so the optimizer
  // cannot hoist the call; the result feeds a sink to keep it live.
  constexpr std::uint64_t kCalls = 20'000'000;
  std::uint64_t sink = 0;
  const auto g0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    sink += Injector::global().should_fail(Site::DnsTimeout, i) ? 1 : 0;
  }
  const auto g1 = std::chrono::steady_clock::now();
  const double gate_ns =
      std::chrono::duration<double, std::nano>(g1 - g0).count() / static_cast<double>(kCalls);

  const double armed_overhead_pct =
      disabled_s > 0 ? (armed_s - disabled_s) / disabled_s * 100.0 : 0.0;
  const double flaky_cost_pct =
      disabled_s > 0 ? (flaky_s - disabled_s) / disabled_s * 100.0 : 0.0;

  rdns::bench::paper_note("supplemental scans ran against a lossy Internet; the harness "
                          "must afford fault hooks everywhere without taxing clean runs");
  rdns::bench::measured_note(util::format(
      "sweep %llu rows: disabled %.3fs, armed-inert %.3fs (%+.2f%%), flaky-dns %.3fs "
      "(%+.1f%%), disabled gate %.2f ns/call (+%llu)",
      static_cast<unsigned long long>(rows), disabled_s, armed_s, armed_overhead_pct, flaky_s,
      flaky_cost_pct, gate_ns, static_cast<unsigned long long>(sink)));

  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"fault_overhead\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"reps\": " << reps << ",\n"
        << "  \"sweep_rows\": " << rows << ",\n"
        << "  \"disabled_seconds\": " << disabled_s << ",\n"
        << "  \"armed_inert_seconds\": " << armed_s << ",\n"
        << "  \"flaky_dns_seconds\": " << flaky_s << ",\n"
        << "  \"armed_inert_overhead_pct\": " << armed_overhead_pct << ",\n"
        << "  \"flaky_dns_cost_pct\": " << flaky_cost_pct << ",\n"
        << "  \"disabled_gate_ns_per_call\": " << gate_ns << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  // Architectural target <1%; asserted at 5% because a loaded 1-core
  // container cannot resolve finer differences over sub-second sweeps.
  checks.expect(armed_overhead_pct < 5.0,
                "armed-but-inert sweep within 5% of disabled (target <1%)");
  checks.expect(gate_ns < 10.0, "disabled should_fail() under 10 ns/call");
  checks.expect(sink == 0, "inert/disabled gate never fired");
  return checks.exit_code();
}
