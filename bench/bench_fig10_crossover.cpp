/// F10 — Fig. 10: Academic-C in detail — educational buildings vs student
/// housing, observed through BOTH collection regimes (Rapid7-like weekly
/// from late 2019, OpenINTEL-like daily from 2020-02-17). Paper shape:
/// stable pre-pandemic level (weekly data), a Carnaval dip in late Feb
/// 2020, a clear education/housing crossover in March 2020 (employees home,
/// students studying from their campus rooms), dips at the autumn break and
/// Christmas, and the two data sets overlaying each other.

#include "bench_common.hpp"
#include "core/longitudinal.hpp"

using namespace rdns;

namespace {

/// Education vs housing classifier derived from the org's numbering plan.
std::optional<std::string> classify(const sim::Organization& org, net::Ipv4Addr a) {
  for (const auto& segment : org.spec().segments) {
    if (segment.prefix.contains(a)) {
      return segment.venue == sim::PresenceVenue::Housing ? "housing" : "education";
    }
  }
  for (const auto& range : org.spec().static_ranges) {
    if (range.prefix.contains(a)) return "education";  // static infra = edu buildings
  }
  return std::nullopt;
}

}  // namespace

int main() {
  bench::heading("F10", "Fig. 10 — Academic-C: education buildings vs student housing");
  bench::paper_note("March-2020 crossover (education falls below housing); Carnaval dip "
                    "Feb 2020; autumn-break and Christmas dips; Rapid7 (weekly) and "
                    "OpenINTEL (daily) curves overlay");

  core::WorldScale scale;
  scale.population = 0.15;
  auto world = core::make_paper_world(10, scale, /*dhcp_tick=*/300);
  const util::CivilDate from{2019, 11, 1};
  const util::CivilDate to{2021, 1, 31};
  world->start(from, to);
  sim::Organization* academic_c = world->org_by_name("Academic-C");

  // Weekly (Rapid7-like) from Nov 2019; daily (OpenINTEL-like) from
  // 2020-02-17. Interleave chronologically so the clock never rewinds.
  core::DailyCountSink weekly{[&](net::Ipv4Addr a) { return classify(*academic_c, a); }};
  core::DailyCountSink daily{[&](net::Ipv4Addr a) { return classify(*academic_c, a); }};
  scan::SweepDriver weekly_driver{*world, 14, 7, /*second_hour=*/21};
  scan::SweepDriver daily_driver{*world, 15, 1, /*second_hour=*/22};
  const util::CivilDate daily_start{2020, 2, 17};
  for (util::CivilDate week = from; !(to < week); week = util::add_days(week, 7)) {
    (void)weekly_driver.run(week, week, weekly);
    const util::CivilDate d_from = week < daily_start ? daily_start : week;
    const util::CivilDate d_to = util::add_days(week, 6);
    if (!(d_to < d_from)) (void)daily_driver.run(d_from, d_to, daily);
  }

  std::map<std::string, core::PercentSeries> daily_series, weekly_series;
  for (const auto& [name, counts] : daily.counts()) {
    daily_series[name] = core::percent_of_max(name, counts);
  }
  for (const auto& [name, counts] : weekly.counts()) {
    weekly_series[name] = core::percent_of_max(name, counts);
  }

  std::vector<util::Series> chart;
  for (const auto& [name, s] : daily_series) {
    util::Series line{name + " (daily)", {}};
    for (std::size_t i = 0; i < s.percent.size(); i += 7) line.values.push_back(s.percent[i]);
    chart.push_back(std::move(line));
  }
  util::ChartOptions opts;
  opts.height = 14;
  opts.title = "OpenINTEL-like daily series, % of max (weekly samples)";
  std::printf("\n%s\n", util::render_line_chart(chart, opts).c_str());

  const auto value_on = [](const core::PercentSeries& s, const util::CivilDate& d) {
    for (std::size_t i = 0; i < s.dates.size(); ++i) {
      if (!(s.dates[i] < d)) return s.percent[i];
    }
    return s.percent.empty() ? 0.0 : s.percent.back();
  };

  const auto crossover =
      core::find_crossover(daily_series.at("education"), daily_series.at("housing"), 5);
  if (crossover) {
    std::printf("education/housing crossover detected on: %s\n",
                util::format_date(*crossover).c_str());
  } else {
    std::printf("no crossover detected\n");
  }

  bench::ShapeChecks checks;
  checks.expect(crossover.has_value(), "a crossover exists");
  if (crossover) {
    checks.expect(util::CivilDate{2020, 3, 1} < *crossover &&
                      *crossover < util::CivilDate{2020, 5, 1},
                  "crossover falls in March/April 2020");
  }
  const auto& wedu = weekly_series.at("education");
  checks.expect(value_on(wedu, {2019, 12, 1}) > 70.0,
                "pre-pandemic education level is high and stable (Rapid7 extends "
                "visibility into 2019)");
  checks.expect(value_on(wedu, {2019, 12, 27}) < value_on(wedu, {2019, 12, 13}),
                "the 2019 Christmas break is visible in the weekly data");
  checks.expect(value_on(wedu, {2020, 2, 25}) < value_on(wedu, {2020, 2, 11}),
                "the Carnaval dip in late February 2020 is visible");
  // The two data sets agree where they overlap (post 2020-02-17).
  const auto& dedu = daily_series.at("education");
  double max_gap = 0;
  int compared = 0;
  for (std::size_t i = 0; i < wedu.dates.size(); ++i) {
    if (wedu.dates[i] < daily_start) continue;
    const double dv = value_on(dedu, wedu.dates[i]);
    max_gap = std::max(max_gap, std::abs(dv - wedu.percent[i]));
    ++compared;
  }
  checks.expect(compared > 10 && max_gap < 35.0,
                "weekly and daily curves largely overlay where both exist");
  // Housing dips over the 2020 Christmas break too.
  const auto& dhou = daily_series.at("housing");
  checks.expect(value_on(dhou, {2020, 12, 27}) < value_on(dhou, {2020, 12, 10}),
                "housing empties over the 2020 Christmas break");
  return checks.exit_code();
}
