/// F11 — Fig. 11: "When to stage a heist?" — one week of measurements on
/// Academic-A. Paper shape: a clear diurnal cycle with most activity during
/// the day and evening; the quietest time overnight/early morning (the data
/// "hint at approximately 6AM"); rDNS counts pan out lower than ICMP counts
/// (the reactive rDNS measurement is triggered, not continuous); the rDNS
/// curve alone suffices — no ICMP required.

#include "bench_common.hpp"
#include "core/heist.hpp"

using namespace rdns;

int main() {
  bench::heading("F11", "Fig. 11 — one week of measurements on Academic-A (heist planning)");
  bench::paper_note("diurnal cycle; least activity at night/early morning (~6AM); rDNS "
                    "counts lower than ICMP in absolute terms");

  core::WorldScale scale;
  scale.population = 0.3;
  auto world = core::make_paper_world(11, scale);
  // The target building is an educational one, so probe the staff/wifi
  // ranges of Academic-A's numbering plan (the valuables are not in the
  // dorms). The campaign starts a day early; the ramp-up day is excluded
  // from the analysis window.
  const util::CivilDate warmup{2021, 10, 31};
  const util::CivilDate from{2021, 11, 1};
  const util::CivilDate to{2021, 11, 7};
  world->start(util::add_days(warmup, -1), util::add_days(to, 1));

  scan::SupplementalCampaign campaign{
      *world,
      {{"Academic-A",
        {net::Prefix::must_parse("10.10.136.0/21"), net::Prefix::must_parse("10.10.144.0/22")}}},
      scan::CampaignWindow{warmup, to}};
  campaign.run();

  const util::SimTime t0 = util::to_sim_time(from);
  const util::SimTime t1 = util::to_sim_time(to) + util::kDay;
  const auto analysis =
      core::analyze_heist_window(campaign.engine().hourly_activity(), t0, t1);

  util::Series icmp{"ICMP", {}}, rdns{"rDNS", {}};
  for (const auto v : analysis.icmp_per_hour) icmp.values.push_back(static_cast<double>(v));
  for (const auto v : analysis.rdns_per_hour) rdns.values.push_back(static_cast<double>(v));
  util::ChartOptions opts;
  opts.height = 12;
  opts.width = 72;
  opts.title = "successful measurements per hour, 2021-11-01 .. 2021-11-07";
  std::printf("\n%s\n", util::render_line_chart({icmp, rdns}, opts).c_str());

  std::printf("weekday rDNS activity profile by hour of day:\n  ");
  for (int h = 0; h < 24; ++h) std::printf("%5d", h);
  std::printf("\n  ");
  for (int h = 0; h < 24; ++h) {
    std::printf("%5.0f", analysis.weekday_profile[static_cast<std::size_t>(h)]);
  }
  std::printf("\n\nrecommended heist hour (quietest weekday hour): %02d:00\n",
              analysis.quietest_hour);

  bench::ShapeChecks checks;
  std::uint64_t icmp_total = 0, rdns_total = 0;
  for (const auto v : analysis.icmp_per_hour) icmp_total += v;
  for (const auto v : analysis.rdns_per_hour) rdns_total += v;
  checks.expect(icmp_total > rdns_total,
                "rDNS measurement counts pan out lower than ICMP (reactive nature)");
  checks.expect(rdns_total > 0, "rDNS alone still observes the network");
  // Diurnal: afternoon activity dwarfs the small hours.
  const auto& profile = analysis.weekday_profile;
  const double afternoon = profile[13] + profile[14] + profile[15];
  const double small_hours = profile[4] + profile[5] + profile[6];
  checks.expect(afternoon > 2 * small_hours, "clear diurnal cycle (day >> night)");
  checks.expect(analysis.quietest_hour >= 2 && analysis.quietest_hour <= 9,
                "quietest hour falls in the night/early morning (paper: ~6AM)");
  return checks.exit_code();
}
