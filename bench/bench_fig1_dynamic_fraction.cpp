/// F1 — Fig. 1 + §4.2: identify dynamic /24s with the Section 4.1
/// heuristic, report the §4.2 headline counts (paper: 6,151,219 /24s seen,
/// 134,451 dynamic), and plot the distribution of the fraction of dynamic
/// /24s per announced prefix (paper: generally a small subset — numbering
/// plans concentrate dynamics in specific subprefixes).
///
/// Includes the DESIGN.md ablation: sweeping the X (change %) and Y (days)
/// thresholds against simulator ground truth, which the paper did not have.

#include <algorithm>
#include <map>

#include "bench_common.hpp"

using namespace rdns;

int main() {
  bench::heading("F1", "Fig. 1 — fraction of dynamic /24s per announced prefix");
  bench::paper_note("6,151,219 /24s with PTRs; 134,451 dynamic (2.2%); per announced prefix "
                    "the dynamic fraction is small (medians near zero)");

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(77, 60, scale, 300);
  world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 3, 31});

  core::PipelineConfig config;
  config.from = util::CivilDate{2021, 1, 2};
  config.to = util::CivilDate{2021, 3, 30};
  config.leak.min_unique_names = 25;
  const auto report = core::run_identification_pipeline(*world, config);

  bench::measured_note(util::format(
      "%zu /24s with PTRs; %zu dynamic (%.2f%%) over %zu daily sweeps",
      report.dynamicity.total_slash24_seen, report.dynamicity.dynamic_count,
      100.0 * static_cast<double>(report.dynamicity.dynamic_count) /
          static_cast<double>(std::max<std::size_t>(report.dynamicity.total_slash24_seen, 1)),
      report.sweeps));

  // Distribution of fractions by announced prefix length (the Fig. 1 axes).
  std::map<int, std::vector<double>> by_length;
  for (const auto& entry : report.rollup) {
    by_length[entry.announced.length()].push_back(entry.fraction() * 100.0);
  }
  std::printf("\n%-6s %8s %10s %10s %10s\n", "Prefix", "#nets", "min%", "median%", "max%");
  for (auto& [length, fractions] : by_length) {
    std::sort(fractions.begin(), fractions.end());
    std::printf("/%-5d %8zu %9.2f%% %9.2f%% %9.2f%%\n", length, fractions.size(),
                fractions.front(), fractions[fractions.size() / 2], fractions.back());
  }

  bench::ShapeChecks checks;
  checks.expect(report.dynamicity.dynamic_count > 0, "dynamic /24s exist");
  const double overall = static_cast<double>(report.dynamicity.dynamic_count) /
                         static_cast<double>(report.dynamicity.total_slash24_seen);
  checks.expect(overall < 0.25, "dynamic /24s are a minority of all /24s seen");
  double max_fraction = 0;
  for (const auto& entry : report.rollup) max_fraction = std::max(max_fraction, entry.fraction());
  checks.expect(max_fraction <= 0.30,
                "even the most dynamic network keeps dynamics to a subset of its space");

  // ---- Ablation: X/Y threshold sweep against ground truth -----------------
  std::printf("\nAblation — §4.1 thresholds vs simulator ground truth\n");
  std::printf("(ground truth: a /24 is truly dynamic iff it lies in a CarryOver/Hashed\n");
  std::printf(" DHCP pool; the paper validated against its campus IT department)\n");
  net::PrefixSet truly_dynamic;
  for (auto& org : world->orgs()) {
    for (auto& segment : org->segments()) {
      if (segment.spec.ddns_policy == dhcp::DdnsPolicy::CarryOverClientId ||
          segment.spec.ddns_policy == dhcp::DdnsPolicy::HashedClientId) {
        truly_dynamic.add(segment.spec.prefix);
      }
    }
  }

  // The first world's clock is already past the window, so replay the same
  // seed into a fresh world and collect a detector we can re-analyze with
  // different thresholds.
  core::DynamicityDetector detector;
  auto world2 = core::make_internet_world(77, 60, scale, 300);
  world2->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 3, 31});
  scan::SweepDriver driver2{*world2, 14, 1};
  driver2.run(config.from, config.to, detector);

  std::printf("%6s %4s %10s %10s %10s\n", "X%", "Y", "flagged", "precision", "recall");
  for (const double x : {5.0, 10.0, 20.0}) {
    for (const int y : {3, 7, 14}) {
      core::DynamicityConfig dc;
      dc.change_threshold_pct = x;
      dc.min_days_over = y;
      const auto result = detector.analyze(dc);
      std::size_t tp = 0, fp = 0, truth_total = 0;
      for (const auto& block : result.blocks) {
        if (!block.dynamic) continue;
        (truly_dynamic.overlaps(block.block) ? tp : fp) += 1;
      }
      // Recall denominator: truly dynamic /24s that ever showed >10 addrs.
      for (const auto& block : result.blocks) {
        if (truly_dynamic.overlaps(block.block)) ++truth_total;
      }
      const double precision = tp + fp == 0 ? 1.0 : static_cast<double>(tp) / (tp + fp);
      const double recall =
          truth_total == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(truth_total);
      std::printf("%6.1f %4d %10zu %9.2f%% %9.2f%%\n", x, y, tp + fp, 100 * precision,
                  100 * recall);
      if (x == 10.0 && y == 7) {
        checks.expect(precision > 0.95,
                      "paper thresholds (X=10, Y=7) give high precision (validated as "
                      "all-true-positives on the paper's campus)");
      }
    }
  }
  return checks.exit_code();
}
