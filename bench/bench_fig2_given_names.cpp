/// F2 — Fig. 2: given-name matches in reverse DNS, before and after the
/// Section 5 network filtering. Paper shape: popular names match most; the
/// filtered (identified-networks-only) counts sit roughly an order of
/// magnitude below the all-matches counts on the log axis, and every name
/// still matches after filtering.

#include "bench_common.hpp"
#include "core/names.hpp"

using namespace rdns;

int main() {
  bench::heading("F2", "Fig. 2 — given-name matches, all vs filtered (log scale)");
  bench::paper_note("Top-50 US given names all appear in rDNS; filtering by the §4/§5 "
                    "criteria reduces counts ~an order of magnitude");

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(2022, 64, scale, 300);
  world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 2, 21});

  core::PipelineConfig config;
  config.from = util::CivilDate{2021, 1, 2};
  config.to = util::CivilDate{2021, 2, 20};
  config.dynamicity.min_days_over = 6;   // scaled window (7 weeks, not 13)
  config.leak.min_unique_names = 25;     // scaled populations
  const auto report = core::run_identification_pipeline(*world, config);

  std::printf("identified networks: %zu\n\n", report.leaks.identified.size());

  std::vector<std::string> labels;
  std::vector<double> all_counts, filtered_counts;
  std::uint64_t total_all = 0, total_filtered = 0;
  for (const auto& name : core::top_given_names()) {
    labels.push_back(name);
    const auto all_it = report.leaks.matches_per_name.find(name);
    const auto f_it = report.leaks.filtered_matches_per_name.find(name);
    const double all = all_it == report.leaks.matches_per_name.end()
                           ? 0.0
                           : static_cast<double>(all_it->second);
    const double filtered = f_it == report.leaks.filtered_matches_per_name.end()
                                ? 0.0
                                : static_cast<double>(f_it->second);
    all_counts.push_back(all);
    filtered_counts.push_back(filtered);
    total_all += static_cast<std::uint64_t>(all);
    total_filtered += static_cast<std::uint64_t>(filtered);
  }

  // Print the top 16 to keep output readable; the chart covers them.
  util::ChartOptions opts;
  opts.log_scale = true;
  opts.width = 48;
  opts.title = "matches per given name (A = all, B = filtered), top 16 by popularity";
  std::printf("%s\n",
              util::render_paired_bars(
                  std::vector<std::string>(labels.begin(), labels.begin() + 16),
                  std::vector<double>(all_counts.begin(), all_counts.begin() + 16),
                  std::vector<double>(filtered_counts.begin(), filtered_counts.begin() + 16),
                  "all matches", "filtered matches", opts)
                  .c_str());
  std::printf("totals: all=%llu filtered=%llu (ratio %.2f)\n",
              static_cast<unsigned long long>(total_all),
              static_cast<unsigned long long>(total_filtered),
              total_filtered == 0 ? 0.0
                                  : static_cast<double>(total_all) /
                                        static_cast<double>(total_filtered));

  bench::ShapeChecks checks;
  checks.expect(!report.leaks.identified.empty(), "networks are identified");
  checks.expect(total_all > total_filtered, "filtering strictly reduces match counts");
  checks.expect(total_filtered > 0, "names survive filtering (the red bars exist)");
  // City-colliding names (jackson/madison/jordan) are inflated by static
  // router records — the very §5.1 contamination the paper discusses —
  // so the popularity comparison excludes them.
  const auto is_city_name = [](const std::string& n) {
    return n == "jackson" || n == "madison" || n == "jordan";
  };
  double popular_half = 0, rare_half = 0;
  for (int i = 0; i < 25; ++i) {
    if (!is_city_name(labels[static_cast<std::size_t>(i)])) {
      popular_half += all_counts[static_cast<std::size_t>(i)];
    }
  }
  for (int i = 25; i < 50; ++i) {
    if (!is_city_name(labels[static_cast<std::size_t>(i)])) {
      rare_half += all_counts[static_cast<std::size_t>(i)];
    }
  }
  checks.expect(popular_half > rare_half,
                "more-popular names match more often (SSA popularity shows through, "
                "city-colliding names excluded)");
  std::uint64_t city_all = 0, city_filtered = 0;
  for (int i = 0; i < 50; ++i) {
    if (!is_city_name(labels[static_cast<std::size_t>(i)])) continue;
    city_all += static_cast<std::uint64_t>(all_counts[static_cast<std::size_t>(i)]);
    city_filtered += static_cast<std::uint64_t>(filtered_counts[static_cast<std::size_t>(i)]);
  }
  checks.expect(city_all == 0 || city_filtered < city_all / 2,
                "filtering suppresses the city-name (router hostname) contamination");
  std::size_t names_matching_after_filter = 0;
  for (double f : filtered_counts) names_matching_after_filter += (f > 0);
  checks.expect(names_matching_after_filter >= 40,
                "nearly all top-50 names still match inside identified networks");
  return checks.exit_code();
}
