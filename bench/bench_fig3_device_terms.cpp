/// F3 — Fig. 3: device make/model terms co-appearing with given names in
/// hostnames, before and after the identification thresholds. Paper shape:
/// iphone/ipad/air/mbp/galaxy etc. co-occur heavily — evidence that DHCP
/// clients send device names — and filtering preserves the mix while
/// lowering counts.

#include "bench_common.hpp"
#include "core/cooccur.hpp"

using namespace rdns;

int main() {
  bench::heading("F3", "Fig. 3 — device terms co-occurring with given names (log scale)");
  bench::paper_note("Terms ipad/air/laptop/phone/dell/desktop/iphone/mbp/android/macbook/"
                    "galaxy/lenovo/chrome/roku all co-appear with names; filtered counts "
                    "follow the same distribution at lower volume");

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(31337, 64, scale, 300);
  world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 2, 21});

  core::PipelineConfig config;
  config.from = util::CivilDate{2021, 1, 2};
  config.to = util::CivilDate{2021, 2, 20};
  config.dynamicity.min_days_over = 6;
  config.leak.min_unique_names = 25;
  const auto report = core::run_identification_pipeline(*world, config);
  const auto& cooccur = report.cooccurrence;

  std::vector<std::string> labels = {"total"};
  std::vector<double> all = {static_cast<double>(cooccur.total_all)};
  std::vector<double> filtered = {static_cast<double>(cooccur.total_filtered)};
  for (const auto& term : core::device_terms()) {
    labels.push_back(term);
    all.push_back(static_cast<double>(cooccur.all_matches.at(term)));
    filtered.push_back(static_cast<double>(cooccur.filtered_matches.at(term)));
  }

  util::ChartOptions opts;
  opts.log_scale = true;
  opts.width = 48;
  opts.title = "entries containing term alongside a given name";
  std::printf("%s\n", util::render_paired_bars(labels, all, filtered, "all matches",
                                               "filtered matches", opts)
                          .c_str());

  // The discovery path the paper used: frequent co-occurring terms.
  std::printf("top co-occurring terms (>= 20 occurrences, discovery step):\n");
  // Rebuild a corpus for discovery over the dynamic blocks.
  // (The pipeline report does not keep the corpus; rerun cheaply.)
  auto world2 = core::make_internet_world(31337, 64, scale, 300);
  world2->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 2, 21});
  core::PtrCorpus corpus;
  scan::SweepDriver driver{*world2, 14, 1};
  (void)driver.run(config.from, config.to, corpus);
  int shown = 0;
  for (const auto& [term, count] : core::frequent_cooccurring_terms(corpus, 20)) {
    if (shown++ >= 12) break;
    std::printf("  %-12s %lld\n", term.c_str(), static_cast<long long>(count));
  }

  bench::ShapeChecks checks;
  checks.expect(cooccur.total_all > 0 && cooccur.total_filtered > 0,
                "device terms co-occur with names before and after filtering");
  checks.expect(cooccur.all_matches.at("iphone") > cooccur.all_matches.at("roku"),
                "phones dominate set-top boxes (prevalence ordering)");
  checks.expect(cooccur.total_all >= cooccur.total_filtered,
                "filtering lowers counts");
  // Every Fig. 3 term should appear at least once in the unfiltered data.
  std::size_t present = 0;
  for (const auto& term : core::device_terms()) {
    present += cooccur.all_matches.at(term) > 0;
  }
  checks.expect(present >= 12, "nearly all Fig. 3 terms observed in the corpus");
  return checks.exit_code();
}
