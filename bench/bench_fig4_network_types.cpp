/// F4 — Fig. 4: type breakdown of the identified networks.
/// Paper: 197 networks — 61.9% academic, 15.2% ISP, 11.2% other,
/// 9% enterprise, 3% government.

#include "bench_common.hpp"

using namespace rdns;

int main() {
  bench::heading("F4", "Fig. 4 — type breakdown of identified networks");
  bench::paper_note("197 identified: academic 62% > ISP 15% > other 11% > enterprise 9% > "
                    "government 3%");

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(4242, 96, scale, 300);
  world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 2, 21});

  core::PipelineConfig config;
  config.from = util::CivilDate{2021, 1, 2};
  config.to = util::CivilDate{2021, 2, 20};
  config.dynamicity.min_days_over = 6;
  config.leak.min_unique_names = 25;
  const auto report = core::run_identification_pipeline(*world, config);

  std::printf("identified networks: %zu\n\n", report.leaks.identified.size());
  std::vector<std::pair<std::string, double>> bars;
  for (const auto type :
       {core::NetworkType::Academic, core::NetworkType::Isp, core::NetworkType::Enterprise,
        core::NetworkType::Government, core::NetworkType::Other}) {
    bars.emplace_back(core::to_string(type), report.types.percent(type));
  }
  util::ChartOptions opts;
  opts.width = 50;
  opts.title = "percentage of identified networks by type";
  std::printf("%s\n", util::render_bar_chart(bars, opts).c_str());

  for (const auto& suffix : report.leaks.identified) {
    std::printf("  %-36s %s\n", suffix.c_str(),
                core::to_string(core::classify_suffix(suffix)));
  }

  bench::ShapeChecks checks;
  checks.expect(report.leaks.identified.size() >= 8, "a meaningful set of networks identified");
  const double academic = report.types.percent(core::NetworkType::Academic);
  const double isp = report.types.percent(core::NetworkType::Isp);
  const double enterprise = report.types.percent(core::NetworkType::Enterprise);
  const double government = report.types.percent(core::NetworkType::Government);
  checks.expect(academic > 40.0, "academic networks are the majority (paper: 61.9%)");
  checks.expect(academic > isp, "academic > ISP");
  checks.expect(isp >= enterprise, "ISP >= enterprise");
  checks.expect(enterprise >= government, "enterprise >= government");
  return checks.exit_code();
}
