/// F6 — Fig. 6: DNS errors during the supplemental measurement. Paper
/// shape: daily totals in the 100k-1M range with NXDOMAIN well below the
/// total (NXDOMAIN is partly signal: the PTR not added yet / already
/// removed), and name-server failures and timeouts orders of magnitude
/// rarer than lookups.

#include "bench_common.hpp"

using namespace rdns;

int main() {
  bench::heading("F6", "Fig. 6 — DNS outcomes per day during the supplemental measurement");
  bench::paper_note("errors low relative to query volume; NXDOMAIN < total by ~1-2 orders; "
                    "SERVFAIL/timeouts sporadic");

  const auto run = bench::run_paper_campaign(4, 0.35, util::CivilDate{2021, 10, 25},
                                             util::CivilDate{2021, 11, 14},
                                             /*with_dns_faults=*/true);
  const auto& daily = run.campaign->engine().daily_errors();

  util::Series total{"lookups", {}}, nx{"NXDOMAIN", {}}, sf{"servfail", {}}, to{"timeout", {}};
  std::printf("\n%-12s %10s %10s %10s %10s\n", "date", "lookups", "NXDOMAIN", "servfail",
              "timeout");
  std::uint64_t sum_lookups = 0, sum_nx = 0, sum_sf = 0, sum_to = 0;
  for (const auto& [day, counts] : daily) {
    std::printf("%-12s %10llu %10llu %10llu %10llu\n",
                util::format_date(util::civil_from_days(day)).c_str(),
                static_cast<unsigned long long>(counts.lookups),
                static_cast<unsigned long long>(counts.nxdomain),
                static_cast<unsigned long long>(counts.servfail),
                static_cast<unsigned long long>(counts.timeout));
    total.values.push_back(static_cast<double>(counts.lookups));
    nx.values.push_back(static_cast<double>(counts.nxdomain));
    sf.values.push_back(static_cast<double>(counts.servfail));
    to.values.push_back(static_cast<double>(counts.timeout));
    sum_lookups += counts.lookups;
    sum_nx += counts.nxdomain;
    sum_sf += counts.servfail;
    sum_to += counts.timeout;
  }

  util::ChartOptions opts;
  opts.log_scale = true;
  opts.height = 12;
  opts.title = "daily DNS outcomes (log scale)";
  std::printf("\n%s\n", util::render_line_chart({total, nx, sf, to}, opts).c_str());

  bench::ShapeChecks checks;
  checks.expect(daily.size() >= 20, "daily series covers the campaign");
  checks.expect(sum_nx > 0, "NXDOMAIN responses observed (phase-1/phase-3 semantics)");
  checks.expect(sum_nx < sum_lookups / 2, "NXDOMAIN stays well below total lookups");
  checks.expect(sum_sf > 0 && sum_to > 0, "transient server failures and timeouts occur");
  checks.expect(sum_sf + sum_to < sum_lookups / 20,
                "errors are rare relative to query volume ('fortunately, the number of "
                "errors is low')");
  return checks.exit_code();
}
