/// F7 — Fig. 7a/7b: how long PTR records linger after the client leaves.
/// Paper shape: a peak near 5 minutes (clean DHCP RELEASE), peaks around
/// multiples of an hour (lease expiry with leases commonly set to an hour),
/// ~9 out of 10 usable groups revert within 60 minutes, and the
/// longer-lease academic network (our Academic-C) lingers visibly longer.

#include "bench_common.hpp"
#include "core/timing.hpp"

using namespace rdns;

int main() {
  bench::heading("F7", "Fig. 7 — minutes between last ICMP response and PTR removal");
  bench::paper_note("peaks at ~5 min (RELEASE) and ~hourly multiples (lease expiry); "
                    "~90% revert within 60 minutes; one academic network lingers longer");

  const auto run = bench::run_paper_campaign(5, 0.35, util::CivilDate{2021, 10, 25},
                                             util::CivilDate{2021, 11, 14});
  const auto& groups = run.campaign->engine().groups();
  const auto usable = core::usable_groups(groups);
  std::printf("usable groups: %zu\n", usable.size());

  // -- Fig. 7a: histogram over the first three hours -------------------------
  const auto histogram = core::linger_histogram(usable, 180.0, 5.0);
  std::vector<std::int64_t> bins;
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) bins.push_back(histogram.bin(i));
  util::ChartOptions opts;
  opts.width = 50;
  opts.title = "Fig. 7a — occurrences per 5-minute bin (first 3 hours)";
  std::printf("\n%s\n", util::render_histogram(bins, 0.0, 5.0, opts).c_str());

  // -- Fig. 7b: per-network CDFs over the first two hours --------------------
  const auto cdfs = core::linger_cdfs(usable);
  std::printf("Fig. 7b — CDF of lingering minutes per network:\n");
  std::printf("%-14s", "minutes:");
  for (const int m : {5, 15, 30, 60, 90, 120}) std::printf("%8d", m);
  std::printf("\n");
  for (const auto& [network, cdf] : cdfs) {
    if (cdf.size() < 10) continue;  // paper omits networks without data
    std::printf("%-14s", network.c_str());
    for (const int m : {5, 15, 30, 60, 90, 120}) {
      std::printf("%7.0f%%", 100.0 * cdf.at(static_cast<double>(m)));
    }
    std::printf("\n");
  }

  const double within_60 = core::fraction_within_minutes(usable, 60.0);
  std::printf("\noverall: %.1f%% of usable groups revert within 60 minutes\n",
              100.0 * within_60);

  bench::ShapeChecks checks;
  checks.expect(usable.size() > 300, "enough usable groups");
  // 5-minute peak: the first bin [0,5) plus [5,10) dominate their local
  // neighbourhood.
  checks.expect(histogram.bin(0) + histogram.bin(1) > histogram.bin(4) + histogram.bin(5),
                "early peak from clean releases (paper: ~5 minutes)");
  // Hourly peak: mass around 55-65 exceeds the 35-45 valley.
  const auto mass = [&](int lo_bin, int hi_bin) {
    std::int64_t m = 0;
    for (int b = lo_bin; b <= hi_bin; ++b) m += histogram.bin(static_cast<std::size_t>(b));
    return m;
  };
  checks.expect(mass(11, 13) > mass(7, 9),
                "peak near 60 minutes from hourly lease expiry");
  checks.expect(within_60 > 0.7, "the large majority reverts within the hour (paper: ~90%)");
  // Longer-lease Academic-C lingers more than Academic-A.
  const auto a_it = cdfs.find("Academic-A");
  const auto c_it = cdfs.find("Academic-C");
  if (a_it != cdfs.end() && c_it != cdfs.end() && a_it->second.size() > 20 &&
      c_it->second.size() > 20) {
    checks.expect(a_it->second.at(60.0) > c_it->second.at(60.0),
                  "Academic-C (longer lease) lingers longer than Academic-A");
  }
  return checks.exit_code();
}
