/// F8 — Fig. 8: "Six weeks in the Life of Brian(s)" on Academic-A.
/// Paper shape: five brians-* hostnames with regular (diurnal, weekday)
/// patterns on stable per-device addresses; the Brians disappear over the
/// Thanksgiving weekend; brians-galaxy-note9 appears for the FIRST time on
/// Cyber Monday afternoon (a Black Friday / Cyber Monday purchase).

#include "bench_common.hpp"
#include "core/tracking.hpp"

using namespace rdns;

int main() {
  bench::heading("F8", "Fig. 8 — six weeks in the Life of Brian(s), network Academic-A");
  bench::paper_note("brians-{air,galaxy-note9,ipad,mbp,phone}; Thanksgiving absence; "
                    "galaxy-note9 first seen Cyber Monday (2021-11-29) afternoon");

  // Campaign over Academic-A only, six weeks covering Thanksgiving.
  core::WorldScale scale;
  scale.population = 0.3;
  auto world = core::make_paper_world(6, scale);
  const util::CivilDate from{2021, 10, 25};
  const util::CivilDate to{2021, 12, 5};
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const sim::Organization* academic_a = world->org_by_name("Academic-A");
  scan::SupplementalCampaign campaign{
      *world,
      {{"Academic-A", academic_a->spec().measurement_targets}},
      scan::CampaignWindow{from, to}};
  campaign.run();

  const auto segments =
      core::segments_matching(campaign.engine().groups(), "brian", "Academic-A");
  std::printf("presence segments for hostnames containing 'brian': %zu\n", segments.size());

  const auto grid = core::build_weekly_grid(segments, from, 6, /*slots_per_day=*/12);
  for (std::size_t week = 0; week < grid.weeks.size(); ++week) {
    std::vector<std::vector<int>> cells = grid.weeks[week];
    std::printf("\nWeek %zu (Mon %s)   [columns: 12 x 2h slots/day, Mon..Sun]\n", week + 1,
                util::format_date(util::add_days(grid.first_monday,
                                                 static_cast<std::int64_t>(week) * 7))
                    .c_str());
    std::printf("%s", util::render_presence_grid(grid.hostnames, cells, "").c_str());
  }

  const auto first_seen = core::first_seen_dates(segments);
  std::printf("\nfirst-seen dates:\n");
  for (const auto& [hostname, date] : first_seen) {
    std::printf("  %-24s %s\n", hostname.c_str(), util::format_date(date).c_str());
  }

  bench::ShapeChecks checks;
  std::set<std::string> hostnames(grid.hostnames.begin(), grid.hostnames.end());
  for (const char* expected :
       {"brians-phone", "brians-mbp", "brians-air", "brians-ipad", "brians-galaxy-note9"}) {
    checks.expect(hostnames.count(expected) > 0,
                  std::string{"hostname observed: "} + expected);
  }
  const auto note9 = first_seen.find("brians-galaxy-note9");
  if (note9 != first_seen.end()) {
    checks.expect(note9->second == util::CivilDate{2021, 11, 29},
                  "galaxy-note9 first seen exactly on Cyber Monday 2021-11-29");
  } else {
    checks.expect(false, "galaxy-note9 observed at all");
  }
  // Thanksgiving absence: presence during the Thanksgiving break (Thu-Sun of
  // week 5) is much sparser than the same weekdays of week 4.
  const auto presence_in = [&](std::size_t week, int day_lo, int day_hi) {
    if (week >= grid.weeks.size()) return 0;
    int cells_on = 0;
    for (const auto& row : grid.weeks[week]) {
      for (int d = day_lo; d <= day_hi; ++d) {
        for (int s = 0; s < 12; ++s) cells_on += row[static_cast<std::size_t>(d * 12 + s)] != 0;
      }
    }
    return cells_on;
  };
  // Thanksgiving 2021-11-25 falls in the week of Mon 2021-11-22 = week 5
  // (index 4). Compare Thu..Sun against week index 3.
  checks.expect(presence_in(4, 3, 6) < presence_in(3, 3, 6),
                "Brians' devices leave over Thanksgiving weekend");
  // Device addresses are stable (sticky leases): the number of distinct
  // addresses stays close to the number of devices.
  checks.expect(grid.addresses.size() <= hostnames.size() + 3,
                "each device keeps a stable address (colour) across the six weeks");
  return checks.exit_code();
}
