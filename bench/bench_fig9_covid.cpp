/// F9 — Fig. 9: longitudinal rDNS entry presence through the COVID-19
/// pandemic for the three academic networks and enterprises B and C.
/// Paper shape: sharp drops at lockdowns; Academic-A tracks its campus
/// risk-level reports; Academic-B recovers to ~pre-pandemic levels by
/// September 2021 with a Christmas dip at the end; Enterprise-B/C show
/// their big decreases in March/April 2021, B partially recovering around
/// May 2021.

#include "bench_common.hpp"
#include "core/longitudinal.hpp"

using namespace rdns;

int main() {
  bench::heading("F9", "Fig. 9 — daily rDNS entries as % of each network's max, 2020-2021");
  bench::paper_note("lockdown drops; Academic-B back to ~95% then 100% by Sep 2021; "
                    "Enterprise-B/C drop in Mar/Apr 2021; Christmas dips");

  core::WorldScale scale;
  scale.population = 0.12;  // two simulated years: keep populations small
  auto world = core::make_paper_world(9, scale, /*dhcp_tick=*/300);
  const util::CivilDate from{2020, 2, 1};
  const util::CivilDate to{2021, 12, 31};
  world->start(from, to);

  // Classify addresses to their owning campaign network.
  core::DailyCountSink sink{[&world](net::Ipv4Addr a) -> std::optional<std::string> {
    const sim::Organization* org = world->org_of(a);
    if (org == nullptr) return std::nullopt;
    const auto& name = org->name();
    if (name == "Academic-A" || name == "Academic-B" || name == "Academic-C" ||
        name == "Enterprise-B" || name == "Enterprise-C") {
      return name;
    }
    return std::nullopt;
  }};
  scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
  const auto stats = driver.run(util::add_days(from, 1), to, sink);
  std::printf("daily sweeps: %llu\n", static_cast<unsigned long long>(stats.sweeps));

  std::map<std::string, core::PercentSeries> series;
  for (const auto& [name, counts] : sink.counts()) {
    series[name] = core::percent_of_max(name, counts);
  }

  // Monthly medians for the table; the chart shows the full series.
  const auto value_on = [](const core::PercentSeries& s, const util::CivilDate& d) {
    for (std::size_t i = 0; i < s.dates.size(); ++i) {
      if (!(s.dates[i] < d)) return s.percent[i];
    }
    return s.percent.empty() ? 0.0 : s.percent.back();
  };

  std::vector<util::Series> chart;
  for (const auto& [name, s] : series) {
    util::Series line{name, {}};
    // Downsample to weekly for the ASCII chart.
    for (std::size_t i = 0; i < s.percent.size(); i += 7) line.values.push_back(s.percent[i]);
    chart.push_back(std::move(line));
  }
  util::ChartOptions opts;
  opts.height = 14;
  opts.width = 72;
  opts.title = "entries as % of per-network max (weekly samples, Feb 2020 .. Dec 2021)";
  std::printf("\n%s\n", util::render_line_chart(chart, opts).c_str());

  std::printf("%-14s", "network");
  const std::vector<util::CivilDate> probe_dates = {
      {2020, 2, 15}, {2020, 4, 15}, {2020, 10, 1}, {2021, 2, 1},
      {2021, 4, 1},  {2021, 6, 1},  {2021, 10, 1}, {2021, 12, 28}};
  for (const auto& d : probe_dates) std::printf("%9s", util::format_date(d).substr(2, 5).c_str());
  std::printf("\n");
  for (const auto& [name, s] : series) {
    std::printf("%-14s", name.c_str());
    for (const auto& d : probe_dates) std::printf("%8.0f%%", value_on(s, d));
    std::printf("\n");
  }

  bench::ShapeChecks checks;
  checks.expect(series.size() == 5, "all five networks have series");
  const auto& aa = series.at("Academic-A");
  const auto& ab = series.at("Academic-B");
  const auto& eb = series.at("Enterprise-B");
  const auto& ec = series.at("Enterprise-C");
  checks.expect(value_on(aa, {2020, 4, 15}) < value_on(aa, {2020, 2, 20}),
                "Academic-A drops at the first lockdown");
  checks.expect(value_on(aa, {2020, 9, 25}) < value_on(aa, {2020, 9, 5}),
                "Academic-A drops again on the September campus high-risk alert");
  checks.expect(value_on(ab, {2021, 10, 1}) > 80.0,
                "Academic-B back near pre-pandemic levels by autumn 2021");
  checks.expect(value_on(ab, {2021, 12, 28}) < value_on(ab, {2021, 12, 10}),
                "Academic-B dips over the Christmas break");
  checks.expect(value_on(eb, {2021, 4, 1}) < value_on(eb, {2021, 2, 15}),
                "Enterprise-B decreases in March/April 2021");
  checks.expect(value_on(eb, {2021, 6, 1}) > value_on(eb, {2021, 4, 1}),
                "Enterprise-B partially recovers around May 2021");
  checks.expect(value_on(ec, {2021, 4, 15}) < value_on(ec, {2021, 2, 15}),
                "Enterprise-C decreases in March/April 2021");
  checks.expect(value_on(ec, {2021, 6, 1}) < value_on(eb, {2021, 6, 1}),
                "Enterprise-C stays lower than Enterprise-B through spring 2021");
  return checks.exit_code();
}
