/// Overhead of the flight-recorder gate (util::flight) on the hot sweep
/// path. The design claim: disarmed (the default), record() is one relaxed
/// atomic load and a branch; armed, it is one relaxed fetch_add plus four
/// stores into the calling thread's own ring — cheap enough to leave armed
/// on a production sweep (target <= 3% wall-time overhead).
///
/// Two timed configurations, interleaved per round (A,B, A,B, ...) and
/// reduced by min (every source of interference only ever adds time):
///   A. recorder disarmed — the shipping default;
///   B. recorder armed with the default ring, drained once per sweep —
///      every query issue/done/retry/timeout and shard event is recorded.
/// Plus direct microbenches of both gates (ns per record() call).
///
/// Results land in BENCH_flight.json. The armed sweep must stay within 3%
/// of disarmed, produce the identical row count (the recorder is
/// observe-only), and the disarmed gate must stay under 10 ns/call.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/flight.hpp"
#include "util/metrics.hpp"

namespace {

using namespace rdns;

double best(const std::vector<double>& xs) {
  return *std::min_element(xs.begin(), xs.end());
}

/// One timed wire sweep of `world` at `date` (wall seconds).
double timed_sweep(sim::World& world, const util::CivilDate& date, std::uint64_t* rows_out) {
  std::ostringstream csv;
  scan::CsvSnapshotSink sink{csv};
  const auto t0 = std::chrono::steady_clock::now();
  const auto rows = scan::sweep_wire(world, date, sink);
  const auto t1 = std::chrono::steady_clock::now();
  if (rows_out != nullptr) *rows_out = rows;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using util::CivilDate;
  using util::flight::FlightRecorder;
  using util::flight::Kind;
  rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("FLIGHT", "flight-recorder overhead on the wire sweep");

  std::string json_path = "BENCH_flight.json";
  int reps = 9;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string{argv[i]} == "--out") json_path = argv[i + 1];
    if (std::string{argv[i]} == "--reps") reps = std::atoi(argv[i + 1]);
  }

  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(7, /*org_count=*/2, scale);
  rdns::bench::record_bench_manifest("flight_overhead", 7, world.get());
  const CivilDate date{2021, 11, 3};
  world->start(util::add_days(date, -2), util::add_days(date, 1));
  world->run_until(util::to_sim_time(date) + 14 * util::kHour);

  FlightRecorder& recorder = FlightRecorder::global();
  auto& queries_counter = util::metrics::counter("dns.resolver.queries_sent");

  // Interleaved rounds; one unmeasured warm-up sweep first. Every armed
  // sweep drains its ring afterwards (drain cost is off the timed path by
  // design — it runs on demand, not per query).
  std::uint64_t rows_disarmed = 0;
  std::uint64_t rows_armed = 0;
  recorder.disarm();
  (void)timed_sweep(*world, date, &rows_disarmed);
  const std::uint64_t queries_before = queries_counter.value();
  std::vector<double> disarmed_times, armed_times;
  std::vector<util::flight::Event> drained;
  std::uint64_t dropped = 0;
  for (int rep = 0; rep < reps; ++rep) {
    recorder.disarm();
    disarmed_times.push_back(timed_sweep(*world, date, &rows_disarmed));
    recorder.arm();
    armed_times.push_back(timed_sweep(*world, date, &rows_armed));
    drained.clear();
    dropped += recorder.drain(drained).dropped;
  }
  recorder.disarm();
  const std::uint64_t queries_per_sweep =
      (queries_counter.value() - queries_before) / (2 * static_cast<std::uint64_t>(reps));
  const double disarmed_s = best(disarmed_times);
  const double armed_s = best(armed_times);

  // Microbench both gates. Payloads vary so the optimizer cannot hoist the
  // call; sequence() keeps the armed side observable.
  constexpr std::uint64_t kCalls = 20'000'000;
  const auto g0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    util::flight::record(Kind::QueryIssue, i, static_cast<std::uint32_t>(i));
  }
  const auto g1 = std::chrono::steady_clock::now();
  const double disarmed_gate_ns =
      std::chrono::duration<double, std::nano>(g1 - g0).count() / static_cast<double>(kCalls);

  recorder.arm();
  const std::uint64_t seq_before = recorder.sequence();
  const auto a0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    util::flight::record(Kind::QueryIssue, i, static_cast<std::uint32_t>(i));
  }
  const auto a1 = std::chrono::steady_clock::now();
  const double armed_record_ns =
      std::chrono::duration<double, std::nano>(a1 - a0).count() / static_cast<double>(kCalls);
  const std::uint64_t recorded = recorder.sequence() - seq_before;
  recorder.disarm();

  const double armed_overhead_pct =
      disarmed_s > 0 ? (armed_s - disarmed_s) / disarmed_s * 100.0 : 0.0;

  rdns::bench::paper_note("long PTR sweeps are a black box without per-query telemetry; "
                          "a recorder the operator can leave armed must cost nearly nothing");
  rdns::bench::measured_note(util::format(
      "sweep %llu rows / ~%llu queries: disarmed %.3fs, armed %.3fs (%+.2f%%); gate %.2f "
      "ns/call disarmed, %.2f ns/call armed",
      static_cast<unsigned long long>(rows_disarmed),
      static_cast<unsigned long long>(queries_per_sweep), disarmed_s, armed_s,
      armed_overhead_pct, disarmed_gate_ns, armed_record_ns));

  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"flight_overhead\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"reps\": " << reps << ",\n"
        << "  \"sweep_rows\": " << rows_disarmed << ",\n"
        << "  \"sweep_queries\": " << queries_per_sweep << ",\n"
        << "  \"disarmed_seconds\": " << disarmed_s << ",\n"
        << "  \"armed_seconds\": " << armed_s << ",\n"
        << "  \"armed_overhead_pct\": " << armed_overhead_pct << ",\n"
        << "  \"ring_dropped\": " << dropped << ",\n"
        << "  \"disarmed_gate_ns_per_call\": " << disarmed_gate_ns << ",\n"
        << "  \"armed_record_ns_per_call\": " << armed_record_ns << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  checks.expect(rows_armed == rows_disarmed,
                "armed sweep found the identical row count (observe-only)");
  checks.expect(armed_overhead_pct < 3.0, "armed sweep within 3% of disarmed");
  checks.expect(disarmed_gate_ns < 10.0, "disarmed record() under 10 ns/call");
  checks.expect(recorded == kCalls, "armed record() counted every call");
  return checks.exit_code();
}
