/// Microbenchmarks (google-benchmark) for the hot paths of the substrate:
/// DNS wire codec, DHCP handshakes, dynamic updates through the bridge,
/// lease DB operations, the scan permutation, ping routing and the analysis
/// primitives. These guard the performance envelope that lets experiment
/// benches simulate weeks of Internet measurement in seconds.

#include <benchmark/benchmark.h>

#include <unordered_set>

#include "core/names.hpp"
#include "core/terms.hpp"
#include "dhcp/client.hpp"
#include "dhcp/ddns.hpp"
#include "dns/resolver.hpp"
#include "dns/update.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "net/ip_bitset.hpp"
#include "scan/permutation.hpp"
#include "sim/world.hpp"

namespace {

using namespace rdns;

dns::Message sample_response() {
  dns::Message query = dns::make_ptr_query(7, net::Ipv4Addr::must_parse("10.10.128.7"));
  dns::Message response = dns::make_response(query, dns::Rcode::NoError);
  response.answers.push_back(dns::make_ptr(
      query.questions[0].qname, dns::DnsName::must_parse("brians-iphone.wifi.bayfield.edu"),
      300));
  return response;
}

void BM_DnsWireEncode(benchmark::State& state) {
  const dns::Message m = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode(m));
  }
}
BENCHMARK(BM_DnsWireEncode);

void BM_DnsWireDecode(benchmark::State& state) {
  const auto wire = dns::encode(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode(wire));
  }
}
BENCHMARK(BM_DnsWireDecode);

void BM_DnsServerQuery(benchmark::State& state) {
  dns::AuthoritativeServer server;
  dns::Zone& zone = server.add_zone(
      dns::DnsName::must_parse("128.10.in-addr.arpa"),
      dns::SoaRdata{dns::DnsName::must_parse("ns1.x.edu"), dns::DnsName::must_parse("h.x.edu")});
  for (std::uint32_t i = 1; i < 200; ++i) {
    zone.add(dns::make_ptr(
        dns::DnsName::must_parse(net::to_arpa(net::Ipv4Addr{0x0A800000u + i})),
        dns::DnsName::must_parse("host-" + std::to_string(i) + ".x.edu")));
  }
  dns::LoopbackTransport transport{server};
  dns::StubResolver resolver{transport};
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        resolver.lookup_ptr(net::Ipv4Addr{0x0A800001u + (i++ % 199)}, 0));
  }
}
BENCHMARK(BM_DnsServerQuery);

void BM_DnsDynamicUpdate(benchmark::State& state) {
  dns::AuthoritativeServer server;
  server.add_zone(
      dns::DnsName::must_parse("128.10.in-addr.arpa"),
      dns::SoaRdata{dns::DnsName::must_parse("ns1.x.edu"), dns::DnsName::must_parse("h.x.edu")});
  const dns::DnsName target = dns::DnsName::must_parse("brians-iphone.wifi.x.edu");
  std::uint16_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle(dns::make_ptr_replace(
        ++id, dns::DnsName::must_parse("128.10.in-addr.arpa"),
        net::Ipv4Addr::must_parse("10.128.1.7"), target, 300)));
  }
}
BENCHMARK(BM_DnsDynamicUpdate);

void BM_DhcpHandshakeWire(benchmark::State& state) {
  dhcp::DhcpServerConfig config;
  config.server_id = net::Ipv4Addr::must_parse("10.0.0.0");
  dhcp::AddressPool pool;
  pool.add_prefix(net::Prefix::must_parse("10.0.0.0/20"));
  dhcp::DhcpServer server{config, std::move(pool)};
  util::Rng rng{1};
  util::SimTime now = 0;
  for (auto _ : state) {
    dhcp::ClientIdentity id;
    id.mac = net::Mac::random(net::MacVendor::Apple, rng);
    id.host_name = "Brian's iPhone";
    dhcp::DhcpClient client{id, rng.next()};
    now += 10;
    benchmark::DoNotOptimize(client.join(server, now));
    client.leave(server, now + 5, true);
  }
}
BENCHMARK(BM_DhcpHandshakeWire);

void BM_HostnameSanitize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dhcp::sanitize_hostname("Brian's iPhone 12 Pro Max"));
  }
}
BENCHMARK(BM_HostnameSanitize);

void BM_ScanPermutation(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    scan::ScanPermutation perm{n, 42};
    std::uint64_t sum = 0;
    while (const auto v = perm.next()) sum += *v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ScanPermutation)->Arg(256)->Arg(65536);

void BM_WorldPing(benchmark::State& state) {
  sim::World world;
  sim::OrgSpec org;
  org.name = "bench";
  org.suffix = dns::DnsName::must_parse("bench.edu");
  org.announced = {net::Prefix::must_parse("10.50.0.0/16")};
  org.static_ranges = {{net::Prefix::must_parse("10.50.0.0/24"),
                        sim::StaticRangeSpec::Style::GenericNames, 1.0, 1.0}};
  org.seed = 5;
  world.add_org(std::move(org));
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.ping(net::Ipv4Addr{0x0A320000u + (i++ & 0xFFFF)}, 1000));
  }
}
BENCHMARK(BM_WorldPing);

/// Sweep-order address stream for the dedupe benches: dense /24 coverage
/// across several /16s with every address seen twice (first pass inserts,
/// second pass hits), mirroring UnionPass ingesting overlapping sweeps.
std::vector<net::Ipv4Addr> dedupe_stream(std::uint32_t n) {
  std::vector<net::Ipv4Addr> addresses;
  addresses.reserve(2 * n);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t i = 0; i < n; ++i) addresses.emplace_back(0x0A000000u + i);
  }
  return addresses;
}

void BM_DedupeUnorderedSet(benchmark::State& state) {
  const auto addresses = dedupe_stream(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_set<net::Ipv4Addr> seen;
    for (const auto a : addresses) seen.insert(a);
    benchmark::DoNotOptimize(seen.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(addresses.size()));
}
BENCHMARK(BM_DedupeUnorderedSet)->Arg(1 << 16)->Arg(1 << 20);

void BM_DedupeIpv4Bitset(benchmark::State& state) {
  const auto addresses = dedupe_stream(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    net::Ipv4Bitset seen;
    for (const auto a : addresses) seen.insert(a);
    benchmark::DoNotOptimize(seen.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(addresses.size()));
}
BENCHMARK(BM_DedupeIpv4Bitset)->Arg(1 << 16)->Arg(1 << 20);

void BM_TermExtraction(benchmark::State& state) {
  const std::string hostname = "brians-galaxy-note9.housing.bayfield-university.edu";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_terms(hostname));
  }
}
BENCHMARK(BM_TermExtraction);

void BM_GivenNameMatch(benchmark::State& state) {
  const auto terms = core::extract_terms("brians-galaxy-note9.housing.bayfield.edu");
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::match_given_names(terms));
  }
}
BENCHMARK(BM_GivenNameMatch);

}  // namespace

BENCHMARK_MAIN();
