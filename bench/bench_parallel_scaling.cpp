/// Scaling + determinism harness for the parallel sweep & analysis engine.
///
/// Sweeps thread counts {1, 2, 4, auto} over each parallel stage — the
/// wire-format full-space rDNS sweep, CSV replay parsing, the dynamicity
/// heuristic, and term/name extraction — asserting that every parallel run
/// produces output byte-identical to the serial run, and recording
/// throughput into BENCH_parallel.json (rows/sec, speedup, per-stage
/// breakdown).
///
/// The determinism checks are unconditional. The speedup shape check needs
/// real hardware parallelism, so it only runs when the machine exposes at
/// least 4 hardware threads; single-core CI boxes print a SKIP note
/// instead of a vacuous failure.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamicity.hpp"
#include "core/names.hpp"
#include "core/terms.hpp"
#include "scan/csv_replay.hpp"
#include "scan/rdns_snapshot.hpp"

namespace {

using namespace rdns;

struct StageRun {
  unsigned threads = 1;
  double seconds = 0.0;
  /// Summed worker-side chunk time (thread_pool.busy_ns delta) and the
  /// effective parallelism it implies (busy / wall; ~= threads when the
  /// stage scales, ~1 when chunking or merge costs dominate).
  double busy_seconds = 0.0;
  double parallelism = 0.0;
  bool identical = true;
};

struct StageReport {
  std::string stage;
  std::uint64_t rows = 0;
  std::vector<StageRun> runs;

  [[nodiscard]] double seconds_at(unsigned threads) const {
    for (const auto& r : runs) {
      if (r.threads == threads) return r.seconds;
    }
    return 0.0;
  }
  [[nodiscard]] double speedup_at(unsigned threads) const {
    const double serial = seconds_at(1);
    const double t = seconds_at(threads);
    return t > 0.0 ? serial / t : 0.0;
  }
};

/// Run `fn(pool)` once per thread count; fn returns (rows, fingerprint).
/// The fingerprint of every run is compared against the serial (1-thread)
/// run's.
template <typename Fn>
StageReport run_stage(const std::string& stage, const std::vector<unsigned>& thread_counts,
                      Fn&& fn) {
  StageReport report;
  report.stage = stage;
  std::string baseline;
  util::metrics::Counter& busy = util::metrics::counter("thread_pool.busy_ns");
  for (const unsigned threads : thread_counts) {
    util::ThreadPool pool{threads};
    const std::uint64_t busy0 = busy.value();
    const auto t0 = std::chrono::steady_clock::now();
    auto [rows, fingerprint] = fn(pool);
    const auto t1 = std::chrono::steady_clock::now();
    StageRun run;
    run.threads = threads;
    run.seconds = std::chrono::duration<double>(t1 - t0).count();
    run.busy_seconds = static_cast<double>(busy.value() - busy0) / 1e9;
    run.parallelism = run.seconds > 0 ? run.busy_seconds / run.seconds : 0.0;
    if (threads == thread_counts.front()) {
      baseline = std::move(fingerprint);
      report.rows = rows;
    } else {
      run.identical = fingerprint == baseline && rows == report.rows;
    }
    std::printf("  %-12s %2u thread(s)  %8.3fs  %12.0f rows/s  busy %7.3fs  eff-par %4.2fx  %s\n",
                stage.c_str(), threads, run.seconds,
                run.seconds > 0 ? static_cast<double>(rows) / run.seconds : 0.0, run.busy_seconds,
                run.parallelism, run.identical ? "output identical" : "OUTPUT DIVERGED");
    report.runs.push_back(run);
  }
  return report;
}

std::string dynamicity_fingerprint(const core::DynamicityResult& result) {
  std::ostringstream out;
  out << result.total_slash24_seen << '|' << result.dynamic_count << '\n';
  for (const auto& b : result.blocks) {
    out << b.block.to_string() << ',' << b.max_daily << ',' << b.days_over_threshold << ','
        << b.dynamic << '\n';
  }
  return out.str();
}

std::string analysis_fingerprint(const util::Counter& terms,
                                 const std::map<std::string, std::uint64_t>& names,
                                 const core::LeakResult& leaks) {
  std::ostringstream out;
  for (const auto& [term, count] : terms.items()) out << term << '=' << count << ';';
  out << '\n';
  for (const auto& [name, count] : names) out << name << '=' << count << ';';
  out << '\n';
  for (const auto& [suffix, stats] : leaks.suffixes) {
    out << suffix << ':' << stats.records << ':' << stats.unique_names.size() << ':'
        << stats.identified << ';';
  }
  out << '\n';
  for (const auto& s : leaks.identified) out << s << ';';
  out << '\n';
  for (const auto& [name, count] : leaks.filtered_matches_per_name) {
    out << name << '=' << count << ';';
  }
  return out.str();
}

void write_json(const std::string& path, unsigned hardware,
                const std::vector<unsigned>& thread_counts,
                const std::vector<StageReport>& stages) {
  std::ofstream out{path};
  out << "{\n  \"bench\": \"parallel_scaling\",\n";
  if (const auto manifest = util::journal::Journal::global().manifest()) {
    out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
  }
  out << "  \"hardware_threads\": " << hardware << ",\n";
  out << "  \"thread_counts\": [";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    out << (i ? ", " : "") << thread_counts[i];
  }
  out << "],\n  \"stages\": [\n";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const auto& stage = stages[s];
    out << "    {\"stage\": \"" << stage.stage << "\", \"rows\": " << stage.rows
        << ", \"runs\": [\n";
    for (std::size_t r = 0; r < stage.runs.size(); ++r) {
      const auto& run = stage.runs[r];
      const double rps =
          run.seconds > 0 ? static_cast<double>(stage.rows) / run.seconds : 0.0;
      out << "      {\"threads\": " << run.threads << ", \"seconds\": " << run.seconds
          << ", \"rows_per_sec\": " << rps << ", \"speedup\": " << stage.speedup_at(run.threads)
          << ", \"busy_seconds\": " << run.busy_seconds
          << ", \"effective_parallelism\": " << run.parallelism
          << ", \"identical_to_serial\": " << (run.identical ? "true" : "false") << '}'
          << (r + 1 < stage.runs.size() ? "," : "") << '\n';
    }
    out << "    ]}" << (s + 1 < stages.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using util::CivilDate;
  rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("PARALLEL", "thread-pool scaling of the sweep & analysis engine");

  std::string json_path = "BENCH_parallel.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string{argv[i]} == "--out") json_path = argv[i + 1];
  }

  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::vector<unsigned> thread_counts{1, 2, 4, util::ThreadPool::default_size()};
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());

  // A synthetic-Internet world with transient DNS faults enabled, so the
  // determinism checks also cover the hash-based fault injection path.
  core::WorldScale scale;
  scale.population = 0.4;
  auto world = core::make_internet_world(7, /*org_count=*/4, scale);
  rdns::bench::record_bench_manifest("parallel_scaling", 7, world.get());
  for (auto& org : world->orgs()) {
    org->dns().set_faults(dns::FaultPolicy{0.004, 0.002});
  }
  const CivilDate from{2021, 11, 1};
  const CivilDate to{2021, 11, 10};
  world->start(util::add_days(from, -1), util::add_days(to, 2));

  // A serial bulk-path campaign provides the replay corpus (and advances
  // the world day by day so populations exist when the wire sweep runs).
  std::ostringstream campaign_csv;
  {
    scan::CsvSnapshotSink sink{campaign_csv};
    scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
    driver.run(from, to, sink);
  }
  const std::string csv_text = campaign_csv.str();
  const CivilDate sweep_date = util::add_days(to, 1);
  world->run_until(util::to_sim_time(sweep_date) + 14 * util::kHour);

  std::vector<StageReport> stages;

  // Stage 1: the full-space wire sweep (one PTR query per announced
  // address, sharded per /24 with an ordered merge into the CSV sink).
  stages.push_back(run_stage("sweep_wire", thread_counts, [&](util::ThreadPool& pool) {
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};
    const auto rows = scan::sweep_wire(*world, sweep_date, sink, nullptr, &pool);
    return std::pair{rows, out.str()};
  }));

  // Stage 2: CSV replay (chunked parallel parsing, serial in-order emit).
  stages.push_back(run_stage("csv_replay", thread_counts, [&](util::ThreadPool& pool) {
    std::ostringstream out;
    scan::CsvSnapshotSink sink{out};
    const auto stats = scan::replay_csv_text(csv_text, sink, &pool);
    return std::pair{stats.rows, out.str()};
  }));

  // The analysis stages run over the campaign corpus (ingested serially
  // once; ingest order is part of the replay stage above).
  core::DynamicityDetector detector;
  core::PtrCorpus corpus;
  {
    struct Tee final : scan::SnapshotSink {
      std::vector<scan::SnapshotSink*> sinks;
      void on_row(const CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
        for (auto* s : sinks) s->on_row(d, a, n);
      }
      void on_sweep_end(const CivilDate& d) override {
        for (auto* s : sinks) s->on_sweep_end(d);
      }
    } tee;
    tee.sinks = {&detector, &corpus};
    scan::replay_csv_text(csv_text, tee);
  }

  // Stage 3: the Section 4 dynamicity heuristic (map-reduce over /24s).
  stages.push_back(run_stage("dynamicity", thread_counts, [&](util::ThreadPool& pool) {
    core::DynamicityConfig config;
    config.min_days_over = 5;
    const auto result = detector.analyze(config, &pool);
    return std::pair{static_cast<std::uint64_t>(result.total_slash24_seen),
                     dynamicity_fingerprint(result)};
  }));

  // Stage 4: Section 5 term extraction + given-name identification.
  stages.push_back(run_stage("terms_names", thread_counts, [&](util::ThreadPool& pool) {
    const auto terms = corpus.term_frequencies(&pool);
    const auto names = core::count_name_matches(corpus, &pool);
    core::LeakConfig leak;
    leak.min_unique_names = 5;
    const auto leaks = core::identify_leaking_networks(corpus, leak, &pool);
    return std::pair{static_cast<std::uint64_t>(corpus.distinct_hostnames()),
                     analysis_fingerprint(terms, names, leaks)};
  }));

  write_json(json_path, hardware, thread_counts, stages);
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  for (const auto& stage : stages) {
    bool all_identical = true;
    for (const auto& run : stage.runs) all_identical &= run.identical;
    checks.expect(all_identical,
                  stage.stage + " output identical to serial at every thread count");
  }
  if (hardware >= 4) {
    checks.expect(stages.front().speedup_at(4) >= 2.5,
                  "sweep_wire speedup at 4 threads >= 2.5x");
  } else {
    std::printf("  [SHAPE-SKIP] speedup check needs >= 4 hardware threads (have %u); "
                "determinism checks above still ran at every pool size\n",
                hardware);
  }
  return checks.exit_code();
}
