/// Flood bench for the hardened serving path (ISSUE 9 / DESIGN.md §15):
/// does the per-/24 RRL + shed defense actually protect a well-behaved
/// client when one abusive /24 floods the server over loopback?
///
/// Method: one UdpServerLoop (2 workers, guard + RRL armed) serves a small
/// frozen world. Phase A measures the *unloaded* goodput of a paced,
/// closed-loop "good" client bound to 127.0.0.1 — fraction of its paced
/// queries answered within a per-window deadline. Phase B repeats the same
/// paced run while open-loop flooder threads bound to 127.0.1.x (a
/// different /24, so RRL isolates them) blast PTR queries and never read a
/// reply. The defense earns its keep when the good client's goodput under
/// flood stays >= 90% of its unloaded goodput while the flooders' answers
/// are throttled to the RRL budget.
///
/// The shed ladder's L3 (answer shedding) is left disabled here: L3 is the
/// aggregate-overload fuse that deliberately trades goodput for stability,
/// which is the opposite of what this bench measures (targeted abuse
/// absorbed *without* taxing bystanders). L1/L2 stay armed.
///
/// Results land in BENCH_overload.json (+ .metrics.json). Shape checks:
/// unloaded goodput near-perfect, flood goodput retention >= --min-retained,
/// RRL visibly engaged (rrl_dropped > 0), accounting partition intact.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dns/message.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "net/udp.hpp"
#include "sim/world.hpp"

namespace {

using namespace rdns;
using Clock = std::chrono::steady_clock;

struct GoodputResult {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  [[nodiscard]] double goodput() const {
    return sent > 0 ? static_cast<double>(answered) / static_cast<double>(sent) : 0.0;
  }
};

/// Paced closed-loop client: `rate` windows of `window` queries per second,
/// each window given a generous deadline to be answered. Missing the
/// deadline counts against goodput — exactly what a sweeping scanner sees.
GoodputResult run_good_client(const net::UdpEndpoint& server, double seconds, double qps,
                              const std::vector<std::vector<std::uint8_t>>& pool) {
  GoodputResult r;
  auto socket = net::UdpSocket::bind(net::UdpEndpoint{0x7F000001u, 0}, /*reuse_port=*/false);
  if (!socket || !socket->connect(server)) return r;

  constexpr std::size_t kWindow = 8;
  const auto window_interval =
      std::chrono::duration<double>(static_cast<double>(kWindow) / qps);
  std::vector<net::UdpDatagram> outbound(kWindow);
  for (auto& d : outbound) d.peer = server;
  std::vector<net::UdpDatagram> replies;
  replies.reserve(kWindow);

  std::size_t cursor = 0;
  const auto t_end = Clock::now() + std::chrono::duration<double>(seconds);
  auto next_window = Clock::now();
  while (Clock::now() < t_end) {
    for (auto& d : outbound) {
      d.payload = pool[cursor];
      cursor = (cursor + 1) % pool.size();
    }
    const std::size_t sent = socket->send_batch(outbound.data(), outbound.size());
    r.sent += sent;
    std::size_t got = 0;
    const auto deadline = Clock::now() + std::chrono::milliseconds(50);
    while (got < sent && Clock::now() < deadline) {
      if (!socket->wait_readable(1)) continue;
      replies.clear();
      got += socket->recv_batch(replies, kWindow - got);
    }
    r.answered += got;
    next_window += std::chrono::duration_cast<Clock::duration>(window_interval);
    std::this_thread::sleep_until(next_window);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  (void)rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("OVERLOAD", "serve path under flood: RRL shields the well-behaved");

  std::string json_path = "BENCH_overload.json";
  double seconds = 2.0;
  double good_qps = 1000.0;
  double rrl_rate = 4000.0;
  unsigned flooders = 2;
  double min_retained_pct = 90.0;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--out") json_path = argv[i + 1];
    if (arg == "--seconds") seconds = std::atof(argv[i + 1]);
    if (arg == "--good-qps") good_qps = std::atof(argv[i + 1]);
    if (arg == "--rrl-rate") rrl_rate = std::atof(argv[i + 1]);
    if (arg == "--flooders") flooders = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--min-retained-pct") min_retained_pct = std::atof(argv[i + 1]);
  }
  if (seconds <= 0) seconds = 0.5;
  if (good_qps < 100.0) good_qps = 100.0;
  if (flooders == 0) flooders = 1;

  // Same small cache-hot world as bench_serve_qps: the subject is the
  // defense, not zone-size scaling.
  core::WorldScale scale;
  scale.population = 0.2;
  auto world = core::make_internet_world(7, /*org_count=*/2, scale);
  rdns::bench::record_bench_manifest("serve_overload", 7, world.get());
  const util::CivilDate date{2021, 1, 4};
  world->start(util::add_days(date, -1), util::add_days(date, 1));
  world->run_until(util::to_sim_time(date) + 14 * util::kHour);
  const util::SimTime frozen_now = world->now();
  const sim::World& frozen = *world;

  std::vector<std::vector<std::uint8_t>> pool;
  {
    const auto prefixes = world->announced_prefixes();
    std::uint16_t id = 1;
    for (const auto& prefix : prefixes) {
      for (std::uint64_t v = prefix.first().value();
           v <= prefix.last().value() && pool.size() < 4096; ++v) {
        const auto qname =
            dns::DnsName::must_parse(net::to_arpa(net::Ipv4Addr{static_cast<std::uint32_t>(v)}));
        pool.push_back(dns::encode(dns::make_query(id++, qname, dns::RrType::PTR)));
      }
      if (pool.size() >= 4096) break;
    }
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no announced prefixes to query\n");
    return 1;
  }

  std::vector<std::unique_ptr<sim::FrozenDnsView>> views;
  dns::UdpServeOptions options;
  options.threads = 2;
  options.hardening.guard = true;
  options.hardening.rrl_rate = rrl_rate;
  options.hardening.rrl_burst = rrl_rate;
  options.hardening.shed_l3_batches = 0;  // see the header comment
  dns::UdpServerLoop loop{options, [&](unsigned) -> dns::UdpServerLoop::WireHandler {
    views.push_back(std::make_unique<sim::FrozenDnsView>(frozen));
    sim::FrozenDnsView* view = views.back().get();
    return [view, frozen_now](std::span<const std::uint8_t> query) {
      return view->exchange(query, frozen_now);
    };
  }};
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }
  const net::UdpEndpoint server = loop.endpoint();

  // Phase A: unloaded goodput of the paced client.
  const GoodputResult unloaded = run_good_client(server, seconds, good_qps, pool);

  // Phase B: same client, now sharing the server with an abusive /24.
  std::atomic<bool> flood_stop{false};
  std::atomic<std::uint64_t> flood_sent{0};
  std::vector<std::thread> flood_threads;
  flood_threads.reserve(flooders);
  for (unsigned f = 0; f < flooders; ++f) {
    flood_threads.emplace_back([&, f] {
      // 127.0.1.x: one abusive /24, distinct from the good client's.
      auto socket = net::UdpSocket::bind(net::UdpEndpoint{0x7F000100u + 1 + f, 0},
                                         /*reuse_port=*/false);
      if (!socket || !socket->connect(server)) return;
      std::vector<net::UdpDatagram> burst(64);
      for (auto& d : burst) d.peer = server;
      std::size_t cursor = (f + 1) * 131;
      std::uint64_t sent = 0;
      while (!flood_stop.load(std::memory_order_relaxed)) {
        for (auto& d : burst) {
          d.payload = pool[cursor % pool.size()];
          ++cursor;
        }
        sent += socket->send_batch(burst.data(), burst.size());
        // Open loop: never read a reply. A short breather keeps the blast
        // at "abusive client" scale rather than "kernel saturation" scale —
        // the defense under test is RRL, not the NIC queue.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      flood_sent.fetch_add(sent, std::memory_order_relaxed);
    });
  }
  const GoodputResult flooded = run_good_client(server, seconds, good_qps, pool);
  flood_stop.store(true, std::memory_order_relaxed);
  for (auto& t : flood_threads) t.join();
  loop.stop();
  const dns::UdpServeStats& stats = loop.stats();

  const double retained_pct = unloaded.goodput() > 0
                                  ? 100.0 * flooded.goodput() / unloaded.goodput()
                                  : 0.0;
  const bool partition_ok =
      stats.datagrams_received == stats.responses_sent + stats.send_failures +
                                      stats.truncated_queries + stats.dropped_total();

  rdns::bench::paper_note("an authoritative rDNS server facing a full-space sweep must "
                          "absorb abusive query sources without starving legitimate "
                          "resolvers of PTR answers");
  rdns::bench::measured_note(util::format(
      "unloaded goodput %.1f%% (%llu/%llu); under flood %.1f%% (%llu/%llu) = %.1f%% "
      "retained; flood sent %llu, server rrl-dropped %llu, rrl-slipped %llu, shed %llu",
      100.0 * unloaded.goodput(), static_cast<unsigned long long>(unloaded.answered),
      static_cast<unsigned long long>(unloaded.sent), 100.0 * flooded.goodput(),
      static_cast<unsigned long long>(flooded.answered),
      static_cast<unsigned long long>(flooded.sent), retained_pct,
      static_cast<unsigned long long>(flood_sent.load()),
      static_cast<unsigned long long>(stats.rrl_dropped),
      static_cast<unsigned long long>(stats.rrl_slipped),
      static_cast<unsigned long long>(stats.shed_errors + stats.shed_answers)));

  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"serve_overload\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"seconds_per_phase\": " << seconds << ",\n"
        << "  \"good_qps\": " << good_qps << ",\n"
        << "  \"rrl_rate\": " << rrl_rate << ",\n"
        << "  \"flooders\": " << flooders << ",\n"
        << "  \"unloaded\": {\"sent\": " << unloaded.sent
        << ", \"answered\": " << unloaded.answered
        << ", \"goodput_pct\": " << 100.0 * unloaded.goodput() << "},\n"
        << "  \"flooded\": {\"sent\": " << flooded.sent
        << ", \"answered\": " << flooded.answered
        << ", \"goodput_pct\": " << 100.0 * flooded.goodput() << "},\n"
        << "  \"retained_pct\": " << retained_pct << ",\n"
        << "  \"acceptance_retained_pct\": " << min_retained_pct << ",\n"
        << "  \"flood_sent\": " << flood_sent.load() << ",\n"
        << "  \"server\": {\n"
        << "    \"datagrams_received\": " << stats.datagrams_received << ",\n"
        << "    \"responses_sent\": " << stats.responses_sent << ",\n"
        << "    \"rrl_dropped\": " << stats.rrl_dropped << ",\n"
        << "    \"rrl_slipped\": " << stats.rrl_slipped << ",\n"
        << "    \"shed_errors\": " << stats.shed_errors << ",\n"
        << "    \"shed_answers\": " << stats.shed_answers << ",\n"
        << "    \"dropped_policy\": " << stats.dropped_policy << ",\n"
        << "    \"send_failures\": " << stats.send_failures << ",\n"
        << "    \"accounting_partition_ok\": " << (partition_ok ? "true" : "false") << "\n"
        << "  }\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  checks.expect(unloaded.sent > 0 && flooded.sent > 0, "both phases generated load");
  checks.expect(unloaded.goodput() >= 0.95,
                util::format("unloaded goodput >= 95%% on clean loopback (measured %.1f%%)",
                             100.0 * unloaded.goodput()));
  checks.expect(stats.rrl_dropped > 0, "RRL engaged against the flooding /24");
  checks.expect(retained_pct >= min_retained_pct,
                util::format("good client retained >= %.0f%% of unloaded goodput under "
                             "flood (measured %.1f%%)",
                             min_retained_pct, retained_pct));
  checks.expect(partition_ok, "serve accounting partition held under flood");
  return checks.exit_code();
}
