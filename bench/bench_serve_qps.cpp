/// Load bench for the real UDP serving path: a multi-threaded generator
/// drives dns::UdpServerLoop over loopback with windowed, batched PTR
/// queries (sendmmsg out, recvmmsg back) and reports sustained QPS plus
/// p50/p90/p99 reply latency. This is the serving-side counterpart of
/// bench_parallel_scaling: where that bench measures how fast the sweep
/// can ask, this one measures how fast the authoritative surface can
/// answer when the questions arrive as real datagrams.
///
/// Method: each client thread owns one connected socket and keeps a window
/// of W queries in flight — send the window as one batch, then drain
/// replies until the window is answered or the window deadline passes
/// (unanswered queries count as lost; over clean loopback the loss rate
/// should be ~0). Latency is measured per reply from the window's send
/// instant, so it includes kernel queueing on both sides — the quantity a
/// remote scanner would observe.
///
/// Results land in BENCH_serve.json (+ .metrics.json with the serve.*
/// counters). Shape checks: ≥ --min-qps sustained, sub-millisecond median
/// over loopback, and bounded loss.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dns/message.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "net/udp.hpp"
#include "sim/world.hpp"

namespace {

using namespace rdns;
using Clock = std::chrono::steady_clock;

struct ClientResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<double> latencies_us;
};

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned pool_threads = rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("SERVE", "UDP serving path: sustained QPS and reply latency");

  std::string json_path = "BENCH_serve.json";
  double seconds = 3.0;
  // On a single core, extra server workers only add context switches; give
  // the server a second worker once there are spare cores to run it on.
  unsigned server_threads = std::thread::hardware_concurrency() >= 4 ? 2 : 1;
  unsigned client_threads = std::max(1u, pool_threads);
  std::size_t window = 64;
  double min_qps = 100'000.0;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--out") json_path = argv[i + 1];
    if (arg == "--seconds") seconds = std::atof(argv[i + 1]);
    if (arg == "--server-threads") server_threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--clients") client_threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--window") window = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    if (arg == "--min-qps") min_qps = std::atof(argv[i + 1]);
  }
  if (seconds <= 0) seconds = 0.5;
  if (window == 0) window = 1;

  // A small world keeps zone lookups cache-hot: the bench measures the
  // serving path (codec + socket + loop), not zone-size scaling.
  core::WorldScale scale;
  scale.population = 0.2;
  auto world = core::make_internet_world(7, /*org_count=*/2, scale);
  rdns::bench::record_bench_manifest("serve_qps", 7, world.get());
  const util::CivilDate date{2021, 1, 4};
  world->start(util::add_days(date, -1), util::add_days(date, 1));
  world->run_until(util::to_sim_time(date) + 14 * util::kHour);
  const util::SimTime frozen_now = world->now();
  const sim::World& frozen = *world;

  std::vector<std::unique_ptr<sim::FrozenDnsView>> views;
  dns::UdpServeOptions serve_options;
  serve_options.threads = server_threads;
  dns::UdpServerLoop loop{serve_options, [&](unsigned) -> dns::UdpServerLoop::WireHandler {
    views.push_back(std::make_unique<sim::FrozenDnsView>(frozen));
    sim::FrozenDnsView* view = views.back().get();
    return [view, frozen_now](std::span<const std::uint8_t> query) {
      return view->exchange(query, frozen_now);
    };
  }};
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }
  const net::UdpEndpoint server = loop.endpoint();

  // Pre-encoded query pool cycling through the announced space: encoding
  // cost stays off the timed path, ids vary per slot so server-side fault
  // hashes (disarmed here) would still see distinct transactions.
  std::vector<std::vector<std::uint8_t>> query_pool;
  {
    const auto prefixes = world->announced_prefixes();
    std::uint16_t id = 1;
    for (const auto& prefix : prefixes) {
      for (std::uint64_t v = prefix.first().value();
           v <= prefix.last().value() && query_pool.size() < 4096; ++v) {
        const auto qname =
            dns::DnsName::must_parse(net::to_arpa(net::Ipv4Addr{static_cast<std::uint32_t>(v)}));
        query_pool.push_back(dns::encode(dns::make_query(id++, qname, dns::RrType::PTR)));
      }
      if (query_pool.size() >= 4096) break;
    }
  }
  if (query_pool.empty()) {
    std::fprintf(stderr, "no announced prefixes to query\n");
    return 1;
  }

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(client_threads);
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (unsigned c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      ClientResult& r = results[c];
      auto socket = net::UdpSocket::open();
      if (!socket || !socket->connect(server)) return;
      std::vector<net::UdpDatagram> outbound(window);
      for (auto& d : outbound) d.peer = server;
      std::vector<net::UdpDatagram> replies;
      replies.reserve(window);
      std::size_t cursor = c * 997 % query_pool.size();  // de-phase the clients
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& d : outbound) {
          d.payload = query_pool[cursor];
          cursor = (cursor + 1) % query_pool.size();
        }
        const auto t0 = Clock::now();
        const std::size_t sent = socket->send_batch(outbound.data(), outbound.size());
        r.sent += sent;
        std::size_t got = 0;
        // Window deadline: 20 ms is ~100x the expected loopback RTT, so a
        // genuinely lost datagram cannot stall the generator.
        const auto deadline = t0 + std::chrono::milliseconds(20);
        while (got < sent && Clock::now() < deadline) {
          if (!socket->wait_readable(1)) continue;
          replies.clear();
          const std::size_t n = socket->recv_batch(replies, window - got);
          if (n == 0) continue;
          const double us = std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
          for (std::size_t i = 0; i < n; ++i) r.latencies_us.push_back(us);
          got += n;
        }
        r.received += got;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  loop.stop();

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<double> latencies;
  for (auto& r : results) {
    sent += r.sent;
    received += r.received;
    latencies.insert(latencies.end(), r.latencies_us.begin(), r.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double qps = static_cast<double>(received) / seconds;
  const double p50 = percentile_sorted(latencies, 50);
  const double p90 = percentile_sorted(latencies, 90);
  const double p99 = percentile_sorted(latencies, 99);
  const double loss_pct =
      sent > 0 ? 100.0 * static_cast<double>(sent - received) / static_cast<double>(sent) : 0.0;
  const dns::UdpServeStats& ss = loop.stats();

  rdns::bench::paper_note("authoritative rDNS servers answer full-space PTR sweeps over UDP; "
                          "the serving side must sustain scanner-grade query rates");
  rdns::bench::measured_note(util::format(
      "%llu replies in %.1fs = %.0f QPS (%u server / %u client threads, window %zu); "
      "latency p50 %.0fus p90 %.0fus p99 %.0fus; loss %.3f%%",
      static_cast<unsigned long long>(received), seconds, qps, server_threads, client_threads,
      window, p50, p90, p99, loss_pct));

  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"serve_qps\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"seconds\": " << seconds << ",\n"
        << "  \"server_threads\": " << server_threads << ",\n"
        << "  \"client_threads\": " << client_threads << ",\n"
        << "  \"window\": " << window << ",\n"
        << "  \"queries_sent\": " << sent << ",\n"
        << "  \"replies_received\": " << received << ",\n"
        << "  \"qps\": " << qps << ",\n"
        << "  \"latency_p50_us\": " << p50 << ",\n"
        << "  \"latency_p90_us\": " << p90 << ",\n"
        << "  \"latency_p99_us\": " << p99 << ",\n"
        << "  \"loss_pct\": " << loss_pct << ",\n"
        << "  \"server_datagrams_received\": " << ss.datagrams_received << ",\n"
        << "  \"server_responses_sent\": " << ss.responses_sent << ",\n"
        << "  \"server_send_failures\": " << ss.send_failures << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  checks.expect(received > 0, "server answered at least one query");
  checks.expect(qps >= min_qps,
                util::format("sustained >= %.0f QPS over loopback (measured %.0f)", min_qps, qps));
  checks.expect(latencies.empty() || p50 < 10'000.0,
                "median loopback latency under 10 ms");
  checks.expect(loss_pct < 5.0, "datagram loss under 5% on clean loopback");
  return checks.exit_code();
}
