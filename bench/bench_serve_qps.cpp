/// Load bench for the real UDP serving path: a multi-threaded generator
/// drives dns::UdpServerLoop over loopback with windowed, batched PTR
/// queries (sendmmsg out, recvmmsg back) and reports sustained QPS plus
/// p50/p90/p99 reply latency. This is the serving-side counterpart of
/// bench_parallel_scaling: where that bench measures how fast the sweep
/// can ask, this one measures how fast the authoritative surface can
/// answer when the questions arrive as real datagrams.
///
/// Method: each client thread owns one connected socket and keeps a window
/// of W queries in flight — send the window as one batch, then drain
/// replies until the window is answered or the window deadline passes
/// (unanswered queries count as lost; over clean loopback the loss rate
/// should be ~0). Latency is measured per reply from the window's send
/// instant, so it includes kernel queueing on both sides — the quantity a
/// remote scanner would observe.
///
/// Alternating runs A/B the live introspection plane (DESIGN.md §12):
/// baseline runs serve bare, admin-on runs arm the full plane — sampled
/// tracing, heavy-hitter sketches, the seqlock snapshot pipeline, the HTTP
/// admin endpoint being scraped mid-run. Best-of-N per mode filters
/// scheduler noise; the result document records the QPS delta against the
/// < 2% acceptance budget. The admin-on run's /metrics scrape is saved
/// next to the JSON (.prom) so CI can lint the Prometheus exposition.
///
/// A third alternating mode arms the serve-guard front-end with an RRL
/// budget the offered load never reaches (DESIGN.md §15): armed-but-idle,
/// isolating the per-query gating cost (wire classification + token-bucket
/// probe) against the same 2% design budget.
///
/// Results land in BENCH_serve.json (+ .metrics.json with the serve.*
/// counters), including a per-250ms window series of QPS and latency.
/// Shape checks: ≥ --min-qps sustained, sub-millisecond median over
/// loopback, bounded loss, and bounded admin-plane and serve-guard
/// overhead.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dns/admin.hpp"
#include "dns/answer_cache.hpp"
#include "dns/message.hpp"
#include "dns/udp_server.hpp"
#include "dns/wire.hpp"
#include "net/admin_http.hpp"
#include "net/arpa.hpp"
#include "net/udp.hpp"
#include "sim/world.hpp"

namespace {

using namespace rdns;
using Clock = std::chrono::steady_clock;

struct ClientResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<double> latencies_us;
  std::vector<double> at_s;  ///< reply time offsets from run start (same order)
};

struct LoadResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::vector<double> latencies_us;  ///< sorted
  std::vector<double> lat_by_arrival;  ///< unsorted, paired with at_s
  std::vector<double> at_s;            ///< reply arrival offsets from run start
  double qps = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  double loss_pct = 0;
  dns::UdpServeStats server_stats;
  std::string prom_text;    ///< admin-on runs: the mid-run /metrics scrape
  std::string stats_json;   ///< admin-on runs: the mid-run /stats.json body
};

double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// One full load run against a fresh serving loop over `world`. With
/// `admin_on`, the complete introspection plane is armed and the admin
/// endpoint is scraped once mid-run (the realistic worst case: aggregation
/// and a scrape land while the loop is saturated). With `rrl_on`, the
/// serve-guard front-end and RRL are armed with a budget far above the
/// offered load — armed-but-idle, measuring the pure gating cost
/// (classification + bucket probe) every answer now pays.
LoadResult run_load(const sim::World& frozen, util::SimTime frozen_now, bool admin_on,
                    bool rrl_on, double seconds, unsigned server_threads,
                    unsigned client_threads, std::size_t window,
                    const std::vector<std::vector<std::uint8_t>>& query_pool,
                    std::shared_ptr<const dns::AnswerCache> cache = nullptr) {
  LoadResult out;

  std::vector<std::unique_ptr<sim::FrozenDnsView>> views;
  dns::UdpServeOptions serve_options;
  serve_options.threads = server_threads;
  if (cache != nullptr) {
    // The zone is frozen for the whole run, so the provider returns the
    // same image forever and no epoch pointer is needed.
    serve_options.answer_cache = [cache]() { return cache; };
  }
  if (rrl_on) {
    serve_options.hardening.guard = true;
    serve_options.hardening.rrl_rate = 1e9;  // never reached: idle, not engaged
    serve_options.hardening.rrl_burst = 1e9;
    // A closed-loop saturating generator keeps every recv batch full — the
    // exact signal the shed ladder treats as overload — so leaving shed
    // armed here would measure deliberate policy drops, not gating cost.
    serve_options.hardening.shed_l1_batches = 0;
    serve_options.hardening.shed_l2_batches = 0;
    serve_options.hardening.shed_l3_batches = 0;
  }

  dns::ServeAdminConfig admin_cfg;
  admin_cfg.sample_every = 8;
  admin_cfg.top_k = 32;
  std::unique_ptr<dns::ServeIntrospection> introspection;
  if (admin_on) {
    introspection = std::make_unique<dns::ServeIntrospection>(server_threads, admin_cfg);
    serve_options.introspection = introspection.get();
  }

  dns::UdpServerLoop loop{serve_options, [&](unsigned) -> dns::UdpServerLoop::WireHandler {
    views.push_back(std::make_unique<sim::FrozenDnsView>(frozen));
    sim::FrozenDnsView* view = views.back().get();
    dns::UdpServerLoop::WireHandler inner = [view,
                                             frozen_now](std::span<const std::uint8_t> query) {
      return view->exchange(query, frozen_now);
    };
    return introspection ? introspection->wrap_chaos(std::move(inner)) : std::move(inner);
  }};
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return out;
  }
  net::AdminHttpServer admin;
  if (introspection) {
    introspection->start();
    introspection->install_http_routes(admin);
    if (!admin.start(net::UdpEndpoint{0x7F000001u, 0}, &error)) {
      std::fprintf(stderr, "cannot start admin endpoint: %s\n", error.c_str());
    }
  }
  const net::UdpEndpoint server = loop.endpoint();

  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(client_threads);
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  const auto run_start = Clock::now();
  for (unsigned c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      ClientResult& r = results[c];
      auto socket = net::UdpSocket::open();
      if (!socket || !socket->connect(server)) return;
      std::vector<net::UdpDatagram> outbound(window);
      for (auto& d : outbound) d.peer = server;
      std::vector<net::UdpDatagram> replies;
      replies.reserve(window);
      std::size_t cursor = c * 997 % query_pool.size();  // de-phase the clients
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& d : outbound) {
          d.payload = query_pool[cursor];
          cursor = (cursor + 1) % query_pool.size();
        }
        const auto t0 = Clock::now();
        const std::size_t sent = socket->send_batch(outbound.data(), outbound.size());
        r.sent += sent;
        std::size_t got = 0;
        // Window deadline: 20 ms is ~100x the expected loopback RTT, so a
        // genuinely lost datagram cannot stall the generator.
        const auto deadline = t0 + std::chrono::milliseconds(20);
        while (got < sent && Clock::now() < deadline) {
          if (!socket->wait_readable(1)) continue;
          replies.clear();
          const std::size_t n = socket->recv_batch(replies, window - got);
          if (n == 0) continue;
          const auto now = Clock::now();
          const double us = std::chrono::duration<double, std::micro>(now - t0).count();
          const double at = std::chrono::duration<double>(now - run_start).count();
          for (std::size_t i = 0; i < n; ++i) {
            r.latencies_us.push_back(us);
            r.at_s.push_back(at);
          }
          got += n;
        }
        r.received += got;
      }
    });
  }

  if (introspection && admin.running()) {
    // Scrape mid-run so the aggregation + render cost lands under load.
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
    if (const auto prom = net::http_get(admin.endpoint(), "/metrics")) out.prom_text = *prom;
    if (const auto stats = net::http_get(admin.endpoint(), "/stats.json")) {
      out.stats_json = *stats;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds / 2));
  } else {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  admin.stop();
  loop.stop();
  if (introspection) introspection->stop();

  for (auto& r : results) {
    out.sent += r.sent;
    out.received += r.received;
    out.latencies_us.insert(out.latencies_us.end(), r.latencies_us.begin(),
                            r.latencies_us.end());
    out.at_s.insert(out.at_s.end(), r.at_s.begin(), r.at_s.end());
  }
  out.lat_by_arrival = out.latencies_us;
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  out.qps = static_cast<double>(out.received) / seconds;
  out.p50 = percentile_sorted(out.latencies_us, 50);
  out.p90 = percentile_sorted(out.latencies_us, 90);
  out.p99 = percentile_sorted(out.latencies_us, 99);
  out.loss_pct = out.sent > 0 ? 100.0 *
                                    static_cast<double>(out.sent - out.received) /
                                    static_cast<double>(out.sent)
                              : 0.0;
  out.server_stats = loop.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned pool_threads = rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("SERVE", "UDP serving path: sustained QPS and reply latency");

  std::string json_path = "BENCH_serve.json";
  double seconds = 3.0;
  // On a single core, extra server workers only add context switches; give
  // the server a second worker once there are spare cores to run it on.
  unsigned server_threads = std::thread::hardware_concurrency() >= 4 ? 2 : 1;
  unsigned client_threads = std::max(1u, pool_threads);
  std::size_t window = 64;
  double min_qps = 100'000.0;
  // CI regression bound, not the design budget. The budget is 2% and holds
  // when the server has a quiet core; 1–2 core shared runners cannot
  // resolve 2% (run-to-run A/B noise is ±10%+ there), so the default bound
  // is set to catch order-of-magnitude mistakes — e.g. tracing every query
  // instead of 1-in-N — without flaking on scheduler jitter.
  double max_overhead_pct = 25.0;
  // Floor on the answer-cache speedup (cached QPS / codec-path QPS). The
  // cache removes the Message build + codec + allocation from every reply,
  // which measures well above 2x on a quiet core; the default bound leaves
  // room for shared-runner noise while still catching a cache that silently
  // stopped hitting.
  double min_cache_speedup = 2.0;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--out") json_path = argv[i + 1];
    if (arg == "--seconds") seconds = std::atof(argv[i + 1]);
    if (arg == "--server-threads") server_threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--clients") client_threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
    if (arg == "--window") window = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    if (arg == "--min-qps") min_qps = std::atof(argv[i + 1]);
    if (arg == "--max-overhead-pct") max_overhead_pct = std::atof(argv[i + 1]);
    if (arg == "--min-cache-speedup") min_cache_speedup = std::atof(argv[i + 1]);
  }
  if (seconds <= 0) seconds = 0.5;
  if (window == 0) window = 1;
  if (server_threads == 0) server_threads = 1;

  // A small world keeps zone lookups cache-hot: the bench measures the
  // serving path (codec + socket + loop), not zone-size scaling.
  core::WorldScale scale;
  scale.population = 0.2;
  auto world = core::make_internet_world(7, /*org_count=*/2, scale);
  rdns::bench::record_bench_manifest("serve_qps", 7, world.get());
  const util::CivilDate date{2021, 1, 4};
  world->start(util::add_days(date, -1), util::add_days(date, 1));
  world->run_until(util::to_sim_time(date) + 14 * util::kHour);
  const util::SimTime frozen_now = world->now();
  const sim::World& frozen = *world;

  // Pre-encoded query pool cycling through the announced space: encoding
  // cost stays off the timed path, ids vary per slot so server-side fault
  // hashes (disarmed here) would still see distinct transactions.
  std::vector<std::vector<std::uint8_t>> query_pool;
  {
    const auto prefixes = world->announced_prefixes();
    std::uint16_t id = 1;
    for (const auto& prefix : prefixes) {
      for (std::uint64_t v = prefix.first().value();
           v <= prefix.last().value() && query_pool.size() < 4096; ++v) {
        const auto qname =
            dns::DnsName::must_parse(net::to_arpa(net::Ipv4Addr{static_cast<std::uint32_t>(v)}));
        query_pool.push_back(dns::encode(dns::make_query(id++, qname, dns::RrType::PTR)));
      }
      if (query_pool.size() >= 4096) break;
    }
  }
  if (query_pool.empty()) {
    std::fprintf(stderr, "no announced prefixes to query\n");
    return 1;
  }

  // Pre-serialized answer images for the cache-on runs, built once from the
  // same frozen world every mode serves.
  std::shared_ptr<const dns::AnswerCache> answer_cache;
  {
    std::vector<dns::AnswerCache::Source> sources;
    for (const auto& org : frozen.orgs()) {
      for (const auto& prefix : org->spec().announced) {
        sources.push_back({&org->dns(), prefix.first(), prefix.last()});
      }
    }
    answer_cache = dns::AnswerCache::build(sources);
  }

  // A/B the admin plane with alternating runs, best-of-N per mode: on a
  // shared/1-core box the run-to-run scheduler noise is larger than the
  // 2% budget, and peak throughput is the stabler estimator under
  // interference. The admin-on keeper still carries a mid-run scrape.
  constexpr int kReps = 3;
  LoadResult base, admin, rrl, cached;
  for (int rep = 0; rep < kReps; ++rep) {
    LoadResult off = run_load(frozen, frozen_now, /*admin_on=*/false, /*rrl_on=*/false,
                              seconds, server_threads, client_threads, window, query_pool);
    if (off.qps > base.qps) base = std::move(off);
    LoadResult on = run_load(frozen, frozen_now, /*admin_on=*/true, /*rrl_on=*/false,
                             seconds, server_threads, client_threads, window, query_pool);
    if (on.qps > admin.qps) admin = std::move(on);
    LoadResult armed = run_load(frozen, frozen_now, /*admin_on=*/false, /*rrl_on=*/true,
                                seconds, server_threads, client_threads, window, query_pool);
    if (armed.qps > rrl.qps) rrl = std::move(armed);
    LoadResult hot = run_load(frozen, frozen_now, /*admin_on=*/false, /*rrl_on=*/false,
                              seconds, server_threads, client_threads, window, query_pool,
                              answer_cache);
    if (hot.qps > cached.qps) cached = std::move(hot);
  }
  const double overhead_pct =
      base.qps > 0 ? 100.0 * (base.qps - admin.qps) / base.qps : 0.0;
  const double rrl_overhead_pct =
      base.qps > 0 ? 100.0 * (base.qps - rrl.qps) / base.qps : 0.0;
  const double cache_speedup = base.qps > 0 ? cached.qps / base.qps : 0.0;

  // Worker-count sweep with the cache on: one run per thread count (not
  // best-of-N — this charts scaling shape, the A/B above carries the gate).
  struct WorkerPoint {
    unsigned threads;
    double qps, qps_per_core, p99;
  };
  std::vector<WorkerPoint> worker_points;
  {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<unsigned> counts{1};
    if (hw >= 2) counts.push_back(2);
    if (hw >= 4) counts.push_back(4);
    for (const unsigned t : counts) {
      LoadResult r = run_load(frozen, frozen_now, /*admin_on=*/false, /*rrl_on=*/false,
                              seconds, t, client_threads, window, query_pool, answer_cache);
      worker_points.push_back({t, r.qps, r.qps / static_cast<double>(t), r.p99});
    }
  }

  // Per-250ms window series from the baseline run: reply counts bucketed by
  // arrival offset — the data behind a live `rdns_tool top` view.
  constexpr double kWindowS = 0.25;
  const std::size_t n_windows = static_cast<std::size_t>(seconds / kWindowS + 0.5);

  rdns::bench::paper_note("authoritative rDNS servers answer full-space PTR sweeps over UDP; "
                          "the serving side must sustain scanner-grade query rates");
  rdns::bench::measured_note(util::format(
      "%llu replies in %.1fs = %.0f QPS (%u server / %u client threads, window %zu); "
      "latency p50 %.0fus p90 %.0fus p99 %.0fus; loss %.3f%%; admin plane on: %.0f QPS "
      "(%+.2f%% vs off, budget 2%%)",
      static_cast<unsigned long long>(base.received), seconds, base.qps, server_threads,
      client_threads, window, base.p50, base.p90, base.p99, base.loss_pct, admin.qps,
      -overhead_pct));
  rdns::bench::measured_note(util::format(
      "serve-guard armed but idle (RRL budget never reached): %.0f QPS (%+.2f%% vs "
      "unguarded, budget 2%%)",
      rrl.qps, -rrl_overhead_pct));
  rdns::bench::measured_note(util::format(
      "answer cache on: %.0f QPS (%.2fx the codec path, floor %.1fx); p99 %.0fus vs %.0fus; "
      "%llu hits / %llu misses",
      cached.qps, cache_speedup, min_cache_speedup, cached.p99, base.p99,
      static_cast<unsigned long long>(cached.server_stats.cache_hits),
      static_cast<unsigned long long>(cached.server_stats.cache_misses)));
  for (const auto& wp : worker_points) {
    rdns::bench::measured_note(util::format(
        "  cached, %u worker%s: %.0f QPS (%.0f QPS/core), p99 %.0fus", wp.threads,
        wp.threads == 1 ? "" : "s", wp.qps, wp.qps_per_core, wp.p99));
  }

  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"serve_qps\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"seconds\": " << seconds << ",\n"
        << "  \"server_threads\": " << server_threads << ",\n"
        << "  \"client_threads\": " << client_threads << ",\n"
        << "  \"window\": " << window << ",\n"
        << "  \"queries_sent\": " << base.sent << ",\n"
        << "  \"replies_received\": " << base.received << ",\n"
        << "  \"qps\": " << base.qps << ",\n"
        << "  \"latency_p50_us\": " << base.p50 << ",\n"
        << "  \"latency_p90_us\": " << base.p90 << ",\n"
        << "  \"latency_p99_us\": " << base.p99 << ",\n"
        << "  \"loss_pct\": " << base.loss_pct << ",\n"
        << "  \"windows\": [";
    bool first = true;
    std::vector<std::vector<double>> window_lat(n_windows);
    for (std::size_t i = 0; i < base.at_s.size(); ++i) {
      const std::size_t w = static_cast<std::size_t>(base.at_s[i] / kWindowS);
      if (w < n_windows) window_lat[w].push_back(base.lat_by_arrival[i]);
    }
    for (std::size_t w = 0; w < n_windows; ++w) {
      if (!first) out << ",";
      first = false;
      auto& lat = window_lat[w];
      std::sort(lat.begin(), lat.end());
      out << "\n    {\"t_s\": " << (static_cast<double>(w + 1) * kWindowS)
          << ", \"qps\": " << (static_cast<double>(lat.size()) / kWindowS)
          << ", \"p50_us\": " << percentile_sorted(lat, 50)
          << ", \"p99_us\": " << percentile_sorted(lat, 99) << "}";
    }
    out << "\n  ],\n"
        << "  \"serve_observability_overhead\": {\n"
        << "    \"qps_off\": " << base.qps << ",\n"
        << "    \"qps_on\": " << admin.qps << ",\n"
        << "    \"p99_off_us\": " << base.p99 << ",\n"
        << "    \"p99_on_us\": " << admin.p99 << ",\n"
        << "    \"delta_pct\": " << overhead_pct << ",\n"
        << "    \"acceptance_pct\": 2.0,\n"
        << "    \"admin_scraped\": " << (admin.prom_text.empty() ? "false" : "true") << "\n"
        << "  },\n"
        << "  \"rrl_overhead\": {\n"
        << "    \"qps_off\": " << base.qps << ",\n"
        << "    \"qps_armed_idle\": " << rrl.qps << ",\n"
        << "    \"p99_off_us\": " << base.p99 << ",\n"
        << "    \"p99_armed_idle_us\": " << rrl.p99 << ",\n"
        << "    \"delta_pct\": " << rrl_overhead_pct << ",\n"
        << "    \"acceptance_pct\": 2.0\n"
        << "  },\n"
        << "  \"answer_cache\": {\n"
        << "    \"qps_off\": " << base.qps << ",\n"
        << "    \"qps_on\": " << cached.qps << ",\n"
        << "    \"p99_off_us\": " << base.p99 << ",\n"
        << "    \"p99_on_us\": " << cached.p99 << ",\n"
        << "    \"speedup\": " << cache_speedup << ",\n"
        << "    \"min_speedup\": " << min_cache_speedup << ",\n"
        << "    \"cache_hits\": " << cached.server_stats.cache_hits << ",\n"
        << "    \"cache_misses\": " << cached.server_stats.cache_misses << ",\n"
        << "    \"entries\": " << answer_cache->entry_count() << ",\n"
        << "    \"bytes\": " << answer_cache->bytes() << "\n"
        << "  },\n"
        << "  \"workers\": [";
    for (std::size_t i = 0; i < worker_points.size(); ++i) {
      const auto& wp = worker_points[i];
      out << (i == 0 ? "" : ",") << "\n    {\"threads\": " << wp.threads
          << ", \"qps\": " << wp.qps << ", \"qps_per_core\": " << wp.qps_per_core
          << ", \"p99_us\": " << wp.p99 << "}";
    }
    out << "\n  ],\n"
        << "  \"server_datagrams_received\": " << base.server_stats.datagrams_received << ",\n"
        << "  \"server_responses_sent\": " << base.server_stats.responses_sent << ",\n"
        << "  \"server_send_failures\": " << base.server_stats.send_failures << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  // The admin-on run's exposition, for the CI Prometheus lint.
  std::string prom_path = json_path;
  const std::size_t dot = prom_path.rfind('.');
  prom_path = (dot == std::string::npos ? prom_path : prom_path.substr(0, dot)) + ".prom";
  {
    std::ofstream prom{prom_path};
    prom << admin.prom_text;
  }
  std::printf("wrote %s\n", prom_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);

  rdns::bench::ShapeChecks checks;
  checks.expect(base.received > 0, "server answered at least one query");
  checks.expect(base.qps >= min_qps,
                util::format("sustained >= %.0f QPS over loopback (measured %.0f)", min_qps,
                             base.qps));
  checks.expect(base.latencies_us.empty() || base.p50 < 10'000.0,
                "median loopback latency under 10 ms");
  checks.expect(base.loss_pct < 5.0, "datagram loss under 5% on clean loopback");
  checks.expect(admin.received > 0, "admin-plane run answered queries");
  checks.expect(!admin.prom_text.empty(), "mid-run /metrics scrape returned an exposition");
  checks.expect(!admin.stats_json.empty(), "mid-run /stats.json scrape returned a document");
  checks.expect(overhead_pct <= max_overhead_pct,
                util::format("admin-plane overhead %.2f%% within the %.0f%% regression "
                             "bound (design budget 2%% on a quiet core)",
                             overhead_pct, max_overhead_pct));
  checks.expect(rrl.received > 0, "guard-armed run answered queries");
  checks.expect(rrl_overhead_pct <= max_overhead_pct,
                util::format("armed-but-idle serve-guard overhead %.2f%% within the "
                             "%.0f%% regression bound (design budget 2%% on a quiet core)",
                             rrl_overhead_pct, max_overhead_pct));
  checks.expect(cached.received > 0, "cache-on run answered queries");
  checks.expect(cached.server_stats.cache_hits > 0 &&
                    cached.server_stats.cache_misses == 0,
                "every pooled query hit the answer cache (pool covers announced space only)");
  checks.expect(cache_speedup >= min_cache_speedup,
                util::format("answer cache speedup %.2fx >= %.1fx floor", cache_speedup,
                             min_cache_speedup));
  return checks.exit_code();
}
