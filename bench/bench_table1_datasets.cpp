/// T1 — Table 1: statistics of the full-address-space rDNS data sets.
/// Paper: Rapid7 Sonar (weekly, 2019-10-01..2021-01-01, 77G responses,
/// 1,381M unique PTRs) and OpenINTEL (daily, 2020-02-17..2021-12-01, 396G
/// responses, 1,356M unique PTRs). We regenerate both collection regimes
/// over the synthetic Internet and print the same columns.

#include <unordered_set>

#include "bench_common.hpp"
#include "scan/rdns_snapshot.hpp"

using namespace rdns;

namespace {

struct UniquePtrSink final : public scan::SnapshotSink {
  std::unordered_set<std::string> unique_ptrs;
  std::uint64_t rows = 0;
  void on_row(const util::CivilDate&, net::Ipv4Addr, const dns::DnsName& ptr) override {
    ++rows;
    unique_ptrs.insert(ptr.to_canonical_string());
  }
};

}  // namespace

int main() {
  bench::heading("T1", "Table 1 — full-address-space rDNS data set statistics");
  bench::paper_note("Rapid7 Sonar  2019-10-01..2021-01-01 weekly: 77G responses, 1,381M unique PTRs");
  bench::paper_note("OpenINTEL     2020-02-17..2021-12-01 daily:  396G responses, 1,356M unique PTRs");
  std::printf("(synthetic Internet, scaled: windows shortened to keep the bench fast)\n\n");

  core::WorldScale scale;
  scale.population = 0.35;
  auto world = core::make_internet_world(20220101, 48, scale, /*dhcp_tick=*/300);
  const util::CivilDate start{2021, 1, 1};
  const util::CivilDate weekly_end{2021, 3, 26};
  const util::CivilDate daily_start{2021, 1, 15};  // the later-starting daily feed
  const util::CivilDate daily_end{2021, 3, 26};
  world->start(start, util::add_days(daily_end, 1));

  // Rapid7-style weekly sweeps and OpenINTEL-style daily sweeps interleave
  // on the same world; both observe the same PTR churn at different
  // cadences. Rapid7 sweeps Mondays at 06:00; OpenINTEL daily at 14:00.
  UniquePtrSink rapid7, openintel;
  scan::SweepDriver weekly{*world, 6, 7};
  scan::SweepDriver daily{*world, 14, 1};

  // Drive both interleaved, chunked by week so the clock never rewinds.
  scan::SweepStats weekly_stats{}, daily_stats{};
  for (util::CivilDate week = start; !(weekly_end < week); week = util::add_days(week, 7)) {
    const auto ws = weekly.run(week, week, rapid7);
    weekly_stats.sweeps += ws.sweeps;
    weekly_stats.total_rows += ws.total_rows;
    const util::CivilDate day_from = week < daily_start ? daily_start : week;
    const util::CivilDate day_to = util::add_days(week, 6);
    if (!(day_to < day_from)) {
      const auto ds = daily.run(day_from, day_to, openintel);
      daily_stats.sweeps += ds.sweeps;
      daily_stats.total_rows += ds.total_rows;
    }
  }

  std::printf("%-12s %-12s %-12s %8s %16s %14s\n", "Source", "Start", "End", "Sweeps",
              "Total responses", "Unique PTRs");
  std::printf("%-12s %-12s %-12s %8llu %16s %14s\n", "Rapid7-like",
              util::format_date(start).c_str(), util::format_date(weekly_end).c_str(),
              static_cast<unsigned long long>(weekly_stats.sweeps),
              util::with_commas(static_cast<std::int64_t>(weekly_stats.total_rows)).c_str(),
              util::with_commas(static_cast<std::int64_t>(rapid7.unique_ptrs.size())).c_str());
  std::printf("%-12s %-12s %-12s %8llu %16s %14s\n", "OpenINTEL-like",
              util::format_date(daily_start).c_str(), util::format_date(daily_end).c_str(),
              static_cast<unsigned long long>(daily_stats.sweeps),
              util::with_commas(static_cast<std::int64_t>(daily_stats.total_rows)).c_str(),
              util::with_commas(static_cast<std::int64_t>(openintel.unique_ptrs.size())).c_str());

  bench::ShapeChecks checks;
  checks.expect(daily_stats.sweeps > 4 * weekly_stats.sweeps,
                "daily collection produces many more sweeps than weekly");
  checks.expect(daily_stats.total_rows > weekly_stats.total_rows,
                "daily collection accumulates more responses (396G > 77G in the paper)");
  const double ratio = static_cast<double>(rapid7.unique_ptrs.size()) /
                       static_cast<double>(openintel.unique_ptrs.size());
  checks.expect(ratio > 0.5 && ratio < 2.0,
                "unique PTR counts are the same order of magnitude for both feeds "
                "(1,381M vs 1,356M in the paper)");
  return checks.exit_code();
}
