/// T2 — Table 2: the reactive measurement back-off schedule, regenerated
/// from the implementation, plus the cost/resolution ablation DESIGN.md
/// calls out (probes spent per tracked client vs removal-detection delay).

#include "bench_common.hpp"
#include "scan/reactive.hpp"

using namespace rdns;

int main() {
  bench::heading("T2", "Table 2 — reactive measurement back-off schedule");
  bench::paper_note("12x in 1st hour @5min; 6x in 2nd hour @10min; 3x in 3rd hour @20min; "
                    "2x in 4th hour @30min; then 60-min intervals until offline");

  // Regenerate the schedule rows from BackoffSchedule itself.
  struct Row {
    int count;
    util::SimTime interval;
    const char* label;
  };
  std::vector<Row> rows;
  int i = 0;
  while (i < 40) {
    const util::SimTime interval = scan::BackoffSchedule::interval_after(i);
    int count = 0;
    while (scan::BackoffSchedule::interval_after(i) == interval && i < 40) {
      ++count;
      ++i;
    }
    rows.push_back({count, interval, ""});
  }
  static const char* kLabels[] = {"1st hour", "2nd hour", "3rd hour", "4th hour",
                                  "until client goes offline"};
  std::printf("%-10s %-28s %s\n", "# probes", "interval", "phase");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::printf("%-10d every %2lld minutes %12s %s\n", rows[r].count,
                static_cast<long long>(rows[r].interval / 60), "",
                r < 5 ? kLabels[r] : "(steady state)");
  }

  bench::ShapeChecks checks;
  checks.expect(rows.size() >= 5, "five phases present");
  checks.expect(rows[0].count == 12 && rows[0].interval == 5 * util::kMinute, "phase 1 exact");
  checks.expect(rows[1].count == 6 && rows[1].interval == 10 * util::kMinute, "phase 2 exact");
  checks.expect(rows[2].count == 3 && rows[2].interval == 20 * util::kMinute, "phase 3 exact");
  checks.expect(rows[3].count == 2 && rows[3].interval == 30 * util::kMinute, "phase 4 exact");
  checks.expect(rows[4].interval == 60 * util::kMinute, "steady state hourly");
  checks.expect(scan::BackoffSchedule::offset_of(23) == 4 * util::kHour,
                "phases sum to exactly four hours");

  // ---- Ablation: schedule cost vs detection resolution --------------------
  std::printf("\nAblation — probe budget vs worst-case removal-detection delay for a\n");
  std::printf("client present for H hours (probes = ICMP probes until offline detected):\n");
  std::printf("%8s %18s %26s\n", "present", "probes (Table 2)", "probes (flat 5-min)");
  for (const int hours : {1, 2, 4, 8, 16}) {
    int probes = 0;
    util::SimTime t = 0;
    while (t < hours * util::kHour) {
      t += scan::BackoffSchedule::interval_after(probes);
      ++probes;
    }
    const int flat = hours * 12;
    std::printf("%7dh %18d %26d\n", hours, probes, flat);
    if (hours == 16) {
      checks.expect(probes < flat / 4,
                    "back-off cuts probe volume >4x vs flat 5-min polling on long sessions");
    }
  }
  std::printf("detection gap is bounded by the current interval: 5min early, 60min in\n");
  std::printf("steady state — the source of Fig. 7a's 5-minute and 60-minute peaks.\n");
  return checks.exit_code();
}
