/// T3 — Table 3: supplemental measurement statistics.
/// Paper (2021-10-25..2021-12-05): ICMP 45,496,201 responses over 80,738
/// unique IPs; rDNS 11,731,348 responses over 54,456 unique IPs and
/// 180,614 unique PTRs. Shape: ICMP responses outnumber rDNS responses;
/// unique rDNS IPs < unique ICMP IPs; unique PTRs > unique rDNS IPs
/// (hostnames churn across addresses).

#include "bench_common.hpp"

using namespace rdns;

int main() {
  bench::heading("T3", "Table 3 — supplemental measurement statistics");
  bench::paper_note("ICMP: 45.5M responses / 80,738 unique IPs; rDNS: 11.7M responses / "
                    "54,456 unique IPs / 180,614 unique PTRs");

  const auto run = bench::run_paper_campaign(
      /*seed=*/1, /*population_scale=*/0.35, util::CivilDate{2021, 10, 25},
      util::CivilDate{2021, 11, 14});
  const auto totals = run.campaign->totals();
  const auto& engine = run.campaign->engine();

  std::printf("\n%-8s %16s %18s %18s\n", "", "# responses", "# unique IPs", "# unique PTRs");
  std::printf("%-8s %16s %18s %18s\n", "ICMP",
              util::with_commas(static_cast<std::int64_t>(totals.icmp_responses)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.icmp_unique_ips)).c_str(), "-");
  std::printf("%-8s %16s %18s %18s\n", "rDNS",
              util::with_commas(static_cast<std::int64_t>(totals.rdns_responses)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.rdns_unique_ips)).c_str(),
              util::with_commas(static_cast<std::int64_t>(totals.rdns_unique_ptrs)).c_str());
  std::printf("\n(campaign window scaled to 3 weeks; ICMP probes sent: %s; rDNS lookups: %s)\n",
              util::with_commas(static_cast<std::int64_t>(engine.icmp_probes())).c_str(),
              util::with_commas(static_cast<std::int64_t>(engine.rdns_lookups())).c_str());

  bench::ShapeChecks checks;
  checks.expect(totals.icmp_responses > totals.rdns_responses,
                "ICMP responses outnumber rDNS responses (45.5M vs 11.7M in the paper)");
  checks.expect(totals.icmp_unique_ips > 0 && totals.rdns_unique_ips > 0, "both probes observe hosts");
  checks.expect(totals.rdns_unique_ptrs >= totals.rdns_unique_ips / 2,
                "PTR variety is comparable to or exceeds the rDNS address count "
                "(paper: 180k PTRs over 54k addresses)");
  checks.expect(engine.groups().size() > 1000, "a large number of measurement groups formed");
  return checks.exit_code();
}
