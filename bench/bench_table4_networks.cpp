/// T4 — Table 4: the nine targeted networks, their targeted address space
/// and ICMP responsiveness. Paper shape: Academic-A 48%, Academic-B ~0%
/// (two PTR-less hosts), Academic-C 33%, Enterprise-A 58.7%, Enterprise-B/C
/// 0% (ingress ping blocking), ISP-A 34.9%, ISP-B 0.3%, ISP-C 1.7%.

#include <map>

#include "bench_common.hpp"

using namespace rdns;

int main() {
  bench::heading("T4", "Table 4 — targeted networks and ICMP responsiveness");
  bench::paper_note("A-A 48% | A-B 0% | A-C 33% | E-A 58.7% | E-B 0% | E-C 0% | "
                    "I-A 34.9% | I-B 0.3% | I-C 1.7%");

  const auto run = bench::run_paper_campaign(2, 0.35, util::CivilDate{2021, 10, 25},
                                             util::CivilDate{2021, 11, 7});
  auto rows = run.campaign->network_rows();

  std::printf("\n%-14s %-11s %-20s %14s %10s\n", "Network", "Type", "Targeted space",
              "Addrs observed", "Observed");
  std::map<std::string, double> observed;
  for (const auto& row : rows) {
    const sim::Organization* org = run.world->org_by_name(row.name);
    std::string space;
    const auto& targets = org->spec().measurement_targets.empty()
                              ? org->spec().announced
                              : org->spec().measurement_targets;
    for (const auto& p : targets) {
      if (!space.empty()) space += ", ";
      space += "/" + std::to_string(p.length());
    }
    std::printf("%-14s %-11s %-20s %14llu %9.1f%%\n", row.name.c_str(), row.type.c_str(),
                space.c_str(), static_cast<unsigned long long>(row.addresses_observed),
                row.percent_observed);
    observed[row.name] = row.percent_observed;
  }

  bench::ShapeChecks checks;
  checks.expect(observed.at("Enterprise-B") == 0.0, "Enterprise-B blocks pings entirely");
  checks.expect(observed.at("Enterprise-C") == 0.0, "Enterprise-C blocks pings entirely");
  checks.expect(observed.at("Academic-B") < 0.1,
                "Academic-B nearly silent (two allowlisted hosts only)");
  checks.expect(observed.at("Academic-A") > 5.0, "Academic-A clearly responsive");
  checks.expect(observed.at("Academic-C") > 5.0, "Academic-C clearly responsive");
  checks.expect(observed.at("Enterprise-A") > observed.at("ISP-B"),
                "pingable enterprise beats CPE-filtered ISP");
  checks.expect(observed.at("ISP-B") < 1.0, "ISP-B responsiveness is tiny (paper: 0.3%)");
  checks.expect(observed.at("ISP-C") < 5.0, "ISP-C responsiveness is low (paper: 1.7%)");
  checks.expect(observed.at("ISP-A") > observed.at("ISP-C"),
                "ISP-A the most responsive of the ISPs (paper: 34.9%)");
  return checks.exit_code();
}
