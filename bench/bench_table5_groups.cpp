/// T5 — Table 5: the measurement-group funnel.
/// Paper: 6,297,080 groups -> 582,814 successful (9.3%) -> 581,923 with
/// the PTR reverted (99.9% of successful) -> 419,453 with reliable timing
/// (72.1% of reverted). Shape: successful is a small fraction of all
/// groups; nearly all successful groups revert; a sizeable majority of
/// reverted groups have reliable timing.

#include "bench_common.hpp"
#include "core/timing.hpp"

using namespace rdns;

int main() {
  bench::heading("T5", "Table 5 — breakdown of supplemental measurement groups");
  bench::paper_note("all 6,297,080 -> successful 9.3% -> reverted 99.9% -> reliable 72.1%");

  const auto run = bench::run_paper_campaign(3, 0.35, util::CivilDate{2021, 10, 25},
                                             util::CivilDate{2021, 11, 14});
  const auto& groups = run.campaign->engine().groups();
  const auto funnel = core::build_funnel(groups);

  std::printf("\n%-28s %12s %10s\n", "", "#groups", "of parent");
  std::printf("%-28s %12s %9s%%\n", "All groups",
              util::with_commas(static_cast<std::int64_t>(funnel.all_groups)).c_str(), "100.0");
  std::printf("%-28s %12s %9.1f%%\n", "  Successful responses",
              util::with_commas(static_cast<std::int64_t>(funnel.successful)).c_str(),
              100.0 * funnel.fraction_successful());
  std::printf("%-28s %12s %9.1f%%\n", "    PTR reverted",
              util::with_commas(static_cast<std::int64_t>(funnel.reverted)).c_str(),
              100.0 * funnel.fraction_reverted());
  std::printf("%-28s %12s %9.1f%%\n", "      Reliable timing",
              util::with_commas(static_cast<std::int64_t>(funnel.reliable)).c_str(),
              100.0 * funnel.fraction_reliable());

  bench::ShapeChecks checks;
  checks.expect(funnel.all_groups > 2000, "large group population");
  checks.expect(funnel.fraction_successful() < 0.6,
                "successful groups are a clear minority of all groups (paper: 9.3%)");
  checks.expect(funnel.fraction_reverted() > 0.9,
                "nearly all successful groups observe the PTR reverting (paper: 99.9%)");
  checks.expect(funnel.fraction_reliable() > 0.4 && funnel.fraction_reliable() <= 1.0,
                "a majority of reverted groups have reliable timing (paper: 72.1%)");
  checks.expect(funnel.reliable > 100, "enough usable groups for the Fig. 7 analysis");
  return checks.exit_code();
}
