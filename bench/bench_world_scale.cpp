/// Internet-scale world bench: how big a simulated Internet fits in memory,
/// how fast it builds, and how fast the streaming bulk sweep drains it.
///
/// Two parts:
///
///   1. A/B representation comparison at --compare-devices (default 1M
///      published PTRs): build + sweep the same make_scale_world() twice,
///      first with the compact zone storage (interned names + per-/16
///      offset stores), then with Zone::set_default_storage(Legacy) — the
///      pre-interning std::map-of-ResourceRecord representation. Reports
///      peak RSS (VmHWM) and build-RSS deltas for both, the reduction
///      ratios, and asserts the sweep CSV byte stream is hash-identical
///      across representations. The compact pass runs FIRST because VmHWM
///      is monotonic per process.
///
///   2. Scaling tiers 10k → --devices (default 1M, 10M+ supported): per
///      tier, build time, build RSS delta, streaming sweep throughput
///      (rows/s) at --threads workers, plus a single-thread sweep whose
///      CSV hash must match the multi-threaded one (the ordered-merge
///      byte-identity guarantee). The tiers also assert the lazy-population
///      invariant: building + sweeping a world must never materialize a
///      user population.
///
/// Results land in BENCH_world.json (+ .metrics.json with the mem.* gauge);
/// tools/check_bench_world.py validates the schema and thresholds in CI.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dns/zone.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/mem.hpp"

namespace {

using namespace rdns;
using Clock = std::chrono::steady_clock;

/// Hashes the sweep byte stream (FNV-1a) without retaining it. In raw mode
/// it consumes pre-rendered blocks (the streaming path); otherwise it
/// renders each on_row callback through the shared append_snapshot_row
/// renderer, so equal hashes mean byte-identical CSV artifacts.
class HashingSink final : public scan::SnapshotSink {
 public:
  explicit HashingSink(bool raw) : raw_(raw) {}

  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override {
    line_.clear();
    scan::append_snapshot_row(line_, util::format_date(date), address, ptr.to_string());
    mix(line_);
    ++rows_;
  }
  [[nodiscard]] bool wants_raw_rows() const noexcept override { return raw_; }
  void on_raw_rows(std::string_view bytes, std::uint64_t rows) override {
    mix(bytes);
    rows_ += rows;
  }

  [[nodiscard]] std::uint64_t hash() const noexcept { return h_; }
  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

 private:
  void mix(std::string_view bytes) noexcept {
    for (const char c : bytes) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
  }

  bool raw_;
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
  std::uint64_t rows_ = 0;
  std::string line_;
};

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint64_t world_ptr_count(const sim::World& world) {
  std::uint64_t n = 0;
  for (const auto& org : world.orgs()) n += org->ptr_count();
  return n;
}

bool any_population_materialized(const sim::World& world) {
  for (const auto& org : world.orgs()) {
    if (org->population_materialized()) return true;
  }
  return false;
}

std::string hex64(std::uint64_t v) { return util::format("%016llx", (unsigned long long)v); }

/// One build + raw-mode sweep of make_scale_world(seed, devices),
/// instrumented for RSS and wall time.
struct BuildSweep {
  std::uint64_t devices = 0;
  std::uint64_t ptrs = 0;
  double build_seconds = 0.0;
  std::uint64_t build_rss_delta = 0;
  double sweep_seconds = 0.0;
  std::uint64_t rows = 0;
  std::uint64_t hash = 0;
  std::uint64_t peak_rss_after = 0;
  bool lazy_ok = false;
};

BuildSweep run_build_sweep(std::uint64_t seed, std::uint64_t devices, util::ThreadPool* pool,
                           const util::CivilDate& date) {
  BuildSweep r;
  r.devices = devices;
  util::mem::release_freed_memory();
  const std::uint64_t rss0 = util::mem::current_rss_bytes();
  const auto t0 = Clock::now();
  auto world = core::make_scale_world(seed, devices);
  r.build_seconds = seconds_since(t0);
  const std::uint64_t rss1 = util::mem::current_rss_bytes();
  r.build_rss_delta = rss1 > rss0 ? rss1 - rss0 : 0;
  r.ptrs = world_ptr_count(*world);

  HashingSink sink{/*raw=*/true};
  const auto s0 = Clock::now();
  scan::sweep_bulk(*world, date, sink, pool);
  r.sweep_seconds = seconds_since(s0);
  r.rows = sink.rows();
  r.hash = sink.hash();
  r.lazy_ok = !any_population_materialized(*world);
  r.peak_rss_after = util::mem::peak_rss_bytes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned pool_threads = rdns::bench::configure_threads(argc, argv);
  rdns::bench::heading("WORLD-SCALE",
                       "internet-scale worlds: footprint, build time, sweep throughput");

  std::string json_path = "BENCH_world.json";
  std::uint64_t devices = 1'000'000;
  std::uint64_t compare_devices = 1'000'000;
  double min_ratio = 5.0;
  double max_rss_mb = 0.0;  // 0 = no ceiling check
  std::uint64_t seed = 11;
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string arg{argv[i]};
    if (arg == "--out") json_path = argv[i + 1];
    if (arg == "--devices") devices = std::strtoull(argv[i + 1], nullptr, 10);
    if (arg == "--compare-devices") compare_devices = std::strtoull(argv[i + 1], nullptr, 10);
    if (arg == "--min-ratio") min_ratio = std::atof(argv[i + 1]);
    if (arg == "--max-rss-mb") max_rss_mb = std::atof(argv[i + 1]);
    if (arg == "--seed") seed = std::strtoull(argv[i + 1], nullptr, 10);
  }
  if (devices < 10'000) devices = 10'000;
  if (compare_devices > devices) compare_devices = devices;
  const util::CivilDate date{2021, 10, 27};
  util::ThreadPool serial_pool{1};

  rdns::bench::ShapeChecks checks;

  // ---- Part 1: compact vs legacy at compare_devices (compact first:
  // VmHWM never decreases, so the smaller configuration must set the
  // first high-water mark).
  rdns::bench::paper_note(
      "a full IPv4 rDNS data set is ~1.2G records/day (Table 1); holding a meaningful "
      "fraction of that in one process requires a compact PTR representation");
  dns::Zone::set_default_storage(dns::ZoneStorage::Compact);
  BuildSweep compact = run_build_sweep(seed, compare_devices, nullptr, date);
  const std::uint64_t compact_peak = compact.peak_rss_after;

  // Cross-check the raw streaming path against the per-row object path on
  // the compact world (same renderer, same fold order => same hash).
  std::uint64_t object_path_hash = 0;
  {
    auto world = core::make_scale_world(seed, compare_devices);
    HashingSink object_sink{/*raw=*/false};
    scan::sweep_bulk(*world, date, object_sink, &serial_pool);
    object_path_hash = object_sink.hash();
  }

  dns::Zone::set_default_storage(dns::ZoneStorage::Legacy);
  BuildSweep legacy = run_build_sweep(seed, compare_devices, nullptr, date);
  const std::uint64_t legacy_peak = legacy.peak_rss_after;
  dns::Zone::set_default_storage(dns::ZoneStorage::Compact);

  const double peak_ratio = compact_peak > 0 && legacy_peak > 0
                                ? static_cast<double>(legacy_peak) / static_cast<double>(compact_peak)
                                : 0.0;
  const double delta_ratio =
      compact.build_rss_delta > 0
          ? static_cast<double>(legacy.build_rss_delta) / static_cast<double>(compact.build_rss_delta)
          : 0.0;

  rdns::bench::measured_note(util::format(
      "A/B at %llu PTRs: compact build %.2fs, +%.1f MiB RSS, peak %.1f MiB; "
      "legacy build %.2fs, +%.1f MiB RSS, peak %.1f MiB; peak ratio %.1fx, delta ratio %.1fx",
      (unsigned long long)compare_devices, compact.build_seconds,
      compact.build_rss_delta / 1048576.0, compact_peak / 1048576.0, legacy.build_seconds,
      legacy.build_rss_delta / 1048576.0, legacy_peak / 1048576.0, peak_ratio, delta_ratio));

  checks.expect(compact.rows == compact.ptrs && compact.rows > 0,
                "sweep emitted one row per published PTR");
  checks.expect(compact.hash == legacy.hash,
                "sweep CSV byte-identical across compact/legacy storage");
  checks.expect(compact.hash == object_path_hash,
                "raw streaming sink matches the per-row object sink byte for byte");
  if (compact_peak > 0 && legacy_peak > 0) {
    checks.expect(peak_ratio >= min_ratio,
                  util::format("peak RSS reduced >= %.1fx by compact storage (measured %.1fx)",
                               min_ratio, peak_ratio));
  } else {
    std::printf("  [SHAPE-SKIP] no RSS source on this platform; ratio check skipped\n");
  }

  // ---- Part 2: scaling tiers (compact representation).
  std::vector<BuildSweep> tiers;
  std::vector<std::uint64_t> serial_hashes;
  for (const std::uint64_t tier :
       std::vector<std::uint64_t>{10'000, 100'000, 1'000'000, 10'000'000}) {
    if (tier > devices) break;
    BuildSweep t = run_build_sweep(seed, tier, nullptr, date);
    // Ordered-merge guarantee: the single-thread byte stream is the
    // reference; the multi-thread hash above must equal it.
    auto world = core::make_scale_world(seed, tier);
    HashingSink serial_sink{/*raw=*/true};
    scan::sweep_bulk(*world, date, serial_sink, &serial_pool);
    serial_hashes.push_back(serial_sink.hash());
    checks.expect(t.hash == serial_sink.hash(),
                  util::format("tier %llu: CSV hash identical at 1 and %u threads",
                               (unsigned long long)tier, pool_threads));
    checks.expect(t.lazy_ok, util::format("tier %llu: no user population materialized",
                                          (unsigned long long)tier));
    rdns::bench::measured_note(util::format(
        "tier %8llu PTRs: build %6.2fs (+%7.1f MiB), sweep %6.2fs = %9.0f rows/s @ %u threads",
        (unsigned long long)t.ptrs, t.build_seconds, t.build_rss_delta / 1048576.0,
        t.sweep_seconds, t.sweep_seconds > 0 ? t.rows / t.sweep_seconds : 0.0, pool_threads));
    tiers.push_back(t);
  }
  checks.expect(!tiers.empty(), "at least one scaling tier ran");

  const std::uint64_t final_peak = util::mem::update_peak_rss_gauge();
  if (max_rss_mb > 0 && final_peak > 0) {
    checks.expect(final_peak / 1048576.0 <= max_rss_mb,
                  util::format("process peak RSS %.1f MiB under the %.0f MiB ceiling",
                               final_peak / 1048576.0, max_rss_mb));
  }

  {
    auto world = core::make_scale_world(seed, 10'000);
    rdns::bench::record_bench_manifest("world_scale", seed, world.get());
  }
  {
    std::ofstream out{json_path};
    out << "{\n  \"bench\": \"world_scale\",\n";
    if (const auto manifest = util::journal::Journal::global().manifest()) {
      out << "  \"manifest\": " << util::journal::manifest_json(*manifest) << ",\n";
    }
    out << "  \"threads\": " << pool_threads << ",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"compare\": {\n"
        << "    \"devices\": " << compare_devices << ",\n"
        << "    \"compact\": {\"build_seconds\": " << compact.build_seconds
        << ", \"build_rss_delta_bytes\": " << compact.build_rss_delta
        << ", \"peak_rss_bytes\": " << compact_peak << ", \"rows\": " << compact.rows
        << ", \"csv_hash\": \"" << hex64(compact.hash) << "\"},\n"
        << "    \"legacy\": {\"build_seconds\": " << legacy.build_seconds
        << ", \"build_rss_delta_bytes\": " << legacy.build_rss_delta
        << ", \"peak_rss_bytes\": " << legacy_peak << ", \"rows\": " << legacy.rows
        << ", \"csv_hash\": \"" << hex64(legacy.hash) << "\"},\n"
        << "    \"peak_ratio\": " << peak_ratio << ",\n"
        << "    \"build_rss_delta_ratio\": " << delta_ratio << ",\n"
        << "    \"byte_identical\": " << (compact.hash == legacy.hash ? "true" : "false")
        << "\n  },\n"
        << "  \"tiers\": [\n";
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      const BuildSweep& t = tiers[i];
      out << "    {\"devices\": " << t.devices << ", \"ptr_records\": " << t.ptrs
          << ", \"build_seconds\": " << t.build_seconds
          << ", \"build_rss_delta_bytes\": " << t.build_rss_delta
          << ", \"sweep_seconds\": " << t.sweep_seconds << ", \"rows\": " << t.rows
          << ", \"rows_per_sec\": " << (t.sweep_seconds > 0 ? t.rows / t.sweep_seconds : 0.0)
          << ", \"csv_hash\": \"" << hex64(t.hash) << "\", \"csv_hash_serial\": \""
          << hex64(serial_hashes[i]) << "\", \"lazy_population\": "
          << (t.lazy_ok ? "true" : "false") << "}" << (i + 1 < tiers.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"peak_rss_bytes\": " << final_peak << "\n}\n";
  }
  std::printf("\nwrote %s\n", json_path.c_str());
  rdns::bench::write_metrics_snapshot(json_path);
  return checks.exit_code();
}
