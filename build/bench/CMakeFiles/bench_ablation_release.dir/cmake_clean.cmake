file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_release.dir/bench_ablation_release.cpp.o"
  "CMakeFiles/bench_ablation_release.dir/bench_ablation_release.cpp.o.d"
  "bench_ablation_release"
  "bench_ablation_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
