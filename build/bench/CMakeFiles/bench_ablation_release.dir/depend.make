# Empty dependencies file for bench_ablation_release.
# This may be replaced when dependencies are built.
