file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_crossover.dir/bench_fig10_crossover.cpp.o"
  "CMakeFiles/bench_fig10_crossover.dir/bench_fig10_crossover.cpp.o.d"
  "bench_fig10_crossover"
  "bench_fig10_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
