# Empty compiler generated dependencies file for bench_fig10_crossover.
# This may be replaced when dependencies are built.
