file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_heist.dir/bench_fig11_heist.cpp.o"
  "CMakeFiles/bench_fig11_heist.dir/bench_fig11_heist.cpp.o.d"
  "bench_fig11_heist"
  "bench_fig11_heist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_heist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
