# Empty dependencies file for bench_fig11_heist.
# This may be replaced when dependencies are built.
