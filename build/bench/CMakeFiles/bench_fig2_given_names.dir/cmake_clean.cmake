file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_given_names.dir/bench_fig2_given_names.cpp.o"
  "CMakeFiles/bench_fig2_given_names.dir/bench_fig2_given_names.cpp.o.d"
  "bench_fig2_given_names"
  "bench_fig2_given_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_given_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
