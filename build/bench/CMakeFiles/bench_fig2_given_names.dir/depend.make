# Empty dependencies file for bench_fig2_given_names.
# This may be replaced when dependencies are built.
