file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_device_terms.dir/bench_fig3_device_terms.cpp.o"
  "CMakeFiles/bench_fig3_device_terms.dir/bench_fig3_device_terms.cpp.o.d"
  "bench_fig3_device_terms"
  "bench_fig3_device_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_device_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
