# Empty dependencies file for bench_fig3_device_terms.
# This may be replaced when dependencies are built.
