# Empty compiler generated dependencies file for bench_fig6_dns_errors.
# This may be replaced when dependencies are built.
