file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lingering.dir/bench_fig7_lingering.cpp.o"
  "CMakeFiles/bench_fig7_lingering.dir/bench_fig7_lingering.cpp.o.d"
  "bench_fig7_lingering"
  "bench_fig7_lingering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lingering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
