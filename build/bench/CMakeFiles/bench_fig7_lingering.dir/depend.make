# Empty dependencies file for bench_fig7_lingering.
# This may be replaced when dependencies are built.
