file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_brian.dir/bench_fig8_brian.cpp.o"
  "CMakeFiles/bench_fig8_brian.dir/bench_fig8_brian.cpp.o.d"
  "bench_fig8_brian"
  "bench_fig8_brian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_brian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
