file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_covid.dir/bench_fig9_covid.cpp.o"
  "CMakeFiles/bench_fig9_covid.dir/bench_fig9_covid.cpp.o.d"
  "bench_fig9_covid"
  "bench_fig9_covid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_covid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
