file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_backoff.dir/bench_table2_backoff.cpp.o"
  "CMakeFiles/bench_table2_backoff.dir/bench_table2_backoff.cpp.o.d"
  "bench_table2_backoff"
  "bench_table2_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
