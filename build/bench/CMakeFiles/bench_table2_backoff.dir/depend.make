# Empty dependencies file for bench_table2_backoff.
# This may be replaced when dependencies are built.
