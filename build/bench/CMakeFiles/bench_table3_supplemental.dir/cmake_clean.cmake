file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_supplemental.dir/bench_table3_supplemental.cpp.o"
  "CMakeFiles/bench_table3_supplemental.dir/bench_table3_supplemental.cpp.o.d"
  "bench_table3_supplemental"
  "bench_table3_supplemental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_supplemental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
