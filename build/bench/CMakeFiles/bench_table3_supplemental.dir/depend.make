# Empty dependencies file for bench_table3_supplemental.
# This may be replaced when dependencies are built.
