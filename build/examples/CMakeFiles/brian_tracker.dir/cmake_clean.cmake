file(REMOVE_RECURSE
  "CMakeFiles/brian_tracker.dir/brian_tracker.cpp.o"
  "CMakeFiles/brian_tracker.dir/brian_tracker.cpp.o.d"
  "brian_tracker"
  "brian_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brian_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
