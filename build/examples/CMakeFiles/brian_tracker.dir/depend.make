# Empty dependencies file for brian_tracker.
# This may be replaced when dependencies are built.
