file(REMOVE_RECURSE
  "CMakeFiles/campus_tracker.dir/campus_tracker.cpp.o"
  "CMakeFiles/campus_tracker.dir/campus_tracker.cpp.o.d"
  "campus_tracker"
  "campus_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
