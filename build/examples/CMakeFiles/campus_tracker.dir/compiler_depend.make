# Empty compiler generated dependencies file for campus_tracker.
# This may be replaced when dependencies are built.
