file(REMOVE_RECURSE
  "CMakeFiles/heist_planner.dir/heist_planner.cpp.o"
  "CMakeFiles/heist_planner.dir/heist_planner.cpp.o.d"
  "heist_planner"
  "heist_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heist_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
