# Empty dependencies file for heist_planner.
# This may be replaced when dependencies are built.
