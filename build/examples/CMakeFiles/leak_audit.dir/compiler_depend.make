# Empty compiler generated dependencies file for leak_audit.
# This may be replaced when dependencies are built.
