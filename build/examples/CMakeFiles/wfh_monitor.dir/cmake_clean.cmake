file(REMOVE_RECURSE
  "CMakeFiles/wfh_monitor.dir/wfh_monitor.cpp.o"
  "CMakeFiles/wfh_monitor.dir/wfh_monitor.cpp.o.d"
  "wfh_monitor"
  "wfh_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfh_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
