# Empty compiler generated dependencies file for wfh_monitor.
# This may be replaced when dependencies are built.
