file(REMOVE_RECURSE
  "CMakeFiles/zone_audit.dir/zone_audit.cpp.o"
  "CMakeFiles/zone_audit.dir/zone_audit.cpp.o.d"
  "zone_audit"
  "zone_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
