
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/CMakeFiles/rdns_core.dir/core/classify.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/classify.cpp.o.d"
  "/root/repo/src/core/cooccur.cpp" "src/CMakeFiles/rdns_core.dir/core/cooccur.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/cooccur.cpp.o.d"
  "/root/repo/src/core/dynamicity.cpp" "src/CMakeFiles/rdns_core.dir/core/dynamicity.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/dynamicity.cpp.o.d"
  "/root/repo/src/core/geotrack.cpp" "src/CMakeFiles/rdns_core.dir/core/geotrack.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/geotrack.cpp.o.d"
  "/root/repo/src/core/heist.cpp" "src/CMakeFiles/rdns_core.dir/core/heist.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/heist.cpp.o.d"
  "/root/repo/src/core/longitudinal.cpp" "src/CMakeFiles/rdns_core.dir/core/longitudinal.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/longitudinal.cpp.o.d"
  "/root/repo/src/core/mitigation.cpp" "src/CMakeFiles/rdns_core.dir/core/mitigation.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/mitigation.cpp.o.d"
  "/root/repo/src/core/names.cpp" "src/CMakeFiles/rdns_core.dir/core/names.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/names.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/rdns_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rdns_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/terms.cpp" "src/CMakeFiles/rdns_core.dir/core/terms.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/terms.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/CMakeFiles/rdns_core.dir/core/timing.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/timing.cpp.o.d"
  "/root/repo/src/core/tracking.cpp" "src/CMakeFiles/rdns_core.dir/core/tracking.cpp.o" "gcc" "src/CMakeFiles/rdns_core.dir/core/tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_dns.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
