file(REMOVE_RECURSE
  "CMakeFiles/rdns_core.dir/core/classify.cpp.o"
  "CMakeFiles/rdns_core.dir/core/classify.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/cooccur.cpp.o"
  "CMakeFiles/rdns_core.dir/core/cooccur.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/dynamicity.cpp.o"
  "CMakeFiles/rdns_core.dir/core/dynamicity.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/geotrack.cpp.o"
  "CMakeFiles/rdns_core.dir/core/geotrack.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/heist.cpp.o"
  "CMakeFiles/rdns_core.dir/core/heist.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/longitudinal.cpp.o"
  "CMakeFiles/rdns_core.dir/core/longitudinal.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/mitigation.cpp.o"
  "CMakeFiles/rdns_core.dir/core/mitigation.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/names.cpp.o"
  "CMakeFiles/rdns_core.dir/core/names.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/rdns_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/report.cpp.o"
  "CMakeFiles/rdns_core.dir/core/report.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/terms.cpp.o"
  "CMakeFiles/rdns_core.dir/core/terms.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/timing.cpp.o"
  "CMakeFiles/rdns_core.dir/core/timing.cpp.o.d"
  "CMakeFiles/rdns_core.dir/core/tracking.cpp.o"
  "CMakeFiles/rdns_core.dir/core/tracking.cpp.o.d"
  "librdns_core.a"
  "librdns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
