file(REMOVE_RECURSE
  "librdns_core.a"
)
