# Empty dependencies file for rdns_core.
# This may be replaced when dependencies are built.
