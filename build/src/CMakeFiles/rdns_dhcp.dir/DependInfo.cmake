
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhcp/client.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/client.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/client.cpp.o.d"
  "/root/repo/src/dhcp/ddns.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/ddns.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/ddns.cpp.o.d"
  "/root/repo/src/dhcp/lease.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/lease.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/lease.cpp.o.d"
  "/root/repo/src/dhcp/message.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/message.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/message.cpp.o.d"
  "/root/repo/src/dhcp/options.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/options.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/options.cpp.o.d"
  "/root/repo/src/dhcp/pool.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/pool.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/pool.cpp.o.d"
  "/root/repo/src/dhcp/server.cpp" "src/CMakeFiles/rdns_dhcp.dir/dhcp/server.cpp.o" "gcc" "src/CMakeFiles/rdns_dhcp.dir/dhcp/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
