file(REMOVE_RECURSE
  "CMakeFiles/rdns_dhcp.dir/dhcp/client.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/client.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/ddns.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/ddns.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/lease.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/lease.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/message.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/message.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/options.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/options.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/pool.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/pool.cpp.o.d"
  "CMakeFiles/rdns_dhcp.dir/dhcp/server.cpp.o"
  "CMakeFiles/rdns_dhcp.dir/dhcp/server.cpp.o.d"
  "librdns_dhcp.a"
  "librdns_dhcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_dhcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
