file(REMOVE_RECURSE
  "librdns_dhcp.a"
)
