# Empty dependencies file for rdns_dhcp.
# This may be replaced when dependencies are built.
