
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/cache.cpp" "src/CMakeFiles/rdns_dns.dir/dns/cache.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/cache.cpp.o.d"
  "/root/repo/src/dns/message.cpp" "src/CMakeFiles/rdns_dns.dir/dns/message.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/message.cpp.o.d"
  "/root/repo/src/dns/name.cpp" "src/CMakeFiles/rdns_dns.dir/dns/name.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/name.cpp.o.d"
  "/root/repo/src/dns/resolver.cpp" "src/CMakeFiles/rdns_dns.dir/dns/resolver.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/resolver.cpp.o.d"
  "/root/repo/src/dns/rr.cpp" "src/CMakeFiles/rdns_dns.dir/dns/rr.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/rr.cpp.o.d"
  "/root/repo/src/dns/server.cpp" "src/CMakeFiles/rdns_dns.dir/dns/server.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/server.cpp.o.d"
  "/root/repo/src/dns/update.cpp" "src/CMakeFiles/rdns_dns.dir/dns/update.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/update.cpp.o.d"
  "/root/repo/src/dns/wire.cpp" "src/CMakeFiles/rdns_dns.dir/dns/wire.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/wire.cpp.o.d"
  "/root/repo/src/dns/zone.cpp" "src/CMakeFiles/rdns_dns.dir/dns/zone.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/zone.cpp.o.d"
  "/root/repo/src/dns/zonefile.cpp" "src/CMakeFiles/rdns_dns.dir/dns/zonefile.cpp.o" "gcc" "src/CMakeFiles/rdns_dns.dir/dns/zonefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
