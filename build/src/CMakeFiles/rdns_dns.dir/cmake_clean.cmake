file(REMOVE_RECURSE
  "CMakeFiles/rdns_dns.dir/dns/cache.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/cache.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/message.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/message.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/name.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/name.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/resolver.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/resolver.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/rr.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/rr.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/server.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/server.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/update.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/update.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/wire.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/wire.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/zone.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/zone.cpp.o.d"
  "CMakeFiles/rdns_dns.dir/dns/zonefile.cpp.o"
  "CMakeFiles/rdns_dns.dir/dns/zonefile.cpp.o.d"
  "librdns_dns.a"
  "librdns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
