file(REMOVE_RECURSE
  "librdns_dns.a"
)
