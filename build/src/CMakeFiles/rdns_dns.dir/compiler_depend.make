# Empty compiler generated dependencies file for rdns_dns.
# This may be replaced when dependencies are built.
