
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arpa.cpp" "src/CMakeFiles/rdns_net.dir/net/arpa.cpp.o" "gcc" "src/CMakeFiles/rdns_net.dir/net/arpa.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/rdns_net.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/rdns_net.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/rdns_net.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/rdns_net.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/CMakeFiles/rdns_net.dir/net/prefix.cpp.o" "gcc" "src/CMakeFiles/rdns_net.dir/net/prefix.cpp.o.d"
  "/root/repo/src/net/prefix_set.cpp" "src/CMakeFiles/rdns_net.dir/net/prefix_set.cpp.o" "gcc" "src/CMakeFiles/rdns_net.dir/net/prefix_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
