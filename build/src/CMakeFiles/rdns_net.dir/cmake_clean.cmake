file(REMOVE_RECURSE
  "CMakeFiles/rdns_net.dir/net/arpa.cpp.o"
  "CMakeFiles/rdns_net.dir/net/arpa.cpp.o.d"
  "CMakeFiles/rdns_net.dir/net/ipv4.cpp.o"
  "CMakeFiles/rdns_net.dir/net/ipv4.cpp.o.d"
  "CMakeFiles/rdns_net.dir/net/mac.cpp.o"
  "CMakeFiles/rdns_net.dir/net/mac.cpp.o.d"
  "CMakeFiles/rdns_net.dir/net/prefix.cpp.o"
  "CMakeFiles/rdns_net.dir/net/prefix.cpp.o.d"
  "CMakeFiles/rdns_net.dir/net/prefix_set.cpp.o"
  "CMakeFiles/rdns_net.dir/net/prefix_set.cpp.o.d"
  "librdns_net.a"
  "librdns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
