file(REMOVE_RECURSE
  "librdns_net.a"
)
