# Empty compiler generated dependencies file for rdns_net.
# This may be replaced when dependencies are built.
