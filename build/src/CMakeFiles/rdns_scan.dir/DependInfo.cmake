
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/campaign.cpp" "src/CMakeFiles/rdns_scan.dir/scan/campaign.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/campaign.cpp.o.d"
  "/root/repo/src/scan/csv_replay.cpp" "src/CMakeFiles/rdns_scan.dir/scan/csv_replay.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/csv_replay.cpp.o.d"
  "/root/repo/src/scan/icmp.cpp" "src/CMakeFiles/rdns_scan.dir/scan/icmp.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/icmp.cpp.o.d"
  "/root/repo/src/scan/permutation.cpp" "src/CMakeFiles/rdns_scan.dir/scan/permutation.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/permutation.cpp.o.d"
  "/root/repo/src/scan/rdns_snapshot.cpp" "src/CMakeFiles/rdns_scan.dir/scan/rdns_snapshot.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/rdns_snapshot.cpp.o.d"
  "/root/repo/src/scan/reactive.cpp" "src/CMakeFiles/rdns_scan.dir/scan/reactive.cpp.o" "gcc" "src/CMakeFiles/rdns_scan.dir/scan/reactive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_dhcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
