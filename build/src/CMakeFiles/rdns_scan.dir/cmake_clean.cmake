file(REMOVE_RECURSE
  "CMakeFiles/rdns_scan.dir/scan/campaign.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/campaign.cpp.o.d"
  "CMakeFiles/rdns_scan.dir/scan/csv_replay.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/csv_replay.cpp.o.d"
  "CMakeFiles/rdns_scan.dir/scan/icmp.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/icmp.cpp.o.d"
  "CMakeFiles/rdns_scan.dir/scan/permutation.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/permutation.cpp.o.d"
  "CMakeFiles/rdns_scan.dir/scan/rdns_snapshot.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/rdns_snapshot.cpp.o.d"
  "CMakeFiles/rdns_scan.dir/scan/reactive.cpp.o"
  "CMakeFiles/rdns_scan.dir/scan/reactive.cpp.o.d"
  "librdns_scan.a"
  "librdns_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
