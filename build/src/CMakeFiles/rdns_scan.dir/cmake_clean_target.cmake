file(REMOVE_RECURSE
  "librdns_scan.a"
)
