# Empty dependencies file for rdns_scan.
# This may be replaced when dependencies are built.
