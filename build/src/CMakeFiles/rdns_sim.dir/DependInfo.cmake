
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/rdns_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/rdns_sim.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/namegen.cpp" "src/CMakeFiles/rdns_sim.dir/sim/namegen.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/namegen.cpp.o.d"
  "/root/repo/src/sim/org.cpp" "src/CMakeFiles/rdns_sim.dir/sim/org.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/org.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/CMakeFiles/rdns_sim.dir/sim/policy.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/policy.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/rdns_sim.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/rdns_sim.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/rdns_sim.dir/sim/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rdns_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
