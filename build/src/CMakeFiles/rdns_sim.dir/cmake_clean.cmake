file(REMOVE_RECURSE
  "CMakeFiles/rdns_sim.dir/sim/device.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/namegen.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/namegen.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/org.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/org.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/policy.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/policy.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/schedule.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/schedule.cpp.o.d"
  "CMakeFiles/rdns_sim.dir/sim/world.cpp.o"
  "CMakeFiles/rdns_sim.dir/sim/world.cpp.o.d"
  "librdns_sim.a"
  "librdns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
