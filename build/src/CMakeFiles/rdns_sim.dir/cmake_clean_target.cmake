file(REMOVE_RECURSE
  "librdns_sim.a"
)
