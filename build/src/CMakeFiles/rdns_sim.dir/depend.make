# Empty dependencies file for rdns_sim.
# This may be replaced when dependencies are built.
