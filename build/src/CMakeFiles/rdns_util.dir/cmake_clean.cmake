file(REMOVE_RECURSE
  "CMakeFiles/rdns_util.dir/util/ascii_chart.cpp.o"
  "CMakeFiles/rdns_util.dir/util/ascii_chart.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/cli.cpp.o"
  "CMakeFiles/rdns_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/csv.cpp.o"
  "CMakeFiles/rdns_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/log.cpp.o"
  "CMakeFiles/rdns_util.dir/util/log.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/rng.cpp.o"
  "CMakeFiles/rdns_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/stats.cpp.o"
  "CMakeFiles/rdns_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/strings.cpp.o"
  "CMakeFiles/rdns_util.dir/util/strings.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/time.cpp.o"
  "CMakeFiles/rdns_util.dir/util/time.cpp.o.d"
  "CMakeFiles/rdns_util.dir/util/token_bucket.cpp.o"
  "CMakeFiles/rdns_util.dir/util/token_bucket.cpp.o.d"
  "librdns_util.a"
  "librdns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
