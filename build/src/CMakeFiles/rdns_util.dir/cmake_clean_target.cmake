file(REMOVE_RECURSE
  "librdns_util.a"
)
