# Empty compiler generated dependencies file for rdns_util.
# This may be replaced when dependencies are built.
