file(REMOVE_RECURSE
  "CMakeFiles/test_core_dynamicity.dir/test_core_dynamicity.cpp.o"
  "CMakeFiles/test_core_dynamicity.dir/test_core_dynamicity.cpp.o.d"
  "test_core_dynamicity"
  "test_core_dynamicity.pdb"
  "test_core_dynamicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_dynamicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
