# Empty dependencies file for test_core_dynamicity.
# This may be replaced when dependencies are built.
