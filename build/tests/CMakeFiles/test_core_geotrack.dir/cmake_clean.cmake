file(REMOVE_RECURSE
  "CMakeFiles/test_core_geotrack.dir/test_core_geotrack.cpp.o"
  "CMakeFiles/test_core_geotrack.dir/test_core_geotrack.cpp.o.d"
  "test_core_geotrack"
  "test_core_geotrack.pdb"
  "test_core_geotrack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_geotrack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
