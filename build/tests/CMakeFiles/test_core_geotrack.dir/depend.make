# Empty dependencies file for test_core_geotrack.
# This may be replaced when dependencies are built.
