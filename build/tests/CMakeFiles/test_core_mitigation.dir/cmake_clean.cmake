file(REMOVE_RECURSE
  "CMakeFiles/test_core_mitigation.dir/test_core_mitigation.cpp.o"
  "CMakeFiles/test_core_mitigation.dir/test_core_mitigation.cpp.o.d"
  "test_core_mitigation"
  "test_core_mitigation.pdb"
  "test_core_mitigation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
