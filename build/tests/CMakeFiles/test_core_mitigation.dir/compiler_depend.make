# Empty compiler generated dependencies file for test_core_mitigation.
# This may be replaced when dependencies are built.
