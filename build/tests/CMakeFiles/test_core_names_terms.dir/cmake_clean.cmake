file(REMOVE_RECURSE
  "CMakeFiles/test_core_names_terms.dir/test_core_names_terms.cpp.o"
  "CMakeFiles/test_core_names_terms.dir/test_core_names_terms.cpp.o.d"
  "test_core_names_terms"
  "test_core_names_terms.pdb"
  "test_core_names_terms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_names_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
