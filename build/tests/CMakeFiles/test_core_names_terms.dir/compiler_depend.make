# Empty compiler generated dependencies file for test_core_names_terms.
# This may be replaced when dependencies are built.
