file(REMOVE_RECURSE
  "CMakeFiles/test_core_timing_tracking.dir/test_core_timing_tracking.cpp.o"
  "CMakeFiles/test_core_timing_tracking.dir/test_core_timing_tracking.cpp.o.d"
  "test_core_timing_tracking"
  "test_core_timing_tracking.pdb"
  "test_core_timing_tracking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_timing_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
