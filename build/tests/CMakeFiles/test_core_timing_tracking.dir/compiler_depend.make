# Empty compiler generated dependencies file for test_core_timing_tracking.
# This may be replaced when dependencies are built.
