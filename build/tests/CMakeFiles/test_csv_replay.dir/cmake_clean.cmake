file(REMOVE_RECURSE
  "CMakeFiles/test_csv_replay.dir/test_csv_replay.cpp.o"
  "CMakeFiles/test_csv_replay.dir/test_csv_replay.cpp.o.d"
  "test_csv_replay"
  "test_csv_replay.pdb"
  "test_csv_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
