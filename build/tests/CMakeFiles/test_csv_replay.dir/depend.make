# Empty dependencies file for test_csv_replay.
# This may be replaced when dependencies are built.
