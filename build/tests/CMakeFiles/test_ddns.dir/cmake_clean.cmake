file(REMOVE_RECURSE
  "CMakeFiles/test_ddns.dir/test_ddns.cpp.o"
  "CMakeFiles/test_ddns.dir/test_ddns.cpp.o.d"
  "test_ddns"
  "test_ddns.pdb"
  "test_ddns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
