# Empty compiler generated dependencies file for test_ddns.
# This may be replaced when dependencies are built.
