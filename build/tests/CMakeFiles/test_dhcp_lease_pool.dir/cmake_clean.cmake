file(REMOVE_RECURSE
  "CMakeFiles/test_dhcp_lease_pool.dir/test_dhcp_lease_pool.cpp.o"
  "CMakeFiles/test_dhcp_lease_pool.dir/test_dhcp_lease_pool.cpp.o.d"
  "test_dhcp_lease_pool"
  "test_dhcp_lease_pool.pdb"
  "test_dhcp_lease_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dhcp_lease_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
