# Empty dependencies file for test_dhcp_lease_pool.
# This may be replaced when dependencies are built.
