file(REMOVE_RECURSE
  "CMakeFiles/test_dhcp_message.dir/test_dhcp_message.cpp.o"
  "CMakeFiles/test_dhcp_message.dir/test_dhcp_message.cpp.o.d"
  "test_dhcp_message"
  "test_dhcp_message.pdb"
  "test_dhcp_message[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dhcp_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
