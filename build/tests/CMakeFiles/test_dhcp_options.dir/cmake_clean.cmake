file(REMOVE_RECURSE
  "CMakeFiles/test_dhcp_options.dir/test_dhcp_options.cpp.o"
  "CMakeFiles/test_dhcp_options.dir/test_dhcp_options.cpp.o.d"
  "test_dhcp_options"
  "test_dhcp_options.pdb"
  "test_dhcp_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dhcp_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
