# Empty dependencies file for test_dhcp_server_client.
# This may be replaced when dependencies are built.
