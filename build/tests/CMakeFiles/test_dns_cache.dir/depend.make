# Empty dependencies file for test_dns_cache.
# This may be replaced when dependencies are built.
