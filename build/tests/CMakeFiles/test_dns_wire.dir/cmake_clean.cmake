file(REMOVE_RECURSE
  "CMakeFiles/test_dns_wire.dir/test_dns_wire.cpp.o"
  "CMakeFiles/test_dns_wire.dir/test_dns_wire.cpp.o.d"
  "test_dns_wire"
  "test_dns_wire.pdb"
  "test_dns_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
