# Empty compiler generated dependencies file for test_dns_wire.
# This may be replaced when dependencies are built.
