file(REMOVE_RECURSE
  "CMakeFiles/test_dns_zone_server.dir/test_dns_zone_server.cpp.o"
  "CMakeFiles/test_dns_zone_server.dir/test_dns_zone_server.cpp.o.d"
  "test_dns_zone_server"
  "test_dns_zone_server.pdb"
  "test_dns_zone_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_zone_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
