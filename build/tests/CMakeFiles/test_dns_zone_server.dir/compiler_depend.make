# Empty compiler generated dependencies file for test_dns_zone_server.
# This may be replaced when dependencies are built.
