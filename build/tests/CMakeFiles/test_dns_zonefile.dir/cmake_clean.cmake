file(REMOVE_RECURSE
  "CMakeFiles/test_dns_zonefile.dir/test_dns_zonefile.cpp.o"
  "CMakeFiles/test_dns_zonefile.dir/test_dns_zonefile.cpp.o.d"
  "test_dns_zonefile"
  "test_dns_zonefile.pdb"
  "test_dns_zonefile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns_zonefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
