# Empty dependencies file for test_dns_zonefile.
# This may be replaced when dependencies are built.
