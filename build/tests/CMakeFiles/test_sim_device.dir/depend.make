# Empty dependencies file for test_sim_device.
# This may be replaced when dependencies are built.
