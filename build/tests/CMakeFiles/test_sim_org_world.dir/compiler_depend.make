# Empty compiler generated dependencies file for test_sim_org_world.
# This may be replaced when dependencies are built.
