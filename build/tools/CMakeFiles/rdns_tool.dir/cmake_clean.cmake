file(REMOVE_RECURSE
  "CMakeFiles/rdns_tool.dir/rdns_tool.cpp.o"
  "CMakeFiles/rdns_tool.dir/rdns_tool.cpp.o.d"
  "rdns_tool"
  "rdns_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdns_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
