# Empty dependencies file for rdns_tool.
# This may be replaced when dependencies are built.
