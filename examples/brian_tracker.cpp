/// \file brian_tracker.cpp
/// Case study §7.1 "Life of Brian(s)" as a runnable scenario: follow
/// devices whose dynamically published hostnames contain a given name
/// across two weeks on a campus network, using nothing but outside
/// measurements (hourly ICMP + reactive rDNS).
///
/// Usage: brian_tracker [given-name]   (default: brian)

#include <cstdio>
#include <string>

#include "core/pipeline.hpp"
#include "core/tracking.hpp"
#include "scan/campaign.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace rdns;
  const std::string needle = argc > 1 ? argv[1] : "brian";

  std::printf("Tracking devices named after '%s' on Academic-A...\n\n", needle.c_str());

  core::WorldScale scale;
  scale.population = 0.25;
  auto world = core::make_paper_world(/*seed=*/123, scale);
  const util::CivilDate from{2021, 11, 15};
  const util::CivilDate to{2021, 11, 30};  // covers Thanksgiving + Cyber Monday
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const sim::Organization* target = world->org_by_name("Academic-A");
  scan::SupplementalCampaign campaign{*world,
                                      {{"Academic-A", target->spec().measurement_targets}},
                                      scan::CampaignWindow{from, to}};
  campaign.run();

  const auto segments =
      core::segments_matching(campaign.engine().groups(), needle, "Academic-A");
  if (segments.empty()) {
    std::printf("No hostnames containing '%s' observed. Try 'brian' or another top-50 "
                "given name.\n",
                needle.c_str());
    return 0;
  }

  std::printf("Observed %zu presence periods across these hostnames:\n", segments.size());
  const auto first_seen = core::first_seen_dates(segments);
  for (const auto& [hostname, date] : first_seen) {
    std::printf("  %-28s first seen %s\n", hostname.c_str(),
                util::format_date(date).c_str());
  }

  const auto grid = core::build_weekly_grid(segments, from, 3, 12);
  for (std::size_t week = 0; week < grid.weeks.size(); ++week) {
    std::printf("\nWeek of %s (Mon..Sun, 2h slots; glyph = IP address):\n",
                util::format_date(
                    util::add_days(grid.first_monday, static_cast<std::int64_t>(week) * 7))
                    .c_str());
    std::printf("%s", util::render_presence_grid(grid.hostnames, grid.weeks[week], "").c_str());
  }

  std::printf(
      "\nEverything above was inferred from PUBLIC reverse DNS (plus pings).\n"
      "Anyone on the Internet can do this — that is the paper's point.\n");
  return 0;
}
