/// \file campus_tracker.cpp
/// The §8 escalation demonstrated: with building-level subnet knowledge, an
/// outside observer turns reverse-DNS churn into a MOVEMENT TRACE — a
/// person followed around campus as they go from lecture to lecture,
/// without a single packet ever touching their device beyond probes.
///
/// Usage: campus_tracker [given-name]   (default: emma)

#include <cstdio>
#include <string>

#include "core/geotrack.hpp"
#include "core/pipeline.hpp"
#include "scan/campaign.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace rdns;
  const std::string needle = argc > 1 ? argv[1] : "emma";

  std::printf("Geotemporal tracking on Academic-A (building-level subnets known)...\n\n");

  core::WorldScale scale;
  scale.population = 0.25;
  auto world = core::make_paper_world(/*seed=*/202, scale);
  const util::CivilDate from{2021, 11, 1};
  const util::CivilDate to{2021, 11, 5};
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  const sim::Organization* campus = world->org_by_name("Academic-A");
  scan::SupplementalCampaign campaign{*world,
                                      {{"Academic-A", campus->spec().measurement_targets}},
                                      scan::CampaignWindow{from, to}};
  campaign.run();

  // Building knowledge straight from the numbering plan (the paper used a
  // posteriori knowledge; Zhang et al. show it can be inferred remotely).
  core::BuildingMap buildings;
  for (const auto& segment : campus->spec().segments) {
    buildings.add(segment.prefix, segment.label);
  }

  const auto traces =
      core::build_traces(campaign.engine().groups(), buildings, needle);
  if (traces.empty()) {
    std::printf("no '%s'-named devices observed this week; try another top-50 name\n",
                needle.c_str());
    return 0;
  }

  for (const auto& trace : traces) {
    std::printf("%s — %zu presence periods, %zu buildings, %zu transitions\n",
                trace.hostname.c_str(), trace.visits.size(), trace.distinct_buildings(),
                trace.transitions());
    for (const auto& visit : trace.visits) {
      std::printf("  %s .. %s  %-14s (%s)\n",
                  util::format_date_time(visit.from).c_str(),
                  util::format_date_time(visit.to).substr(11).c_str(),
                  visit.building.c_str(), visit.address.to_string().c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "Every row above was derived from publicly queryable reverse DNS.\n"
      "This is the paper's §8 warning realized: numbering plans + dynamic\n"
      "PTR records = building-level tracking from anywhere on the Internet.\n");
  return 0;
}
