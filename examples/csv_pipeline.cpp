/// \file csv_pipeline.cpp
/// Run the Section 4/5 identification pipeline from recorded CSV sweep data
/// — the workflow for real OpenINTEL/Rapid7-style exports. The example
/// first records a campaign to CSV (standing in for a downloaded data set),
/// then analyzes purely from the CSV, never touching the simulator again.
///
/// Usage: csv_pipeline [sweeps.csv]
/// With an argument, the given CSV of (date,ip,ptr) rows is analyzed.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/pipeline.hpp"
#include "scan/csv_replay.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace rdns;

  std::stringstream csv;
  if (argc > 1) {
    std::ifstream in{argv[1]};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    csv << in.rdbuf();
    std::printf("Analyzing recorded sweeps from %s ...\n", argv[1]);
  } else {
    std::printf("Recording a synthetic four-week sweep campaign to CSV ...\n");
    core::WorldScale scale;
    scale.population = 0.4;
    auto world = core::make_internet_world(2023, 24, scale);
    world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 1, 29});
    scan::CsvSnapshotSink sink{csv};
    scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
    const auto stats =
        driver.run(util::CivilDate{2021, 1, 2}, util::CivilDate{2021, 1, 28}, sink);
    std::printf("recorded %s rows over %llu sweeps\n\n",
                util::with_commas(static_cast<std::int64_t>(stats.total_rows)).c_str(),
                static_cast<unsigned long long>(stats.sweeps));
  }

  // From here on: CSV-only analysis, exactly what one would run on a real
  // data set.
  core::DynamicityDetector detector;
  core::PtrCorpus corpus;
  struct Tee final : scan::SnapshotSink {
    std::vector<scan::SnapshotSink*> sinks;
    void on_row(const util::CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const util::CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  } tee;
  tee.sinks = {&detector, &corpus};
  const auto replay = scan::replay_csv(csv, tee);
  std::printf("replayed %s rows (%llu skipped) across %llu sweep dates\n",
              util::with_commas(static_cast<std::int64_t>(replay.rows)).c_str(),
              static_cast<unsigned long long>(replay.skipped),
              static_cast<unsigned long long>(replay.sweeps));

  core::DynamicityConfig dyn;
  dyn.min_days_over = 5;
  const auto dynamicity = detector.analyze(dyn);
  std::printf("/24 blocks seen: %zu, dynamic: %zu\n", dynamicity.total_slash24_seen,
              dynamicity.dynamic_count);

  core::PtrCorpus dynamic_corpus;
  dynamic_corpus.restrict_to(dynamicity.dynamic_blocks());
  for (const auto& [hostname, entry] : corpus.entries()) dynamic_corpus.add_entry(entry);

  core::LeakConfig leak;
  leak.min_unique_names = 20;
  const auto result = core::identify_leaking_networks(dynamic_corpus, leak);
  std::printf("identified leaking networks: %zu\n", result.identified.size());
  for (const auto& suffix : result.identified) {
    const auto& stats = result.suffixes.at(suffix);
    std::printf("  %-36s records=%llu unique-names=%zu type=%s\n", suffix.c_str(),
                static_cast<unsigned long long>(stats.records), stats.unique_names.size(),
                core::to_string(core::classify_suffix(suffix)));
  }
  return 0;
}
