/// \file heist_planner.cpp
/// Case study §7.3 "When to stage a heist?" as a runnable scenario: infer
/// a building's occupancy rhythm from outside, via reverse DNS — even when
/// the network blocks ICMP — and recommend the quietest hour.

#include <cstdio>

#include "core/heist.hpp"
#include "core/pipeline.hpp"
#include "scan/campaign.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rdns;
  std::printf("Planning a (hypothetical!) heist against Academic-A...\n");

  core::WorldScale scale;
  scale.population = 0.25;
  auto world = core::make_paper_world(/*seed=*/321, scale);
  const util::CivilDate from{2021, 11, 1};
  const util::CivilDate to{2021, 11, 7};
  world->start(util::add_days(from, -1), util::add_days(to, 1));

  // The valuables are in an educational building: probe the staff/wifi
  // ranges of Academic-A's numbering plan, not the dorms.
  scan::SupplementalCampaign campaign{
      *world,
      {{"Academic-A",
        {net::Prefix::must_parse("10.10.136.0/21"), net::Prefix::must_parse("10.10.144.0/22")}}},
      scan::CampaignWindow{from, to}};
  campaign.run();

  const auto analysis = core::analyze_heist_window(
      campaign.engine().hourly_activity(), util::to_sim_time(from),
      util::to_sim_time(to) + util::kDay);

  util::Series icmp{"ICMP", {}}, rdns{"rDNS", {}};
  for (const auto v : analysis.icmp_per_hour) icmp.values.push_back(static_cast<double>(v));
  for (const auto v : analysis.rdns_per_hour) rdns.values.push_back(static_cast<double>(v));
  util::ChartOptions opts;
  opts.title = "activity per hour over one week";
  opts.height = 10;
  std::printf("\n%s\n", util::render_line_chart({icmp, rdns}, opts).c_str());

  std::printf("Weekday rDNS activity by hour of day (lower = fewer people):\n");
  std::vector<std::pair<std::string, double>> bars;
  for (int h = 0; h < 24; h += 2) {
    bars.emplace_back(util::format("%02d:00", h),
                      analysis.weekday_profile[static_cast<std::size_t>(h)]);
  }
  util::ChartOptions bar_opts;
  bar_opts.width = 40;
  std::printf("%s\n", util::render_bar_chart(bars, bar_opts).c_str());

  std::printf("=> Quietest weekday hour: %02d:00 (the paper's data hinted at ~6AM)\n\n",
              analysis.quietest_hour);
  std::printf(
      "Note: the same inference works against networks that block ICMP —\n"
      "reverse DNS is queryable by anyone, from anywhere.\n");
  return 0;
}
