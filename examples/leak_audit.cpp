/// \file leak_audit.cpp
/// The defensive scenario (§8): a network operator audits their OWN reverse
/// zones for privacy leaks before an outsider finds them, then compares
/// DDNS policies as mitigations.

#include <cstdio>

#include "core/mitigation.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace rdns;
  std::printf("Auditing reverse zones for privacy leaks (operator view)...\n\n");

  core::WorldScale scale;
  scale.population = 0.3;
  auto world = core::make_paper_world(/*seed=*/777, scale);
  world->start(util::CivilDate{2021, 11, 1}, util::CivilDate{2021, 11, 3});
  // Mid-afternoon: clients are on the network, records are published.
  world->run_until(util::to_sim_time(util::CivilDate{2021, 11, 2}) + 14 * util::kHour);

  for (const char* name : {"Academic-A", "ISP-B"}) {
    const sim::Organization* org = world->org_by_name(name);
    const auto report = core::audit_organization(*org);
    std::printf("=== %s (%s) ===\n", name, sim::to_string(org->type()));
    std::printf("records audited: %llu | findings: %zu | owner-name leaks: %llu | "
                "device-model leaks: %llu\n",
                static_cast<unsigned long long>(report.records_audited),
                report.findings.size(),
                static_cast<unsigned long long>(report.owner_name_leaks),
                static_cast<unsigned long long>(report.device_model_leaks));
    int shown = 0;
    for (const auto& finding : report.findings) {
      if (finding.severity < core::LeakSeverity::OwnerName) continue;
      if (shown++ >= 5) break;
      std::printf("  [%-24s] %-16s %s\n", core::to_string(finding.severity),
                  finding.address.to_string().c_str(), finding.hostname.c_str());
    }
    std::printf("\n");
  }

  std::printf("Mitigation options (per the paper's §8 discussion):\n");
  for (const auto policy :
       {dhcp::DdnsPolicy::CarryOverClientId, dhcp::DdnsPolicy::HashedClientId,
        dhcp::DdnsPolicy::StaticGeneric, dhcp::DdnsPolicy::None}) {
    const auto assessment = core::assess_policy(policy);
    std::printf("- %-22s identifiers-leak=%s dynamics-exposed=%s\n  %s\n",
                dhcp::to_string(policy), assessment.leaks_identifiers ? "YES" : "no",
                assessment.exposes_dynamics ? "YES" : "no", assessment.advice.c_str());
  }
  return 0;
}
