/// \file quickstart.cpp
/// Quickstart: build a small synthetic Internet, run daily rDNS sweeps for
/// a month, and run the paper's identification pipeline (Sections 4-5) to
/// find networks that leak privacy-sensitive client identifiers through
/// reverse DNS.

#include <cstdio>

#include "core/pipeline.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rdns;

  // 1. A synthetic Internet: 24 organizations with a realistic mix of
  //    DDNS policies (carry-over leakers, static-generic, router-only).
  core::WorldScale scale;
  scale.population = 0.5;
  auto world = core::make_internet_world(/*seed=*/42, /*org_count=*/24, scale);
  world->start(util::CivilDate{2021, 1, 1}, util::CivilDate{2021, 2, 7});

  // 2-3. Daily full-space PTR sweeps + the identification pipeline.
  core::PipelineConfig config;
  config.from = util::CivilDate{2021, 1, 2};
  config.to = util::CivilDate{2021, 2, 6};
  config.dynamicity.min_days_over = 5;     // scaled-down window
  config.leak.min_unique_names = 20;       // scaled-down populations
  const core::PipelineReport report = core::run_identification_pipeline(*world, config);

  std::printf("Sweeps: %zu (rows: %s)\n", report.sweeps,
              util::with_commas(static_cast<std::int64_t>(report.sweep_rows)).c_str());
  std::printf("/24 blocks with PTRs: %zu, dynamic: %zu\n",
              report.dynamicity.total_slash24_seen, report.dynamicity.dynamic_count);
  std::printf("Identified leaking networks: %zu\n", report.leaks.identified.size());
  for (const auto& suffix : report.leaks.identified) {
    const auto& stats = report.leaks.suffixes.at(suffix);
    std::printf("  %-32s records=%llu unique-names=%zu ratio=%.2f type=%s\n", suffix.c_str(),
                static_cast<unsigned long long>(stats.records), stats.unique_names.size(),
                stats.ratio(), core::to_string(core::classify_suffix(suffix)));
  }

  std::printf("\nTop given-name matches (filtered):\n");
  int shown = 0;
  for (const auto& [name, count] : report.leaks.filtered_matches_per_name) {
    if (shown++ >= 8) break;
    std::printf("  %-12s %llu\n", name.c_str(), static_cast<unsigned long long>(count));
  }

  std::printf("\nDevice terms co-occurring with names (filtered total: %llu)\n",
              static_cast<unsigned long long>(report.cooccurrence.total_filtered));
  std::printf("World events: joins=%llu leaves=%llu renewals=%llu\n",
              static_cast<unsigned long long>(world->stats().joins),
              static_cast<unsigned long long>(world->stats().leaves),
              static_cast<unsigned long long>(world->stats().renewals));
  return 0;
}
