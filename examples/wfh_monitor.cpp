/// \file wfh_monitor.cpp
/// Case study §7.2 "Working from Home" as a runnable scenario: observe an
/// organization's work-from-home compliance from the outside, using only
/// daily full-space rDNS snapshots (no ICMP, no privileged access).

#include <cstdio>

#include "core/longitudinal.hpp"
#include "core/pipeline.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/ascii_chart.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rdns;
  std::printf("Monitoring pandemic work-from-home dynamics via daily rDNS snapshots...\n");

  core::WorldScale scale;
  scale.population = 0.12;
  auto world = core::make_paper_world(/*seed=*/555, scale, /*dhcp_tick=*/300);
  const util::CivilDate from{2020, 2, 1};
  const util::CivilDate to{2020, 7, 31};
  world->start(from, to);

  // Count daily PTR entries for two networks of interest — one of which
  // (Enterprise-B) blocks ICMP entirely and is still observable this way.
  core::DailyCountSink sink{[&world](net::Ipv4Addr a) -> std::optional<std::string> {
    const sim::Organization* org = world->org_of(a);
    if (org == nullptr) return std::nullopt;
    if (org->name() == "Academic-A" || org->name() == "Enterprise-B") return org->name();
    return std::nullopt;
  }};
  scan::SweepDriver driver{*world, 14, 1, /*second_hour=*/21};
  const auto stats = driver.run(util::add_days(from, 1), to, sink);
  std::printf("ingested %llu daily sweeps\n\n",
              static_cast<unsigned long long>(stats.sweeps));

  std::vector<util::Series> chart;
  for (const auto& [name, counts] : sink.counts()) {
    const auto series = core::percent_of_max(name, counts);
    util::Series line{name, {}};
    for (std::size_t i = 0; i < series.percent.size(); i += 3) {
      line.values.push_back(series.percent[i]);
    }
    chart.push_back(std::move(line));
    std::printf("%-14s max daily entries: %llu\n", name.c_str(),
                static_cast<unsigned long long>(series.max_count));
  }

  util::ChartOptions opts;
  opts.title = "daily rDNS entries as % of max, Feb..Jul 2020 (3-day samples)";
  opts.height = 12;
  std::printf("\n%s\n", util::render_line_chart(chart, opts).c_str());
  std::printf(
      "The mid-March cliff is the first lockdown: employees and students left,\n"
      "their DHCP leases lapsed, and the DDNS coupling withdrew their PTR\n"
      "records — visible to the whole Internet at daily granularity.\n");
  return 0;
}
