/// \file zone_audit.cpp
/// Audit a reverse zone FILE for privacy leaks — the workflow a real
/// operator has: export the zone (dig AXFR / IPAM export) and run this
/// tool, no simulator involved.
///
/// Usage: zone_audit [zone-file]
/// Without an argument, a demonstration zone is audited.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/mitigation.hpp"
#include "dns/zonefile.hpp"
#include "net/arpa.hpp"

namespace {

const char* kDemoZone = R"($ORIGIN 131.10.in-addr.arpa.
$TTL 300
@ IN SOA ns1.university.edu. hostmaster.university.edu. (2021112901 7200 900 1209600 300)
  IN NS ns1.university.edu.
; dynamic client range (DHCP-coupled)
11.4 IN PTR brians-iphone.wifi.university.edu.
12.4 IN PTR emmas-macbook-air.wifi.university.edu.
13.4 IN PTR laptop-4f2k9qx.wifi.university.edu.
14.4 IN PTR host-10-131-4-14.dynamic.university.edu.
; static infrastructure
1.0  IN PTR et-0-0-1.core1.jackson.university.edu.
2.0  IN PTR srv-mail.university.edu.
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace rdns;

  std::string text;
  if (argc > 1) {
    std::ifstream in{argv[1]};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    std::printf("Auditing %s ...\n\n", argv[1]);
  } else {
    text = kDemoZone;
    std::printf("No zone file given; auditing a demonstration reverse zone.\n\n");
  }

  dns::Zone zone = [&] {
    try {
      return dns::parse_zone(text);
    } catch (const dns::ZoneFileError& e) {
      std::fprintf(stderr, "zone file error: %s\n", e.what());
      std::exit(2);
    }
  }();

  core::StreamAuditor auditor;
  zone.for_each([&auditor](const dns::ResourceRecord& rr) {
    const auto* ptr = std::get_if<dns::PtrRdata>(&rr.rdata);
    if (ptr == nullptr) return;
    const auto address = net::from_arpa(rr.name.to_string());
    if (!address) return;
    auditor.inspect(*address, ptr->ptrdname.to_canonical_string());
  });

  const auto& report = auditor.report();
  std::printf("zone:              %s\n", zone.origin().to_canonical_string().c_str());
  std::printf("records audited:   %llu\n",
              static_cast<unsigned long long>(report.records_audited));
  std::printf("findings:          %zu\n", report.findings.size());
  std::printf("owner-name leaks:  %llu\n",
              static_cast<unsigned long long>(report.owner_name_leaks));
  std::printf("device-model leaks:%llu\n\n",
              static_cast<unsigned long long>(report.device_model_leaks));
  for (const auto& finding : report.findings) {
    std::printf("  [%-24s] %-16s %s", core::to_string(finding.severity),
                finding.address.to_string().c_str(), finding.hostname.c_str());
    if (!finding.matched_names.empty()) {
      std::printf("   (name: %s)", finding.matched_names.front().c_str());
    }
    std::printf("\n");
  }
  if (report.clean()) {
    std::printf("No privacy-sensitive identifiers found. Note that dynamically\n"
                "added records still reveal client presence; consider the\n"
                "static-generic policy if that matters for this network.\n");
  } else {
    std::printf("\nRecommendation: block Host Name propagation from DHCP to DNS\n"
                "(see the paper's Section 8 and core/mitigation.hpp).\n");
  }
  return report.clean() ? 0 : 1;
}
