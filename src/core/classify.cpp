#include "core/classify.hpp"

#include "util/strings.hpp"

namespace rdns::core {

const char* to_string(NetworkType t) noexcept {
  switch (t) {
    case NetworkType::Academic: return "academic";
    case NetworkType::Isp: return "isp";
    case NetworkType::Enterprise: return "enterprise";
    case NetworkType::Government: return "government";
    case NetworkType::Other: return "other";
  }
  return "?";
}

NetworkType classify_suffix(const std::string& suffix) {
  using util::contains;
  using util::ends_with;
  const std::string s = util::to_lower(suffix);

  // Regex-equivalent rules from the paper: .edu and .ac => academic,
  // .gov => government.
  if (ends_with(s, ".edu") || contains(s, ".edu.") || contains(s, ".ac.") ||
      ends_with(s, ".ac")) {
    return NetworkType::Academic;
  }
  if (ends_with(s, ".gov") || contains(s, ".gov.")) return NetworkType::Government;

  // Stand-ins for the paper's manual inspection.
  static const char* kAcademicWords[] = {"university", "college", "institute", "school",
                                         "campus", "research"};
  for (const auto* w : kAcademicWords) {
    if (contains(s, w)) return NetworkType::Academic;
  }
  static const char* kIspWords[] = {"isp",   "telecom", "broadband", "cable", "fiber",
                                    "fibre", "dsl",     "wireless",  "net",   "telco",
                                    "communications", "online"};
  for (const auto* w : kIspWords) {
    if (contains(s, w)) return NetworkType::Isp;
  }
  static const char* kEnterpriseWords[] = {"corp", "inc", "gmbh", "llc", "company",
                                           "industries", "solutions", "systems", "tech",
                                           "consulting", "manufacturing"};
  for (const auto* w : kEnterpriseWords) {
    if (contains(s, w)) return NetworkType::Enterprise;
  }
  return NetworkType::Other;
}

double TypeBreakdown::percent(NetworkType t) const noexcept {
  if (total == 0) return 0.0;
  const auto it = counts.find(t);
  return it == counts.end() ? 0.0
                            : 100.0 * static_cast<double>(it->second) /
                                  static_cast<double>(total);
}

TypeBreakdown classify_all(const std::vector<std::string>& suffixes) {
  TypeBreakdown breakdown;
  for (const auto& suffix : suffixes) {
    breakdown.counts[classify_suffix(suffix)] += 1;
    ++breakdown.total;
  }
  return breakdown;
}

}  // namespace rdns::core
