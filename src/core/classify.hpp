#pragma once
/// \file classify.hpp
/// Section 5.2 network-type classification of identified suffixes: regex-
/// style matching for academic (.edu / .ac.) and government (.gov), keyword
/// heuristics standing in for the paper's manual inspection of ISP and
/// enterprise networks, `other` as the fallback.

#include <map>
#include <string>
#include <vector>

namespace rdns::core {

enum class NetworkType : int {
  Academic = 0,
  Isp,
  Enterprise,
  Government,
  Other,
};

[[nodiscard]] const char* to_string(NetworkType t) noexcept;

/// Classify a hostname suffix (registered domain).
[[nodiscard]] NetworkType classify_suffix(const std::string& suffix);

struct TypeBreakdown {
  std::map<NetworkType, std::size_t> counts;
  std::size_t total = 0;

  [[nodiscard]] double percent(NetworkType t) const noexcept;
};

[[nodiscard]] TypeBreakdown classify_all(const std::vector<std::string>& suffixes);

}  // namespace rdns::core
