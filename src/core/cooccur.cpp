#include "core/cooccur.hpp"

#include <unordered_set>

#include "core/names.hpp"
#include "util/stats.hpp"

namespace rdns::core {

const std::vector<std::string>& device_terms() {
  // Fig. 3 x-axis, paper order.
  static const std::vector<std::string> kTerms = {
      "ipad",    "air",     "laptop", "phone",  "dell", "desktop", "iphone",
      "mbp",     "android", "macbook","galaxy", "lenovo","chrome", "roku",
  };
  return kTerms;
}

CooccurrenceResult count_device_terms(const PtrCorpus& corpus,
                                      const std::vector<std::string>& identified_suffixes) {
  static const std::unordered_set<std::string> kDeviceTerms = [] {
    std::unordered_set<std::string> s;
    for (const auto& t : device_terms()) s.insert(t);
    return s;
  }();
  const std::unordered_set<std::string> identified(identified_suffixes.begin(),
                                                   identified_suffixes.end());

  CooccurrenceResult result;
  for (const auto& term : device_terms()) {
    result.all_matches[term] = 0;
    result.filtered_matches[term] = 0;
  }
  for (const auto& [hostname, entry] : corpus.entries()) {
    const auto terms = extract_terms(hostname);
    if (looks_router_level(terms)) continue;
    if (match_given_names(terms).empty()) continue;  // co-occurrence with names
    const bool in_identified = identified.count(entry.suffix) > 0;
    for (const auto& term : terms) {
      if (kDeviceTerms.count(term) == 0) continue;
      result.all_matches[term] += 1;
      ++result.total_all;
      if (in_identified) {
        result.filtered_matches[term] += 1;
        ++result.total_filtered;
      }
    }
  }
  return result;
}

std::vector<std::pair<std::string, std::int64_t>> frequent_cooccurring_terms(
    const PtrCorpus& corpus, std::int64_t min_count) {
  util::Counter counter;
  for (const auto& [hostname, entry] : corpus.entries()) {
    const auto terms = extract_terms(hostname);
    if (looks_router_level(terms)) continue;
    const auto matched = match_given_names(terms);
    if (matched.empty()) continue;
    std::unordered_set<std::string> matched_set;
    for (const auto& name : matched) {
      matched_set.insert(name);
      matched_set.insert(name + "s");  // the possessive form as it appears
    }
    for (const auto& term : terms) {
      if (term.size() < 3) continue;
      if (matched_set.count(term) > 0) continue;  // the name itself
      counter.add(term);
    }
  }
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [term, count] : counter.most_common()) {
    if (count >= min_count) out.emplace_back(term, count);
  }
  return out;
}

}  // namespace rdns::core
