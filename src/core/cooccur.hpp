#pragma once
/// \file cooccur.hpp
/// Section 5.2 / Fig. 3: terms that co-appear in hostnames alongside given
/// names — device makes and models (iphone, galaxy, mbp, ...), the evidence
/// that DHCP clients send device names to the server.

#include <map>
#include <string>
#include <vector>

#include "core/terms.hpp"

namespace rdns::core {

/// The device-indicative terms the paper selected for Fig. 3.
[[nodiscard]] const std::vector<std::string>& device_terms();

struct CooccurrenceResult {
  /// term -> number of name-matched hostnames containing it (blue bars).
  std::map<std::string, std::uint64_t> all_matches;
  /// same, restricted to identified suffixes (red bars).
  std::map<std::string, std::uint64_t> filtered_matches;
  std::uint64_t total_all = 0;       ///< Fig. 3 "total" column
  std::uint64_t total_filtered = 0;
};

/// Count device-term occurrences among hostnames that match given names,
/// before and after restricting to the identified suffixes.
[[nodiscard]] CooccurrenceResult count_device_terms(
    const PtrCorpus& corpus, const std::vector<std::string>& identified_suffixes);

/// The discovery direction: terms occurring at least `min_count` times in
/// name-matched hostnames (the paper's "common terms that occur a hundred
/// times or more" pre-selection).
[[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> frequent_cooccurring_terms(
    const PtrCorpus& corpus, std::int64_t min_count);

}  // namespace rdns::core
