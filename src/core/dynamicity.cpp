#include "core/dynamicity.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace rdns::core {

void DynamicityDetector::on_row(const util::CivilDate& /*date*/, net::Ipv4Addr address,
                                const dns::DnsName& /*ptr*/) {
  today_[address.value() & 0xFFFFFF00u].set(address.octet(3));
}

void DynamicityDetector::on_sweep_end(const util::CivilDate& /*date*/) {
  for (const auto& [block, bits] : today_) {
    auto& counts = history_[block];
    counts.resize(days_, 0);  // pad days before this block first appeared
    counts.push_back(static_cast<std::uint16_t>(bits.count()));
  }
  today_.clear();
  ++days_;
}

namespace {

/// Steps 1-3 for one /24 history. Returns nullopt for quiet blocks.
std::optional<BlockStats> analyze_block(std::uint32_t block,
                                        const std::vector<std::uint16_t>& counts_raw,
                                        std::size_t days, const DynamicityConfig& config) {
  // Pad trailing days (block disappeared before the last sweep).
  std::vector<std::uint16_t> counts = counts_raw;
  counts.resize(days, 0);

  // Step 1: period max; discard quiet blocks.
  std::uint32_t max_daily = 0;
  for (const auto c : counts) max_daily = std::max<std::uint32_t>(max_daily, c);
  if (max_daily <= static_cast<std::uint32_t>(config.min_daily_addresses)) return std::nullopt;

  // Steps 2-3: day-by-day change percentage against the period max.
  int days_over = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    const double diff = std::abs(static_cast<double>(counts[i]) - counts[i - 1]);
    const double change_pct = 100.0 * diff / static_cast<double>(max_daily);
    if (change_pct > config.change_threshold_pct) ++days_over;
  }

  BlockStats stats;
  stats.block = net::Prefix{net::Ipv4Addr{block}, 24};
  stats.max_daily = max_daily;
  stats.days_over_threshold = days_over;
  stats.dynamic = days_over >= config.min_days_over;
  return stats;
}

}  // namespace

DynamicityResult DynamicityDetector::analyze(const DynamicityConfig& config,
                                             util::ThreadPool* pool_opt) const {
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  DynamicityResult result;
  result.total_slash24_seen = history_.size();

  // Sharded map over a snapshot of the (unordered) history: per-block
  // outcomes are independent, the final sort by block canonicalizes the
  // order, and dynamic_count is a sum — identical at every thread count.
  std::vector<const std::pair<const std::uint32_t, std::vector<std::uint16_t>>*> items;
  items.reserve(history_.size());
  for (const auto& entry : history_) items.push_back(&entry);

  util::map_reduce_chunks<std::vector<BlockStats>>(
      pool, items.size(), /*chunk=*/256,
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        std::vector<BlockStats> partial;
        for (std::uint64_t i = begin; i < end; ++i) {
          if (auto stats = analyze_block(items[i]->first, items[i]->second, days_, config)) {
            partial.push_back(*stats);
          }
        }
        return partial;
      },
      [&](std::size_t, std::vector<BlockStats>&& partial) {
        for (const auto& stats : partial) {
          if (stats.dynamic) ++result.dynamic_count;
          result.blocks.push_back(stats);
        }
      });

  std::sort(result.blocks.begin(), result.blocks.end(),
            [](const BlockStats& a, const BlockStats& b) { return a.block < b.block; });
  return result;
}

std::vector<net::Prefix> DynamicityResult::dynamic_blocks() const {
  std::vector<net::Prefix> out;
  out.reserve(dynamic_count);
  for (const auto& b : blocks) {
    if (b.dynamic) out.push_back(b.block);
  }
  return out;
}

std::vector<PrefixDynamicity> rollup_to_announced(
    const std::vector<net::Prefix>& dynamic_slash24s,
    const std::vector<net::Prefix>& announced) {
  net::MostSpecificMatcher matcher;
  for (const auto& p : announced) matcher.add(p);

  std::unordered_map<std::uint32_t, PrefixDynamicity> by_network;
  for (const auto& p : announced) {
    PrefixDynamicity d;
    d.announced = p;
    d.total_slash24s = p.slash24_count();
    by_network.emplace(p.network().value() ^ static_cast<std::uint32_t>(p.length() << 1),
                       d);
  }
  for (const auto& block : dynamic_slash24s) {
    const auto covering = matcher.match(block);
    if (!covering) continue;
    const auto key =
        covering->network().value() ^ static_cast<std::uint32_t>(covering->length() << 1);
    const auto it = by_network.find(key);
    if (it != by_network.end()) ++it->second.dynamic_slash24s;
  }

  std::vector<PrefixDynamicity> out;
  out.reserve(by_network.size());
  for (const auto& [key, d] : by_network) out.push_back(d);
  std::sort(out.begin(), out.end(), [](const PrefixDynamicity& a, const PrefixDynamicity& b) {
    return a.announced < b.announced;
  });
  return out;
}

}  // namespace rdns::core
