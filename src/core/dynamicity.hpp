#pragma once
/// \file dynamicity.hpp
/// Section 4.1: identifying networks that expose dynamic behaviour through
/// rDNS. The heuristic, verbatim from the paper:
///
///   Step 1: per /24 and day, count unique addresses with a PTR; discard
///           /24s never exceeding 10 addresses/day; record the period max.
///   Step 2: compute day-by-day absolute differences, divided by the max
///           ("change percentage").
///   Step 3: label a /24 dynamic if the change percentage exceeds X% on at
///           least Y days (paper: X = 10, Y = 7 over three months).
///
/// The detector ingests daily sweeps as a SnapshotSink; analyze() runs the
/// heuristic afterwards. rollup_to_announced() produces Fig. 1's view.

#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/prefix.hpp"
#include "net/prefix_set.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/thread_pool.hpp"

namespace rdns::core {

struct DynamicityConfig {
  double change_threshold_pct = 10.0;  ///< X
  int min_days_over = 7;               ///< Y
  int min_daily_addresses = 10;        ///< step-1 discard threshold
};

/// Per-/24 outcome.
struct BlockStats {
  net::Prefix block;          ///< the /24
  std::uint32_t max_daily = 0;
  int days_over_threshold = 0;
  bool dynamic = false;
};

struct DynamicityResult {
  std::vector<BlockStats> blocks;       ///< /24s that passed step 1
  std::size_t total_slash24_seen = 0;   ///< every /24 with >= 1 PTR
  std::size_t dynamic_count = 0;

  [[nodiscard]] std::vector<net::Prefix> dynamic_blocks() const;
};

class DynamicityDetector final : public scan::SnapshotSink {
 public:
  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override;
  void on_sweep_end(const util::CivilDate& date) override;

  /// Run the heuristic over everything ingested so far. Per-/24 histories
  /// are independent, so analysis shards across `pool` (nullptr = the
  /// global pool); partials merge in chunk order and the result is sorted
  /// by block, making the output identical at every thread count.
  [[nodiscard]] DynamicityResult analyze(const DynamicityConfig& config = {},
                                         util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] std::size_t days_ingested() const noexcept { return days_; }

 private:
  // Current day: /24 -> bitmap of low octets seen.
  std::unordered_map<std::uint32_t, std::bitset<256>> today_;
  // History: /24 -> per-day unique-address counts (index = sweep ordinal).
  std::unordered_map<std::uint32_t, std::vector<std::uint16_t>> history_;
  std::size_t days_ = 0;
};

/// Fig. 1: the fraction of each announced prefix's /24s that are dynamic.
struct PrefixDynamicity {
  net::Prefix announced;
  std::uint64_t dynamic_slash24s = 0;
  std::uint64_t total_slash24s = 0;

  [[nodiscard]] double fraction() const noexcept {
    return total_slash24s == 0
               ? 0.0
               : static_cast<double>(dynamic_slash24s) / static_cast<double>(total_slash24s);
  }
};

[[nodiscard]] std::vector<PrefixDynamicity> rollup_to_announced(
    const std::vector<net::Prefix>& dynamic_slash24s,
    const std::vector<net::Prefix>& announced);

}  // namespace rdns::core
