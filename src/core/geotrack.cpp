#include "core/geotrack.hpp"

#include <algorithm>
#include <set>

#include "core/tracking.hpp"

namespace rdns::core {

void BuildingMap::add(const net::Prefix& prefix, const std::string& building) {
  entries_.emplace_back(prefix, building);
  // Most-specific first, so overlapping knowledge resolves sensibly.
  std::sort(entries_.begin(), entries_.end(),
            [](const auto& a, const auto& b) { return a.first.length() > b.first.length(); });
}

std::optional<std::string> BuildingMap::building_of(net::Ipv4Addr address) const {
  for (const auto& [prefix, building] : entries_) {
    if (prefix.contains(address)) return building;
  }
  return std::nullopt;
}

std::size_t MovementTrace::transitions() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 1; i < visits.size(); ++i) {
    n += visits[i].building != visits[i - 1].building;
  }
  return n;
}

std::size_t MovementTrace::distinct_buildings() const {
  std::set<std::string> buildings;
  for (const auto& visit : visits) buildings.insert(visit.building);
  return buildings.size();
}

std::vector<MovementTrace> build_traces(const std::vector<scan::GroupSummary>& groups,
                                        const BuildingMap& buildings,
                                        const std::string& needle) {
  const auto segments = segments_matching(groups, needle);

  std::map<std::string, MovementTrace> by_hostname;
  for (const auto& segment : segments) {
    const auto building = buildings.building_of(segment.address);
    if (!building) continue;  // presence outside the known map
    auto& trace = by_hostname[segment.hostname];
    trace.hostname = segment.hostname;
    trace.visits.push_back(BuildingVisit{*building, segment.from, segment.to, segment.address});
  }

  std::vector<MovementTrace> traces;
  traces.reserve(by_hostname.size());
  for (auto& [hostname, trace] : by_hostname) {
    std::sort(trace.visits.begin(), trace.visits.end(),
              [](const BuildingVisit& a, const BuildingVisit& b) { return a.from < b.from; });
    traces.push_back(std::move(trace));
  }
  return traces;
}

}  // namespace rdns::core
