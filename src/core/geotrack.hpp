#pragma once
/// \file geotrack.hpp
/// Section 8's escalation, made concrete: "given recent findings that
/// hostnames can encode building locations, it appears feasible that for
/// some networks, rDNS data can be used to geotemporally track users at the
/// building level" — and §7.1's "one could track, from virtually anywhere
/// on the Internet, a Brian around campus as he goes from lecture to
/// lecture."
///
/// Given knowledge of building-level subnet assignments (a numbering plan,
/// as inferable per Zhang et al. [28] or known a posteriori as in the
/// paper's case studies), measurement groups become a movement trace: each
/// presence period maps to the building whose prefix contains its address.

#include <map>
#include <string>
#include <vector>

#include "net/prefix.hpp"
#include "scan/reactive.hpp"

namespace rdns::core {

/// Building-level subnet knowledge: prefix -> building label.
class BuildingMap {
 public:
  void add(const net::Prefix& prefix, const std::string& building);

  /// Building containing the address, if known.
  [[nodiscard]] std::optional<std::string> building_of(net::Ipv4Addr address) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<std::pair<net::Prefix, std::string>> entries_;
};

/// One stop of a movement trace.
struct BuildingVisit {
  std::string building;
  util::SimTime from = 0;
  util::SimTime to = 0;
  net::Ipv4Addr address;
};

/// A tracked hostname's movement trace, in time order.
struct MovementTrace {
  std::string hostname;
  std::vector<BuildingVisit> visits;

  /// Number of building-to-building transitions.
  [[nodiscard]] std::size_t transitions() const noexcept;
  /// Distinct buildings visited.
  [[nodiscard]] std::size_t distinct_buildings() const;
};

/// Build movement traces for every hostname containing `needle` from
/// measurement groups, using building knowledge. Groups whose address is in
/// no known building are dropped (off-map presence).
[[nodiscard]] std::vector<MovementTrace> build_traces(
    const std::vector<scan::GroupSummary>& groups, const BuildingMap& buildings,
    const std::string& needle);

}  // namespace rdns::core
