#include "core/heist.hpp"

namespace rdns::core {

HeistAnalysis analyze_heist_window(const std::map<std::int64_t, scan::HourlyActivity>& hourly,
                                   util::SimTime from, util::SimTime to) {
  HeistAnalysis analysis;
  analysis.from = from;
  const std::int64_t first_hour = from / util::kHour;
  const std::int64_t last_hour = to / util::kHour;
  if (last_hour <= first_hour) return analysis;

  const auto n = static_cast<std::size_t>(last_hour - first_hour);
  analysis.icmp_per_hour.assign(n, 0);
  analysis.rdns_per_hour.assign(n, 0);

  std::vector<double> sums(24, 0.0);
  std::vector<int> samples(24, 0);

  for (std::int64_t h = first_hour; h < last_hour; ++h) {
    const auto it = hourly.find(h);
    const std::uint64_t icmp = it == hourly.end() ? 0 : it->second.icmp_ok;
    const std::uint64_t rdns = it == hourly.end() ? 0 : it->second.rdns_ok;
    const auto idx = static_cast<std::size_t>(h - first_hour);
    analysis.icmp_per_hour[idx] = icmp;
    analysis.rdns_per_hour[idx] = rdns;

    const util::SimTime t = h * util::kHour;
    if (!util::is_weekend(util::weekday_of(t))) {
      const int hour_of_day = static_cast<int>((t % util::kDay) / util::kHour);
      sums[static_cast<std::size_t>(hour_of_day)] += static_cast<double>(rdns);
      samples[static_cast<std::size_t>(hour_of_day)] += 1;
    }
  }

  analysis.weekday_profile.assign(24, 0.0);
  double min_value = -1.0;
  for (int hour = 0; hour < 24; ++hour) {
    const auto i = static_cast<std::size_t>(hour);
    analysis.weekday_profile[i] = samples[i] == 0 ? 0.0 : sums[i] / samples[i];
    if (min_value < 0.0 || analysis.weekday_profile[i] < min_value) {
      min_value = analysis.weekday_profile[i];
    }
  }
  // The profile often has a whole run of minimal (quiet) hours overnight.
  // Recommend the END of the longest minimal run (circularly): by then the
  // venue has been quiet the longest — the paper's data "hint at
  // approximately 6AM", i.e. just before people return.
  const auto is_min = [&](int hour) {
    return analysis.weekday_profile[static_cast<std::size_t>(hour)] <= min_value + 1e-9;
  };
  int best_len = -1;
  for (int start = 0; start < 24; ++start) {
    if (!is_min(start)) continue;
    int len = 0;
    while (len < 24 && is_min((start + len) % 24)) ++len;
    const int run_end = (start + len - 1) % 24;
    // Prefer longer runs; among equal runs prefer the later morning end.
    if (len > best_len) {
      best_len = len;
      analysis.quietest_hour = run_end;
    }
  }
  return analysis;
}

}  // namespace rdns::core
