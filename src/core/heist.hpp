#pragma once
/// \file heist.hpp
/// Section 7.3 "When to stage a heist?": find the time window with the
/// fewest active clients from outside observations. Consumes the reactive
/// engine's hourly activity counters (successful ICMP responses and rDNS
/// lookups per hour) and produces the Fig. 11 week series plus a
/// quietest-hour recommendation.

#include <cstdint>
#include <map>
#include <vector>

#include "scan/reactive.hpp"
#include "util/time.hpp"

namespace rdns::core {

struct HeistAnalysis {
  /// One entry per hour in [from, to), aligned series.
  std::vector<std::uint64_t> icmp_per_hour;
  std::vector<std::uint64_t> rdns_per_hour;
  util::SimTime from = 0;

  /// Mean rDNS activity per hour-of-day (0..23), weekdays only.
  std::vector<double> weekday_profile;

  /// The recommended heist hour: weekday hour-of-day with minimal rDNS
  /// activity (the paper's data "hint at approximately 6AM").
  int quietest_hour = 0;
};

[[nodiscard]] HeistAnalysis analyze_heist_window(
    const std::map<std::int64_t, scan::HourlyActivity>& hourly, util::SimTime from,
    util::SimTime to);

}  // namespace rdns::core
