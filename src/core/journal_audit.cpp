#include "core/journal_audit.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/timing.hpp"
#include "scan/reactive.hpp"
#include "util/strings.hpp"

namespace rdns::core {

namespace journal = rdns::util::journal;
using util::SimTime;

namespace {

const std::unordered_set<std::string>& known_event_types() {
  static const std::unordered_set<std::string> types{
      "manifest",           "dhcp.discover",   "dhcp.offer",     "dhcp.ack",
      "dhcp.nak",           "dhcp.release",    "dhcp.expire",    "ddns.ptr_add",
      "ddns.ptr_remove",    "dns.lookup",      "campaign.group_open",
      "campaign.probe",     "campaign.backoff", "campaign.rdns",
      "campaign.group_close", "sweep.org",     "sweep.pass",     "sweep.shard",
      "fault.inject",       "dns.retry",       "campaign.recheck",
      "sweep.shard_degraded", "sweep.checkpoint", "sweep.progress",
      "serve.start",        "serve.stop",      "serve.slowlog",
      "serve.drain",        "serve.reload",
  };
  return types;
}

/// Replay state of one address's lease + PTR coupling.
struct IpState {
  bool bound = false;
  std::string mac;
  bool ptr_published = false;  ///< a lease-driven PTR is currently in the zone
  bool removal_pending = false;
  SimTime end_time = 0;        ///< lease end that armed the pending removal
  std::size_t end_line = 0;
};

/// Replay state of one resolver back-off chain, keyed by qname. A chain is
/// opened by `dns.retry` n=1 and must double its base each step; the chain
/// closes when the lookup completes (`dns.lookup`) or a new chain opens.
struct RetryChain {
  int last_n = 0;
  std::uint64_t last_base = 0;
};

/// Per-shard resilience state within one wire-sweep pass, keyed by the
/// shard's "first" address. Validated and cleared at sweep.pass.
struct ShardReplay {
  int max_attempt = -1;        ///< highest sweep.shard "attempt" seen (-1 = plain)
  bool exhausted[2] = {false, false};
  bool degraded = false;       ///< sweep.shard_degraded seen
  std::size_t line = 0;        ///< last event line, for violation anchors
};

/// Reconstruction of one measurement group from raw campaign events,
/// mirroring ReactiveEngine's own bookkeeping.
struct GroupReplay {
  std::uint64_t id = 0;
  std::string ip;
  SimTime opened = 0;
  SimTime last_ok = 0;          ///< sweep detection, then online ok-probes
  SimTime offline = 0;          ///< first failed online-phase probe
  SimTime gone = 0;             ///< PTR observed removed/changed
  bool spot_ok = false;
  bool derived_reverted = false;
  std::string last_ptr;
  int ok_probes = 0;
  // Outstanding back-off promise.
  bool expecting_probe = false;
  SimTime expected_at = 0;
  std::size_t promise_line = 0;
  bool closed = false;
  // Flags carried by the group_close event (authoritative for the
  // Table 5 funnel; cross-checked against the derived fields above).
  bool close_reverted = false;
  bool close_reliable = false;
  bool close_successful = false;
  SimTime close_last_ok = 0;
  SimTime close_gone = 0;
};

class Auditor {
 public:
  Auditor(const AuditConfig& config, JournalAuditReport& report)
      : config_(config), report_(report) {}

  void consume(std::size_t line_no, const journal::JsonValue& e) {
    const std::string type = e.get_string("type");
    const SimTime t = e.get_int("t", -1);
    ++report_.event_counts[type];

    if (known_event_types().count(type) == 0) {
      violate(line_no, "unknown-event-type", "type \"" + type + "\" not in rdns.events.v1");
    }
    if (t < 0) {
      violate(line_no, "missing-timestamp", "event has no integer \"t\"");
    } else if (t < last_t_) {
      violate(line_no, "time-regression",
              util::format("t=%lld after t=%lld", static_cast<long long>(t),
                           static_cast<long long>(last_t_)));
    } else {
      last_t_ = t;
    }

    if (type == "dhcp.ack") {
      on_ack(line_no, e, t);
    } else if (type == "dhcp.release" || type == "dhcp.expire") {
      on_lease_end(line_no, e, t);
    } else if (type == "ddns.ptr_add") {
      on_ptr_add(line_no, e);
    } else if (type == "ddns.ptr_remove") {
      on_ptr_remove(line_no, e, t);
    } else if (type == "campaign.group_open") {
      on_group_open(e, t);
    } else if (type == "campaign.backoff") {
      on_backoff(line_no, e, t);
    } else if (type == "campaign.probe") {
      on_probe(line_no, e, t);
    } else if (type == "campaign.rdns") {
      on_rdns(e, t);
    } else if (type == "campaign.group_close") {
      on_group_close(line_no, e, t);
    } else if (type == "fault.inject") {
      on_fault(e);
    } else if (type == "dns.retry") {
      on_retry(line_no, e);
    } else if (type == "dns.lookup") {
      // A completed lookup closes any open back-off chain on its qname.
      retry_chains_.erase(e.get_string("qname"));
    } else if (type == "sweep.shard") {
      on_shard(line_no, e);
    } else if (type == "sweep.shard_degraded") {
      on_shard_degraded(line_no, e);
    } else if (type == "sweep.pass") {
      on_sweep_pass();
    }
    if (type.rfind("campaign.", 0) == 0) last_campaign_t_ = t;
  }

  void finish() {
    // Pending removals are only a violation once the stream demonstrably ran
    // past the window; a journal that simply ends mid-window proves nothing.
    for (const auto& [ip, st] : ips_) {
      if (st.removal_pending && last_t_ > st.end_time + config_.removal_window) {
        violate(st.end_line, "missing-ptr-remove",
                "lease on " + ip + " ended but its PTR never left the zone");
      }
    }
    // Same reasoning for promised probes: only flag promises whose deadline
    // the campaign stream provably ran past.
    for (const auto& [id, g] : groups_) {
      if (!g.closed && g.expecting_probe &&
          g.expected_at + config_.probe_tolerance < last_campaign_t_) {
        violate(g.promise_line, "missing-probe",
                util::format("group %llu promised a probe at t=%lld that never fired",
                             static_cast<unsigned long long>(id),
                             static_cast<long long>(g.expected_at)));
      }
    }
    check_timing();
  }

 private:
  void violate(std::size_t line_no, std::string invariant, std::string detail) {
    report_.violations.push_back({line_no, std::move(invariant), std::move(detail)});
  }

  void on_ack(std::size_t line_no, const journal::JsonValue& e, SimTime t) {
    const std::string ip = e.get_string("ip");
    const std::string mac = e.get_string("mac");
    IpState& st = ips_[ip];
    if (e.get_bool("renew")) {
      if (!st.bound) {
        violate(line_no, "renew-without-lease", ip + " renewed but no lease is bound");
      } else if (st.mac != mac) {
        violate(line_no, "renew-wrong-client",
                ip + " renewed by " + mac + " but bound to " + st.mac);
      }
      return;
    }
    ++report_.leases_started;
    if (st.bound && st.mac != mac) {
      violate(line_no, "overlapping-leases",
              ip + " acked to " + mac + " while still bound to " + st.mac +
                  util::format(" (t=%lld)", static_cast<long long>(t)));
    }
    st.bound = true;
    st.mac = mac;
  }

  void on_lease_end(std::size_t line_no, const journal::JsonValue& e, SimTime t) {
    const std::string ip = e.get_string("ip");
    ++report_.leases_ended;
    IpState& st = ips_[ip];
    if (!st.bound) {
      violate(line_no, "lease-end-without-lease", ip + " released/expired with no bound lease");
      return;
    }
    st.bound = false;
    if (st.ptr_published) {
      // The bridge must now remove or revert the PTR; arm the deadline.
      st.removal_pending = true;
      st.end_time = t;
      st.end_line = line_no;
    }
  }

  void on_ptr_add(std::size_t line_no, const journal::JsonValue& e) {
    const std::string ip = e.get_string("ip");
    ++report_.ptr_added;
    IpState& st = ips_[ip];
    if (!st.bound) {
      violate(line_no, "ptr-add-without-ack", ip + " got a PTR with no bound lease behind it");
    }
    if (st.removal_pending) {
      violate(line_no, "ptr-add-before-remove",
              ip + " re-published before the previous lease's PTR was removed");
      st.removal_pending = false;
    }
    st.ptr_published = true;
  }

  void on_ptr_remove(std::size_t line_no, const journal::JsonValue& e, SimTime t) {
    const std::string ip = e.get_string("ip");
    ++report_.ptr_removed;
    IpState& st = ips_[ip];
    if (!st.ptr_published) {
      violate(line_no, "ptr-remove-without-add", ip + " PTR removed but none was published");
      return;
    }
    if (st.removal_pending) {
      if (t > st.end_time + config_.removal_window) {
        violate(line_no, "late-ptr-remove",
                util::format("%s PTR removed %llds after lease end (window %llds)", ip.c_str(),
                             static_cast<long long>(t - st.end_time),
                             static_cast<long long>(config_.removal_window)));
      }
      st.removal_pending = false;
    } else if (st.bound) {
      violate(line_no, "ptr-remove-while-bound", ip + " PTR removed while its lease is live");
    }
    st.ptr_published = false;
  }

  void on_group_open(const journal::JsonValue& e, SimTime t) {
    const auto id = static_cast<std::uint64_t>(e.get_int("group"));
    GroupReplay& g = groups_[id];
    g.id = id;
    g.ip = e.get_string("ip");
    g.opened = t;
    // The detecting sweep response counts as the first ICMP ok (the engine
    // seeds last_icmp_ok = started).
    g.last_ok = t;
    g.ok_probes = 1;
  }

  void on_backoff(std::size_t line_no, const journal::JsonValue& e, SimTime t) {
    const auto id = static_cast<std::uint64_t>(e.get_int("group"));
    const int n = static_cast<int>(e.get_int("n"));
    const SimTime next_s = e.get_int("next_s");
    const SimTime want = scan::BackoffSchedule::interval_after(n);
    if (next_s != want) {
      violate(line_no, "backoff-schedule-mismatch",
              util::format("group %llu: %llds after %d probes, Table 2 says %llds",
                           static_cast<unsigned long long>(id), static_cast<long long>(next_s), n,
                           static_cast<long long>(want)));
    }
    GroupReplay& g = groups_[id];
    g.expecting_probe = true;
    g.expected_at = t + next_s;
    g.promise_line = line_no;
  }

  void on_probe(std::size_t line_no, const journal::JsonValue& e, SimTime t) {
    const auto id = static_cast<std::uint64_t>(e.get_int("group"));
    GroupReplay& g = groups_[id];
    if (g.expecting_probe) {
      if (t < g.expected_at || t > g.expected_at + config_.probe_tolerance) {
        violate(line_no, "probe-off-schedule",
                util::format("group %llu probed at t=%lld, promised t=%lld",
                             static_cast<unsigned long long>(id), static_cast<long long>(t),
                             static_cast<long long>(g.expected_at)));
      }
      g.expecting_probe = false;
    }
    const bool ok = e.get_bool("ok");
    const bool online = e.get_string("phase") == "online";
    if (online && ok) {
      g.last_ok = t;
      ++g.ok_probes;
      // Mirrors the engine: a response clears pending offline suspicion —
      // the earlier miss was probe loss, not departure.
      g.offline = 0;
    } else if (online && g.offline == 0) {
      g.offline = t;
    }
  }

  void on_fault(const journal::JsonValue& e) {
    ++report_.faults_injected;
    const std::string site = e.get_string("site");
    if (site == "ddns.remove") {
      // The removal this lease end was owed got lost: the PTR really does
      // linger in the zone (the Fig. 7 failure tail). An observation to
      // tally, not a bridge violation to flag.
      ++report_.stale_ptrs;
      IpState& st = ips_[e.get_string("ip")];
      st.removal_pending = false;
    }
  }

  void on_retry(std::size_t line_no, const journal::JsonValue& e) {
    ++report_.dns_retries;
    const std::string qname = e.get_string("qname");
    const int n = static_cast<int>(e.get_int("n"));
    const auto base = static_cast<std::uint64_t>(e.get_int("base_s"));
    const auto delay = static_cast<std::uint64_t>(e.get_int("delay_s"));
    if (n < 1 || base < 1) {
      violate(line_no, "retry-backoff-mismatch",
              util::format("%s retry has n=%d base_s=%llu (want n>=1, base>=1)", qname.c_str(),
                           n, static_cast<unsigned long long>(base)));
      return;
    }
    if (delay < base || delay >= 2 * base) {
      violate(line_no, "retry-backoff-mismatch",
              util::format("%s retry %d: delay %llus outside [%llus, %llus)", qname.c_str(), n,
                           static_cast<unsigned long long>(delay),
                           static_cast<unsigned long long>(base),
                           static_cast<unsigned long long>(2 * base)));
    }
    if (n == 1) {
      retry_chains_[qname] = RetryChain{1, base};
      return;
    }
    const auto it = retry_chains_.find(qname);
    if (it == retry_chains_.end() || it->second.last_n != n - 1) {
      violate(line_no, "retry-chain-broken",
              util::format("%s retry %d has no preceding retry %d", qname.c_str(), n, n - 1));
      retry_chains_[qname] = RetryChain{n, base};
      return;
    }
    // The resolver doubles the base each ordinary step and quadruples it
    // on a REFUSED retry (the "reason" field; absent in pre-hardening
    // journals, where every step doubles). The exponent saturates at 20,
    // so a repeated base is legitimate once it is at least 2^20 * the
    // smallest base.
    const std::string reason = e.get_string("reason");
    const std::uint64_t factor = reason == "refused" ? 4 : 2;
    const bool capped = base == it->second.last_base && base >= (1ULL << 20);
    if (base != it->second.last_base * factor && !capped) {
      violate(line_no, "retry-backoff-mismatch",
              util::format("%s retry %d (%s): base %llus after %llus, expected x%llu",
                           qname.c_str(), n, reason.empty() ? "timeout" : reason.c_str(),
                           static_cast<unsigned long long>(base),
                           static_cast<unsigned long long>(it->second.last_base),
                           static_cast<unsigned long long>(factor)));
    }
    it->second = RetryChain{n, base};
  }

  void on_shard(std::size_t line_no, const journal::JsonValue& e) {
    // Budget fields only appear when a chaos profile armed a shard retry
    // budget; plain sweeps carry no per-shard resilience state to check.
    if (!e.has("attempt")) return;
    const std::string key = e.get_string("first");
    const int attempt = static_cast<int>(e.get_int("attempt"));
    const bool exhausted = e.get_bool("exhausted");
    ShardReplay& sh = shards_[key];
    sh.line = line_no;
    if (attempt < 0 || attempt > 1) {
      violate(line_no, "shard-attempt-out-of-range",
              util::format("shard %s attempt %d (sweeps re-run a shard at most once)",
                           key.c_str(), attempt));
      return;
    }
    if (attempt == 1 && !(sh.max_attempt == 0 && sh.exhausted[0])) {
      violate(line_no, "shard-rerun-without-exhaustion",
              "shard " + key + " re-ran without its first attempt exhausting the retry budget");
    }
    sh.max_attempt = std::max(sh.max_attempt, attempt);
    sh.exhausted[attempt] = exhausted;
  }

  void on_shard_degraded(std::size_t line_no, const journal::JsonValue& e) {
    ++report_.degraded_shards;
    const std::string key = e.get_string("first");
    ShardReplay& sh = shards_[key];
    sh.line = line_no;
    if (sh.max_attempt < 0 || !sh.exhausted[sh.max_attempt]) {
      violate(line_no, "degraded-without-exhaustion",
              "shard " + key + " recorded degraded but its last attempt kept budget in hand");
    }
    sh.degraded = true;
  }

  void on_sweep_pass() {
    // Degraded ⟺ exhausted, checked at the pass boundary (a journal that
    // simply truncates mid-pass proves nothing): every shard whose final
    // attempt exhausted the budget must have been recorded degraded.
    for (const auto& [key, sh] : shards_) {
      if (sh.max_attempt >= 0 && sh.exhausted[sh.max_attempt] && !sh.degraded) {
        violate(sh.line, "exhausted-not-degraded",
                "shard " + key +
                    " exhausted its final retry attempt but was not recorded degraded");
      }
    }
    shards_.clear();
  }

  void on_rdns(const journal::JsonValue& e, SimTime t) {
    const auto id = static_cast<std::uint64_t>(e.get_int("group"));
    GroupReplay& g = groups_[id];
    const std::string status = e.get_string("status");
    const bool spot = e.get_string("kind") == "spot";
    if (status == "OK") {
      const std::string name = e.get_string("name");
      if (spot) {
        // Join-time capture (possibly retried) succeeded.
        g.spot_ok = true;
        g.last_ptr = name;
      } else if (!g.last_ptr.empty() && name != g.last_ptr) {
        // Follow phase saw the PTR change under us: reverted/reassigned.
        if (g.gone == 0) {
          g.gone = t;
          g.derived_reverted = g.spot_ok;
        }
      } else {
        g.last_ptr = name;
      }
    } else if (status == "NXDOMAIN" && !spot && g.spot_ok && g.gone == 0) {
      g.gone = t;
      g.derived_reverted = true;
    }
  }

  void on_group_close(std::size_t line_no, const journal::JsonValue& e, SimTime /*t*/) {
    const auto id = static_cast<std::uint64_t>(e.get_int("group"));
    GroupReplay& g = groups_[id];
    g.closed = true;
    g.expecting_probe = false;
    g.close_reverted = e.get_bool("reverted");
    g.close_reliable = e.get_bool("reliable");
    g.close_successful = e.get_bool("successful");
    g.close_last_ok = e.get_int("last_ok");
    g.close_gone = e.get_int("gone");
    // The close event carries the engine's own summary; it must agree with
    // the replay of the raw probe/rdns events.
    if (g.close_last_ok != g.last_ok) {
      violate(line_no, "group-close-mismatch",
              util::format("group %llu last_ok: event %lld vs replay %lld",
                           static_cast<unsigned long long>(id),
                           static_cast<long long>(g.close_last_ok),
                           static_cast<long long>(g.last_ok)));
    }
    if (g.close_gone != g.gone) {
      violate(line_no, "group-close-mismatch",
              util::format("group %llu gone: event %lld vs replay %lld",
                           static_cast<unsigned long long>(id),
                           static_cast<long long>(g.close_gone),
                           static_cast<long long>(g.gone)));
    }
    if (g.close_reverted != g.derived_reverted) {
      violate(line_no, "group-close-mismatch",
              util::format("group %llu reverted flag: event %d vs replay %d",
                           static_cast<unsigned long long>(id), g.close_reverted ? 1 : 0,
                           g.derived_reverted ? 1 : 0));
    }
  }

  /// Fig. 7 two ways: directly from the replayed raw events, and through
  /// core/timing over GroupSummary objects rebuilt from group_close facts.
  void check_timing() {
    std::vector<scan::GroupSummary> summaries;
    for (const auto& [id, g] : groups_) {
      if (!g.closed) continue;
      scan::GroupSummary s;
      s.group_id = id;
      s.closed = true;
      s.started = g.opened;
      s.last_icmp_ok = g.last_ok;
      s.offline_detected = g.offline;
      s.ptr_observed_gone = g.gone;
      s.spot_rdns_ok = g.spot_ok;
      s.icmp_ok = g.ok_probes;
      s.reverted = g.close_reverted;
      s.reliable = g.close_reliable;
      summaries.push_back(s);
      if (s.successful() && s.reverted && s.reliable) {
        report_.timing.linger_minutes.push_back(
            static_cast<double>(g.gone - g.last_ok) / 60.0);
      }
    }
    std::sort(report_.timing.linger_minutes.begin(), report_.timing.linger_minutes.end());
    report_.timing.usable_groups = report_.timing.linger_minutes.size();
    if (!report_.timing.linger_minutes.empty()) {
      const auto within =
          std::count_if(report_.timing.linger_minutes.begin(),
                        report_.timing.linger_minutes.end(), [](double m) { return m <= 60.0; });
      report_.timing.fraction_within_60min =
          static_cast<double>(within) / static_cast<double>(report_.timing.linger_minutes.size());
    }
    const auto usable = core::usable_groups(summaries);
    if (usable.size() != report_.timing.usable_groups) {
      violate(0, "timing-crosscheck",
              util::format("usable groups: %zu from raw events vs %zu via core/timing",
                           report_.timing.usable_groups, usable.size()));
    }
    report_.timing.summary_fraction_within_60min = core::fraction_within_minutes(usable, 60.0);
    if (std::abs(report_.timing.summary_fraction_within_60min -
                 report_.timing.fraction_within_60min) > 1e-9) {
      violate(0, "timing-crosscheck",
              util::format("fraction within 60 min: %.6f from raw events vs %.6f via core/timing",
                           report_.timing.fraction_within_60min,
                           report_.timing.summary_fraction_within_60min));
    }
  }

  const AuditConfig& config_;
  JournalAuditReport& report_;
  SimTime last_t_ = 0;
  SimTime last_campaign_t_ = 0;
  std::unordered_map<std::string, IpState> ips_;
  std::map<std::uint64_t, GroupReplay> groups_;
  std::unordered_map<std::string, RetryChain> retry_chains_;
  std::map<std::string, ShardReplay> shards_;
};

}  // namespace

journal::RunManifest manifest_from_json(const journal::JsonValue& v) {
  journal::RunManifest m;
  m.tool = v.get_string("tool");
  m.version = v.get_string("version");
  m.seed = static_cast<std::uint64_t>(v.get_number("seed", 0.0));
  m.world_digest = std::strtoull(v.get_string("world_digest", "0").c_str(), nullptr, 16);
  m.faults = v.get_string("faults", "none");
  m.threads = static_cast<unsigned>(v.get_int("threads", 0));
  m.events_schema = v.get_string("events_schema");
  m.observability_schema = v.get_string("observability_schema");
  return m;
}

JournalAuditReport audit_journal_text(std::string_view text, const AuditConfig& config) {
  JournalAuditReport report;
  Auditor auditor{config, report};
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    const auto parsed = journal::parse_json(line, &error);
    if (!parsed || parsed->kind != journal::JsonValue::Kind::Object) {
      report.violations.push_back(
          {line_no, "malformed-line", parsed ? "event is not a JSON object" : error});
      continue;
    }
    if (line_no == 1) {
      if (parsed->get_string("type") != "manifest") {
        report.violations.push_back(
            {line_no, "missing-manifest", "first event must be the run manifest"});
      } else {
        report.parsed = true;
        report.manifest = manifest_from_json(*parsed);
        if (report.manifest->events_schema != journal::kEventsSchema) {
          report.violations.push_back(
              {line_no, "schema-mismatch",
               "events_schema \"" + report.manifest->events_schema + "\" != \"" +
                   journal::kEventsSchema + "\""});
        }
      }
    }
    ++report.events;
    auditor.consume(line_no, *parsed);
  }
  if (report.events == 0) {
    report.violations.push_back({0, "empty-journal", "no events"});
  }
  auditor.finish();
  return report;
}

JournalAuditReport audit_journal_file(const std::string& path, const AuditConfig& config) {
  std::ifstream in{path};
  if (!in) {
    JournalAuditReport report;
    report.violations.push_back({0, "io", "cannot open " + path});
    return report;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return audit_journal_text(buffer.str(), config);
}

std::string render_audit_report(const JournalAuditReport& report) {
  std::string out;
  out += util::format("events: %zu\n", report.events);
  if (report.manifest) {
    out += util::format("manifest: tool=%s version=%s seed=%llu world=%016llx faults=%s\n",
                        report.manifest->tool.c_str(), report.manifest->version.c_str(),
                        static_cast<unsigned long long>(report.manifest->seed),
                        static_cast<unsigned long long>(report.manifest->world_digest),
                        report.manifest->faults.c_str());
  }
  out += util::format("leases: %llu started, %llu ended; ptr: %llu added, %llu removed\n",
                      static_cast<unsigned long long>(report.leases_started),
                      static_cast<unsigned long long>(report.leases_ended),
                      static_cast<unsigned long long>(report.ptr_added),
                      static_cast<unsigned long long>(report.ptr_removed));
  if (report.faults_injected > 0 || report.dns_retries > 0 || report.degraded_shards > 0) {
    out += util::format(
        "faults: %llu injected, %llu retries, %llu stale PTRs, %llu degraded shards\n",
        static_cast<unsigned long long>(report.faults_injected),
        static_cast<unsigned long long>(report.dns_retries),
        static_cast<unsigned long long>(report.stale_ptrs),
        static_cast<unsigned long long>(report.degraded_shards));
  }
  out += util::format(
      "timing: %zu usable groups, %.1f%% gone within 60 min (core/timing: %.1f%%)\n",
      report.timing.usable_groups, report.timing.fraction_within_60min * 100.0,
      report.timing.summary_fraction_within_60min * 100.0);
  for (const auto& type_count : report.event_counts) {
    out += util::format("  %-22s %llu\n", type_count.first.c_str(),
                        static_cast<unsigned long long>(type_count.second));
  }
  if (report.violations.empty()) {
    out += "verdict: OK — all invariants hold\n";
  } else {
    out += util::format("verdict: %zu violation(s)\n", report.violations.size());
    for (const auto& v : report.violations) {
      out += util::format("  line %zu: [%s] %s\n", v.line, v.invariant.c_str(), v.detail.c_str());
    }
  }
  return out;
}

}  // namespace rdns::core
