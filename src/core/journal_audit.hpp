#pragma once
/// \file journal_audit.hpp
/// Invariant auditor over "rdns.events.v1" journals (`rdns_tool verify`).
///
/// The journal is the ground-truth record of what the simulated operators
/// and scanners did; the auditor replays it and mechanically checks the
/// claims the paper's analysis rests on:
///
///   - provenance: line 1 is a manifest event with a matching events schema
///   - time: simulated timestamps never decrease
///   - DHCP/DDNS coupling: every PTR add has a bound lease behind it
///     (an ACK with no intervening lease end), and every lease end on a
///     published address is followed by a PTR remove/revert within the
///     removal window — the §6.2 "reverse zones follow lease churn" premise
///   - lease exclusivity: no address holds two live leases at once
///   - back-off: every campaign.backoff step matches the Table 2 schedule
///     (BackoffSchedule::interval_after), and the promised probe fires
///     within tolerance (or the group closes / the stream ends first)
///   - fault excusal: a `fault.inject` event (site ddns.remove) explains a
///     missing PTR removal — the record is stale, not a protocol violation;
///     it is tallied separately (the Fig. 7 failure tail)
///   - resolver back-off: `dns.retry` chains double their base per step
///     (base ≤ delay < 2·base, deterministic jitter), reset by a completed
///     lookup or a fresh chain
///   - degradation: a sweep shard is re-run only after exhausting its retry
///     budget, and is marked degraded iff the re-run exhausted it too —
///     checked per sweep pass from sweep.shard / sweep.shard_degraded
///   - Fig. 7 cross-check: the linger distribution recomputed from raw
///     events alone agrees with the one computed by core/timing over the
///     group summaries carried in campaign.group_close events
///
/// The replay is pure: it needs only the journal text, no world or
/// simulation state, so a journal from any run (any thread count, any
/// machine) can be audited anywhere.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/journal.hpp"

namespace rdns::core {

struct AuditConfig {
  /// Max simulated seconds between a lease end and the matching PTR
  /// remove/revert (the DHCP tick granularity bounds real bridges; the
  /// default covers a 60 s tick with slack).
  util::SimTime removal_window = 120;
  /// Slack on back-off timing: the promised probe may fire this many
  /// seconds late (rDNS rate-limiting can defer the engine's clock).
  util::SimTime probe_tolerance = 60;
};

/// One invariant violation, anchored to the 1-based journal line.
struct AuditViolation {
  std::size_t line = 0;
  std::string invariant;  ///< short slug, e.g. "ptr-add-without-ack"
  std::string detail;
};

/// Fig. 7 numbers recomputed two independent ways (raw events vs the
/// summaries carried in group_close), plus the reconstructed usable set.
struct AuditTimingCheck {
  std::size_t usable_groups = 0;
  /// Fraction of usable groups whose PTR vanished within 60 minutes of the
  /// last successful probe, recomputed from raw probe/rdns events.
  double fraction_within_60min = 0.0;
  /// Same figure via core::fraction_within_minutes over GroupSummary
  /// objects reconstructed from group_close events.
  double summary_fraction_within_60min = 0.0;
  std::vector<double> linger_minutes;  ///< per usable group, event-derived
};

struct JournalAuditReport {
  bool parsed = false;  ///< journal readable at all (manifest line present)
  std::optional<util::journal::RunManifest> manifest;
  std::size_t events = 0;
  std::map<std::string, std::uint64_t> event_counts;
  std::vector<AuditViolation> violations;

  // Lifecycle tallies from the replay.
  std::uint64_t leases_started = 0;   ///< dhcp.ack renew:false
  std::uint64_t leases_ended = 0;     ///< dhcp.release + dhcp.expire
  std::uint64_t ptr_added = 0;
  std::uint64_t ptr_removed = 0;

  // Fault/resilience tallies (all zero on a fault-free journal).
  std::uint64_t faults_injected = 0;  ///< fault.inject events
  std::uint64_t dns_retries = 0;      ///< dns.retry events
  std::uint64_t stale_ptrs = 0;       ///< lost DynDNS removals (Fig. 7 failure tail)
  std::uint64_t degraded_shards = 0;  ///< sweep shards given up on

  AuditTimingCheck timing;

  [[nodiscard]] bool ok() const noexcept { return parsed && violations.empty(); }
};

/// Rebuild a RunManifest from a parsed manifest JSON object (a journal
/// header event or the "manifest" member of an observability snapshot).
/// Missing fields default; world_digest is decoded from its hex form.
[[nodiscard]] util::journal::RunManifest manifest_from_json(const util::journal::JsonValue& v);

/// Replay a journal given as text (JSONL, one event per line).
[[nodiscard]] JournalAuditReport audit_journal_text(std::string_view text,
                                             const AuditConfig& config = {});

/// Replay a journal file. A missing/unreadable file yields parsed=false
/// with one "io" violation.
[[nodiscard]] JournalAuditReport audit_journal_file(const std::string& path,
                                             const AuditConfig& config = {});

/// Human-readable report (multi-line, for `rdns_tool verify`).
[[nodiscard]] std::string render_audit_report(const JournalAuditReport& report);

}  // namespace rdns::core
