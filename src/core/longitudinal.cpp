#include "core/longitudinal.hpp"

#include <algorithm>

namespace rdns::core {

DailyCountSink::DailyCountSink(SeriesClassifier classifier)
    : classifier_(std::move(classifier)) {}

void DailyCountSink::on_row(const util::CivilDate& /*date*/, net::Ipv4Addr address,
                            const dns::DnsName& /*ptr*/) {
  const auto series = classifier_(address);
  if (series) ++today_[*series];
}

void DailyCountSink::on_sweep_end(const util::CivilDate& date) {
  const std::int64_t day = util::days_from_civil(date);
  for (const auto& [series, count] : today_) counts_[series][day] = count;
  today_.clear();
  dates_.push_back(date);
}

PercentSeries percent_of_max(const std::string& name,
                             const std::map<std::int64_t, std::uint64_t>& daily_counts) {
  PercentSeries series;
  series.name = name;
  for (const auto& [day, count] : daily_counts) {
    series.max_count = std::max(series.max_count, count);
  }
  for (const auto& [day, count] : daily_counts) {
    series.dates.push_back(util::civil_from_days(day));
    series.percent.push_back(series.max_count == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(count) /
                                       static_cast<double>(series.max_count));
  }
  return series;
}

std::optional<util::CivilDate> find_crossover(const PercentSeries& falling,
                                              const PercentSeries& rising, int hold_days) {
  // Align on common dates (the series may have different sweep cadences).
  std::map<std::int64_t, double> f, r;
  for (std::size_t i = 0; i < falling.dates.size(); ++i) {
    f[util::days_from_civil(falling.dates[i])] = falling.percent[i];
  }
  for (std::size_t i = 0; i < rising.dates.size(); ++i) {
    r[util::days_from_civil(rising.dates[i])] = rising.percent[i];
  }
  std::vector<std::pair<std::int64_t, bool>> above;  // day -> rising > falling
  for (const auto& [day, fv] : f) {
    const auto it = r.find(day);
    if (it != r.end()) above.emplace_back(day, it->second > fv);
  }
  for (std::size_t i = 0; i + 1 < above.size(); ++i) {
    if (above[i].second || !above[i + 1].second) continue;  // want below -> above
    // Check the hold window.
    bool held = true;
    for (std::size_t k = i + 1; k < above.size() && k <= i + static_cast<std::size_t>(hold_days);
         ++k) {
      if (!above[k].second) {
        held = false;
        break;
      }
    }
    if (held) return util::civil_from_days(above[i + 1].first);
  }
  return std::nullopt;
}

}  // namespace rdns::core
