#pragma once
/// \file longitudinal.hpp
/// Section 7.2 "Working from Home": longitudinal daily PTR-entry counts per
/// series (a network, or a subnet role such as "student housing"), reported
/// as percentages of the series maximum (Figs. 9 and 10).

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "scan/rdns_snapshot.hpp"

namespace rdns::core {

/// Assigns an address to a named series (or drops it).
using SeriesClassifier = std::function<std::optional<std::string>(net::Ipv4Addr)>;

/// Snapshot sink counting, per series and sweep date, the number of PTR
/// entries (the paper "calculate[s] the total number of PTR records on any
/// given day").
class DailyCountSink final : public scan::SnapshotSink {
 public:
  explicit DailyCountSink(SeriesClassifier classifier);

  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override;
  void on_sweep_end(const util::CivilDate& date) override;

  /// series -> (day index since epoch -> count).
  [[nodiscard]] const std::map<std::string, std::map<std::int64_t, std::uint64_t>>& counts()
      const noexcept {
    return counts_;
  }

  /// The observed sweep dates, ascending.
  [[nodiscard]] const std::vector<util::CivilDate>& sweep_dates() const noexcept {
    return dates_;
  }

 private:
  SeriesClassifier classifier_;
  std::map<std::string, std::map<std::int64_t, std::uint64_t>> counts_;
  std::map<std::string, std::uint64_t> today_;
  std::vector<util::CivilDate> dates_;
};

/// A series resampled to percent-of-max (the Fig. 9/10 y-axis).
struct PercentSeries {
  std::string name;
  std::vector<util::CivilDate> dates;
  std::vector<double> percent;   ///< same length as dates
  std::uint64_t max_count = 0;
};

[[nodiscard]] PercentSeries percent_of_max(
    const std::string& name, const std::map<std::int64_t, std::uint64_t>& daily_counts);

/// Detect the crossover date between two percent series (Fig. 10's March
/// 2020 education/housing crossover): the first date where `rising` moves
/// strictly above `falling` and stays above for `hold_days` samples.
[[nodiscard]] std::optional<util::CivilDate> find_crossover(const PercentSeries& falling,
                                                            const PercentSeries& rising,
                                                            int hold_days = 5);

}  // namespace rdns::core
