#include "core/mitigation.hpp"

#include <unordered_set>

#include "core/cooccur.hpp"
#include "core/names.hpp"

namespace rdns::core {

const char* to_string(LeakSeverity s) noexcept {
  switch (s) {
    case LeakSeverity::Info: return "info";
    case LeakSeverity::DeviceModel: return "device-model";
    case LeakSeverity::OwnerName: return "owner-name";
    case LeakSeverity::NameAndDevice: return "owner-name+device-model";
  }
  return "?";
}

void StreamAuditor::inspect(net::Ipv4Addr address, const std::string& hostname) {
  static const std::unordered_set<std::string> kDeviceTerms = [] {
    std::unordered_set<std::string> s;
    for (const auto& t : device_terms()) s.insert(t);
    return s;
  }();

  ++report_.records_audited;
  const auto terms = extract_terms(hostname);
  if (looks_router_level(terms)) return;

  LeakFinding finding;
  finding.address = address;
  finding.hostname = hostname;
  finding.matched_names = match_given_names(terms);
  for (const auto& t : terms) {
    if (kDeviceTerms.count(t) > 0) finding.matched_device_terms.push_back(t);
  }
  if (finding.matched_names.empty() && finding.matched_device_terms.empty()) return;

  if (!finding.matched_names.empty() && !finding.matched_device_terms.empty()) {
    finding.severity = LeakSeverity::NameAndDevice;
  } else if (!finding.matched_names.empty()) {
    finding.severity = LeakSeverity::OwnerName;
  } else {
    finding.severity = LeakSeverity::DeviceModel;
  }
  if (!finding.matched_names.empty()) ++report_.owner_name_leaks;
  if (!finding.matched_device_terms.empty()) ++report_.device_model_leaks;
  report_.findings.push_back(std::move(finding));
}

AuditReport audit_organization(const sim::Organization& org) {
  StreamAuditor auditor;
  org.for_each_ptr([&auditor](net::Ipv4Addr a, const dns::DnsName& ptr) {
    auditor.inspect(a, ptr.to_canonical_string());
  });
  // Forward zones leak the same identifiers through A-record owner names
  // (the paper's §10 note that forward DNS is dynamically updated too).
  org.for_each_a([&auditor](const dns::DnsName& owner, net::Ipv4Addr a) {
    auditor.inspect(a, owner.to_canonical_string());
  });
  return auditor.report();
}

PolicyAssessment assess_policy(dhcp::DdnsPolicy policy) {
  PolicyAssessment a;
  a.policy = policy;
  switch (policy) {
    case dhcp::DdnsPolicy::None:
      a.leaks_identifiers = false;
      a.exposes_dynamics = false;
      a.advice = "No DHCP-to-DNS coupling: nothing leaks. Consider whether reverse "
                 "records are needed at all for client ranges.";
      break;
    case dhcp::DdnsPolicy::StaticGeneric:
      a.leaks_identifiers = false;
      a.exposes_dynamics = false;
      a.advice = "Fixed-form records hide both identity and client churn; the Section "
                 "4.1 validation confirmed such ranges are not flagged as dynamic.";
      break;
    case dhcp::DdnsPolicy::CarryOverClientId:
      a.leaks_identifiers = true;
      a.exposes_dynamics = true;
      a.advice = "Client-provided Host Names reach the global DNS: owner names and "
                 "device models become publicly queryable and record churn exposes "
                 "presence. Block Host Name propagation from DHCP to DNS.";
      break;
    case dhcp::DdnsPolicy::HashedClientId:
      a.leaks_identifiers = false;
      a.exposes_dynamics = true;
      a.advice = "Hashing removes identifiers but records still appear and disappear "
                 "with clients, so network dynamics remain observable (and a stable "
                 "hash still allows per-device linking within the network).";
      break;
  }
  return a;
}

}  // namespace rdns::core
