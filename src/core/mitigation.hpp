#pragma once
/// \file mitigation.hpp
/// Section 8, turned into operator-facing tooling: audit a network's
/// published reverse zones for privacy leaks, and evaluate mitigation
/// policies (blocking Host Name propagation, hashing, generic names).

#include <string>
#include <vector>

#include "core/classify.hpp"
#include "core/terms.hpp"
#include "dhcp/ddns.hpp"
#include "sim/org.hpp"

namespace rdns::core {

/// Severity of one finding.
enum class LeakSeverity : int {
  Info = 0,       ///< dynamic record, no identifier leaked
  DeviceModel,    ///< device make/model visible (iphone, galaxy, ...)
  OwnerName,      ///< a person's given name visible
  NameAndDevice,  ///< both — the "brians-iphone" worst case
};

[[nodiscard]] const char* to_string(LeakSeverity s) noexcept;

struct LeakFinding {
  net::Ipv4Addr address;
  std::string hostname;
  std::vector<std::string> matched_names;
  std::vector<std::string> matched_device_terms;
  LeakSeverity severity = LeakSeverity::Info;
};

struct AuditReport {
  std::uint64_t records_audited = 0;
  std::vector<LeakFinding> findings;
  std::uint64_t owner_name_leaks = 0;
  std::uint64_t device_model_leaks = 0;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Audit every PTR record an organization currently publishes. This is the
/// defensive counterpart of Section 5: a network operator can run it
/// against their own zones before an outsider does it for them.
[[nodiscard]] AuditReport audit_organization(const sim::Organization& org);

/// Audit a raw (address, hostname) stream — e.g. a zone file export.
class StreamAuditor {
 public:
  void inspect(net::Ipv4Addr address, const std::string& hostname);
  [[nodiscard]] const AuditReport& report() const noexcept { return report_; }

 private:
  AuditReport report_;
};

/// Mitigation advice for a DDNS policy (the §8 discussion, encoded).
struct PolicyAssessment {
  dhcp::DdnsPolicy policy;
  bool leaks_identifiers = false;  ///< owner names / device models exposed
  bool exposes_dynamics = false;   ///< record churn reveals client presence
  std::string advice;
};

[[nodiscard]] PolicyAssessment assess_policy(dhcp::DdnsPolicy policy);

}  // namespace rdns::core
