#include "core/names.hpp"

#include <unordered_set>

namespace rdns::core {

const std::vector<std::string>& top_given_names() {
  static const std::vector<std::string> kNames = {
      "jacob",    "michael",   "emma",        "william", "ethan",   "olivia",  "matthew",
      "emily",    "daniel",    "noah",        "joshua",  "isabella","alexander","joseph",
      "james",    "andrew",    "sophia",      "christopher","anthony","david", "madison",
      "logan",    "benjamin",  "ryan",        "abigail", "john",    "elijah",  "mason",
      "samuel",   "dylan",     "nicholas",    "jayden",  "liam",    "elizabeth","christian",
      "gabriel",  "tyler",     "jonathan",    "nathan",  "jordan",  "hannah",  "aiden",
      "jackson",  "alexis",    "caleb",       "lucas",   "angel",   "brandon", "brian",
      "ava",
  };
  return kNames;
}

std::vector<std::string> match_given_names(const std::vector<std::string>& terms) {
  static const std::unordered_set<std::string> kNames = [] {
    std::unordered_set<std::string> s;
    for (const auto& n : top_given_names()) s.insert(n);
    return s;
  }();
  std::vector<std::string> matched;
  for (const auto& term : terms) {
    if (term.size() < 3) continue;  // "shorter terms ... add a lot of noise"
    if (kNames.count(term) > 0) {
      matched.push_back(term);
      continue;
    }
    // Possessive form: brians -> brian.
    if (term.back() == 's') {
      const std::string base = term.substr(0, term.size() - 1);
      if (base.size() >= 3 && kNames.count(base) > 0) matched.push_back(base);
    }
  }
  return matched;
}

std::map<std::string, std::uint64_t> count_name_matches(const PtrCorpus& corpus) {
  // Fig. 2 counts occurrences of matching PTR records, so popular names —
  // whose sanitized hostnames collide across many devices ("jacobs-iphone")
  // — are weighted by how often they were observed, not deduplicated.
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [hostname, entry] : corpus.entries()) {
    for (const auto& name : match_given_names(extract_terms(hostname))) {
      counts[name] += entry.observations;
    }
  }
  return counts;
}

LeakResult identify_leaking_networks(const PtrCorpus& corpus, const LeakConfig& config) {
  LeakResult result;

  for (const auto& [hostname, entry] : corpus.entries()) {
    const auto terms = extract_terms(hostname);
    // Step 2: drop router-level records.
    if (looks_router_level(terms)) continue;
    // Step 3: given-name matching.
    const auto matched = match_given_names(terms);
    if (matched.empty()) continue;

    // Step 4: per-suffix aggregation over matched records.
    auto& stats = result.suffixes[entry.suffix];
    stats.suffix = entry.suffix;
    ++stats.records;
    for (const auto& name : matched) {
      stats.unique_names.insert(name);
      result.matches_per_name[name] += entry.observations;
    }
  }

  // Steps 5-6: selection.
  for (auto& [suffix, stats] : result.suffixes) {
    stats.identified = stats.unique_names.size() >= config.min_unique_names &&
                       stats.ratio() >= config.min_ratio;
    if (stats.identified) result.identified.push_back(suffix);
  }

  // Fig. 2 red bars: matches inside identified networks only.
  std::unordered_set<std::string> identified_set(result.identified.begin(),
                                                 result.identified.end());
  for (const auto& [hostname, entry] : corpus.entries()) {
    if (identified_set.count(entry.suffix) == 0) continue;
    const auto terms = extract_terms(hostname);
    if (looks_router_level(terms)) continue;
    for (const auto& name : match_given_names(terms)) {
      result.filtered_matches_per_name[name] += entry.observations;
    }
  }
  return result;
}

}  // namespace rdns::core
