#include "core/names.hpp"

#include <unordered_set>

namespace rdns::core {

const std::vector<std::string>& top_given_names() {
  static const std::vector<std::string> kNames = {
      "jacob",    "michael",   "emma",        "william", "ethan",   "olivia",  "matthew",
      "emily",    "daniel",    "noah",        "joshua",  "isabella","alexander","joseph",
      "james",    "andrew",    "sophia",      "christopher","anthony","david", "madison",
      "logan",    "benjamin",  "ryan",        "abigail", "john",    "elijah",  "mason",
      "samuel",   "dylan",     "nicholas",    "jayden",  "liam",    "elizabeth","christian",
      "gabriel",  "tyler",     "jonathan",    "nathan",  "jordan",  "hannah",  "aiden",
      "jackson",  "alexis",    "caleb",       "lucas",   "angel",   "brandon", "brian",
      "ava",
  };
  return kNames;
}

std::vector<std::string> match_given_names(const std::vector<std::string>& terms) {
  static const std::unordered_set<std::string> kNames = [] {
    std::unordered_set<std::string> s;
    for (const auto& n : top_given_names()) s.insert(n);
    return s;
  }();
  std::vector<std::string> matched;
  for (const auto& term : terms) {
    if (term.size() < 3) continue;  // "shorter terms ... add a lot of noise"
    if (kNames.count(term) > 0) {
      matched.push_back(term);
      continue;
    }
    // Possessive form: brians -> brian.
    if (term.back() == 's') {
      const std::string base = term.substr(0, term.size() - 1);
      if (base.size() >= 3 && kNames.count(base) > 0) matched.push_back(base);
    }
  }
  return matched;
}

namespace {

/// Per-chunk partial for the identification map stage: step 2-4 outcomes
/// for one slice of the corpus, merged by summation/set-union afterwards.
struct LeakPartial {
  std::map<std::string, SuffixStats> suffixes;
  std::map<std::string, std::uint64_t> matches_per_name;
};

}  // namespace

std::map<std::string, std::uint64_t> count_name_matches(const PtrCorpus& corpus,
                                                        util::ThreadPool* pool_opt) {
  // Fig. 2 counts occurrences of matching PTR records, so popular names —
  // whose sanitized hostnames collide across many devices ("jacobs-iphone")
  // — are weighted by how often they were observed, not deduplicated.
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  const auto items = corpus.entry_snapshot();
  std::map<std::string, std::uint64_t> counts;
  util::map_reduce_chunks<std::map<std::string, std::uint64_t>>(
      pool, items.size(), /*chunk=*/512,
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        std::map<std::string, std::uint64_t> partial;
        for (std::uint64_t i = begin; i < end; ++i) {
          const PtrEntry& entry = *items[i];
          for (const auto& name : match_given_names(extract_terms(entry.hostname))) {
            partial[name] += entry.observations;
          }
        }
        return partial;
      },
      [&](std::size_t, std::map<std::string, std::uint64_t>&& partial) {
        for (const auto& [name, count] : partial) counts[name] += count;
      });
  return counts;
}

LeakResult identify_leaking_networks(const PtrCorpus& corpus, const LeakConfig& config,
                                     util::ThreadPool* pool_opt) {
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  const auto items = corpus.entry_snapshot();
  LeakResult result;

  // Steps 2-4, sharded: per-chunk suffix/name aggregates, merged into the
  // ordered result maps. Record counts, observation sums and name-set
  // unions all commute, so the merged aggregates match the serial loop.
  util::map_reduce_chunks<LeakPartial>(
      pool, items.size(), /*chunk=*/512,
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        LeakPartial partial;
        for (std::uint64_t i = begin; i < end; ++i) {
          const PtrEntry& entry = *items[i];
          const auto terms = extract_terms(entry.hostname);
          // Step 2: drop router-level records.
          if (looks_router_level(terms)) continue;
          // Step 3: given-name matching.
          const auto matched = match_given_names(terms);
          if (matched.empty()) continue;

          // Step 4: per-suffix aggregation over matched records.
          auto& stats = partial.suffixes[entry.suffix];
          stats.suffix = entry.suffix;
          ++stats.records;
          for (const auto& name : matched) {
            stats.unique_names.insert(name);
            partial.matches_per_name[name] += entry.observations;
          }
        }
        return partial;
      },
      [&](std::size_t, LeakPartial&& partial) {
        for (auto& [suffix, stats] : partial.suffixes) {
          auto& merged = result.suffixes[suffix];
          merged.suffix = suffix;
          merged.records += stats.records;
          merged.unique_names.merge(stats.unique_names);
        }
        for (const auto& [name, count] : partial.matches_per_name) {
          result.matches_per_name[name] += count;
        }
      });

  // Steps 5-6: selection.
  for (auto& [suffix, stats] : result.suffixes) {
    stats.identified = stats.unique_names.size() >= config.min_unique_names &&
                       stats.ratio() >= config.min_ratio;
    if (stats.identified) result.identified.push_back(suffix);
  }

  // Fig. 2 red bars: matches inside identified networks only.
  const std::unordered_set<std::string> identified_set(result.identified.begin(),
                                                       result.identified.end());
  util::map_reduce_chunks<std::map<std::string, std::uint64_t>>(
      pool, items.size(), /*chunk=*/512,
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        std::map<std::string, std::uint64_t> partial;
        for (std::uint64_t i = begin; i < end; ++i) {
          const PtrEntry& entry = *items[i];
          if (identified_set.count(entry.suffix) == 0) continue;
          const auto terms = extract_terms(entry.hostname);
          if (looks_router_level(terms)) continue;
          for (const auto& name : match_given_names(terms)) {
            partial[name] += entry.observations;
          }
        }
        return partial;
      },
      [&](std::size_t, std::map<std::string, std::uint64_t>&& partial) {
        for (const auto& [name, count] : partial) {
          result.filtered_matches_per_name[name] += count;
        }
      });
  return result;
}

}  // namespace rdns::core
