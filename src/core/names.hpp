#pragma once
/// \file names.hpp
/// Section 5.1 given-name matching and network identification:
///
///   (1) start from the dynamic networks (Section 4 heuristic);
///   (2) exclude rDNS entries with generic router-level terms;
///   (3) match the remaining PTR records against a list of given names;
///   (4) per hostname suffix: #records, #uniquely matched names, ratio;
///   (5) select suffixes with >= `min_unique_names` unique matches;
///   (6) require ratio >= `min_ratio`.
///
/// The city-name false-positive problem (Jackson, Charlotte, ...) is
/// handled exactly as in the paper: not by enumeration, but by requiring
/// many UNIQUE given-name matches per suffix.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/terms.hpp"

namespace rdns::core {

/// The analyst's given-name list: top-50 US newborn names 2000-2020 by SSA
/// popularity (the Fig. 2 x-axis).
[[nodiscard]] const std::vector<std::string>& top_given_names();

/// Match terms against the given-name list. A term matches a name if it
/// equals the name or its possessive form ("brians" -> brian). Terms
/// shorter than 3 characters never match.
[[nodiscard]] std::vector<std::string> match_given_names(const std::vector<std::string>& terms);

struct LeakConfig {
  std::size_t min_unique_names = 50;  ///< paper step 5
  double min_ratio = 0.1;             ///< paper step 6
};

/// Per-suffix aggregation (step 4).
struct SuffixStats {
  std::string suffix;
  std::uint64_t records = 0;  ///< distinct matched hostnames under the suffix
  std::set<std::string> unique_names;
  bool identified = false;

  [[nodiscard]] double ratio() const noexcept {
    return records == 0 ? 0.0
                        : static_cast<double>(unique_names.size()) /
                              static_cast<double>(records);
  }
};

struct LeakResult {
  /// Suffix -> stats for every suffix with at least one name match.
  std::map<std::string, SuffixStats> suffixes;
  /// The identified networks (suffixes passing steps 5-6), sorted.
  std::vector<std::string> identified;
  /// Fig. 2 series: per given name, the number of matching hostnames.
  std::map<std::string, std::uint64_t> matches_per_name;
  /// Same, restricted to identified networks (the red bars).
  std::map<std::string, std::uint64_t> filtered_matches_per_name;
};

/// Run steps 2-6 over a corpus (which should already be restricted to
/// dynamic blocks for step 1). Term extraction and matching shard across
/// `pool` (nullptr = the global pool); per-chunk partial maps merge into
/// ordered containers by summation/union, so the result is identical at
/// every thread count.
[[nodiscard]] LeakResult identify_leaking_networks(const PtrCorpus& corpus,
                                                   const LeakConfig& config = {},
                                                   util::ThreadPool* pool = nullptr);

/// Count name matches per given name over any corpus (Fig. 2 "all matches"
/// baseline, computed over the unrestricted corpus). Sharded like
/// identify_leaking_networks and equally thread-count independent.
[[nodiscard]] std::map<std::string, std::uint64_t> count_name_matches(
    const PtrCorpus& corpus, util::ThreadPool* pool = nullptr);

}  // namespace rdns::core
