#include "core/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "scan/rdns_snapshot.hpp"

namespace rdns::core {

namespace {

using dhcp::DdnsPolicy;
using dhcp::RemovalBehavior;
using net::Ipv4Addr;
using net::Prefix;
using sim::OrgSpec;
using sim::OrgType;
using sim::PresenceVenue;
using sim::ScheduleKind;
using sim::ScriptedUser;
using sim::SegmentSpec;
using sim::StaticRangeSpec;

[[nodiscard]] int scaled(int n, double factor) {
  return std::max(1, static_cast<int>(std::lround(n * factor)));
}

[[nodiscard]] Prefix p(const char* text) { return Prefix::must_parse(text); }

SegmentSpec segment(const char* label, PresenceVenue venue, const char* prefix,
                    ScheduleKind schedule, int users, double scale,
                    std::uint32_t lease = 3600,
                    DdnsPolicy policy = DdnsPolicy::CarryOverClientId) {
  SegmentSpec s;
  s.label = label;
  s.venue = venue;
  s.prefix = p(prefix);
  s.schedule = schedule;
  s.user_count = scaled(users, scale);
  s.lease_seconds = lease;
  s.ddns_policy = policy;
  return s;
}

// ------------------------------------------------------------ paper world --

/// Static-range fill proportional to the population scale, keeping the
/// static:dynamic record ratio invariant across WorldScale (the Fig. 9/10
/// longitudinal shapes depend on that ratio).
[[nodiscard]] double sfill(double fill, double scale) {
  return fill * std::min(1.0, scale);
}

OrgSpec academic_a(double scale) {
  OrgSpec o;
  o.name = "Academic-A";
  o.type = OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("bayfield-university.edu");
  o.announced = {p("10.10.0.0/16")};
  o.measurement_targets = {p("10.10.0.0/20"), p("10.10.128.0/19")};
  // The campus wifi is split into building-level subnets (science building,
  // library, lecture halls) and students roam between them — the paper's §8
  // building-level geotemporal tracking surface. Users are homed to the
  // science building; roaming reassigns each presence interval.
  o.segments = {
      segment("housing", PresenceVenue::Housing, "10.10.128.0/21",
              ScheduleKind::ResidentStudent, 520, scale),
      segment("sci-building", PresenceVenue::Campus, "10.10.136.0/22", ScheduleKind::Student,
              380, scale),
      segment("library", PresenceVenue::Campus, "10.10.140.0/23", ScheduleKind::Student, 0,
              scale),
      segment("lecture-halls", PresenceVenue::Campus, "10.10.142.0/23", ScheduleKind::Student,
              0, scale),
      segment("staff", PresenceVenue::Campus, "10.10.144.0/22", ScheduleKind::OfficeWorker, 150,
              scale),
  };
  o.segments[0].always_on_count = scaled(25, scale);
  o.students_roam = true;
  o.static_ranges = {
      {p("10.10.0.0/20"), StaticRangeSpec::Style::GenericNames, sfill(0.5, scale), 0.8},
      {p("10.10.16.0/22"), StaticRangeSpec::Style::RouterNames, sfill(0.3, scale), 0.9},
  };

  // The Brians of Fig. 8: two or three residents sharing a popular name.
  ScriptedUser brian1;
  brian1.given_name = "brian";
  brian1.schedule = ScheduleKind::ResidentStudent;
  brian1.segment = 0;
  brian1.devices = {
      {sim::DeviceKind::GenericPhone, "Brian's Phone", std::nullopt, 0.95},
      {sim::DeviceKind::MacbookPro, "Brians-MBP", std::nullopt, 0.75},
      {sim::DeviceKind::MacbookAir, "Brians-Air", std::nullopt, 0.6},
  };
  ScriptedUser brian2;
  brian2.given_name = "brian";
  brian2.schedule = ScheduleKind::ResidentStudent;
  brian2.segment = 0;
  brian2.devices = {
      {sim::DeviceKind::Ipad, "Brian's iPad", std::nullopt, 0.7},
      // Bought in the Black Friday / Cyber Monday sales (first seen on
      // Cyber Monday 2021, the Monday after Thanksgiving).
      {sim::DeviceKind::GalaxyPhone, "Brians-Galaxy-Note9", util::CivilDate{2021, 11, 29},
       0.95},
  };
  o.scripted_users = {brian1, brian2};
  // Academic-A's IPAM also maintains the forward zone (the paper's §10
  // future-work angle: forward DNS is dynamically updated too).
  o.forward_updates = true;

  // Campus COVID risk-level reports (Fig. 9's red marks): sharp drops when
  // moderate/high risk was reported, sharp recoveries on low-risk reports.
  // Unlike Academic-C (whose residents stayed and studied from their
  // rooms, Fig. 10), Academic-A sent students home: lockdowns and campus
  // alerts empty both the buildings AND the dorms.
  o.covid = sim::CovidTimeline::standard();
  o.covid.add_phase({util::CivilDate{2020, 3, 16}, util::CivilDate{2020, 6, 1}, 0.15, 0.45,
                     1.0, "first lockdown: students sent home"});
  o.covid.add_phase({util::CivilDate{2020, 6, 1}, util::CivilDate{2020, 9, 1}, 0.45, 0.7,
                     1.0, "summer 2020 partial reopening"});
  o.covid.add_phase({util::CivilDate{2020, 9, 14}, util::CivilDate{2020, 10, 5}, 0.08, 0.35,
                     1.0, "campus alert: high risk"});
  o.covid.add_phase({util::CivilDate{2020, 10, 5}, util::CivilDate{2020, 10, 15}, 0.55, 0.8,
                     1.0, "campus report: low risk"});
  o.covid.add_phase({util::CivilDate{2020, 10, 15}, util::CivilDate{2021, 1, 11}, 0.25, 0.6,
                     1.0, "second wave"});
  o.covid.add_phase({util::CivilDate{2021, 1, 11}, util::CivilDate{2021, 2, 8}, 0.1, 0.4,
                     1.0, "campus alert: moderate risk"});
  o.covid.add_phase({util::CivilDate{2021, 2, 8}, util::CivilDate{2021, 3, 1}, 0.5, 0.8,
                     1.0, "campus report: low risk"});
  o.seed = 0xACAD0A;
  return o;
}

OrgSpec academic_b(double scale) {
  OrgSpec o;
  o.name = "Academic-B";
  o.type = OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("norfield-institute.edu");
  o.announced = {p("10.11.0.0/16")};
  o.measurement_targets = {p("10.11.0.0/20"), p("10.11.64.0/20")};
  o.segments = {
      segment("wifi", PresenceVenue::Campus, "10.11.64.0/21", ScheduleKind::Student, 420, scale),
      segment("staff", PresenceVenue::Campus, "10.11.72.0/22", ScheduleKind::OfficeWorker, 160,
              scale),
  };
  o.static_ranges = {
      {p("10.11.0.0/20"), StaticRangeSpec::Style::GenericNames, sfill(0.4, scale), 0.0}};
  // Blocks pings on ingress except two hosts — which have no PTR records
  // (Table 4: "the two hosts responding to ICMP did not have a
  // corresponding rDNS entry").
  o.blocks_icmp = true;
  o.icmp_allowlist = {Ipv4Addr::must_parse("10.11.250.10"), Ipv4Addr::must_parse("10.11.250.11")};
  o.seed = 0xACAD0B;
  return o;
}

OrgSpec academic_c(double scale) {
  OrgSpec o;
  o.name = "Academic-C";
  o.type = OrgType::Academic;
  o.suffix = dns::DnsName::must_parse("twensel-university.nl");
  o.announced = {p("10.12.0.0/16")};
  o.measurement_targets = {p("10.12.0.0/20"), p("10.12.64.0/20"), p("10.12.128.0/21")};
  // Longer leases: Academic-C's records linger longer in Fig. 7b.
  o.segments = {
      segment("eduroam", PresenceVenue::Campus, "10.12.64.0/21", ScheduleKind::Student, 420,
              scale, 7200),
      segment("staff", PresenceVenue::Campus, "10.12.72.0/22", ScheduleKind::OfficeWorker, 180,
              scale, 7200),
      segment("campus-housing", PresenceVenue::Housing, "10.12.128.0/21",
              ScheduleKind::ResidentStudent, 460, scale, 7200),
  };
  o.segments[2].always_on_count = scaled(20, scale);
  // Educational buildings carry a large static base (the paper: "more
  // address space assigned to educational buildings, with more static
  // hosts online").
  o.static_ranges = {
      {p("10.12.0.0/20"), StaticRangeSpec::Style::GenericNames, sfill(0.6, scale), 0.8},
      {p("10.12.16.0/21"), StaticRangeSpec::Style::RouterNames, sfill(0.25, scale), 0.9},
  };
  o.seed = 0xACAD0C;
  return o;
}

OrgSpec enterprise_a(double scale) {
  OrgSpec o;
  o.name = "Enterprise-A";
  o.type = OrgType::Enterprise;
  o.suffix = dns::DnsName::must_parse("harborline-systems.com");
  o.announced = {p("10.20.0.0/17"), p("10.20.192.0/19")};
  o.measurement_targets = {p("10.20.0.0/20"), p("10.20.192.0/20")};
  o.segments = {
      segment("corp", PresenceVenue::Campus, "10.20.0.0/21", ScheduleKind::OfficeWorker, 380,
              scale),
      segment("byod", PresenceVenue::Campus, "10.20.8.0/22", ScheduleKind::OfficeWorker, 140,
              scale),
  };
  o.static_ranges = {
      {p("10.20.192.0/20"), StaticRangeSpec::Style::GenericNames, sfill(0.55, scale), 0.9}};
  o.seed = 0xE17A;
  return o;
}

OrgSpec enterprise_b(double scale) {
  OrgSpec o;
  o.name = "Enterprise-B";
  o.type = OrgType::Enterprise;
  o.suffix = dns::DnsName::must_parse("grandmesa-industries.com");
  o.announced = {p("10.21.0.0/16"), p("10.22.0.0/16"), p("10.23.0.0/16")};
  o.measurement_targets = {p("10.21.0.0/21"), p("10.22.0.0/21")};
  o.segments = {
      segment("corp", PresenceVenue::Campus, "10.21.0.0/21", ScheduleKind::OfficeWorker, 320,
              scale),
      segment("office", PresenceVenue::Campus, "10.22.0.0/21", ScheduleKind::OfficeWorker, 220,
              scale),
  };
  o.static_ranges = {
      {p("10.23.0.0/20"), StaticRangeSpec::Style::GenericNames, sfill(0.5, scale), 0.0}};
  o.blocks_icmp = true;  // Table 4: zero addresses observed
  // Fig. 9: Enterprise-B's big decrease comes in March/April 2021 (a later
  // national lockdown), with a partial recovery around May 2021.
  o.covid = sim::CovidTimeline{};
  o.covid.add_phase({util::CivilDate{2020, 3, 20}, util::CivilDate{2020, 9, 1}, 0.75, 1.0, 1.0,
                     "mild 2020 measures"});
  o.covid.add_phase({util::CivilDate{2021, 3, 1}, util::CivilDate{2021, 5, 5}, 0.2, 1.0, 1.0,
                     "hard 2021 lockdown"});
  o.covid.add_phase({util::CivilDate{2021, 5, 5}, util::CivilDate{2021, 9, 1}, 0.55, 1.0, 1.0,
                     "partial recovery"});
  o.covid.add_phase({util::CivilDate{2021, 9, 1}, util::CivilDate{2022, 1, 1}, 0.8, 1.0, 1.0,
                     "autumn 2021"});
  o.seed = 0xE17B;
  return o;
}

OrgSpec enterprise_c(double scale) {
  OrgSpec o;
  o.name = "Enterprise-C";
  o.type = OrgType::Enterprise;
  o.suffix = dns::DnsName::must_parse("pinewood-consulting.com");
  o.announced = {p("10.24.1.0/24"), p("10.24.2.0/24"), p("10.24.3.0/24"), p("10.24.4.0/24"),
                 p("10.24.5.0/24")};
  o.measurement_targets = o.announced;
  o.segments = {
      segment("office", PresenceVenue::Campus, "10.24.1.0/24", ScheduleKind::OfficeWorker, 60,
              scale),
      segment("wifi", PresenceVenue::Campus, "10.24.2.0/24", ScheduleKind::OfficeWorker, 50,
              scale),
  };
  o.static_ranges = {
      {p("10.24.5.0/24"), StaticRangeSpec::Style::GenericNames, sfill(0.4, scale), 0.0}};
  o.blocks_icmp = true;
  // Fig. 9: Enterprise-C drops in March/April 2021 and stays low longer
  // than Enterprise-B.
  o.covid = sim::CovidTimeline{};
  o.covid.add_phase({util::CivilDate{2020, 3, 20}, util::CivilDate{2020, 9, 1}, 0.8, 1.0, 1.0,
                     "mild 2020 measures"});
  o.covid.add_phase({util::CivilDate{2021, 3, 10}, util::CivilDate{2021, 8, 1}, 0.25, 1.0, 1.0,
                     "hard 2021 lockdown, slow exit"});
  o.covid.add_phase({util::CivilDate{2021, 8, 1}, util::CivilDate{2022, 1, 1}, 0.65, 1.0, 1.0,
                     "late recovery"});
  o.seed = 0xE17C;
  return o;
}

OrgSpec isp_a(double scale) {
  OrgSpec o;
  o.name = "ISP-A";
  o.type = OrgType::Isp;
  o.suffix = dns::DnsName::must_parse("lakeshore-broadband.net");
  o.announced = {p("10.30.4.0/22"), p("10.30.8.0/22"), p("10.30.12.0/22")};
  o.measurement_targets = o.announced;
  o.segments = {
      segment("pool", PresenceVenue::Home, "10.30.4.0/22", ScheduleKind::HomeResident, 300,
              scale),
      segment("dsl", PresenceVenue::Home, "10.30.8.0/22", ScheduleKind::HomeResident, 260,
              scale),
  };
  o.segments[0].always_on_count = scaled(40, scale);
  o.seed = 0x15A;
  return o;
}

OrgSpec isp_b(double scale) {
  OrgSpec o;
  o.name = "ISP-B";
  o.type = OrgType::Isp;
  o.suffix = dns::DnsName::must_parse("plainsnet.net");
  o.announced = {p("10.31.0.0/16"), p("10.32.0.0/17"), p("10.32.128.0/18")};
  o.measurement_targets = o.announced;
  o.segments = {
      segment("dyn", PresenceVenue::Home, "10.31.0.0/21", ScheduleKind::HomeResident, 520,
              scale),
      segment("cable", PresenceVenue::Home, "10.32.0.0/21", ScheduleKind::HomeResident, 300,
              scale),
  };
  // Table 4: 0.3% responsive — customer CPEs drop probes.
  o.segments[0].ping_response_scale = 0.012;
  o.segments[1].ping_response_scale = 0.012;
  o.seed = 0x15B;
  return o;
}

OrgSpec isp_c(double scale) {
  OrgSpec o;
  o.name = "ISP-C";
  o.type = OrgType::Isp;
  o.suffix = dns::DnsName::must_parse("riverbend-online.net");
  o.announced = {p("10.33.0.0/16")};
  o.measurement_targets = {p("10.33.0.0/16")};
  o.segments = {
      segment("pool", PresenceVenue::Home, "10.33.0.0/21", ScheduleKind::HomeResident, 560,
              scale),
  };
  o.segments[0].ping_response_scale = 0.15;  // Table 4: 1.7% of the /16
  o.seed = 0x15C;
  return o;
}

}  // namespace

std::unique_ptr<sim::World> make_paper_world(std::uint64_t seed, WorldScale scale,
                                             util::SimTime dhcp_tick) {
  sim::WorldConfig config;
  config.seed = seed;
  config.dhcp_tick_seconds = dhcp_tick;
  auto world = std::make_unique<sim::World>(config);
  const double s = scale.population;
  for (auto spec : {academic_a(s), academic_b(s), academic_c(s), enterprise_a(s),
                    enterprise_b(s), enterprise_c(s), isp_a(s), isp_b(s), isp_c(s)}) {
    spec.seed = util::mix64(spec.seed ^ seed);
    world->add_org(std::move(spec));
  }
  return world;
}

// ---------------------------------------------------------- internet world --

namespace {

const std::vector<std::string>& org_stems() {
  static const std::vector<std::string> kStems = {
      "cedar",   "harbor",  "willow", "granite", "summit",  "prairie", "redwood",
      "mesa",    "aurora",  "keystone","cascade", "alder",  "birch",   "juniper",
      "onyx",    "cobalt",  "merit",  "beacon",  "orchard", "quarry",  "lagoon",
      "bluff",   "canyon",  "delta",  "ember",   "fjord",   "glade",   "hollow",
      "islet",   "jasper",  "knoll",  "larch",   "marsh",   "nook",    "oasis",
      "pebble",  "quill",   "ridge",  "sable",   "thicket", "umber",   "vale",
  };
  return kStems;
}

struct InternetOrgPlan {
  OrgType type = OrgType::Other;
  DdnsPolicy policy = DdnsPolicy::None;
  bool router_only = false;
  bool blocks_icmp = false;
  int users = 0;
};

}  // namespace

std::unique_ptr<sim::World> make_internet_world(std::uint64_t seed, int org_count,
                                                WorldScale scale, util::SimTime dhcp_tick) {
  if (org_count < 1 || org_count > 180) {
    throw std::invalid_argument("make_internet_world: org_count must be in [1, 180]");
  }
  sim::WorldConfig config;
  config.seed = seed;
  config.dhcp_tick_seconds = dhcp_tick;
  auto world = std::make_unique<sim::World>(config);
  util::Rng rng{util::mix64(seed ^ 0x17E12E7)};

  // Policy mixes are stratified deterministically (every k-th org of a
  // type leaks) so that small worlds still carry the intended composition;
  // the paper's Fig. 4 breakdown is an emergent property of this mix.
  int academic_n = 0, isp_n = 0, enterprise_n = 0, government_n = 0;
  for (int i = 0; i < org_count; ++i) {
    InternetOrgPlan plan;
    const double roll = rng.uniform();
    if (roll < 0.30) {
      plan.type = OrgType::Academic;
      plan.policy = (academic_n++ % 4 != 3) ? DdnsPolicy::CarryOverClientId
                                            : DdnsPolicy::StaticGeneric;
      plan.users = static_cast<int>(rng.uniform_int(140, 420));
    } else if (roll < 0.55) {
      plan.type = OrgType::Isp;
      plan.policy = (isp_n++ % 4 == 1) ? DdnsPolicy::CarryOverClientId
                                       : DdnsPolicy::StaticGeneric;
      plan.users = static_cast<int>(rng.uniform_int(160, 450));
    } else if (roll < 0.75) {
      plan.type = OrgType::Enterprise;
      plan.policy = (enterprise_n++ % 3 == 1) ? DdnsPolicy::CarryOverClientId
                                              : DdnsPolicy::StaticGeneric;
      plan.blocks_icmp = rng.chance(0.4);
      plan.users = static_cast<int>(rng.uniform_int(80, 240));
    } else if (roll < 0.80) {
      plan.type = OrgType::Government;
      plan.policy = (government_n++ % 5 == 1) ? DdnsPolicy::CarryOverClientId
                                              : DdnsPolicy::StaticGeneric;
      plan.users = static_cast<int>(rng.uniform_int(70, 180));
    } else {
      // Transit/hosting networks: router-level names only, no dynamics —
      // the Fig. 2 "all matches" background and city-name confusion source.
      plan.type = OrgType::Other;
      plan.router_only = true;
    }

    OrgSpec o;
    const std::string stem =
        org_stems()[static_cast<std::size_t>(i) % org_stems().size()] +
        (i >= static_cast<int>(org_stems().size()) ? std::to_string(i / org_stems().size())
                                                   : std::string{});
    const int slot = 40 + i;
    const std::string base = "10." + std::to_string(slot) + ".";
    o.announced = {Prefix::must_parse(base + "0.0/16")};
    o.type = plan.type;
    o.blocks_icmp = plan.blocks_icmp;
    o.seed = rng.next();

    switch (plan.type) {
      case OrgType::Academic: {
        o.name = stem + "-university";
        o.suffix = dns::DnsName::must_parse(
            rng.chance(0.7) ? stem + "-university.edu" : stem + "-college.ac.uk");
        o.segments = {
            segment("wifi", PresenceVenue::Campus, (base + "64.0/22").c_str(),
                    ScheduleKind::Student, plan.users * 6 / 10, scale.population, 3600,
                    plan.policy),
            segment("housing", PresenceVenue::Housing, (base + "128.0/22").c_str(),
                    ScheduleKind::ResidentStudent, plan.users * 4 / 10, scale.population, 3600,
                    plan.policy),
        };
        o.static_ranges = {
            {Prefix::must_parse(base + "0.0/20"), StaticRangeSpec::Style::GenericNames, 0.4,
             0.7}};
        break;
      }
      case OrgType::Isp: {
        o.name = stem + "-isp";
        o.suffix = dns::DnsName::must_parse(rng.chance(0.5) ? stem + "-broadband.net"
                                                            : stem + "-telecom.net");
        o.segments = {
            segment("pool", PresenceVenue::Home, (base + "0.0/21").c_str(),
                    ScheduleKind::HomeResident, plan.users, scale.population, 3600, plan.policy),
        };
        break;
      }
      case OrgType::Enterprise: {
        o.name = stem + "-corp";
        o.suffix = dns::DnsName::must_parse(rng.chance(0.5) ? stem + "-corp.com"
                                                            : stem + "-systems.com");
        o.segments = {
            segment("corp", PresenceVenue::Campus, (base + "0.0/22").c_str(),
                    ScheduleKind::OfficeWorker, plan.users, scale.population, 3600, plan.policy),
        };
        o.static_ranges = {
            {Prefix::must_parse(base + "192.0/20"), StaticRangeSpec::Style::GenericNames, 0.4,
             0.6}};
        break;
      }
      case OrgType::Government: {
        o.name = stem + "-agency";
        o.suffix = dns::DnsName::must_parse(stem + "-agency.gov");
        o.segments = {
            segment("office", PresenceVenue::Campus, (base + "0.0/22").c_str(),
                    ScheduleKind::OfficeWorker, plan.users, scale.population, 3600, plan.policy),
        };
        break;
      }
      case OrgType::Other: {
        o.name = stem + "-transit";
        o.suffix = dns::DnsName::must_parse(stem + "-transit.org");
        o.static_ranges = {
            {Prefix::must_parse(base + "0.0/19"), StaticRangeSpec::Style::RouterNames, 0.35,
             0.9}};
        break;
      }
    }
    world->add_org(std::move(o));
  }
  return world;
}

// ---------------------------------------------------------- scale world --

std::unique_ptr<sim::World> make_scale_world(std::uint64_t seed, std::uint64_t device_target) {
  // Fixed per-org PTR budget: StaticGeneric /17 pool (32766 names) plus a
  // fully numbered static /18 (16382 names). The /19 dynamic segment
  // publishes nothing until the world is simulated.
  constexpr std::uint64_t kPtrsPerOrg = 32766 + 16382;
  const std::uint64_t org_count =
      std::max<std::uint64_t>(1, (device_target + kPtrsPerOrg - 1) / kPtrsPerOrg);
  if (org_count > 256) {
    throw std::invalid_argument(
        "make_scale_world: device_target needs more than 256 /16 slots");
  }
  sim::WorldConfig config;
  config.seed = seed;
  auto world = std::make_unique<sim::World>(config);
  util::Rng rng{util::mix64(seed ^ 0x5CA1ED)};
  for (std::uint64_t i = 0; i < org_count; ++i) {
    const std::string stem = "scale-" + std::to_string(i);
    const std::string base = "10." + std::to_string(i) + ".";
    OrgSpec o;
    o.name = stem;
    o.type = OrgType::Isp;
    o.suffix = dns::DnsName::must_parse(stem + "-broadband.net");
    o.announced = {Prefix::must_parse(base + "0.0/16")};

    SegmentSpec pool;
    pool.label = "pool";
    pool.venue = PresenceVenue::Home;
    pool.prefix = Prefix::must_parse(base + "0.0/17");
    pool.schedule = ScheduleKind::HomeResident;
    pool.user_count = 0;
    pool.ddns_policy = DdnsPolicy::StaticGeneric;

    SegmentSpec dyn;
    dyn.label = "dyn";
    dyn.venue = PresenceVenue::Home;
    dyn.prefix = Prefix::must_parse(base + "192.0/19");
    dyn.schedule = ScheduleKind::HomeResident;
    dyn.user_count = 500;
    dyn.ddns_policy = DdnsPolicy::CarryOverClientId;

    o.segments = {pool, dyn};
    o.static_ranges = {{Prefix::must_parse(base + "128.0/18"),
                        StaticRangeSpec::Style::GenericNames, /*fill=*/1.0,
                        /*pingable=*/0.0}};
    o.seed = rng.next();
    world->add_org(std::move(o));
  }
  return world;
}

// ------------------------------------------------------------- pipeline --

PipelineReport run_identification_pipeline(sim::World& world, const PipelineConfig& config) {
  // Two sinks over the same sweep stream: the /24 dynamicity detector and
  // the PTR corpus (unrestricted — the Fig. 2 "all matches" baseline needs
  // the whole corpus; step-1 restriction happens logically in names.cpp by
  // passing a filtered corpus).
  struct Tee final : public scan::SnapshotSink {
    std::vector<scan::SnapshotSink*> sinks;
    void on_row(const util::CivilDate& d, net::Ipv4Addr a, const dns::DnsName& n) override {
      for (auto* s : sinks) s->on_row(d, a, n);
    }
    void on_sweep_end(const util::CivilDate& d) override {
      for (auto* s : sinks) s->on_sweep_end(d);
    }
  };

  DynamicityDetector detector;
  PtrCorpus full_corpus;
  Tee tee;
  tee.sinks = {&detector, &full_corpus};

  scan::SweepDriver driver{world, config.sweep_hour, /*every_days=*/1};
  const auto sweep_stats = driver.run(config.from, config.to, tee);

  PipelineReport report;
  report.sweep_rows = sweep_stats.total_rows;
  report.sweeps = sweep_stats.sweeps;
  report.dynamicity = detector.analyze(config.dynamicity);
  report.rollup =
      rollup_to_announced(report.dynamicity.dynamic_blocks(), world.announced_prefixes());

  // Section 5 runs on the dynamic blocks only (step 1); we re-filter the
  // full corpus through a restricted one.
  PtrCorpus dynamic_corpus;
  dynamic_corpus.restrict_to(report.dynamicity.dynamic_blocks());
  for (const auto& [hostname, entry] : full_corpus.entries()) {
    dynamic_corpus.add_entry(entry);  // preserves observation weights
  }
  report.leaks = identify_leaking_networks(dynamic_corpus, config.leak);
  // Fig. 2's blue bars count matches over ALL records, dynamic or not.
  report.leaks.matches_per_name = count_name_matches(full_corpus);
  report.cooccurrence = count_device_terms(dynamic_corpus, report.leaks.identified);
  report.types = classify_all(report.leaks.identified);
  return report;
}

}  // namespace rdns::core
