#pragma once
/// \file pipeline.hpp
/// End-to-end orchestration of the paper's identification pipeline
/// (Sections 4-5) plus the canonical world recipes used by the benches,
/// examples and integration tests:
///
///   make_paper_world()    — the nine campaign networks of Table 4
///                           (three academic, three enterprise, three ISP),
///                           including the scripted Brians of Fig. 8;
///   make_internet_world() — a wider synthetic Internet with a mixture of
///                           exposing and non-exposing networks for the
///                           Section 4/5 identification experiments.

#include <memory>

#include "core/classify.hpp"
#include "core/cooccur.hpp"
#include "core/dynamicity.hpp"
#include "core/names.hpp"
#include "sim/world.hpp"

namespace rdns::core {

/// Scales population sizes in the recipes (1.0 = the defaults documented in
/// DESIGN.md; benches use smaller factors to trade fidelity for speed).
struct WorldScale {
  double population = 1.0;
};

/// The nine-network world of the supplemental measurement (Table 4):
///   Academic-A  /16, campus housing, the Brians (Fig. 8)
///   Academic-B  /16, blocks ICMP except two PTR-less hosts
///   Academic-C  /16, the authors' institution: education vs housing
///               subnets (Fig. 10), longer leases (Fig. 7b)
///   Enterprise-A /17 + /19, pingable
///   Enterprise-B 3x/16, blocks ICMP
///   Enterprise-C 5x/24, blocks ICMP
///   ISP-A 3x/22; ISP-B /16+/17+/18 (0.3% responsive); ISP-C /16 (1.7%)
[[nodiscard]] std::unique_ptr<sim::World> make_paper_world(std::uint64_t seed,
                                                           WorldScale scale = {},
                                                           util::SimTime dhcp_tick = 60);

/// A synthetic Internet of `org_count` organizations with a realistic
/// policy mix: carry-over leakers (mostly academic), static-generic
/// networks, ISP pools with fixed-form names, router-only transit networks
/// (the city-name false-positive source) and ping-blocking enterprises.
[[nodiscard]] std::unique_ptr<sim::World> make_internet_world(std::uint64_t seed,
                                                              int org_count,
                                                              WorldScale scale = {},
                                                              util::SimTime dhcp_tick = 300);

/// A memory-lean synthetic Internet sized to hold `device_target` published
/// PTR records, for the scale benches. Each org owns one 10.<i>.0.0/16 and
/// contributes a fixed PTR budget: a StaticGeneric /17 pool (32766 names
/// through the bulk fill), a fully numbered static /18 (16382 names) and a
/// small dynamic /19 whose user population stays unmaterialized unless the
/// world is simulated — so building + sweeping the world never allocates
/// per-device state. Throws std::invalid_argument when `device_target`
/// needs more than 256 /16 slots (~12.5M records).
[[nodiscard]] std::unique_ptr<sim::World> make_scale_world(std::uint64_t seed,
                                                           std::uint64_t device_target);

/// One-stop identification pipeline over a date window: daily sweeps feed
/// the dynamicity detector and the PTR corpus; then the Section 4 heuristic
/// and Section 5 filtering run.
struct PipelineConfig {
  util::CivilDate from{2021, 1, 1};
  util::CivilDate to{2021, 3, 31};
  int sweep_hour = 14;  ///< snapshot local time
  DynamicityConfig dynamicity;
  LeakConfig leak;
};

struct PipelineReport {
  DynamicityResult dynamicity;
  std::vector<PrefixDynamicity> rollup;  ///< Fig. 1 raw data
  LeakResult leaks;                      ///< Fig. 2 + identified networks
  CooccurrenceResult cooccurrence;       ///< Fig. 3
  TypeBreakdown types;                   ///< Fig. 4
  std::uint64_t sweep_rows = 0;
  std::size_t sweeps = 0;
};

[[nodiscard]] PipelineReport run_identification_pipeline(sim::World& world,
                                                         const PipelineConfig& config);

}  // namespace rdns::core
