#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace rdns::core {

std::string render_markdown_report(const PipelineReport& report, const ReportOptions& options) {
  std::ostringstream out;
  out << "# " << options.title << "\n\n";

  // ---- headline -----------------------------------------------------------
  out << "## Summary\n\n";
  out << "| metric | value |\n|---|---|\n";
  out << "| sweeps analyzed | " << report.sweeps << " |\n";
  out << "| rows ingested | "
      << util::with_commas(static_cast<std::int64_t>(report.sweep_rows)) << " |\n";
  out << "| /24 blocks with PTR records | " << report.dynamicity.total_slash24_seen << " |\n";
  out << "| dynamic /24 blocks (§4.1 heuristic) | " << report.dynamicity.dynamic_count
      << " |\n";
  out << "| networks leaking client identifiers (§5) | " << report.leaks.identified.size()
      << " |\n\n";

  // ---- identified networks ------------------------------------------------
  out << "## Identified networks\n\n";
  if (report.leaks.identified.empty()) {
    out << "No network met the identification criteria. Either the data set is\n"
           "clean, or the thresholds (unique-name count / ratio) are too strict\n"
           "for its size.\n\n";
  } else {
    out << "| suffix | type | matched records | unique given names | ratio |\n";
    out << "|---|---|---|---|---|\n";
    std::size_t listed = 0;
    for (const auto& suffix : report.leaks.identified) {
      if (options.max_listed_networks > 0 && listed++ >= options.max_listed_networks) break;
      const auto& stats = report.leaks.suffixes.at(suffix);
      out << "| `" << suffix << "` | " << to_string(classify_suffix(suffix)) << " | "
          << stats.records << " | " << stats.unique_names.size() << " | "
          << util::format("%.2f", stats.ratio()) << " |\n";
    }
    out << "\n";
    out << "Type breakdown: ";
    bool first = true;
    for (const auto type :
         {NetworkType::Academic, NetworkType::Isp, NetworkType::Enterprise,
          NetworkType::Government, NetworkType::Other}) {
      if (!first) out << ", ";
      first = false;
      out << to_string(type) << " " << util::format("%.1f%%", report.types.percent(type));
    }
    out << ".\n\n";
  }

  // ---- given names ---------------------------------------------------------
  out << "## Given-name matches\n\n";
  std::vector<std::pair<std::string, std::uint64_t>> top(
      report.leaks.filtered_matches_per_name.begin(),
      report.leaks.filtered_matches_per_name.end());
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (top.empty()) {
    out << "No given-name matches inside identified networks.\n\n";
  } else {
    out << "Top names observed in identified networks (all-data counts in "
           "parentheses):\n\n";
    std::size_t listed = 0;
    for (const auto& [name, count] : top) {
      if (options.max_listed_names > 0 && listed++ >= options.max_listed_names) break;
      const auto all_it = report.leaks.matches_per_name.find(name);
      const std::uint64_t all = all_it == report.leaks.matches_per_name.end() ? 0 : all_it->second;
      out << "- **" << name << "**: " << count << " (" << all << ")\n";
    }
    out << "\n";
  }

  // ---- device terms ----------------------------------------------------------
  out << "## Device make/model terms co-occurring with names\n\n";
  if (report.cooccurrence.total_filtered == 0) {
    out << "None observed.\n\n";
  } else {
    out << "| term | identified networks | all data |\n|---|---|---|\n";
    for (const auto& term : device_terms()) {
      const auto filtered = report.cooccurrence.filtered_matches.at(term);
      if (filtered == 0) continue;
      out << "| " << term << " | " << filtered << " | "
          << report.cooccurrence.all_matches.at(term) << " |\n";
    }
    out << "\n";
  }

  if (options.include_methodology) {
    out << "## Methodology\n\n"
        << "This report applies the pipeline of *Saving Brian's Privacy: the Perils\n"
        << "of Privacy Exposure through Reverse DNS* (IMC 2022): /24 blocks whose\n"
        << "daily unique-PTR counts change by more than 10% of their period maximum\n"
        << "on enough days are marked dynamic; PTR records inside dynamic blocks are\n"
        << "matched against the top-50 US given names after filtering router-level\n"
        << "terms; suffixes with many unique name matches and a sufficient\n"
        << "names-to-records ratio are flagged as exposing networks. Flagged\n"
        << "networks publish client identifiers — often `owner-name + device model`\n"
        << "(e.g. `brians-iphone`) — in the globally queryable reverse DNS.\n\n"
        << "Mitigation: block Host Name propagation from DHCP to DNS, or publish\n"
        << "hashed/fixed-form names (see the paper's Section 8).\n";
  }
  return out.str();
}

}  // namespace rdns::core
