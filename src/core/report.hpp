#pragma once
/// \file report.hpp
/// Markdown report generation from pipeline results — what the CLI's
/// `analyze` subcommand hands to a human: the §4/§5 findings of a sweep
/// data set, one section per analysis, with the paper's terminology.

#include <string>

#include "core/pipeline.hpp"

namespace rdns::core {

struct ReportOptions {
  std::string title = "Reverse-DNS privacy exposure report";
  /// Cap per-section listings (0 = unlimited).
  std::size_t max_listed_networks = 25;
  std::size_t max_listed_names = 15;
  bool include_methodology = true;
};

/// Render a PipelineReport (the §4 dynamicity + §5 identification results)
/// as a self-contained markdown document.
[[nodiscard]] std::string render_markdown_report(const PipelineReport& report,
                                                 const ReportOptions& options = {});

}  // namespace rdns::core
