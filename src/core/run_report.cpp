#include "core/run_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace rdns::core {

namespace journal = rdns::util::journal;
namespace metrics = rdns::util::metrics;

namespace {

bool read_file(const std::string& path, std::string* out, std::string* error) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Re-emit a parsed JsonValue as compact JSON. Numbers that round-trip as
/// integers are printed without a decimal point (counter values survive).
void append_json(std::string& out, const journal::JsonValue& v) {
  using Kind = journal::JsonValue::Kind;
  switch (v.kind) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += v.boolean ? "true" : "false"; return;
    case Kind::Number: {
      const double d = v.number;
      if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
        out += util::format("%lld", static_cast<long long>(d));
      } else {
        out += metrics::json_number(d);
      }
      return;
    }
    case Kind::String:
      out += '"';
      metrics::append_json_escaped(out, v.string);
      out += '"';
      return;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i != 0) out += ", ";
        append_json(out, v.array[i]);
      }
      out += ']';
      return;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i != 0) out += ", ";
        out += '"';
        metrics::append_json_escaped(out, v.object[i].first);
        out += "\": ";
        append_json(out, v.object[i].second);
      }
      out += '}';
      return;
    }
  }
}

/// Second replay pass over the journal: retry chains + sweep.progress.
/// (journal_audit checks the *invariants*; this pass only aggregates.)
void scan_journal_lines(std::string_view text, RetryChainStats* retries,
                        SweepProgressSummary* progress) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    // Cheap pre-filter: only two event types matter here.
    const bool is_retry = line.find("\"dns.retry\"") != std::string_view::npos;
    const bool is_progress = line.find("\"sweep.progress\"") != std::string_view::npos;
    if (!is_retry && !is_progress) continue;
    const auto parsed = journal::parse_json(line);
    if (!parsed || parsed->kind != journal::JsonValue::Kind::Object) continue;
    const std::string type = parsed->get_string("type");
    if (is_retry && type == "dns.retry") {
      const auto n = static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("n")));
      ++retries->retries;
      if (n == 1) ++retries->chains;
      retries->longest = std::max(retries->longest, n);
      retries->total_backoff_s +=
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("delay_s")));
    } else if (is_progress && type == "sweep.progress") {
      ++progress->events;
      progress->last_rows =
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("rows")));
      progress->last_shards_done =
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("shards_done")));
      progress->last_shards_total =
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("shards_total")));
      progress->last_rows_per_s = parsed->get_number("rows_per_s");
      progress->last_percent = parsed->get_number("percent");
      const std::string day = parsed->get_string("day");
      if (!day.empty() &&
          std::find(progress->days.begin(), progress->days.end(), day) == progress->days.end()) {
        progress->days.push_back(day);
      }
    }
  }
}

void scan_flight_dump(std::string_view text, FlightSummary* flight) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const auto parsed = journal::parse_json(line);
    if (!parsed || parsed->kind != journal::JsonValue::Kind::Object) continue;
    if (parsed->has("schema")) {  // segment header
      ++flight->segments;
      flight->dropped +=
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, parsed->get_int("dropped")));
      continue;
    }
    if (!parsed->has("kind")) continue;
    ++flight->events;
    ++flight->kind_counts[parsed->get_string("kind", "?")];
  }
  flight->present = true;
}

void append_u64_map_json(std::string& out, const std::map<std::string, std::uint64_t>& m,
                         const std::string& pad) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "  \"";
    metrics::append_json_escaped(out, k);
    out += util::format("\": %" PRIu64, v);
  }
  if (!first) out += '\n' + pad;
  out += '}';
}

/// Render one span node (and children, depth-limited) as markdown bullets.
void render_phase_markdown(std::string& out, const journal::JsonValue& node, int depth) {
  if (node.kind != journal::JsonValue::Kind::Object) return;
  out += std::string(static_cast<std::size_t>(depth) * 2, ' ');
  out += util::format("- `%s`: %.1f ms wall, %.1f ms cpu (x%lld)\n",
                      node.get_string("name", "?").c_str(), node.get_number("wall_ms"),
                      node.get_number("cpu_ms"), static_cast<long long>(node.get_int("count", 1)));
  if (depth >= 3) return;
  if (const auto* children = node.find("children");
      children != nullptr && children->kind == journal::JsonValue::Kind::Array) {
    for (const auto& child : children->array) render_phase_markdown(out, child, depth + 1);
  }
}

}  // namespace

RunReport build_run_report(const std::string& journal_path, const std::string& snapshot_path,
                           const std::string& flight_path, const RunReportOptions& options) {
  RunReport report;
  report.title = options.title;
  report.journal_path = journal_path;

  report.audit = audit_journal_file(journal_path, options.audit);
  std::string journal_text;
  if (read_file(journal_path, &journal_text, nullptr)) {
    scan_journal_lines(journal_text, &report.retries, &report.progress);
  }

  if (!snapshot_path.empty()) {
    std::string text;
    std::string error;
    if (!read_file(snapshot_path, &text, &error)) {
      report.errors.push_back("snapshot: " + error);
    } else if (auto parsed = journal::parse_json(text, &error); !parsed) {
      report.errors.push_back("snapshot: parse error: " + error);
    } else if (parsed->get_string("schema") != journal::kObservabilitySchema) {
      report.errors.push_back("snapshot: unexpected schema \"" + parsed->get_string("schema") +
                              "\"");
    } else {
      report.snapshot_present = true;
      if (const auto* m = parsed->find("manifest")) {
        report.snapshot_manifest = manifest_from_json(*m);
        if (report.audit.manifest) {
          std::string why;
          if (!journal::manifests_compatible(*report.audit.manifest, *report.snapshot_manifest,
                                             &why)) {
            report.manifest_mismatch = why;
          }
        }
      }
      if (const auto* counters = parsed->find("counters");
          counters != nullptr && counters->kind == journal::JsonValue::Kind::Object) {
        for (const auto& [name, value] : counters->object) {
          if (value.kind == journal::JsonValue::Kind::Number && value.number >= 0) {
            report.snapshot_counters[name] = static_cast<std::uint64_t>(value.number);
          }
        }
      }
      if (const auto* spans = parsed->find("spans")) report.phases = *spans;
    }
  }

  if (!flight_path.empty()) {
    std::string text;
    std::string error;
    if (!read_file(flight_path, &text, &error)) {
      report.errors.push_back("flight: " + error);
    } else {
      scan_flight_dump(text, &report.flight);
      if (report.flight.segments == 0) {
        report.errors.push_back("flight: no rdns.flight.v1 segment header in " + flight_path);
      }
    }
  }

  return report;
}

std::string render_run_report_json(const RunReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"" + std::string(kReportSchema) + "\",\n";
  out += "  \"title\": \"";
  metrics::append_json_escaped(out, report.title);
  out += "\",\n";
  out += util::format("  \"ok\": %s,\n", report.ok() ? "true" : "false");
  if (report.audit.manifest) {
    out += "  \"manifest\": " + journal::manifest_json(*report.audit.manifest) + ",\n";
  }

  const auto& a = report.audit;
  out += "  \"audit\": {\n";
  out += util::format("    \"ok\": %s,\n    \"parsed\": %s,\n", a.ok() ? "true" : "false",
                      a.parsed ? "true" : "false");
  out += util::format("    \"events\": %zu,\n    \"violations\": %zu,\n", a.events,
                      a.violations.size());
  out += util::format("    \"leases_started\": %" PRIu64 ",\n    \"leases_ended\": %" PRIu64
                      ",\n    \"ptr_added\": %" PRIu64 ",\n    \"ptr_removed\": %" PRIu64 ",\n",
                      a.leases_started, a.leases_ended, a.ptr_added, a.ptr_removed);
  out += util::format("    \"faults_injected\": %" PRIu64 ",\n    \"dns_retries\": %" PRIu64
                      ",\n    \"stale_ptrs\": %" PRIu64 ",\n    \"degraded_shards\": %" PRIu64
                      ",\n",
                      a.faults_injected, a.dns_retries, a.stale_ptrs, a.degraded_shards);
  out += "    \"violation_samples\": [";
  const std::size_t sample_count = std::min<std::size_t>(a.violations.size(), 10);
  for (std::size_t i = 0; i < sample_count; ++i) {
    const auto& v = a.violations[i];
    out += i != 0 ? ",\n      " : "\n      ";
    out += util::format("{\"line\": %zu, \"invariant\": \"", v.line);
    metrics::append_json_escaped(out, v.invariant);
    out += "\", \"detail\": \"";
    metrics::append_json_escaped(out, v.detail);
    out += "\"}";
  }
  out += sample_count != 0 ? "\n    ]\n" : "]\n";
  out += "  },\n";

  out += "  \"event_counts\": ";
  append_u64_map_json(out, a.event_counts, "  ");
  out += ",\n";

  out += util::format("  \"retry_chains\": {\"chains\": %" PRIu64 ", \"retries\": %" PRIu64
                      ", \"longest\": %" PRIu64 ", \"total_backoff_s\": %" PRIu64 "},\n",
                      report.retries.chains, report.retries.retries, report.retries.longest,
                      report.retries.total_backoff_s);

  const auto& p = report.progress;
  out += util::format("  \"sweep_progress\": {\"events\": %" PRIu64 ", \"rows\": %" PRIu64
                      ", \"shards_done\": %" PRIu64 ", \"shards_total\": %" PRIu64
                      ", \"rows_per_s\": %s, \"percent\": %s, \"days\": [",
                      p.events, p.last_rows, p.last_shards_done, p.last_shards_total,
                      metrics::json_number(p.last_rows_per_s).c_str(),
                      metrics::json_number(p.last_percent).c_str());
  for (std::size_t i = 0; i < p.days.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    metrics::append_json_escaped(out, p.days[i]);
    out += '"';
  }
  out += "]},\n";

  const auto& f = report.flight;
  out += util::format("  \"flight\": {\"present\": %s, \"segments\": %" PRIu64
                      ", \"events\": %" PRIu64 ", \"dropped\": %" PRIu64 ", \"kinds\": ",
                      f.present ? "true" : "false", f.segments, f.events, f.dropped);
  append_u64_map_json(out, f.kind_counts, "  ");
  out += "},\n";

  out += "  \"phases\": ";
  append_json(out, report.phases);
  out += ",\n";

  if (!report.manifest_mismatch.empty()) {
    out += "  \"manifest_mismatch\": \"";
    metrics::append_json_escaped(out, report.manifest_mismatch);
    out += "\",\n";
  }
  out += "  \"errors\": [";
  for (std::size_t i = 0; i < report.errors.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    metrics::append_json_escaped(out, report.errors[i]);
    out += '"';
  }
  out += "]\n";
  out += "}\n";
  return out;
}

std::string render_run_report_markdown(const RunReport& report) {
  std::string out;
  out += "# " + report.title + "\n\n";

  if (report.audit.manifest) {
    const auto& m = *report.audit.manifest;
    out += util::format(
        "Run: tool `%s`, version `%s`, seed %" PRIu64 ", faults `%s`, world digest %016" PRIx64
        ".\n\n",
        m.tool.c_str(), m.version.c_str(), m.seed, m.faults.c_str(), m.world_digest);
  }
  if (!report.manifest_mismatch.empty()) {
    out += "> **Warning**: snapshot provenance differs from the journal (" +
           report.manifest_mismatch + ").\n\n";
  }

  const auto& a = report.audit;
  out += "## Audit\n\n";
  if (!a.parsed) {
    out += "Journal unreadable: `" + report.journal_path + "`.\n\n";
  } else {
    out += util::format("%s — %zu events replayed, %zu invariant violation(s).\n\n",
                        a.ok() ? "**PASS**" : "**FAIL**", a.events, a.violations.size());
    for (std::size_t i = 0; i < std::min<std::size_t>(a.violations.size(), 10); ++i) {
      const auto& v = a.violations[i];
      out += util::format("- line %zu `%s`: %s\n", v.line, v.invariant.c_str(), v.detail.c_str());
    }
    if (a.violations.size() > 10) {
      out += util::format("- … %zu more\n", a.violations.size() - 10);
    }
    if (!a.violations.empty()) out += "\n";
    out += "| lifecycle | count |\n|---|---|\n";
    out += util::format("| leases started | %" PRIu64 " |\n", a.leases_started);
    out += util::format("| leases ended | %" PRIu64 " |\n", a.leases_ended);
    out += util::format("| PTR added | %" PRIu64 " |\n", a.ptr_added);
    out += util::format("| PTR removed | %" PRIu64 " |\n", a.ptr_removed);
    out += "\n";
  }

  out += "## Faults and resilience\n\n";
  out += util::format("%" PRIu64 " fault(s) injected; %" PRIu64
                      " stale PTR(s) excused by lost DynDNS removals; %" PRIu64
                      " sweep shard(s) degraded.\n\n",
                      a.faults_injected, a.stale_ptrs, a.degraded_shards);
  const auto& r = report.retries;
  out += util::format("Resolver retries: %" PRIu64 " chain(s), %" PRIu64
                      " retry event(s), longest chain %" PRIu64 ", %" PRIu64
                      " s total simulated back-off.\n\n",
                      r.chains, r.retries, r.longest, r.total_backoff_s);

  const auto& p = report.progress;
  out += "## Sweep progress\n\n";
  if (p.events == 0) {
    out += "No sweep.progress events (progress plane not armed).\n\n";
  } else {
    out += util::format("%" PRIu64 " progress sample(s); last: %" PRIu64 "/%" PRIu64
                        " shards (%.1f%%), %" PRIu64 " rows, %.0f rows/s.\n",
                        p.events, p.last_shards_done, p.last_shards_total, p.last_percent,
                        p.last_rows, p.last_rows_per_s);
    if (!p.days.empty()) {
      out += "Days:";
      for (const auto& d : p.days) out += " " + d;
      out += "\n";
    }
    out += "\n";
  }

  const auto& f = report.flight;
  out += "## Flight recorder\n\n";
  if (!f.present) {
    out += "No flight dump supplied.\n\n";
  } else {
    out += util::format("%" PRIu64 " event(s) across %" PRIu64 " segment(s), %" PRIu64
                        " dropped by ring wrap.\n\n",
                        f.events, f.segments, f.dropped);
    if (!f.kind_counts.empty()) {
      out += "| kind | events |\n|---|---|\n";
      for (const auto& [kind, count] : f.kind_counts) {
        out += util::format("| `%s` | %" PRIu64 " |\n", kind.c_str(), count);
      }
      out += "\n";
    }
  }

  out += "## Phase timing\n\n";
  if (report.phases.kind != journal::JsonValue::Kind::Object) {
    out += "No span tree (run without --metrics-out, or tracing disabled).\n";
  } else {
    render_phase_markdown(out, report.phases, 0);
  }

  if (!report.errors.empty()) {
    out += "\n## Input problems\n\n";
    for (const auto& e : report.errors) out += "- " + e + "\n";
  }
  return out;
}

}  // namespace rdns::core
