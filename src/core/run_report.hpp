#pragma once
/// \file run_report.hpp
/// Unified run report (`rdns_tool report`): folds the observability
/// artifacts one run leaves behind — the journal, an optional metrics
/// snapshot (rdns.observability.v1) and an optional flight-recorder dump
/// (rdns.flight.v1) — into a single schema-versioned `rdns.report.v1`
/// JSON document plus a markdown narrative.
///
/// The report is derived entirely from the artifact files, never from
/// in-process state, so a report can be produced on any machine for a run
/// performed anywhere (the same property journal_audit has). On top of the
/// auditor's invariant replay it adds the aggregations a human asks for
/// first:
///
///   - retry-chain statistics: how many dns.retry chains ran, the longest
///     chain, total simulated back-off spent;
///   - fault-excusal accounting: injected faults vs the stale PTRs and
///     degraded shards they excuse (journal_audit's Fig. 7 failure tail);
///   - sweep progress: the last sweep.progress sample per run plus the
///     set of sweep days covered;
///   - flight-recorder summary: events per kind, drops, segments;
///   - per-phase timing from the snapshot's span tree.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/journal_audit.hpp"
#include "util/journal.hpp"

namespace rdns::core {

inline constexpr const char* kReportSchema = "rdns.report.v1";

struct RunReportOptions {
  std::string title = "rdns run report";
  AuditConfig audit;
};

/// dns.retry chain statistics replayed from the journal. A chain starts at
/// an `n == 1` retry event and grows while `n` increments for the same
/// qname (the journal is shard-ordered, so per-qname events are
/// consecutive).
struct RetryChainStats {
  std::uint64_t chains = 0;
  std::uint64_t retries = 0;
  std::uint64_t longest = 0;          ///< max n observed
  std::uint64_t total_backoff_s = 0;  ///< sum of delay_s
};

/// Folded view of the sweep.progress event stream (empty when the run did
/// not arm the progress plane).
struct SweepProgressSummary {
  std::uint64_t events = 0;
  std::uint64_t last_rows = 0;
  std::uint64_t last_shards_done = 0;
  std::uint64_t last_shards_total = 0;
  double last_rows_per_s = 0;
  double last_percent = 0;
  std::vector<std::string> days;  ///< distinct sweep days, in first-seen order
};

/// Folded view of an rdns.flight.v1 dump (all segments).
struct FlightSummary {
  bool present = false;
  std::uint64_t segments = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::map<std::string, std::uint64_t> kind_counts;
};

struct RunReport {
  std::string title;
  std::string journal_path;

  JournalAuditReport audit;
  RetryChainStats retries;
  SweepProgressSummary progress;
  FlightSummary flight;

  bool snapshot_present = false;
  /// The snapshot's "spans" subtree, re-emitted verbatim as the report's
  /// "phases" member (Kind::Null when no snapshot / no spans).
  util::journal::JsonValue phases;
  /// Counter map lifted from the snapshot (name -> value), for the
  /// markdown headline numbers.
  std::map<std::string, std::uint64_t> snapshot_counters;
  std::optional<util::journal::RunManifest> snapshot_manifest;
  /// Non-empty when the snapshot's manifest is not provenance-compatible
  /// with the journal's (journal::manifests_compatible).
  std::string manifest_mismatch;

  /// I/O or parse problems with the *optional* inputs (snapshot, flight).
  /// A broken journal surfaces through audit.parsed instead.
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const noexcept { return audit.ok() && errors.empty(); }
};

/// Build the report. `snapshot_path` / `flight_path` may be empty (those
/// sections are then marked absent rather than erroring).
[[nodiscard]] RunReport build_run_report(const std::string& journal_path,
                                         const std::string& snapshot_path = {},
                                         const std::string& flight_path = {},
                                         const RunReportOptions& options = {});

/// The `rdns.report.v1` JSON document (pretty-printed, trailing newline).
[[nodiscard]] std::string render_run_report_json(const RunReport& report);

/// Markdown narrative of the same report.
[[nodiscard]] std::string render_run_report_markdown(const RunReport& report);

}  // namespace rdns::core
