#include "core/terms.hpp"

#include "util/strings.hpp"

namespace rdns::core {

std::vector<std::string> extract_terms(const std::string& hostname) {
  return util::alpha_terms(hostname);
}

const std::vector<std::string>& generic_router_terms() {
  static const std::vector<std::string> kTerms = {
      "north", "south", "east",   "west",   "core",   "edge",   "border",
      "agg",   "dist",  "rtr",    "router", "gw",     "gateway","sw",
      "switch","vlan",  "uplink", "downlink","transit","peer",  "eth",
      "gig",   "tenge", "pos",    "serial", "bundle", "ae",     "lo",
      "loopback",
  };
  return kTerms;
}

bool looks_router_level(const std::vector<std::string>& terms) {
  static const std::unordered_set<std::string> kSet = [] {
    std::unordered_set<std::string> s;
    for (const auto& t : generic_router_terms()) s.insert(t);
    return s;
  }();
  for (const auto& t : terms) {
    if (kSet.count(t) > 0) return true;
  }
  return false;
}

void PtrCorpus::restrict_to(const std::vector<net::Prefix>& blocks) {
  filtered_ = true;
  for (const auto& b : blocks) filter_.add(b);
}

void PtrCorpus::on_row(const util::CivilDate& /*date*/, net::Ipv4Addr address,
                       const dns::DnsName& ptr) {
  if (filtered_ && !filter_.contains(address)) return;
  ++observations_;
  std::string key = ptr.to_canonical_string();
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.observations;
    return;
  }
  PtrEntry entry;
  entry.hostname = key;
  entry.suffix = ptr.registered_domain().to_canonical_string();
  entry.first_ip = address;
  entry.observations = 1;
  entries_.emplace(std::move(key), std::move(entry));
}

void PtrCorpus::add_entry(const PtrEntry& entry) {
  if (filtered_ && !filter_.contains(entry.first_ip)) return;
  observations_ += entry.observations;
  const auto it = entries_.find(entry.hostname);
  if (it != entries_.end()) {
    it->second.observations += entry.observations;
    return;
  }
  entries_.emplace(entry.hostname, entry);
}

std::vector<const PtrEntry*> PtrCorpus::entry_snapshot() const {
  std::vector<const PtrEntry*> items;
  items.reserve(entries_.size());
  for (const auto& [hostname, entry] : entries_) items.push_back(&entry);
  return items;
}

util::Counter PtrCorpus::term_frequencies(util::ThreadPool* pool_opt) const {
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  const auto items = entry_snapshot();
  util::Counter counter;
  // Per-chunk partial counters folded in chunk order; additions commute,
  // so the merged counts match the serial loop exactly.
  util::map_reduce_chunks<util::Counter>(
      pool, items.size(), /*chunk=*/512,
      [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
        util::Counter partial;
        for (std::uint64_t i = begin; i < end; ++i) {
          for (const auto& term : extract_terms(items[i]->hostname)) partial.add(term);
        }
        return partial;
      },
      [&](std::size_t, util::Counter&& partial) {
        for (const auto& [term, count] : partial.items()) counter.add(term, count);
      });
  return counter;
}

}  // namespace rdns::core
