#pragma once
/// \file terms.hpp
/// Section 5.1 term machinery: extracting alphabetic terms from PTR
/// hostnames, hostname-suffix (TLD+1) indexing, the analyst's generic
/// router-term exclusion list, and the PTR corpus the leak-identification
/// steps run over.
///
/// Note: the generic-term list here belongs to the ANALYST, mirroring the
/// paper's manually curated list; it is intentionally independent from the
/// simulator's generator vocabulary (rdns::sim) the way the paper's list is
/// independent from the real Internet.

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dns/name.hpp"
#include "net/prefix_set.hpp"
#include "scan/rdns_snapshot.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace rdns::core {

/// Alphabetic terms of a hostname, lowercased: "Brians-iPhone-12.x.edu" ->
/// {"brians","iphone","x","edu"} (the §5.1 extraction regex).
[[nodiscard]] std::vector<std::string> extract_terms(const std::string& hostname);

/// Generic router/location-level terms ("less likely to be used in client
/// hostname prefixes", §5.1); terms shorter than 3 characters are ignored
/// by matching anyway ("we considered terms of three or more characters").
[[nodiscard]] const std::vector<std::string>& generic_router_terms();

/// True if a hostname looks router-level: any of its non-suffix terms is a
/// generic router term.
[[nodiscard]] bool looks_router_level(const std::vector<std::string>& terms);

/// One distinct PTR hostname with aggregates from the sweep corpus.
struct PtrEntry {
  std::string hostname;       ///< canonical (lowercase) full PTR target
  std::string suffix;         ///< registered domain (TLD+1 index key)
  net::Ipv4Addr first_ip;     ///< first address it was seen at
  std::uint64_t observations = 0;  ///< (address, day) observations
};

/// Corpus of distinct PTR hostnames collected from full-space sweeps,
/// optionally restricted to a set of (dynamic) /24 blocks.
class PtrCorpus final : public scan::SnapshotSink {
 public:
  PtrCorpus() = default;

  /// Restrict ingestion to addresses inside `blocks` (e.g. the dynamic /24s
  /// from the Section 4 heuristic). Without a filter everything is kept.
  void restrict_to(const std::vector<net::Prefix>& blocks);

  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override;

  /// Inject a pre-aggregated entry (re-filtering corpora), honouring the
  /// address restriction and preserving the observation weight.
  void add_entry(const PtrEntry& entry);

  [[nodiscard]] const std::unordered_map<std::string, PtrEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t distinct_hostnames() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t total_observations() const noexcept { return observations_; }

  /// Term frequencies over distinct hostnames (the "Extracting Common
  /// Terms" step). Extraction shards across `pool` (nullptr = the global
  /// pool); counts are sums keyed by an ordered map, so the result is
  /// identical at every thread count.
  [[nodiscard]] util::Counter term_frequencies(util::ThreadPool* pool = nullptr) const;

  /// Stable snapshot of the entries for sharded map stages: pointers in
  /// container order (arbitrary but fixed between mutations).
  [[nodiscard]] std::vector<const PtrEntry*> entry_snapshot() const;

 private:
  bool filtered_ = false;
  net::PrefixSet filter_;
  std::unordered_map<std::string, PtrEntry> entries_;
  std::uint64_t observations_ = 0;
};

}  // namespace rdns::core
