#include "core/timing.hpp"

namespace rdns::core {

FunnelCounts build_funnel(const std::vector<scan::GroupSummary>& groups) {
  FunnelCounts funnel;
  funnel.all_groups = groups.size();
  for (const auto& g : groups) {
    if (!g.successful()) continue;
    ++funnel.successful;
    if (!g.reverted) continue;
    ++funnel.reverted;
    if (g.reliable) ++funnel.reliable;
  }
  return funnel;
}

std::vector<const scan::GroupSummary*> usable_groups(
    const std::vector<scan::GroupSummary>& groups) {
  std::vector<const scan::GroupSummary*> usable;
  for (const auto& g : groups) {
    if (g.successful() && g.reverted && g.reliable) usable.push_back(&g);
  }
  return usable;
}

util::Histogram linger_histogram(const std::vector<const scan::GroupSummary*>& usable,
                                 double max_minutes, double bin_minutes) {
  util::Histogram histogram{0.0, max_minutes, bin_minutes};
  for (const auto* g : usable) histogram.add(g->linger_minutes());
  return histogram;
}

std::map<std::string, util::EmpiricalCdf> linger_cdfs(
    const std::vector<const scan::GroupSummary*>& usable) {
  std::map<std::string, util::EmpiricalCdf> cdfs;
  for (const auto* g : usable) cdfs[g->network].add(g->linger_minutes());
  return cdfs;
}

double fraction_within_minutes(const std::vector<const scan::GroupSummary*>& usable,
                               double minutes) {
  if (usable.empty()) return 0.0;
  std::size_t within = 0;
  for (const auto* g : usable) {
    if (g->linger_minutes() <= minutes) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(usable.size());
}

std::vector<const scan::GroupSummary*> stale_groups(
    const std::vector<scan::GroupSummary>& groups) {
  std::vector<const scan::GroupSummary*> stale;
  for (const auto& g : groups) {
    // Lifecycle resolved, PTR captured at join, departure detected — but
    // the follow phase gave up without ever seeing the PTR disappear.
    if (g.closed && g.spot_rdns_ok && g.offline_detected != 0 && g.ptr_observed_gone == 0) {
      stale.push_back(&g);
    }
  }
  return stale;
}

double fraction_removed_within(const std::vector<const scan::GroupSummary*>& usable,
                               const std::vector<const scan::GroupSummary*>& stale,
                               double minutes) {
  const std::size_t denom = usable.size() + stale.size();
  if (denom == 0) return 0.0;
  std::size_t within = 0;
  for (const auto* g : usable) {
    if (g->linger_minutes() <= minutes) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(denom);
}

}  // namespace rdns::core
