#pragma once
/// \file timing.hpp
/// Section 6.2 timing analysis over supplemental-measurement groups:
/// the Table 5 funnel (all → successful → PTR reverted → reliable), the
/// Fig. 7a lingering-minutes histogram and the Fig. 7b per-network CDFs.

#include <map>
#include <string>
#include <vector>

#include "scan/reactive.hpp"
#include "util/stats.hpp"

namespace rdns::core {

/// Table 5 shape.
struct FunnelCounts {
  std::uint64_t all_groups = 0;
  std::uint64_t successful = 0;
  std::uint64_t reverted = 0;
  std::uint64_t reliable = 0;

  [[nodiscard]] double fraction_successful() const noexcept {
    return all_groups == 0 ? 0 : static_cast<double>(successful) / all_groups;
  }
  [[nodiscard]] double fraction_reverted() const noexcept {
    return successful == 0 ? 0 : static_cast<double>(reverted) / successful;
  }
  [[nodiscard]] double fraction_reliable() const noexcept {
    return reverted == 0 ? 0 : static_cast<double>(reliable) / reverted;
  }
};

[[nodiscard]] FunnelCounts build_funnel(const std::vector<scan::GroupSummary>& groups);

/// The usable groups: successful, reverted and reliable (Table 5 bottom).
[[nodiscard]] std::vector<const scan::GroupSummary*> usable_groups(
    const std::vector<scan::GroupSummary>& groups);

/// Fig. 7a: histogram of lingering minutes (last ICMP -> PTR gone) over
/// usable groups, `bin_minutes`-wide bins covering [0, max_minutes).
[[nodiscard]] util::Histogram linger_histogram(
    const std::vector<const scan::GroupSummary*>& usable, double max_minutes = 180.0,
    double bin_minutes = 5.0);

/// Fig. 7b: per-network empirical CDFs of lingering minutes.
[[nodiscard]] std::map<std::string, util::EmpiricalCdf> linger_cdfs(
    const std::vector<const scan::GroupSummary*>& usable);

/// Headline number: the fraction of usable groups whose PTR was observed
/// gone within `minutes` of the last ICMP response (the paper's "9 out of
/// 10 cases ... 60 minutes or less").
[[nodiscard]] double fraction_within_minutes(
    const std::vector<const scan::GroupSummary*>& usable, double minutes);

/// The Fig. 7 failure tail: groups whose client left (offline detected)
/// but whose join-time PTR was never observed gone before the group
/// closed — a stale record lingering in the reverse zone. On a clean
/// network the tail comes from operators with slow removal; under a
/// broken-ddns chaos profile, lost DynDNS removals land here too. These
/// are *observations*, not measurement errors: they must not be counted
/// as protocol violations by the auditor, only surface as the CDF's
/// unreached tail.
[[nodiscard]] std::vector<const scan::GroupSummary*> stale_groups(
    const std::vector<scan::GroupSummary>& groups);

/// Fraction of departed clients whose PTR was observed removed within
/// `minutes` — like fraction_within_minutes, but with stale (never
/// removed) groups in the denominator, so a broken-ddns run drags the
/// whole CDF down instead of silently dropping its failures.
[[nodiscard]] double fraction_removed_within(
    const std::vector<const scan::GroupSummary*>& usable,
    const std::vector<const scan::GroupSummary*>& stale, double minutes);

}  // namespace rdns::core
