#include "core/tracking.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace rdns::core {

std::vector<PresenceSegment> segments_matching(const std::vector<scan::GroupSummary>& groups,
                                               const std::string& needle,
                                               const std::string& network) {
  const std::string lowered_needle = util::to_lower(needle);
  std::vector<PresenceSegment> segments;
  for (const auto& g : groups) {
    if (g.first_ptr.empty()) continue;
    if (!network.empty() && g.network != network) continue;
    if (!util::contains(g.first_ptr, lowered_needle)) continue;

    PresenceSegment seg;
    seg.full_ptr = g.first_ptr;
    const auto dot = g.first_ptr.find('.');
    seg.hostname = dot == std::string::npos ? g.first_ptr : g.first_ptr.substr(0, dot);
    seg.address = g.address;
    seg.from = g.started;
    // Presence ends when the client stopped answering; fall back to the
    // PTR-removal observation, then to the last thing we know.
    if (g.offline_detected != 0) {
      seg.to = g.offline_detected;
    } else if (g.ptr_observed_gone != 0) {
      seg.to = g.ptr_observed_gone;
    } else {
      seg.to = std::max(g.last_icmp_ok, g.started);
    }
    if (seg.to > seg.from) segments.push_back(std::move(seg));
  }
  return segments;
}

WeeklyGrid build_weekly_grid(const std::vector<PresenceSegment>& segments,
                             const util::CivilDate& start, int num_weeks, int slots_per_day) {
  WeeklyGrid grid;
  grid.slots_per_day = slots_per_day;

  // Snap to the Monday on or before `start` (Fig. 8 weeks run Mon..Sun).
  const int wd = static_cast<int>(util::weekday_of(start));
  grid.first_monday = util::add_days(start, -wd);

  // Row labels: distinct hostnames, sorted.
  std::vector<std::string> names;
  for (const auto& seg : segments) names.push_back(seg.hostname);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  grid.hostnames = names;

  // Address palette.
  std::map<std::uint32_t, int> palette;
  for (const auto& seg : segments) {
    if (palette.emplace(seg.address.value(), static_cast<int>(palette.size()) + 1).second) {
      grid.addresses.push_back(seg.address);
    }
  }

  const util::SimTime t0 = util::to_sim_time(grid.first_monday);
  const util::SimTime slot_len = util::kDay / slots_per_day;
  const int slots_per_week = slots_per_day * 7;
  grid.weeks.assign(static_cast<std::size_t>(num_weeks),
                    std::vector<std::vector<int>>(
                        names.size(), std::vector<int>(static_cast<std::size_t>(slots_per_week), 0)));

  for (const auto& seg : segments) {
    const auto row_it = std::lower_bound(names.begin(), names.end(), seg.hostname);
    const auto row = static_cast<std::size_t>(row_it - names.begin());
    const int color = palette[seg.address.value()];
    const std::int64_t first_slot = (seg.from - t0) / slot_len;
    const std::int64_t last_slot = (seg.to - 1 - t0) / slot_len;
    for (std::int64_t s = first_slot; s <= last_slot; ++s) {
      if (s < 0) continue;
      const std::int64_t week = s / slots_per_week;
      if (week >= num_weeks) break;
      grid.weeks[static_cast<std::size_t>(week)][row]
                [static_cast<std::size_t>(s % slots_per_week)] = color;
    }
  }
  return grid;
}

std::map<std::string, util::CivilDate> first_seen_dates(
    const std::vector<PresenceSegment>& segments) {
  std::map<std::string, util::CivilDate> first;
  for (const auto& seg : segments) {
    const util::CivilDate date = util::to_civil_date(seg.from);
    const auto it = first.find(seg.hostname);
    if (it == first.end() || date < it->second) first[seg.hostname] = date;
  }
  return first;
}

}  // namespace rdns::core
