#pragma once
/// \file tracking.hpp
/// Section 7.1 "Life of Brian(s)": following specific clients over time by
/// the given name embedded in their dynamically added hostnames. Builds
/// per-hostname presence segments from measurement groups and lays them out
/// as the Fig. 8 weekly grid (rows = hostnames, columns = time slots,
/// cell value = an index identifying the IP address, for the figure's
/// colour coding).

#include <map>
#include <string>
#include <vector>

#include "scan/reactive.hpp"
#include "util/time.hpp"

namespace rdns::core {

/// One observed presence period of a hostname at an address.
struct PresenceSegment {
  std::string hostname;   ///< first label of the PTR ("brians-ipad")
  std::string full_ptr;
  net::Ipv4Addr address;
  util::SimTime from = 0;
  util::SimTime to = 0;
};

/// Extract presence segments whose hostname contains `needle` (lowercase
/// substring match, e.g. "brian"), optionally restricted to one network.
[[nodiscard]] std::vector<PresenceSegment> segments_matching(
    const std::vector<scan::GroupSummary>& groups, const std::string& needle,
    const std::string& network = "");

/// Fig. 8 layout.
struct WeeklyGrid {
  std::vector<std::string> hostnames;          ///< row labels, sorted
  /// cells[week][row][slot]: 0 = absent, k > 0 = present at address #k.
  std::vector<std::vector<std::vector<int>>> weeks;
  util::CivilDate first_monday;                ///< start of week 0
  int slots_per_day = 12;                      ///< 2-hour slots by default
  /// Address palette: index (1-based) -> address.
  std::vector<net::Ipv4Addr> addresses;
};

/// Build the grid covering `num_weeks` weeks starting at the Monday on or
/// before `start`.
[[nodiscard]] WeeklyGrid build_weekly_grid(const std::vector<PresenceSegment>& segments,
                                           const util::CivilDate& start, int num_weeks,
                                           int slots_per_day = 12);

/// First date a hostname was ever observed (Fig. 8's Cyber Monday finding:
/// brians-galaxy-note9 appearing for the first time).
[[nodiscard]] std::map<std::string, util::CivilDate> first_seen_dates(
    const std::vector<PresenceSegment>& segments);

}  // namespace rdns::core
