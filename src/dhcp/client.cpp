#include "dhcp/client.hpp"

namespace rdns::dhcp {

DhcpClient::DhcpClient(ClientIdentity identity, std::uint64_t xid_seed)
    : identity_(std::move(identity)), rng_(xid_seed) {}

std::optional<DhcpMessage> DhcpClient::exchange(DhcpServer& server, const DhcpMessage& request,
                                                util::SimTime now) {
  const auto reply_wire = server.handle_wire(encode(request), now);
  if (!reply_wire) return std::nullopt;
  try {
    return decode(*reply_wire);
  } catch (const DhcpWireError&) {
    return std::nullopt;
  }
}

std::optional<net::Ipv4Addr> DhcpClient::join(DhcpServer& server, util::SimTime now) {
  const auto xid = static_cast<std::uint32_t>(rng_.next());

  const auto offer = exchange(server, make_discover(xid, identity_), now);
  if (!offer || offer->message_type() != MessageType::Offer) return std::nullopt;
  const auto server_id = offer->server_identifier();
  if (!server_id) return std::nullopt;

  const auto ack =
      exchange(server, make_request(xid, identity_, offer->yiaddr, *server_id), now);
  if (!ack || ack->message_type() != MessageType::Ack) return std::nullopt;

  state_ = ClientState::Bound;
  address_ = ack->yiaddr;
  server_id_ = *server_id;
  const std::uint32_t lease = ack->lease_time().value_or(3600);
  t1_ = now + lease / 2;
  expiry_ = now + lease;
  return address_;
}

bool DhcpClient::maybe_renew(DhcpServer& server, util::SimTime now) {
  if (state_ != ClientState::Bound) return false;
  if (now < t1_) return true;  // not due yet

  const auto xid = static_cast<std::uint32_t>(rng_.next());
  const auto ack = exchange(server, make_renew(xid, identity_, address_), now);
  if (!ack || ack->message_type() != MessageType::Ack) {
    // NAK or silence: binding is gone.
    state_ = ClientState::Init;
    return false;
  }
  const std::uint32_t lease = ack->lease_time().value_or(3600);
  t1_ = now + lease / 2;
  expiry_ = now + lease;
  return true;
}

void DhcpClient::leave(DhcpServer& server, util::SimTime now, bool clean) {
  if (state_ != ClientState::Bound) return;
  if (clean) {
    const auto xid = static_cast<std::uint32_t>(rng_.next());
    // RELEASE gets no reply; we only need the side effect.
    (void)server.handle_wire(encode(make_release(xid, identity_, address_, server_id_)), now);
  }
  state_ = ClientState::Init;
}

}  // namespace rdns::dhcp
