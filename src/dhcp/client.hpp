#pragma once
/// \file client.hpp
/// DHCP client state machine used by simulated devices. Exchanges with the
/// server happen in wire form (encode → server → decode), so every join,
/// renewal and release exercises the RFC 2131 codec.
///
/// The client models the behaviours whose privacy consequences the paper
/// studies:
///   - it sends its device name in the Host Name option (option 12), the
///     suspected source of "brians-iphone" PTR records (Section 5.2);
///   - it may send a Client FQDN option (option 81), including the N flag;
///   - it releases its lease cleanly only some of the time — "release
///     messages are not always sent, as clients can go out of range, or
///     users can unplug devices" (Section 2.1).

#include <cstdint>
#include <optional>

#include "dhcp/message.hpp"
#include "dhcp/server.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rdns::dhcp {

enum class ClientState : std::uint8_t {
  Init = 0,
  Bound,
};

class DhcpClient {
 public:
  DhcpClient(ClientIdentity identity, std::uint64_t xid_seed);

  /// Full DISCOVER→OFFER→REQUEST→ACK handshake against `server`.
  /// Returns the bound address, or nullopt if the exchange failed.
  std::optional<net::Ipv4Addr> join(DhcpServer& server, util::SimTime now);

  /// Renew if past T1 (half the lease time). Returns true if still bound
  /// afterwards (renewal succeeded or was not yet due).
  bool maybe_renew(DhcpServer& server, util::SimTime now);

  /// Leave the network. With `clean`, sends RELEASE; otherwise just goes
  /// silent and lets the lease expire server-side.
  void leave(DhcpServer& server, util::SimTime now, bool clean);

  [[nodiscard]] ClientState state() const noexcept { return state_; }
  [[nodiscard]] std::optional<net::Ipv4Addr> address() const noexcept {
    return state_ == ClientState::Bound ? std::optional{address_} : std::nullopt;
  }
  [[nodiscard]] const ClientIdentity& identity() const noexcept { return identity_; }
  [[nodiscard]] util::SimTime renewal_due() const noexcept { return t1_; }

 private:
  /// One wire round-trip; nullopt if the server did not reply.
  [[nodiscard]] static std::optional<DhcpMessage> exchange(DhcpServer& server,
                                                           const DhcpMessage& request,
                                                           util::SimTime now);

  ClientIdentity identity_;
  util::Rng rng_;
  ClientState state_ = ClientState::Init;
  net::Ipv4Addr address_;
  net::Ipv4Addr server_id_;
  util::SimTime t1_ = 0;       ///< renewal due time
  util::SimTime expiry_ = 0;
};

}  // namespace rdns::dhcp
