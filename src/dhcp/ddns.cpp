#include "dhcp/ddns.hpp"

#include "dns/update.hpp"
#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "util/faults.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace rdns::dhcp {

namespace {

namespace metrics = rdns::util::metrics;

/// DDNS add/remove traffic across every bridge instance. Counters are
/// deterministic (driven by the simulation event order); update_us only
/// ticks when metrics::collect_timing() is on since it needs two clock
/// reads per RFC 2136 round-trip.
struct DdnsMetrics {
  metrics::Counter& ptr_added = metrics::counter("dhcp.ddns.ptr_added");
  metrics::Counter& ptr_removed = metrics::counter("dhcp.ddns.ptr_removed");
  metrics::Counter& ptr_reverted = metrics::counter("dhcp.ddns.ptr_reverted");
  metrics::Counter& a_added = metrics::counter("dhcp.ddns.a_added");
  metrics::Counter& a_removed = metrics::counter("dhcp.ddns.a_removed");
  metrics::Counter& update_failures = metrics::counter("dhcp.ddns.update_failures");
  metrics::Counter& suppressed = metrics::counter("dhcp.ddns.suppressed_by_client_flag");
  metrics::Counter& stale_ptrs = metrics::counter("dhcp.ddns.stale_ptrs");
  metrics::Histogram& update_us = metrics::histogram(
      "dhcp.ddns.update_us", metrics::Histogram::exponential_bounds(1, 4, 10));
};

DdnsMetrics& ddns_metrics() {
  static DdnsMetrics m;
  return m;
}

}  // namespace

const char* to_string(DdnsPolicy p) noexcept {
  switch (p) {
    case DdnsPolicy::None: return "none";
    case DdnsPolicy::StaticGeneric: return "static-generic";
    case DdnsPolicy::CarryOverClientId: return "carry-over-client-id";
    case DdnsPolicy::HashedClientId: return "hashed-client-id";
  }
  return "?";
}

std::string sanitize_hostname(std::string_view host_name) {
  std::string out;
  out.reserve(host_name.size());
  bool pending_hyphen = false;
  for (char c : host_name) {
    char lowered = c;
    if (c >= 'A' && c <= 'Z') lowered = static_cast<char>(c - 'A' + 'a');
    const bool valid = (lowered >= 'a' && lowered <= 'z') || (lowered >= '0' && lowered <= '9');
    if (valid) {
      if (pending_hyphen && !out.empty()) out.push_back('-');
      pending_hyphen = false;
      out.push_back(lowered);
    } else if (c == '\'' || c == '\xE2' || c == '\x80' || c == '\x99') {
      // Apostrophes (ASCII and the bytes of U+2019) vanish: Brian's -> brians.
    } else {
      // Every other separator becomes a single hyphen.
      pending_hyphen = true;
    }
  }
  if (out.size() > 63) out.resize(63);
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

std::string hashed_label(const net::Mac& mac) {
  const std::uint64_t h = util::mix64(mac.key() ^ 0xB121A2D0C0FFEEULL);
  return util::format("h-%012llx", static_cast<unsigned long long>(h & 0xFFFFFFFFFFFFULL));
}

std::string generic_label(net::Ipv4Addr a) {
  return util::format("host-%u-%u-%u-%u", a.octet(0), a.octet(1), a.octet(2), a.octet(3));
}

DdnsBridge::DdnsBridge(DdnsConfig config, dns::Transport& transport, std::uint64_t id_seed)
    : config_(std::move(config)),
      transport_(&transport),
      next_id_(static_cast<std::uint16_t>(util::mix64(id_seed))) {}

std::optional<dns::DnsName> DdnsBridge::published_name(const Lease& lease) const {
  switch (config_.policy) {
    case DdnsPolicy::None:
      return std::nullopt;
    case DdnsPolicy::StaticGeneric:
      // Static names are pre-populated; lease events never change them.
      return std::nullopt;
    case DdnsPolicy::CarryOverClientId: {
      std::string label = sanitize_hostname(lease.host_name);
      if (label.empty()) label = generic_label(lease.address);
      return config_.domain_suffix.prepend(label);
    }
    case DdnsPolicy::HashedClientId:
      return config_.domain_suffix.prepend(hashed_label(lease.mac));
  }
  return std::nullopt;
}

void DdnsBridge::send_update(const dns::Message& update) {
  DdnsMetrics& m = ddns_metrics();
  const bool timed = metrics::collect_timing();
  const std::int64_t t0 = timed ? util::trace::wall_now_ns() : 0;
  const auto wire = dns::encode(update);
  const auto response_wire = transport_->exchange(wire, 0);
  bool failed = false;
  if (!response_wire) {
    failed = true;
  } else {
    try {
      const dns::Message response = dns::decode(*response_wire);
      if (response.flags.rcode != dns::Rcode::NoError) failed = true;
    } catch (const dns::WireError&) {
      failed = true;
    }
  }
  if (failed) {
    ++stats_.update_failures;
    m.update_failures.inc();
  }
  if (timed) {
    m.update_us.observe(static_cast<double>(util::trace::wall_now_ns() - t0) / 1e3);
  }
}

void DdnsBridge::on_lease_bound(const Lease& lease, util::SimTime now) {
  if (config_.honor_no_update_flag && lease.client_fqdn && lease.client_fqdn->empty()) {
    // Convention from the client layer: an empty Client FQDN string models
    // the N flag ("do not update DNS on my behalf").
    ++stats_.suppressed_by_client_flag;
    ddns_metrics().suppressed.inc();
    return;
  }
  const auto name = published_name(lease);
  if (!name) return;
  // Chaos profile: the add update is lost in transit. No PTR reaches the
  // zone, so the matching lease-end removal is suppressed too (published_
  // gate below) — the address simply never resolves for this lease.
  if (auto* inj = util::faults::active();
      inj != nullptr &&
      inj->should_fail(util::faults::Site::DdnsAddFail,
                       util::mix64(lease.address.value()) ^ static_cast<std::uint64_t>(now))) {
    ++stats_.add_faults;
    ++stats_.update_failures;
    ddns_metrics().update_failures.inc();
    util::faults::journal_fault(util::faults::Site::DdnsAddFail, "ip",
                                lease.address.to_string(), now);
    return;
  }
  send_update(dns::make_ptr_replace(next_id_++, config_.reverse_zone, lease.address, *name,
                                    config_.ttl));
  published_.insert(lease.address.value());
  ++stats_.ptr_added;
  ddns_metrics().ptr_added.inc();
  if (auto* j = util::journal::active()) {
    // src records whether the client-supplied Host Name was honored ("host"),
    // replaced by the hashed mitigation ("hash"), or fell back to the
    // fixed-form label because sanitization left nothing ("generic").
    const char* src = "generic";
    if (config_.policy == DdnsPolicy::HashedClientId) {
      src = "hash";
    } else if (config_.policy == DdnsPolicy::CarryOverClientId &&
               !sanitize_hostname(lease.host_name).empty()) {
      src = "host";
    }
    util::journal::Event e{"ddns.ptr_add", now};
    e.str("ip", lease.address.to_string()).str("name", name->to_string()).str("src", src);
    if (src[0] == 'h' && src[1] == 'o') e.str("host", lease.host_name);
    j->emit(e);
  }
  if (!config_.forward_zone.is_root()) {
    dns::UpdateBuilder builder{next_id_++, config_.forward_zone};
    builder.delete_rrset(*name, dns::RrType::A);
    builder.add(dns::make_a(*name, lease.address, config_.ttl));
    send_update(builder.build());
    ++stats_.a_added;
    ddns_metrics().a_added.inc();
  }
}

void DdnsBridge::on_lease_end(const Lease& lease, LeaseEndReason /*reason*/, util::SimTime now) {
  if (config_.policy == DdnsPolicy::None || config_.policy == DdnsPolicy::StaticGeneric) return;
  if (config_.honor_no_update_flag && lease.client_fqdn && lease.client_fqdn->empty()) return;
  // Nothing to remove if the add never reached the zone (DdnsAddFail).
  if (published_.find(lease.address.value()) == published_.end()) return;
  // Chaos profile: the removal update is lost — the PTR stays in the zone
  // past the lease, reproducing the Fig. 7 lingering tail ("approximately
  // 1 in 10" removals never land). published_ keeps the address: the stale
  // record is really there and a future lease's replace will overwrite it.
  if (auto* inj = util::faults::active();
      inj != nullptr &&
      inj->should_fail(util::faults::Site::DdnsRemoveFail,
                       util::mix64(lease.address.value()) ^ static_cast<std::uint64_t>(now))) {
    ++stats_.stale_ptrs;
    ++stats_.update_failures;
    DdnsMetrics& m = ddns_metrics();
    m.stale_ptrs.inc();
    m.update_failures.inc();
    util::faults::journal_fault(util::faults::Site::DdnsRemoveFail, "ip",
                                lease.address.to_string(), now);
    return;
  }
  if (!config_.forward_zone.is_root()) {
    if (const auto name = published_name(lease)) {
      dns::UpdateBuilder builder{next_id_++, config_.forward_zone};
      builder.delete_rrset(*name, dns::RrType::A);
      send_update(builder.build());
      ++stats_.a_removed;
      ddns_metrics().a_removed.inc();
    }
  }
  if (config_.removal == RemovalBehavior::RemovePtr) {
    send_update(dns::make_ptr_delete(next_id_++, config_.reverse_zone, lease.address));
    ++stats_.ptr_removed;
    ddns_metrics().ptr_removed.inc();
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"ddns.ptr_remove", now};
      e.str("ip", lease.address.to_string()).str("mode", "remove");
      j->emit(e);
    }
  } else {
    const dns::DnsName generic =
        config_.generic_suffix.prepend(generic_label(lease.address));
    send_update(dns::make_ptr_replace(next_id_++, config_.reverse_zone, lease.address, generic,
                                      config_.ttl));
    ++stats_.ptr_reverted;
    ddns_metrics().ptr_reverted.inc();
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"ddns.ptr_remove", now};
      e.str("ip", lease.address.to_string()).str("mode", "revert").str("name", generic.to_string());
      j->emit(e);
    }
  }
  published_.erase(lease.address.value());
}

void DdnsBridge::populate_static(net::Ipv4Addr first, net::Ipv4Addr last, util::SimTime /*now*/) {
  for (std::uint64_t v = first.value(); v <= last.value(); ++v) {
    const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
    const dns::DnsName generic = config_.generic_suffix.prepend(generic_label(a));
    send_update(dns::make_ptr_replace(next_id_++, config_.reverse_zone, a, generic, config_.ttl));
  }
}

}  // namespace rdns::dhcp
