#pragma once
/// \file ddns.hpp
/// The DHCP→DNS bridge: the practice this paper is about.
///
/// When a lease is granted, networks that link DHCP and DNS (often through
/// IPAM products — Section 8 lists Bluecat, Infoblox, etc.) automatically
/// add a PTR record for the allocated address; when the lease ends the
/// record is removed or reverted. If the PTR is derived from the
/// client-provided Host Name ("Brian's iPhone"), the owner's name and the
/// device make/model leak into the globally queryable reverse DNS.
///
/// The bridge implements the policy spectrum discussed in the paper:
///   - None:             no DNS coupling (nothing leaks, nothing is dynamic)
///   - StaticGeneric:    fixed-form records like host-1-2-3-4.dynamic.x.edu
///                       (the "83 further prefixes" of the §4.1 validation:
///                       dynamic DHCP, static rDNS — not dynamicity-exposing)
///   - CarryOverClientId:sanitized client Host Name becomes the PTR target
///                       (the exposing configuration the paper studies)
///   - HashedClientId:   the §8 mitigation — "using some sort of hash seems
///                       prudent" — stable per client but meaningless
///
/// Updates are sent as RFC 2136 messages through a dns::Transport, so the
/// full DNS wire path is exercised on every lease event.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>

#include "dhcp/lease.hpp"
#include "dns/name.hpp"
#include "dns/server.hpp"
#include "net/ipv4.hpp"

namespace rdns::dhcp {

enum class DdnsPolicy : std::uint8_t {
  None = 0,
  StaticGeneric,
  CarryOverClientId,
  HashedClientId,
};

[[nodiscard]] const char* to_string(DdnsPolicy p) noexcept;

/// What happens to the PTR when a lease ends.
enum class RemovalBehavior : std::uint8_t {
  RemovePtr = 0,     ///< delete the PTR RRset (address has no reverse name)
  RevertToGeneric,   ///< replace with the generic fixed-form name
};

struct DdnsConfig {
  DdnsPolicy policy = DdnsPolicy::CarryOverClientId;
  RemovalBehavior removal = RemovalBehavior::RemovePtr;
  /// Origin of the reverse zone the bridge updates (e.g. 10.131.in-addr.arpa).
  dns::DnsName reverse_zone;
  /// Origin of a forward zone to keep in sync (empty = reverse only).
  /// The paper's future work points at forward DNS "which can also be
  /// dynamically updated by DHCP servers" (§10): when set, the bridge adds
  /// an A record at the published name on bind and removes it on lease end.
  dns::DnsName forward_zone;
  /// Suffix appended to client labels: brians-iphone.<suffix>.
  dns::DnsName domain_suffix;
  /// Suffix for generic names: host-1-2-3-4.<generic_suffix>.
  dns::DnsName generic_suffix;
  std::uint32_t ttl = 300;
  /// Honour the RFC 4702 "N" flag (client asks server not to update DNS).
  bool honor_no_update_flag = false;
};

struct DdnsStats {
  std::uint64_t ptr_added = 0;
  std::uint64_t ptr_removed = 0;
  std::uint64_t ptr_reverted = 0;
  std::uint64_t a_added = 0;
  std::uint64_t a_removed = 0;
  std::uint64_t suppressed_by_client_flag = 0;
  std::uint64_t update_failures = 0;
  /// Injected add/remove faults (util::faults): lost updates.
  std::uint64_t add_faults = 0;
  /// Removals that never happened — PTRs left lingering in the zone, the
  /// Fig. 7 failure tail.
  std::uint64_t stale_ptrs = 0;
};

/// Sanitize a DHCP Host Name into a DNS label, the way DHCP servers and
/// IPAM systems do before publishing: lowercase, apostrophes dropped,
/// spaces and other separators collapsed to hyphens, invalid characters
/// removed, length clamped to 63. "Brian's iPhone" -> "brians-iphone".
[[nodiscard]] std::string sanitize_hostname(std::string_view host_name);

/// Stable, meaningless label for the HashedClientId policy: "h-" + 12 hex
/// digits derived from the client MAC.
[[nodiscard]] std::string hashed_label(const net::Mac& mac);

/// Fixed-form generic label for an address: "host-10-131-4-27".
[[nodiscard]] std::string generic_label(net::Ipv4Addr a);

class DdnsBridge {
 public:
  DdnsBridge(DdnsConfig config, dns::Transport& transport, std::uint64_t id_seed = 0xDD5EED);

  /// Lease became bound (ACK sent). Adds/updates the PTR per policy.
  void on_lease_bound(const Lease& lease, util::SimTime now);

  /// Lease ended (release or expiry). Removes/reverts the PTR per policy.
  void on_lease_end(const Lease& lease, LeaseEndReason reason, util::SimTime now);

  /// Pre-populate static generic PTRs for every address in [first, last]
  /// (used by StaticGeneric networks and by static infrastructure ranges).
  void populate_static(net::Ipv4Addr first, net::Ipv4Addr last, util::SimTime now);

  /// The name the bridge would publish for this lease (empty optional if
  /// the policy publishes nothing).
  [[nodiscard]] std::optional<dns::DnsName> published_name(const Lease& lease) const;

  [[nodiscard]] const DdnsConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DdnsStats& stats() const noexcept { return stats_; }

 private:
  void send_update(const dns::Message& update);

  DdnsConfig config_;
  dns::Transport* transport_;
  std::uint16_t next_id_;
  DdnsStats stats_;
  /// Addresses whose dynamic PTR actually reached the zone. Lease-end
  /// removal is gated on membership so a lost add (DdnsAddFail) does not
  /// trigger a removal of a record that was never published. Without
  /// faults, adds always precede ends, so behaviour is unchanged.
  std::unordered_set<std::uint32_t> published_;
};

}  // namespace rdns::dhcp
