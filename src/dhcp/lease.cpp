#include "dhcp/lease.hpp"

namespace rdns::dhcp {

const char* to_string(LeaseState s) noexcept {
  switch (s) {
    case LeaseState::Offered: return "offered";
    case LeaseState::Bound: return "bound";
    case LeaseState::Released: return "released";
    case LeaseState::Expired: return "expired";
  }
  return "?";
}

void LeaseDb::upsert(const Lease& lease) {
  const auto it = by_addr_.find(lease.address);
  if (it != by_addr_.end()) {
    // Remove a stale MAC binding if ownership changes.
    const auto mac_it = by_mac_.find(it->second.mac);
    if (mac_it != by_mac_.end() && mac_it->second == lease.address) by_mac_.erase(mac_it);
  }
  by_addr_[lease.address] = lease;
  by_mac_[lease.mac] = lease.address;
  expiry_queue_.push(ExpiryEntry{lease.expiry, lease.address.value()});
}

const Lease* LeaseDb::by_address(net::Ipv4Addr a) const noexcept {
  const auto it = by_addr_.find(a);
  return it == by_addr_.end() ? nullptr : &it->second;
}

const Lease* LeaseDb::by_mac(const net::Mac& m) const noexcept {
  const auto it = by_mac_.find(m);
  return it == by_mac_.end() ? nullptr : by_address(it->second);
}

bool LeaseDb::bind(net::Ipv4Addr a, util::SimTime now, util::SimTime expiry) {
  const auto it = by_addr_.find(a);
  if (it == by_addr_.end()) return false;
  it->second.state = LeaseState::Bound;
  it->second.start = now;
  it->second.expiry = expiry;
  expiry_queue_.push(ExpiryEntry{expiry, a.value()});
  return true;
}

bool LeaseDb::renew(net::Ipv4Addr a, util::SimTime new_expiry) {
  const auto it = by_addr_.find(a);
  if (it == by_addr_.end() || it->second.state != LeaseState::Bound) return false;
  it->second.expiry = new_expiry;
  expiry_queue_.push(ExpiryEntry{new_expiry, a.value()});
  return true;
}

std::optional<Lease> LeaseDb::release(net::Ipv4Addr a) {
  const auto it = by_addr_.find(a);
  if (it == by_addr_.end() || it->second.state != LeaseState::Bound) return std::nullopt;
  it->second.state = LeaseState::Released;
  return it->second;
}

std::vector<Lease> LeaseDb::expire_due(util::SimTime now) {
  std::vector<Lease> expired;
  while (!expiry_queue_.empty() && expiry_queue_.top().expiry <= now) {
    const ExpiryEntry entry = expiry_queue_.top();
    expiry_queue_.pop();
    const auto it = by_addr_.find(net::Ipv4Addr{entry.address});
    if (it == by_addr_.end()) continue;           // already erased
    Lease& lease = it->second;
    if (lease.expiry != entry.expiry) continue;   // stale queue entry (renewed)
    if (lease.state != LeaseState::Bound && lease.state != LeaseState::Offered) continue;
    // Return the pre-expiry state (callers distinguish lapsed offers from
    // expired bindings); the stored lease is marked Expired.
    const Lease before = lease;
    lease.state = LeaseState::Expired;
    expired.push_back(before);
  }
  return expired;
}

void LeaseDb::erase(net::Ipv4Addr a) {
  const auto it = by_addr_.find(a);
  if (it == by_addr_.end()) return;
  const auto mac_it = by_mac_.find(it->second.mac);
  if (mac_it != by_mac_.end() && mac_it->second == a) by_mac_.erase(mac_it);
  by_addr_.erase(it);
}

std::size_t LeaseDb::bound_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [addr, lease] : by_addr_) {
    if (lease.state == LeaseState::Bound) ++n;
  }
  return n;
}

std::vector<Lease> LeaseDb::all() const {
  std::vector<Lease> out;
  out.reserve(by_addr_.size());
  for (const auto& [addr, lease] : by_addr_) out.push_back(lease);
  return out;
}

}  // namespace rdns::dhcp
