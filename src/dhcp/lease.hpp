#pragma once
/// \file lease.hpp
/// Lease records and the lease database. The paper's timing findings hinge
/// on exactly this machinery: leases that expire (often after an hour)
/// versus leases released early by clients sending RELEASE (Section 6.2,
/// Fig. 7a peaks at ~5 minutes and at hourly multiples).

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "util/time.hpp"

namespace rdns::dhcp {

enum class LeaseState : std::uint8_t {
  Offered = 0,  ///< OFFER sent, awaiting REQUEST
  Bound,        ///< ACKed, active
  Released,     ///< client sent RELEASE
  Expired,      ///< lease time ran out without renewal
};

[[nodiscard]] const char* to_string(LeaseState s) noexcept;

/// Why a lease ended (drives the DDNS bridge's record removal timing).
enum class LeaseEndReason : std::uint8_t {
  Release = 0,  ///< clean RELEASE from the client
  Expiry,       ///< lease timer ran out
};

struct Lease {
  net::Ipv4Addr address;
  net::Mac mac;
  std::string host_name;  ///< client-provided Host Name (may be empty)
  std::optional<std::string> client_fqdn;
  util::SimTime start = 0;
  util::SimTime expiry = 0;
  LeaseState state = LeaseState::Offered;

  [[nodiscard]] bool active_at(util::SimTime t) const noexcept {
    return state == LeaseState::Bound && t < expiry;
  }
};

/// Lease database with O(1) lookups by address and by client MAC and an
/// expiry queue for `expire_due`.
class LeaseDb {
 public:
  /// Insert or overwrite the lease for an address.
  void upsert(const Lease& lease);

  [[nodiscard]] const Lease* by_address(net::Ipv4Addr a) const noexcept;
  [[nodiscard]] const Lease* by_mac(const net::Mac& m) const noexcept;

  /// Mark Bound (commit an offer); returns false if no lease at `a`.
  bool bind(net::Ipv4Addr a, util::SimTime now, util::SimTime expiry);

  /// Extend a bound lease.
  bool renew(net::Ipv4Addr a, util::SimTime new_expiry);

  /// Mark released; returns the lease if it was bound.
  std::optional<Lease> release(net::Ipv4Addr a);

  /// Pop all leases whose expiry is <= now and are still Bound/Offered;
  /// marks them Expired in the database and returns copies carrying their
  /// pre-expiry state (Bound vs Offered).
  [[nodiscard]] std::vector<Lease> expire_due(util::SimTime now);

  /// Remove the lease record entirely (after the server processed its end).
  void erase(net::Ipv4Addr a);

  [[nodiscard]] std::size_t size() const noexcept { return by_addr_.size(); }
  [[nodiscard]] std::size_t bound_count() const noexcept;

  /// Snapshot of all leases (tests/inspection).
  [[nodiscard]] std::vector<Lease> all() const;

 private:
  struct ExpiryEntry {
    util::SimTime expiry;
    std::uint32_t address;
    bool operator>(const ExpiryEntry& other) const noexcept {
      return expiry > other.expiry;
    }
  };

  std::unordered_map<net::Ipv4Addr, Lease> by_addr_;
  std::unordered_map<net::Mac, net::Ipv4Addr> by_mac_;
  std::priority_queue<ExpiryEntry, std::vector<ExpiryEntry>, std::greater<>> expiry_queue_;
};

}  // namespace rdns::dhcp
