#include "dhcp/message.hpp"

#include "util/strings.hpp"

namespace rdns::dhcp {

namespace {

constexpr std::size_t kFixedHeaderSize = 236;  // through the file field
constexpr std::array<std::uint8_t, 4> kMagicCookie = {99, 130, 83, 99};

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] std::uint32_t read_u32(std::span<const std::uint8_t> w, std::size_t pos) {
  return (static_cast<std::uint32_t>(w[pos]) << 24) |
         (static_cast<std::uint32_t>(w[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(w[pos + 2]) << 8) | static_cast<std::uint32_t>(w[pos + 3]);
}

}  // namespace

std::optional<MessageType> DhcpMessage::message_type() const noexcept {
  const Option* o = find_option(options, OptionCode::MessageType);
  if (o == nullptr || o->data.size() != 1) return std::nullopt;
  return static_cast<MessageType>(o->data[0]);
}

std::optional<std::string> DhcpMessage::host_name() const noexcept {
  const Option* o = find_option(options, OptionCode::HostName);
  if (o == nullptr || o->data.empty()) return std::nullopt;
  return o->as_string();
}

std::optional<ClientFqdn> DhcpMessage::client_fqdn() const noexcept {
  const Option* o = find_option(options, OptionCode::ClientFqdn);
  if (o == nullptr) return std::nullopt;
  try {
    return ClientFqdn::from_option(*o);
  } catch (const OptionError&) {
    return std::nullopt;
  }
}

std::optional<net::Ipv4Addr> DhcpMessage::requested_ip() const noexcept {
  const Option* o = find_option(options, OptionCode::RequestedIpAddress);
  if (o == nullptr || o->data.size() != 4) return std::nullopt;
  return o->as_ipv4();
}

std::optional<std::uint32_t> DhcpMessage::lease_time() const noexcept {
  const Option* o = find_option(options, OptionCode::IpAddressLeaseTime);
  if (o == nullptr || o->data.size() != 4) return std::nullopt;
  return o->as_u32();
}

std::optional<net::Ipv4Addr> DhcpMessage::server_identifier() const noexcept {
  const Option* o = find_option(options, OptionCode::ServerIdentifier);
  if (o == nullptr || o->data.size() != 4) return std::nullopt;
  return o->as_ipv4();
}

std::string DhcpMessage::summary() const {
  const auto type = message_type();
  const auto name = host_name();
  return util::format("%s xid=%08x chaddr=%s yiaddr=%s%s%s",
                      type ? to_string(*type) : "(no type)", xid, chaddr.to_string().c_str(),
                      yiaddr.to_string().c_str(), name ? " hostname=" : "",
                      name ? name->c_str() : "");
}

std::vector<std::uint8_t> encode(const DhcpMessage& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kFixedHeaderSize + 64);
  out.push_back(static_cast<std::uint8_t>(m.op));
  out.push_back(m.htype);
  out.push_back(m.hlen);
  out.push_back(m.hops);
  push_u32(out, m.xid);
  push_u16(out, m.secs);
  push_u16(out, m.flags);
  push_u32(out, m.ciaddr.value());
  push_u32(out, m.yiaddr.value());
  push_u32(out, m.siaddr.value());
  push_u32(out, m.giaddr.value());
  // chaddr: 16 octets, first hlen meaningful.
  for (std::size_t i = 0; i < 16; ++i) {
    out.push_back(i < 6 ? m.chaddr.bytes()[i] : 0);
  }
  out.insert(out.end(), 64, 0);   // sname (unused)
  out.insert(out.end(), 128, 0);  // file (unused)
  out.insert(out.end(), kMagicCookie.begin(), kMagicCookie.end());
  encode_options(m.options, out);
  return out;
}

DhcpMessage decode(std::span<const std::uint8_t> wire) {
  if (wire.size() < kFixedHeaderSize + kMagicCookie.size() + 1) {
    throw DhcpWireError("decode: message too short");
  }
  DhcpMessage m;
  m.op = static_cast<Op>(wire[0]);
  if (m.op != Op::BootRequest && m.op != Op::BootReply) {
    throw DhcpWireError("decode: bad op field");
  }
  m.htype = wire[1];
  m.hlen = wire[2];
  m.hops = wire[3];
  m.xid = read_u32(wire, 4);
  m.secs = static_cast<std::uint16_t>((wire[8] << 8) | wire[9]);
  m.flags = static_cast<std::uint16_t>((wire[10] << 8) | wire[11]);
  m.ciaddr = net::Ipv4Addr{read_u32(wire, 12)};
  m.yiaddr = net::Ipv4Addr{read_u32(wire, 16)};
  m.siaddr = net::Ipv4Addr{read_u32(wire, 20)};
  m.giaddr = net::Ipv4Addr{read_u32(wire, 24)};
  std::array<std::uint8_t, 6> mac_bytes{};
  for (std::size_t i = 0; i < 6; ++i) mac_bytes[i] = wire[28 + i];
  m.chaddr = net::Mac{mac_bytes};
  for (std::size_t i = 0; i < kMagicCookie.size(); ++i) {
    if (wire[kFixedHeaderSize + i] != kMagicCookie[i]) {
      throw DhcpWireError("decode: missing magic cookie");
    }
  }
  try {
    m.options = decode_options(wire.subspan(kFixedHeaderSize + kMagicCookie.size()));
  } catch (const OptionError& e) {
    throw DhcpWireError(std::string{"decode: "} + e.what());
  }
  return m;
}

namespace {
void append_identity(DhcpMessage& m, const ClientIdentity& id) {
  if (!id.host_name.empty()) m.options.push_back(Option::host_name(id.host_name));
  if (id.fqdn) m.options.push_back(id.fqdn->to_option());
}
}  // namespace

DhcpMessage make_discover(std::uint32_t xid, const ClientIdentity& id) {
  DhcpMessage m;
  m.op = Op::BootRequest;
  m.xid = xid;
  m.flags = 0x8000;  // broadcast
  m.chaddr = id.mac;
  m.options.push_back(Option::message_type(MessageType::Discover));
  append_identity(m, id);
  return m;
}

DhcpMessage make_request(std::uint32_t xid, const ClientIdentity& id, net::Ipv4Addr requested,
                         net::Ipv4Addr server_id) {
  DhcpMessage m;
  m.op = Op::BootRequest;
  m.xid = xid;
  m.chaddr = id.mac;
  m.options.push_back(Option::message_type(MessageType::Request));
  m.options.push_back(Option::requested_ip(requested));
  m.options.push_back(Option::server_identifier(server_id));
  append_identity(m, id);
  return m;
}

DhcpMessage make_renew(std::uint32_t xid, const ClientIdentity& id, net::Ipv4Addr current) {
  DhcpMessage m;
  m.op = Op::BootRequest;
  m.xid = xid;
  m.ciaddr = current;
  m.chaddr = id.mac;
  m.options.push_back(Option::message_type(MessageType::Request));
  append_identity(m, id);
  return m;
}

DhcpMessage make_release(std::uint32_t xid, const ClientIdentity& id, net::Ipv4Addr current,
                         net::Ipv4Addr server_id) {
  DhcpMessage m;
  m.op = Op::BootRequest;
  m.xid = xid;
  m.ciaddr = current;
  m.chaddr = id.mac;
  m.options.push_back(Option::message_type(MessageType::Release));
  m.options.push_back(Option::server_identifier(server_id));
  return m;
}

}  // namespace rdns::dhcp
