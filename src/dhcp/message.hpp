#pragma once
/// \file message.hpp
/// DHCP messages (RFC 2131 §2): the fixed BOOTP-derived header plus the
/// options field introduced by the magic cookie. Wire encode/decode is
/// faithful so the client↔server exchange in the simulator runs over real
/// DHCP bytes.

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dhcp/options.hpp"
#include "net/ipv4.hpp"
#include "net/mac.hpp"

namespace rdns::dhcp {

/// op field values.
enum class Op : std::uint8_t {
  BootRequest = 1,
  BootReply = 2,
};

struct DhcpMessage {
  Op op = Op::BootRequest;
  std::uint8_t htype = 1;  ///< Ethernet
  std::uint8_t hlen = 6;
  std::uint8_t hops = 0;
  std::uint32_t xid = 0;   ///< transaction id
  std::uint16_t secs = 0;
  std::uint16_t flags = 0; ///< bit 15 = broadcast
  net::Ipv4Addr ciaddr;    ///< client's current address (renew/release)
  net::Ipv4Addr yiaddr;    ///< "your" address (server -> client)
  net::Ipv4Addr siaddr;
  net::Ipv4Addr giaddr;
  net::Mac chaddr;         ///< client hardware address
  std::vector<Option> options;

  bool operator==(const DhcpMessage&) const = default;

  // -- option lookups -------------------------------------------------------
  [[nodiscard]] std::optional<MessageType> message_type() const noexcept;
  [[nodiscard]] std::optional<std::string> host_name() const noexcept;
  [[nodiscard]] std::optional<ClientFqdn> client_fqdn() const noexcept;
  [[nodiscard]] std::optional<net::Ipv4Addr> requested_ip() const noexcept;
  [[nodiscard]] std::optional<std::uint32_t> lease_time() const noexcept;
  [[nodiscard]] std::optional<net::Ipv4Addr> server_identifier() const noexcept;

  /// One-line summary for logs.
  [[nodiscard]] std::string summary() const;
};

/// Raised on malformed wire input.
class DhcpWireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encode to wire bytes (fixed header, zeroed sname/file, magic cookie,
/// options).
[[nodiscard]] std::vector<std::uint8_t> encode(const DhcpMessage& m);

/// Decode from wire bytes; throws DhcpWireError on malformed input.
[[nodiscard]] DhcpMessage decode(std::span<const std::uint8_t> wire);

// -- message builders (client side) -----------------------------------------

struct ClientIdentity {
  net::Mac mac;
  /// Host Name option payload, e.g. "Brians-iPhone"; empty = do not send.
  std::string host_name;
  /// Client FQDN option; nullopt = do not send.
  std::optional<ClientFqdn> fqdn;
};

[[nodiscard]] DhcpMessage make_discover(std::uint32_t xid, const ClientIdentity& id);
[[nodiscard]] DhcpMessage make_request(std::uint32_t xid, const ClientIdentity& id,
                                       net::Ipv4Addr requested, net::Ipv4Addr server_id);
/// Renewing REQUEST (unicast, ciaddr filled, no server id / requested ip).
[[nodiscard]] DhcpMessage make_renew(std::uint32_t xid, const ClientIdentity& id,
                                     net::Ipv4Addr current);
[[nodiscard]] DhcpMessage make_release(std::uint32_t xid, const ClientIdentity& id,
                                       net::Ipv4Addr current, net::Ipv4Addr server_id);

}  // namespace rdns::dhcp
