#include "dhcp/options.hpp"

namespace rdns::dhcp {

const char* to_string(MessageType t) noexcept {
  switch (t) {
    case MessageType::Discover: return "DISCOVER";
    case MessageType::Offer: return "OFFER";
    case MessageType::Request: return "REQUEST";
    case MessageType::Decline: return "DECLINE";
    case MessageType::Ack: return "ACK";
    case MessageType::Nak: return "NAK";
    case MessageType::Release: return "RELEASE";
    case MessageType::Inform: return "INFORM";
  }
  return "?";
}

namespace {
void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
}  // namespace

Option Option::message_type(MessageType t) {
  return Option{OptionCode::MessageType, {static_cast<std::uint8_t>(t)}};
}

Option Option::host_name(std::string_view name) {
  if (name.empty() || name.size() > 255) {
    throw OptionError("host_name: length must be 1..255");
  }
  return Option{OptionCode::HostName,
                std::vector<std::uint8_t>(name.begin(), name.end())};
}

Option Option::requested_ip(net::Ipv4Addr a) {
  Option o{OptionCode::RequestedIpAddress, {}};
  push_u32(o.data, a.value());
  return o;
}

Option Option::lease_time(std::uint32_t seconds) {
  Option o{OptionCode::IpAddressLeaseTime, {}};
  push_u32(o.data, seconds);
  return o;
}

Option Option::server_identifier(net::Ipv4Addr a) {
  Option o{OptionCode::ServerIdentifier, {}};
  push_u32(o.data, a.value());
  return o;
}

Option Option::renewal_time(std::uint32_t seconds) {
  Option o{OptionCode::RenewalTime, {}};
  push_u32(o.data, seconds);
  return o;
}

MessageType Option::as_message_type() const {
  if (code != OptionCode::MessageType || data.size() != 1) {
    throw OptionError("as_message_type: not a 1-octet option 53");
  }
  return static_cast<MessageType>(data[0]);
}

std::string Option::as_string() const {
  return std::string{data.begin(), data.end()};
}

net::Ipv4Addr Option::as_ipv4() const {
  return net::Ipv4Addr{as_u32()};
}

std::uint32_t Option::as_u32() const {
  if (data.size() != 4) throw OptionError("as_u32: option payload is not 4 octets");
  return (static_cast<std::uint32_t>(data[0]) << 24) |
         (static_cast<std::uint32_t>(data[1]) << 16) |
         (static_cast<std::uint32_t>(data[2]) << 8) | static_cast<std::uint32_t>(data[3]);
}

Option ClientFqdn::to_option() const {
  Option o{OptionCode::ClientFqdn, {}};
  std::uint8_t flags = 0;
  if (server_updates) flags |= 0x01;   // S
  if (server_override) flags |= 0x02;  // O
  if (canonical_wire) flags |= 0x04;   // E
  if (no_server_update) flags |= 0x08; // N
  o.data.push_back(flags);
  o.data.push_back(0);  // RCODE1 (deprecated, must be 0)
  o.data.push_back(0);  // RCODE2 (deprecated, must be 0)
  if (canonical_wire) {
    // DNS wire encoding of the (non-compressed) name.
    std::size_t start = 0;
    const std::string& s = fqdn;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == '.') {
        const std::size_t len = i - start;
        if (len > 63) throw OptionError("ClientFqdn: label exceeds 63 octets");
        if (len > 0) {
          o.data.push_back(static_cast<std::uint8_t>(len));
          o.data.insert(o.data.end(), s.begin() + static_cast<std::ptrdiff_t>(start),
                        s.begin() + static_cast<std::ptrdiff_t>(i));
        }
        start = i + 1;
      }
    }
    o.data.push_back(0);
  } else {
    o.data.insert(o.data.end(), fqdn.begin(), fqdn.end());
  }
  if (o.data.size() > 255) throw OptionError("ClientFqdn: option exceeds 255 octets");
  return o;
}

ClientFqdn ClientFqdn::from_option(const Option& option) {
  if (option.code != OptionCode::ClientFqdn || option.data.size() < 3) {
    throw OptionError("ClientFqdn: malformed option 81");
  }
  ClientFqdn f;
  const std::uint8_t flags = option.data[0];
  f.server_updates = (flags & 0x01) != 0;
  f.server_override = (flags & 0x02) != 0;
  f.canonical_wire = (flags & 0x04) != 0;
  f.no_server_update = (flags & 0x08) != 0;
  std::size_t pos = 3;
  if (f.canonical_wire) {
    std::string name;
    while (pos < option.data.size()) {
      const std::uint8_t len = option.data[pos++];
      if (len == 0) break;
      if (len > 63 || pos + len > option.data.size()) {
        throw OptionError("ClientFqdn: malformed wire-encoded name");
      }
      if (!name.empty()) name.push_back('.');
      name.append(reinterpret_cast<const char*>(option.data.data() + pos), len);
      pos += len;
    }
    f.fqdn = std::move(name);
  } else {
    f.fqdn.assign(option.data.begin() + 3, option.data.end());
  }
  return f;
}

void encode_options(const std::vector<Option>& options, std::vector<std::uint8_t>& out) {
  for (const auto& o : options) {
    if (o.code == OptionCode::Pad || o.code == OptionCode::End) continue;
    if (o.data.size() > 255) throw OptionError("encode_options: option exceeds 255 octets");
    out.push_back(static_cast<std::uint8_t>(o.code));
    out.push_back(static_cast<std::uint8_t>(o.data.size()));
    out.insert(out.end(), o.data.begin(), o.data.end());
  }
  out.push_back(static_cast<std::uint8_t>(OptionCode::End));
}

std::vector<Option> decode_options(std::span<const std::uint8_t> wire) {
  std::vector<Option> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const auto code = static_cast<OptionCode>(wire[pos++]);
    if (code == OptionCode::Pad) continue;
    if (code == OptionCode::End) return out;
    if (pos >= wire.size()) throw OptionError("decode_options: truncated option header");
    const std::uint8_t len = wire[pos++];
    if (pos + len > wire.size()) throw OptionError("decode_options: truncated option payload");
    out.push_back(Option{code, std::vector<std::uint8_t>(wire.begin() + static_cast<std::ptrdiff_t>(pos),
                                                         wire.begin() + static_cast<std::ptrdiff_t>(pos + len))});
    pos += len;
  }
  throw OptionError("decode_options: missing End option");
}

const Option* find_option(const std::vector<Option>& options, OptionCode code) noexcept {
  for (const auto& o : options) {
    if (o.code == code) return &o;
  }
  return nullptr;
}

}  // namespace rdns::dhcp
