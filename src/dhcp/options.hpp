#pragma once
/// \file options.hpp
/// DHCP options (RFC 2132) in TLV wire form. The two options at the heart
/// of the paper are:
///   - option 12, Host Name: "commonly used by DHCP servers to identify
///     hosts and also to update the address of the host in local name
///     services" — and, in the exposing configurations we study, carried
///     over into global reverse DNS;
///   - option 81, Client FQDN (RFC 4702): lets a client ask the server to
///     update (or not update) DNS on its behalf.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/ipv4.hpp"

namespace rdns::dhcp {

/// Option codes used in this implementation (subset of RFC 2132 / IANA).
enum class OptionCode : std::uint8_t {
  Pad = 0,
  SubnetMask = 1,
  Router = 3,
  DomainNameServer = 6,
  HostName = 12,
  DomainName = 15,
  RequestedIpAddress = 50,
  IpAddressLeaseTime = 51,
  MessageType = 53,
  ServerIdentifier = 54,
  ParameterRequestList = 55,
  RenewalTime = 58,    ///< T1
  RebindingTime = 59,  ///< T2
  ClientIdentifier = 61,
  ClientFqdn = 81,
  End = 255,
};

/// DHCP message types (option 53 values, RFC 2132 §9.6).
enum class MessageType : std::uint8_t {
  Discover = 1,
  Offer = 2,
  Request = 3,
  Decline = 4,
  Ack = 5,
  Nak = 6,
  Release = 7,
  Inform = 8,
};

[[nodiscard]] const char* to_string(MessageType t) noexcept;

/// Raised on malformed option data.
class OptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A raw option: code + payload.
struct Option {
  OptionCode code = OptionCode::Pad;
  std::vector<std::uint8_t> data;

  bool operator==(const Option&) const = default;

  // -- typed constructors ---------------------------------------------------
  [[nodiscard]] static Option message_type(MessageType t);
  [[nodiscard]] static Option host_name(std::string_view name);
  [[nodiscard]] static Option requested_ip(net::Ipv4Addr a);
  [[nodiscard]] static Option lease_time(std::uint32_t seconds);
  [[nodiscard]] static Option server_identifier(net::Ipv4Addr a);
  [[nodiscard]] static Option renewal_time(std::uint32_t seconds);

  // -- typed accessors (throw OptionError on size mismatch) ----------------
  [[nodiscard]] MessageType as_message_type() const;
  [[nodiscard]] std::string as_string() const;
  [[nodiscard]] net::Ipv4Addr as_ipv4() const;
  [[nodiscard]] std::uint32_t as_u32() const;
};

/// Client FQDN option payload (RFC 4702 §2).
struct ClientFqdn {
  // Flag bits.
  bool server_updates = false;  ///< S: client asks server to do the A update
  bool server_override = false; ///< O: set by servers only
  bool no_server_update = false;///< N: client asks server NOT to update DNS
  bool canonical_wire = true;   ///< E: domain name in DNS wire encoding

  std::string fqdn;  ///< presentation form (possibly a partial name)

  [[nodiscard]] Option to_option() const;
  [[nodiscard]] static ClientFqdn from_option(const Option& option);

  bool operator==(const ClientFqdn&) const = default;
};

/// Serialize options (terminated by End) into `out`.
void encode_options(const std::vector<Option>& options, std::vector<std::uint8_t>& out);

/// Parse options until End; throws OptionError on truncation.
[[nodiscard]] std::vector<Option> decode_options(std::span<const std::uint8_t> wire);

/// Find an option by code.
[[nodiscard]] const Option* find_option(const std::vector<Option>& options,
                                        OptionCode code) noexcept;

}  // namespace rdns::dhcp
