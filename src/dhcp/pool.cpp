#include "dhcp/pool.hpp"

#include <algorithm>

namespace rdns::dhcp {

void AddressPool::add_range(net::Ipv4Addr first, net::Ipv4Addr last) {
  if (first > last) std::swap(first, last);
  for (std::uint64_t v = first.value(); v <= last.value(); ++v) {
    const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
    if (members_.insert(a).second) addresses_.push_back(a);
  }
  std::sort(addresses_.begin(), addresses_.end());
}

void AddressPool::add_prefix(const net::Prefix& p) {
  if (p.length() >= 31) {
    add_range(p.first(), p.last());
  } else {
    add_range(p.first() + 1, p.last() - 1);  // skip network & broadcast
  }
}

std::optional<net::Ipv4Addr> AddressPool::allocate(const net::Mac& mac,
                                                   std::optional<net::Ipv4Addr> requested) {
  // 1. Sticky binding: same client gets the same address when possible.
  const auto aff = affinity_.find(mac);
  if (aff != affinity_.end() && is_free(aff->second)) {
    allocated_.insert(aff->second);
    return aff->second;
  }
  // 2. Honour an explicit request when the address is ours and free.
  if (requested && is_free(*requested)) {
    allocated_.insert(*requested);
    affinity_[mac] = *requested;
    return *requested;
  }
  // 3. Rotating first-free scan (avoids quadratic behaviour under churn).
  const std::size_t n = addresses_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = (next_hint_ + step) % n;
    const net::Ipv4Addr a = addresses_[i];
    if (allocated_.find(a) == allocated_.end()) {
      allocated_.insert(a);
      affinity_[mac] = a;
      next_hint_ = (i + 1) % n;
      return a;
    }
  }
  return std::nullopt;
}

void AddressPool::release(net::Ipv4Addr a, const net::Mac& mac) {
  allocated_.erase(a);
  affinity_[mac] = a;  // keep the affinity so a returning client re-binds
}

bool AddressPool::contains(net::Ipv4Addr a) const noexcept {
  return members_.find(a) != members_.end();
}

bool AddressPool::is_free(net::Ipv4Addr a) const noexcept {
  return contains(a) && allocated_.find(a) == allocated_.end();
}

}  // namespace rdns::dhcp
