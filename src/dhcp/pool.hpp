#pragma once
/// \file pool.hpp
/// Dynamic address pools. Pools hand out addresses from configured ranges,
/// prefer a client's previous address (sticky bindings — RFC 2131 §4.3.1),
/// and track utilization.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ipv4.hpp"
#include "net/mac.hpp"
#include "net/prefix.hpp"

namespace rdns::dhcp {

class AddressPool {
 public:
  AddressPool() = default;

  /// Add a range [first, last] (inclusive) to the pool.
  void add_range(net::Ipv4Addr first, net::Ipv4Addr last);

  /// Add all usable host addresses of a prefix (network and broadcast
  /// excluded for prefixes shorter than /31).
  void add_prefix(const net::Prefix& p);

  /// Allocate an address for `mac`, preferring its remembered previous
  /// address, then `requested` if free, then the lowest free address.
  /// Returns nullopt when the pool is exhausted.
  [[nodiscard]] std::optional<net::Ipv4Addr> allocate(
      const net::Mac& mac, std::optional<net::Ipv4Addr> requested = std::nullopt);

  /// Return an address to the pool (remembers the mac->address affinity).
  void release(net::Ipv4Addr a, const net::Mac& mac);

  [[nodiscard]] bool contains(net::Ipv4Addr a) const noexcept;
  [[nodiscard]] bool is_free(net::Ipv4Addr a) const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return addresses_.size(); }
  [[nodiscard]] std::size_t allocated_count() const noexcept { return allocated_.size(); }
  [[nodiscard]] std::size_t free_count() const noexcept {
    return capacity() - allocated_count();
  }

 private:
  std::vector<net::Ipv4Addr> addresses_;           // sorted, unique
  std::unordered_set<net::Ipv4Addr> members_;      // for contains()
  std::unordered_set<net::Ipv4Addr> allocated_;
  std::unordered_map<net::Mac, net::Ipv4Addr> affinity_;
  std::size_t next_hint_ = 0;  // rotating scan start for lowest-free search
};

}  // namespace rdns::dhcp
