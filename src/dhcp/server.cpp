#include "dhcp/server.hpp"

#include "util/faults.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rdns::dhcp {

namespace {

namespace metrics = rdns::util::metrics;

/// Lease-churn accounting across all simulated DHCP servers. Deterministic:
/// the simulation drives every server from the event queue in a fixed
/// order, so these sums never depend on the analysis thread count.
struct DhcpMetrics {
  metrics::Counter& discovers = metrics::counter("dhcp.server.discovers");
  metrics::Counter& offers = metrics::counter("dhcp.server.offers");
  metrics::Counter& requests = metrics::counter("dhcp.server.requests");
  metrics::Counter& acks = metrics::counter("dhcp.server.acks");
  metrics::Counter& naks = metrics::counter("dhcp.server.naks");
  metrics::Counter& releases = metrics::counter("dhcp.server.releases");
  metrics::Counter& expirations = metrics::counter("dhcp.server.expirations");
  metrics::Counter& pool_exhausted = metrics::counter("dhcp.server.pool_exhausted");
  metrics::Counter& leases_bound = metrics::counter("dhcp.lease.bound");
  metrics::Counter& leases_ended = metrics::counter("dhcp.lease.ended");
  metrics::Histogram& bound_seconds = metrics::histogram(
      "dhcp.lease.bound_seconds",
      {60, 300, 900, 1800, 3600, 7200, 14400, 28800, 86400, 604800});
};

DhcpMetrics& dhcp_metrics() {
  static DhcpMetrics m;
  return m;
}

namespace journal = rdns::util::journal;

/// Journal a lease-state transition. The servers run serially on the sim
/// thread, so emission order equals handling order.
void journal_lease_event(const char* type, const Lease& lease, rdns::util::SimTime now) {
  if (auto* j = journal::active()) {
    journal::Event e{type, now};
    e.str("ip", lease.address.to_string()).str("mac", lease.mac.to_string());
    j->emit(e);
  }
}

}  // namespace

DhcpServer::DhcpServer(DhcpServerConfig config, AddressPool pool)
    : config_(config), pool_(std::move(pool)) {}

void DhcpServer::add_observer(LeaseObserver observer) {
  observers_.push_back(std::move(observer));
}

void DhcpServer::notify_bound(const Lease& lease, util::SimTime now) {
  dhcp_metrics().leases_bound.inc();
  for (const auto& obs : observers_) {
    if (obs.on_bound) obs.on_bound(lease, now);
  }
}

void DhcpServer::notify_end(const Lease& lease, LeaseEndReason reason, util::SimTime now) {
  DhcpMetrics& m = dhcp_metrics();
  m.leases_ended.inc();
  if (now >= lease.start) {
    // How long the binding was published in DNS before it went away — the
    // paper's dynamicity signal seen from the DHCP side.
    m.bound_seconds.observe(static_cast<double>(now - lease.start));
  }
  for (const auto& obs : observers_) {
    if (obs.on_end) obs.on_end(lease, reason, now);
  }
}

void DhcpServer::fill_identity(Lease& lease, const DhcpMessage& m) {
  if (const auto name = m.host_name()) lease.host_name = *name;
  if (const auto fqdn = m.client_fqdn()) {
    // Convention: N flag (no_server_update) is modelled as an empty string.
    lease.client_fqdn = fqdn->no_server_update ? std::string{} : fqdn->fqdn;
  }
}

DhcpMessage DhcpServer::make_reply(const DhcpMessage& request, MessageType type,
                                   net::Ipv4Addr yiaddr) const {
  DhcpMessage reply;
  reply.op = Op::BootReply;
  reply.xid = request.xid;
  reply.flags = request.flags;
  reply.chaddr = request.chaddr;
  reply.yiaddr = yiaddr;
  reply.siaddr = config_.server_id;
  reply.options.push_back(Option::message_type(type));
  reply.options.push_back(Option::server_identifier(config_.server_id));
  if (type != MessageType::Nak) {
    reply.options.push_back(Option::lease_time(config_.lease_seconds));
    reply.options.push_back(Option::renewal_time(config_.lease_seconds / 2));
  }
  return reply;
}

std::optional<DhcpMessage> DhcpServer::handle(const DhcpMessage& request, util::SimTime now) {
  tick(now);  // fold due expirations into the request path
  const auto type = request.message_type();
  if (!type) return std::nullopt;  // option 53 is mandatory
  // Chaos-profile datagram loss: a dropped DISCOVER/REQUEST never reaches
  // the server, so it is neither counted nor journalled as handled — the
  // client sees a clean join failure and the world tallies it.
  if (auto* inj = util::faults::active()) {
    namespace faults = util::faults;
    const std::uint64_t entity =
        util::mix64(request.chaddr.key()) ^ static_cast<std::uint64_t>(now);
    if (*type == MessageType::Discover &&
        inj->should_fail(faults::Site::DhcpDropDiscover, entity)) {
      faults::journal_fault(faults::Site::DhcpDropDiscover, "mac",
                            request.chaddr.to_string(), now);
      return std::nullopt;
    }
    if (*type == MessageType::Request &&
        inj->should_fail(faults::Site::DhcpDropRequest, entity)) {
      faults::journal_fault(faults::Site::DhcpDropRequest, "mac",
                            request.chaddr.to_string(), now);
      return std::nullopt;
    }
  }
  switch (*type) {
    case MessageType::Discover:
      ++stats_.discovers;
      dhcp_metrics().discovers.inc();
      if (auto* j = util::journal::active()) {
        util::journal::Event e{"dhcp.discover", now};
        e.str("mac", request.chaddr.to_string());
        j->emit(e);
      }
      return on_discover(request, now);
    case MessageType::Request:
      ++stats_.requests;
      dhcp_metrics().requests.inc();
      return on_request(request, now);
    case MessageType::Release:
      ++stats_.releases;
      dhcp_metrics().releases.inc();
      on_release(request, now);
      return std::nullopt;  // RELEASE is not answered (RFC 2131 §4.4.6)
    default:
      return std::nullopt;  // DECLINE/INFORM not modelled
  }
}

std::optional<std::vector<std::uint8_t>> DhcpServer::handle_wire(
    std::span<const std::uint8_t> wire, util::SimTime now) {
  DhcpMessage request;
  try {
    request = decode(wire);
  } catch (const DhcpWireError&) {
    return std::nullopt;  // drop undecodable datagrams
  }
  const auto reply = handle(request, now);
  if (!reply) return std::nullopt;
  return encode(*reply);
}

std::optional<DhcpMessage> DhcpServer::on_discover(const DhcpMessage& m, util::SimTime now) {
  // If the client already holds a bound lease, re-offer the same address.
  if (const Lease* existing = leases_.by_mac(m.chaddr);
      existing != nullptr && existing->state == LeaseState::Bound) {
    ++stats_.offers;
    dhcp_metrics().offers.inc();
    journal_lease_event("dhcp.offer", *existing, now);
    return make_reply(m, MessageType::Offer, existing->address);
  }

  const auto address = pool_.allocate(m.chaddr, m.requested_ip());
  if (!address) {
    ++stats_.pool_exhausted;
    dhcp_metrics().pool_exhausted.inc();
    return std::nullopt;  // silence; client will retry elsewhere
  }
  Lease lease;
  lease.address = *address;
  lease.mac = m.chaddr;
  lease.start = now;
  lease.expiry = now + config_.offer_hold_seconds;
  lease.state = LeaseState::Offered;
  fill_identity(lease, m);
  leases_.upsert(lease);
  ++stats_.offers;
  dhcp_metrics().offers.inc();
  journal_lease_event("dhcp.offer", lease, now);
  return make_reply(m, MessageType::Offer, *address);
}

std::optional<DhcpMessage> DhcpServer::on_request(const DhcpMessage& m, util::SimTime now) {
  // RENEWING/REBINDING: ciaddr carries the address, no Requested IP option.
  if (m.ciaddr.value() != 0) {
    const Lease* lease = leases_.by_address(m.ciaddr);
    if (lease == nullptr || !(lease->mac == m.chaddr) || lease->state != LeaseState::Bound) {
      ++stats_.naks;
      dhcp_metrics().naks.inc();
      if (auto* j = util::journal::active()) {
        util::journal::Event e{"dhcp.nak", now};
        e.str("mac", m.chaddr.to_string());
        j->emit(e);
      }
      return make_reply(m, MessageType::Nak, net::Ipv4Addr{});
    }
    leases_.renew(m.ciaddr, now + config_.lease_seconds);
    ++stats_.acks;
    dhcp_metrics().acks.inc();
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"dhcp.ack", now};
      e.str("ip", m.ciaddr.to_string()).str("mac", m.chaddr.to_string()).boolean("renew", true);
      j->emit(e);
    }
    // Renewal does not re-fire on_bound: the PTR is already in place.
    return make_reply(m, MessageType::Ack, m.ciaddr);
  }

  // SELECTING: must name us and the offered address.
  const auto server_id = m.server_identifier();
  const auto requested = m.requested_ip();
  if (!requested || (server_id && !(*server_id == config_.server_id))) {
    ++stats_.naks;
    dhcp_metrics().naks.inc();
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"dhcp.nak", now};
      e.str("mac", m.chaddr.to_string());
      j->emit(e);
    }
    return make_reply(m, MessageType::Nak, net::Ipv4Addr{});
  }
  const Lease* offered = leases_.by_address(*requested);
  if (offered == nullptr || !(offered->mac == m.chaddr)) {
    ++stats_.naks;
    dhcp_metrics().naks.inc();
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"dhcp.nak", now};
      e.str("mac", m.chaddr.to_string());
      j->emit(e);
    }
    return make_reply(m, MessageType::Nak, net::Ipv4Addr{});
  }
  Lease updated = *offered;
  fill_identity(updated, m);  // REQUEST may carry fresher identity options
  updated.state = LeaseState::Bound;
  updated.start = now;
  updated.expiry = now + config_.lease_seconds;
  leases_.upsert(updated);
  ++stats_.acks;
  dhcp_metrics().acks.inc();
  // The ACK event must precede the bridge's ddns.ptr_add (fired from
  // notify_bound) so the auditor sees cause before effect.
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"dhcp.ack", now};
    e.str("ip", updated.address.to_string())
        .str("mac", updated.mac.to_string())
        .boolean("renew", false)
        .str("host", updated.host_name);
    j->emit(e);
  }
  notify_bound(updated, now);
  // Chaos profile: the ACK datagram delivered twice. The lease layer is
  // re-notified and the DDNS bridge re-sends an idempotent PTR replace —
  // downstream consumers (and the auditor) must tolerate the repeat.
  if (auto* inj = util::faults::active();
      inj != nullptr &&
      inj->should_fail(util::faults::Site::DhcpDuplicateAck,
                       util::mix64(updated.mac.key()) ^ static_cast<std::uint64_t>(now))) {
    util::faults::journal_fault(util::faults::Site::DhcpDuplicateAck, "mac",
                                updated.mac.to_string(), now);
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"dhcp.ack", now};
      e.str("ip", updated.address.to_string())
          .str("mac", updated.mac.to_string())
          .boolean("renew", false)
          .str("host", updated.host_name);
      j->emit(e);
    }
    notify_bound(updated, now);
  }
  return make_reply(m, MessageType::Ack, *requested);
}

void DhcpServer::on_release(const DhcpMessage& m, util::SimTime now) {
  if (m.ciaddr.value() == 0) return;
  const auto released = leases_.release(m.ciaddr);
  if (!released) return;
  pool_.release(released->address, released->mac);
  leases_.erase(released->address);
  journal_lease_event("dhcp.release", *released, now);
  notify_end(*released, LeaseEndReason::Release, now);
}

void DhcpServer::tick(util::SimTime now) {
  for (const Lease& lease : leases_.expire_due(now)) {
    pool_.release(lease.address, lease.mac);
    leases_.erase(lease.address);
    // Lapsed offers have no DNS state to clean up (the bridge only acts on
    // bound leases), so only bound leases fire the end event.
    if (lease.state == LeaseState::Bound) {
      ++stats_.expirations;
      dhcp_metrics().expirations.inc();
      journal_lease_event("dhcp.expire", lease, now);
      notify_end(lease, LeaseEndReason::Expiry, now);
    }
  }
}

}  // namespace rdns::dhcp
