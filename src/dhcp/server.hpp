#pragma once
/// \file server.hpp
/// DHCP server state machine (RFC 2131 §4.3): DISCOVER→OFFER,
/// REQUEST→ACK/NAK, RELEASE, lease expiry. Lease lifecycle events are
/// published to observers — the DdnsBridge subscribes to them, which is how
/// client identifiers end up in the global reverse DNS.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "dhcp/lease.hpp"
#include "dhcp/message.hpp"
#include "dhcp/pool.hpp"
#include "util/time.hpp"

namespace rdns::dhcp {

struct DhcpServerConfig {
  net::Ipv4Addr server_id;
  /// Lease duration granted to clients. The paper observes that an hour
  /// "is often set ... for a fast turn-over rate" (Section 6.2).
  std::uint32_t lease_seconds = 3600;
  /// How long an un-REQUESTed OFFER holds the address.
  std::uint32_t offer_hold_seconds = 60;
};

struct DhcpServerStats {
  std::uint64_t discovers = 0;
  std::uint64_t offers = 0;
  std::uint64_t requests = 0;
  std::uint64_t acks = 0;
  std::uint64_t naks = 0;
  std::uint64_t releases = 0;
  std::uint64_t expirations = 0;
  std::uint64_t pool_exhausted = 0;
};

/// Lease lifecycle callbacks.
struct LeaseObserver {
  std::function<void(const Lease&, util::SimTime)> on_bound;
  std::function<void(const Lease&, LeaseEndReason, util::SimTime)> on_end;
};

class DhcpServer {
 public:
  DhcpServer(DhcpServerConfig config, AddressPool pool);

  /// Subscribe to lease events (e.g. the DdnsBridge).
  void add_observer(LeaseObserver observer);

  /// Handle a client message in parsed form; nullopt = no reply (RELEASE,
  /// or a drop).
  [[nodiscard]] std::optional<DhcpMessage> handle(const DhcpMessage& request, util::SimTime now);

  /// Handle a client message in wire form; the simulator uses this path so
  /// DHCP bytes are round-tripped on every exchange.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> handle_wire(
      std::span<const std::uint8_t> wire, util::SimTime now);

  /// Process lease expirations up to `now`. Call periodically (the
  /// simulator ticks once per simulated minute).
  void tick(util::SimTime now);

  [[nodiscard]] const DhcpServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] const DhcpServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LeaseDb& leases() const noexcept { return leases_; }
  [[nodiscard]] const AddressPool& pool() const noexcept { return pool_; }

 private:
  [[nodiscard]] std::optional<DhcpMessage> on_discover(const DhcpMessage& m, util::SimTime now);
  [[nodiscard]] std::optional<DhcpMessage> on_request(const DhcpMessage& m, util::SimTime now);
  void on_release(const DhcpMessage& m, util::SimTime now);

  [[nodiscard]] DhcpMessage make_reply(const DhcpMessage& request, MessageType type,
                                       net::Ipv4Addr yiaddr) const;
  void notify_bound(const Lease& lease, util::SimTime now);
  void notify_end(const Lease& lease, LeaseEndReason reason, util::SimTime now);
  /// Copy identity options from the client message into the lease.
  static void fill_identity(Lease& lease, const DhcpMessage& m);

  DhcpServerConfig config_;
  AddressPool pool_;
  LeaseDb leases_;
  std::vector<LeaseObserver> observers_;
  DhcpServerStats stats_;
};

}  // namespace rdns::dhcp
