#include "dns/admin.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <utility>

#include "dns/message.hpp"
#include "dns/wire.hpp"
#include "net/admin_http.hpp"
#include "util/journal.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rdns::dns {

namespace metrics = util::metrics;

namespace {

/// Latency bucket upper bounds: 1us * 2^i.
[[nodiscard]] double bucket_bound(std::size_t i) noexcept {
  return static_cast<double>(std::uint64_t{1} << i);
}

/// splitmix64 finalizer: spreads the (often sequential) transaction ids so
/// "1 in N by txid hash" selects an unbiased but reproducible subset.
[[nodiscard]] std::uint64_t mix_txid(std::uint64_t txid) noexcept {
  std::uint64_t x = txid + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::string format_double(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, std::isfinite(v) ? v : 0.0);
  return buf;
}

}  // namespace

// -- RateWindows --------------------------------------------------------------

void RateWindows::add_sample(double at_s, std::uint64_t cumulative) {
  if (!samples_.empty() && at_s < samples_.back().at_s) return;  // clock went backwards
  samples_.push_back(Sample{at_s, cumulative});
  while (samples_.size() > max_samples_) samples_.pop_front();
}

double RateWindows::rate(double window_s) const {
  if (samples_.size() < 2) return 0.0;
  const Sample& last = samples_.back();
  const double boundary = last.at_s - window_s;
  // Newest sample at or before the window boundary; falls back to the
  // oldest retained sample, clamping the window to the observed span.
  const Sample* base = &samples_.front();
  for (const Sample& s : samples_) {
    if (s.at_s > boundary) break;
    base = &s;
  }
  if (base == &last) base = &samples_[samples_.size() - 2];
  const double span = last.at_s - base->at_s;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(last.cumulative - base->cumulative) / span;
}

// -- ServeLatencySnapshot -----------------------------------------------------

double ServeLatencySnapshot::percentile(double p) const noexcept {
  if (count == 0) return 0.0;
  const double rank = (std::clamp(p, 0.0, 100.0) / 100.0) * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i <= kServeLatencyBuckets; ++i) {
    const std::uint64_t c = buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(seen) + static_cast<double>(c) >= rank) {
      if (i == kServeLatencyBuckets) return bucket_bound(kServeLatencyBuckets - 1);
      const double lower = i == 0 ? 0.0 : bucket_bound(i - 1);
      const double upper = bucket_bound(i);
      const double within = (rank - static_cast<double>(seen)) / static_cast<double>(c);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    seen += c;
  }
  return bucket_bound(kServeLatencyBuckets - 1);
}

ServeLatencySnapshot& ServeLatencySnapshot::operator+=(const ServeLatencySnapshot& other) noexcept {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_us += other.sum_us;
  return *this;
}

// -- WorkerProbe --------------------------------------------------------------

bool ServeIntrospection::WorkerProbe::should_sample(
    std::span<const std::uint8_t> query) const noexcept {
  const unsigned n = owner_->config_.sample_every;
  if (n == 0 || query.size() < 2) return false;
  if (n == 1) return true;
  const std::uint64_t txid = (std::uint64_t{query[0]} << 8) | query[1];
  return mix_txid(txid) % n == 0;
}

void ServeIntrospection::WorkerProbe::note_client(std::uint32_t address) {
  client_buf_.push_back(address);
}

void ServeIntrospection::WorkerProbe::on_sampled(
    std::span<const std::uint8_t> query, const std::optional<std::vector<std::uint8_t>>& response,
    double latency_us, const net::UdpEndpoint& client) {
  ++sampled_;
  std::size_t bucket = kServeLatencyBuckets;
  for (std::size_t i = 0; i < kServeLatencyBuckets; ++i) {
    if (latency_us <= bucket_bound(i)) {
      bucket = i;
      break;
    }
  }
  ++latency_.buckets[bucket];
  ++latency_.count;
  latency_.sum_us += latency_us;

  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
  std::string qname;
  const bool parsed = peek_question(query, &qtype, &qclass, &qname);
  if (parsed) qname_buf_.push_back(qname);

  if (latency_us >= owner_->config_.slowlog_threshold_us) {
    ++slowlog_;
    if (util::journal::Journal* j = util::journal::active()) {
      const char* rcode = "drop";  // handler returned nullopt: injected timeout
      if (response.has_value() && response->size() >= 4) {
        rcode = to_string(static_cast<Rcode>((*response)[3] & 0x0F));
      }
      util::journal::Event event{"serve.slowlog", owner_->config_.sim_time};
      event.str("qname", parsed ? qname : "<malformed>")
          .str("client", client.to_string())
          .unum("latency_us", static_cast<std::uint64_t>(std::llround(latency_us)))
          .str("rcode", rcode)
          .unum("worker", index_);
      j->emit(event);
    }
  }
}

void ServeIntrospection::WorkerProbe::publish(const UdpServeStats& stats) {
  if (!client_buf_.empty() || !qname_buf_.empty()) {
    WorkerSketches& sk = *owner_->sketches_[index_];
    const std::lock_guard<std::mutex> lock(sk.mu);
    // Sorting first bounds the sketch work at one offer per *distinct*
    // client in this drain, independent of how the kernel interleaved them.
    std::sort(client_buf_.begin(), client_buf_.end());
    std::size_t i = 0;
    while (i < client_buf_.size()) {
      std::size_t j = i + 1;
      while (j < client_buf_.size() && client_buf_[j] == client_buf_[i]) ++j;
      sk.clients.offer(util::ipv4_sketch_key(client_buf_[i]), j - i);
      i = j;
    }
    for (const std::string& q : qname_buf_) sk.qnames.offer(q);
    client_buf_.clear();
    qname_buf_.clear();
  }

  // Seqlock publish (Boehm-style fences): odd epoch = write in progress.
  Slot& slot = *owner_->slots_[index_];
  const std::uint64_t e = slot.epoch.load(std::memory_order_relaxed);
  slot.epoch.store(e + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::size_t w = 0;
  const auto put = [&](std::uint64_t v) {
    slot.words[w++].store(v, std::memory_order_relaxed);
  };
  put(stats.datagrams_received);
  put(stats.responses_sent);
  put(stats.dropped_malformed);
  put(stats.dropped_timeout_fault);
  put(stats.dropped_policy);
  put(stats.truncated_queries);
  put(stats.send_failures);
  put(stats.recv_batches);
  put(stats.formerr_sent);
  put(stats.notimp_sent);
  put(stats.refused_sent);
  put(stats.rrl_dropped);
  put(stats.rrl_slipped);
  put(stats.shed_errors);
  put(stats.shed_answers);
  put(stats.cache_hits);
  put(stats.cache_misses);
  put(stats.edns_queries);
  put(stats.tc_responses);
  for (const std::uint64_t b : latency_.buckets) put(b);
  put(latency_.count);
  std::uint64_t sum_bits = 0;
  std::memcpy(&sum_bits, &latency_.sum_us, sizeof sum_bits);
  put(sum_bits);
  put(sampled_);
  put(slowlog_);
  slot.epoch.store(e + 2, std::memory_order_release);
}

// -- ServeIntrospection -------------------------------------------------------

ServeIntrospection::ServeIntrospection(unsigned workers, ServeAdminConfig config)
    : config_(config), started_(std::chrono::steady_clock::now()) {
  if (workers == 0) workers = 1;
  if (config_.top_k == 0) config_.top_k = 1;
  if (config_.aggregate_interval_ms == 0) config_.aggregate_interval_ms = 250;
  probes_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    probes_.emplace_back(std::unique_ptr<WorkerProbe>(new WorkerProbe(this, i)));
    slots_.emplace_back(std::make_unique<Slot>());
    sketches_.emplace_back(std::make_unique<WorkerSketches>(config_.top_k));
  }
}

ServeIntrospection::~ServeIntrospection() { stop(); }

void ServeIntrospection::start() {
  if (running_) return;
  running_ = true;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  aggregator_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(wake_mu_);
        if (wake_cv_.wait_for(lock, std::chrono::milliseconds(config_.aggregate_interval_ms),
                              [this] { return stop_requested_; })) {
          break;
        }
      }
      aggregate_pass();
    }
    aggregate_pass();  // leave a final fresh aggregate behind
  });
}

void ServeIntrospection::stop() {
  if (!running_) return;
  {
    const std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (aggregator_.joinable()) aggregator_.join();
  running_ = false;
}

void ServeIntrospection::aggregate_now() { aggregate_pass(); }

ServeIntrospection::Aggregate ServeIntrospection::aggregate() const {
  const std::lock_guard<std::mutex> lock(agg_mu_);
  return latest_;
}

bool ServeIntrospection::read_slot(const Slot& slot, UdpServeStats& stats,
                                   ServeLatencySnapshot& latency, std::uint64_t& sampled,
                                   std::uint64_t& slowlog) {
  std::array<std::uint64_t, Slot::kWords> copy{};
  bool consistent = false;
  for (int attempt = 0; attempt < 64 && !consistent; ++attempt) {
    const std::uint64_t e1 = slot.epoch.load(std::memory_order_acquire);
    if ((e1 & 1u) != 0) continue;
    for (std::size_t i = 0; i < Slot::kWords; ++i) {
      copy[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    consistent = slot.epoch.load(std::memory_order_relaxed) == e1;
  }
  // After exhausting retries the last copy is used anyway: a torn monitoring
  // sample beats a monitoring stall while a worker publishes continuously.
  std::size_t w = 0;
  const auto get = [&] { return copy[w++]; };
  stats.datagrams_received = get();
  stats.responses_sent = get();
  stats.dropped_malformed = get();
  stats.dropped_timeout_fault = get();
  stats.dropped_policy = get();
  stats.truncated_queries = get();
  stats.send_failures = get();
  stats.recv_batches = get();
  stats.formerr_sent = get();
  stats.notimp_sent = get();
  stats.refused_sent = get();
  stats.rrl_dropped = get();
  stats.rrl_slipped = get();
  stats.shed_errors = get();
  stats.shed_answers = get();
  stats.cache_hits = get();
  stats.cache_misses = get();
  stats.edns_queries = get();
  stats.tc_responses = get();
  for (std::uint64_t& b : latency.buckets) b = get();
  latency.count = get();
  const std::uint64_t sum_bits = get();
  std::memcpy(&latency.sum_us, &sum_bits, sizeof latency.sum_us);
  sampled = get();
  slowlog = get();
  return consistent;
}

void ServeIntrospection::aggregate_pass() {
  const std::lock_guard<std::mutex> pass_lock(pass_mu_);
  Aggregate agg;
  util::SpaceSaving clients{config_.top_k};
  util::SpaceSaving qnames{config_.top_k};
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    UdpServeStats stats;
    ServeLatencySnapshot lat;
    std::uint64_t sampled = 0;
    std::uint64_t slow = 0;
    if (!read_slot(*slots_[i], stats, lat, sampled, slow)) {
      metrics::counter("serve.admin_torn_reads").inc();
    }
    agg.totals += stats;
    agg.latency += lat;
    agg.sampled += sampled;
    agg.slowlog += slow;
    {
      WorkerSketches& sk = *sketches_[i];
      const std::lock_guard<std::mutex> lock(sk.mu);
      clients.merge_from(sk.clients);
      qnames.merge_from(sk.qnames);
    }
  }

  const double now_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  agg.uptime_s = now_s;
  received_rate_.add_sample(now_s, agg.totals.datagrams_received);
  sent_rate_.add_sample(now_s, agg.totals.responses_sent);
  agg.qps_1s = received_rate_.rate(1.0);
  agg.qps_10s = received_rate_.rate(10.0);
  agg.qps_60s = received_rate_.rate(60.0);
  agg.top_clients = clients.top(config_.top_k);
  agg.top_qnames = qnames.top(config_.top_k);

  // Mirror the folded view into the global registry so the Prometheus
  // exposition and the --metrics-interval JSONL stream carry it too.
  metrics::gauge("serve.qps_1s").set(std::llround(agg.qps_1s));
  metrics::gauge("serve.qps_10s").set(std::llround(agg.qps_10s));
  metrics::gauge("serve.qps_60s").set(std::llround(agg.qps_60s));
  metrics::gauge("serve.rps_1s").set(std::llround(sent_rate_.rate(1.0)));
  metrics::gauge("serve.latency_p50_us").set(std::llround(agg.latency.percentile(50)));
  metrics::gauge("serve.latency_p90_us").set(std::llround(agg.latency.percentile(90)));
  metrics::gauge("serve.latency_p99_us").set(std::llround(agg.latency.percentile(99)));
  metrics::gauge("serve.sampled_queries").set(static_cast<std::int64_t>(agg.sampled));
  metrics::gauge("serve.slowlog_events").set(static_cast<std::int64_t>(agg.slowlog));
  metrics::gauge("serve.uptime_s").set(std::llround(agg.uptime_s));
  metrics::gauge("serve.log_level").set(static_cast<std::int64_t>(util::log_level()));

  const std::lock_guard<std::mutex> lock(agg_mu_);
  latest_ = std::move(agg);
}

// -- admin surfaces -----------------------------------------------------------

std::optional<std::vector<std::string>> ServeIntrospection::chaos_txt_strings(
    const std::string& qname) {
  if (qname == "version.rdns" || qname == "version.bind") {
    return std::vector<std::string>{util::journal::version_string()};
  }
  if (qname == "loglevel.rdns") {
    return std::vector<std::string>{util::to_string(util::log_level())};
  }
  const bool want_stats = qname == "stats.rdns";
  const bool want_clients = qname == "top.clients.rdns";
  const bool want_qnames = qname == "top.qnames.rdns";
  if (!want_stats && !want_clients && !want_qnames) return std::nullopt;

  aggregate_now();
  const Aggregate agg = aggregate();
  std::vector<std::string> out;
  if (want_stats) {
    out.push_back("received=" + std::to_string(agg.totals.datagrams_received));
    out.push_back("answered=" + std::to_string(agg.totals.responses_sent));
    out.push_back("dropped=" + std::to_string(agg.totals.dropped_total()));
    out.push_back("rrl_dropped=" + std::to_string(agg.totals.rrl_dropped));
    out.push_back("shed=" + std::to_string(agg.totals.shed_errors + agg.totals.shed_answers));
    out.push_back("qps1s=" + format_double(agg.qps_1s));
    out.push_back("qps10s=" + format_double(agg.qps_10s));
    out.push_back("qps60s=" + format_double(agg.qps_60s));
    out.push_back("p50us=" + format_double(agg.latency.percentile(50)));
    out.push_back("p99us=" + format_double(agg.latency.percentile(99)));
    out.push_back("sampled=" + std::to_string(agg.sampled));
    out.push_back("slowlog=" + std::to_string(agg.slowlog));
    out.push_back("uptime_s=" + format_double(agg.uptime_s));
    return out;
  }
  const auto& entries = want_clients ? agg.top_clients : agg.top_qnames;
  for (const auto& e : entries) {
    out.push_back(e.key + "=" + std::to_string(e.count));
    if (out.size() >= 16) break;  // keep the reply inside a 512-byte datagram
  }
  if (out.empty()) out.emplace_back("empty");
  return out;
}

UdpServerLoop::WireHandler ServeIntrospection::wrap_chaos(UdpServerLoop::WireHandler inner) {
  return [this, inner = std::move(inner)](std::span<const std::uint8_t> query)
             -> std::optional<std::vector<std::uint8_t>> {
    // Fast path: classify without materializing the qname (the label walk
    // is allocation-free); only a CH TXT query pays for the string.
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    if (!peek_question(query, &qtype, &qclass, nullptr) ||
        qclass != static_cast<std::uint16_t>(RrClass::CH) ||
        qtype != static_cast<std::uint16_t>(RrType::TXT)) {
      return inner(query);
    }
    std::string qname;
    if (!peek_question(query, &qtype, &qclass, &qname)) return inner(query);
    metrics::counter("serve.chaos_queries").inc();
    Message parsed;
    try {
      parsed = decode(query);
    } catch (const WireError&) {
      return inner(query);
    }
    if (parsed.questions.size() != 1) return inner(query);
    const auto strings = chaos_txt_strings(qname);
    Message response =
        make_response(parsed, strings.has_value() ? Rcode::NoError : Rcode::NxDomain);
    if (strings.has_value()) {
      ResourceRecord rr = make_txt(parsed.questions.front().qname, *strings, /*ttl=*/0);
      rr.klass = RrClass::CH;
      response.answers.push_back(std::move(rr));
    }
    return encode(response);
  };
}

std::string ServeIntrospection::render_prometheus() {
  aggregate_now();
  const Aggregate agg = aggregate();
  std::ostringstream out;
  // Shared admin-plane prefix (registry + rdns_build_info), then the
  // serve-specific gauges.
  out << net::prometheus_registry_page("serve");

  out << "# TYPE rdns_serve_qps gauge\n";
  out << "rdns_serve_qps{window=\"1s\"} " << metrics::json_number(agg.qps_1s) << "\n";
  out << "rdns_serve_qps{window=\"10s\"} " << metrics::json_number(agg.qps_10s) << "\n";
  out << "rdns_serve_qps{window=\"60s\"} " << metrics::json_number(agg.qps_60s) << "\n";

  if (!agg.top_clients.empty()) {
    out << "# TYPE rdns_serve_top_client gauge\n";
    for (const auto& e : agg.top_clients) {
      out << "rdns_serve_top_client{client=\"" << metrics::prometheus_label_value(e.key)
          << "\"} " << e.count << "\n";
    }
  }
  if (!agg.top_qnames.empty()) {
    out << "# TYPE rdns_serve_top_qname gauge\n";
    for (const auto& e : agg.top_qnames) {
      out << "rdns_serve_top_qname{qname=\"" << metrics::prometheus_label_value(e.key) << "\"} "
          << e.count << "\n";
    }
  }
  return out.str();
}

namespace {

void append_top_entries(std::string& out, const std::vector<util::SpaceSaving::Entry>& entries) {
  out += '[';
  bool first = true;
  for (const auto& e : entries) {
    if (!first) out += ',';
    first = false;
    out += "{\"key\":\"";
    metrics::append_json_escaped(out, e.key);
    out += "\",\"count\":" + std::to_string(e.count);
    out += ",\"error\":" + std::to_string(e.error) + "}";
  }
  out += ']';
}

}  // namespace

std::string ServeIntrospection::render_stats_json() {
  aggregate_now();
  const Aggregate agg = aggregate();
  std::string out = "{\"schema\":\"rdns.serve-stats.v1\"";
  out += ",\"uptime_s\":" + metrics::json_number(agg.uptime_s);
  out += ",\"workers\":" + std::to_string(workers());
  out += ",\"qps\":{\"1s\":" + metrics::json_number(agg.qps_1s);
  out += ",\"10s\":" + metrics::json_number(agg.qps_10s);
  out += ",\"60s\":" + metrics::json_number(agg.qps_60s) + "}";
  out += ",\"latency_us\":{\"p50\":" + metrics::json_number(agg.latency.percentile(50));
  out += ",\"p90\":" + metrics::json_number(agg.latency.percentile(90));
  out += ",\"p99\":" + metrics::json_number(agg.latency.percentile(99));
  out += ",\"count\":" + std::to_string(agg.latency.count) + "}";
  out += ",\"totals\":{\"received\":" + std::to_string(agg.totals.datagrams_received);
  out += ",\"answered\":" + std::to_string(agg.totals.responses_sent);
  out += ",\"dropped\":" + std::to_string(agg.totals.dropped_total());
  out += ",\"dropped_malformed\":" + std::to_string(agg.totals.dropped_malformed);
  out += ",\"dropped_timeout_fault\":" + std::to_string(agg.totals.dropped_timeout_fault);
  out += ",\"dropped_policy\":" + std::to_string(agg.totals.dropped_policy);
  out += ",\"truncated\":" + std::to_string(agg.totals.truncated_queries);
  out += ",\"send_failures\":" + std::to_string(agg.totals.send_failures);
  out += ",\"recv_batches\":" + std::to_string(agg.totals.recv_batches) + "}";
  out += ",\"guard\":{\"formerr_sent\":" + std::to_string(agg.totals.formerr_sent);
  out += ",\"notimp_sent\":" + std::to_string(agg.totals.notimp_sent);
  out += ",\"refused_sent\":" + std::to_string(agg.totals.refused_sent);
  out += ",\"rrl_dropped\":" + std::to_string(agg.totals.rrl_dropped);
  out += ",\"rrl_slipped\":" + std::to_string(agg.totals.rrl_slipped);
  out += ",\"shed_errors\":" + std::to_string(agg.totals.shed_errors);
  out += ",\"shed_answers\":" + std::to_string(agg.totals.shed_answers) + "}";
  out += ",\"cache\":{\"hits\":" + std::to_string(agg.totals.cache_hits);
  out += ",\"misses\":" + std::to_string(agg.totals.cache_misses);
  out += ",\"edns_queries\":" + std::to_string(agg.totals.edns_queries);
  out += ",\"tc_responses\":" + std::to_string(agg.totals.tc_responses) + "}";
  out += ",\"sampled\":" + std::to_string(agg.sampled);
  out += ",\"slowlog\":" + std::to_string(agg.slowlog);
  out += ",\"sample_every\":" + std::to_string(config_.sample_every);
  out += ",\"log_level\":\"";
  metrics::append_json_escaped(out, util::to_string(util::log_level()));
  out += "\",\"top_clients\":";
  append_top_entries(out, agg.top_clients);
  out += ",\"top_qnames\":";
  append_top_entries(out, agg.top_qnames);
  out += "}";
  return out;
}

void ServeIntrospection::install_http_routes(net::AdminHttpServer& http) {
  net::install_admin_routes(http, "rdns admin plane\nroutes: /metrics /stats.json\n",
                            [this] { return render_prometheus(); });
  http.route("/stats.json", [this](const std::string&) {
    return net::HttpResponse{200, "application/json", render_stats_json()};
  });
}

// -- question peek ------------------------------------------------------------

bool peek_question(std::span<const std::uint8_t> payload, std::uint16_t* qtype,
                   std::uint16_t* qclass, std::string* qname_out) {
  if (payload.size() < 12) return false;
  const std::uint16_t qdcount =
      static_cast<std::uint16_t>((payload[4] << 8) | payload[5]);
  if (qdcount == 0) return false;
  std::size_t pos = 12;
  std::size_t name_len = 0;
  std::string name;
  for (;;) {
    if (pos >= payload.size()) return false;
    const std::uint8_t len = payload[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if (len > 63) return false;  // compression pointer or reserved label type
    if (pos + 1 + len > payload.size()) return false;
    name_len += (name_len > 0 ? 1 : 0) + len;
    if (name_len > 255) return false;
    if (qname_out != nullptr) {
      // Only materialize (and lowercase) the name when the caller wants it;
      // the per-query classification path passes nullptr and stays
      // allocation-free.
      if (!name.empty()) name.push_back('.');
      for (std::size_t i = 0; i < len; ++i) {
        char c = static_cast<char>(payload[pos + 1 + i]);
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        name.push_back(c);
      }
    }
    pos += 1 + static_cast<std::size_t>(len);
  }
  if (pos + 4 > payload.size()) return false;
  if (qtype != nullptr) *qtype = static_cast<std::uint16_t>((payload[pos] << 8) | payload[pos + 1]);
  if (qclass != nullptr) {
    *qclass = static_cast<std::uint16_t>((payload[pos + 2] << 8) | payload[pos + 3]);
  }
  if (qname_out != nullptr) *qname_out = name.empty() ? "." : std::move(name);
  return true;
}

}  // namespace rdns::dns
