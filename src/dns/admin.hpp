#pragma once
/// \file admin.hpp
/// Live introspection plane for the UDP serving loop. While `rdns_tool
/// serve` is under load, an operator can watch it through three windows,
/// none of which perturbs the hot path:
///
///   - an HTTP admin endpoint (net::AdminHttpServer) exposing the whole
///     util::metrics registry as Prometheus text plus a stats.json document
///     with rolling 1s/10s/60s QPS windows, latency percentiles and
///     heavy-hitter top-K tables;
///   - a DNS-native CHAOS TXT interface on the serving port itself
///     (`dig +short CH TXT stats.rdns @server`) — zero extra dependencies,
///     the classic BIND `version.bind` idiom;
///   - sampled per-query tracing: a deterministic 1-in-N subset of queries
///     (chosen by transaction-id hash, so the subset is reproducible) is
///     clocked through the handler, feeds per-worker latency histograms and
///     qname heavy-hitter sketches, and emits `serve.slowlog` journal
///     events above a latency threshold.
///
/// Concurrency model (the snapshot pipeline of DESIGN.md §12). Each worker
/// owns a WorkerProbe: plain local accumulators plus two Space-Saving
/// sketches behind a per-worker mutex that only the aggregator ever
/// contends. After every socket drain the worker publishes its counters and
/// latency buckets into an epoch-versioned slot (a seqlock over relaxed
/// atomic words: bump epoch odd, store words, bump epoch even). An
/// aggregation thread folds all slots every `aggregate_interval_ms` into a
/// single Aggregate — rate windows, percentiles, merged sketches — that the
/// admin surfaces render. Workers never block on the admin plane, and a
/// disabled plane costs the serving loop one pointer test per query.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "dns/udp_server.hpp"
#include "util/sketch.hpp"
#include "util/time.hpp"

namespace rdns::net {
class AdminHttpServer;
}

namespace rdns::dns {

/// Rolling event-rate estimator over (timestamp, cumulative-count) samples:
/// the aggregator appends one sample per pass and rate(w) differences the
/// newest sample against the one at (or just before) the window boundary.
class RateWindows {
 public:
  explicit RateWindows(std::size_t max_samples = 512) : max_samples_(max_samples) {}

  void add_sample(double at_s, std::uint64_t cumulative);

  /// Average events/second over the trailing `window_s` (clamped to the
  /// observed span); 0 before two samples exist.
  [[nodiscard]] double rate(double window_s) const;

 private:
  struct Sample {
    double at_s = 0;
    std::uint64_t cumulative = 0;
  };
  std::size_t max_samples_;
  std::deque<Sample> samples_;
};

struct ServeAdminConfig {
  /// Sampled tracing: clock 1 query in `sample_every` (deterministic by
  /// txid hash). 0 disables sampling (and with it slowlog + qname top-K).
  unsigned sample_every = 8;
  /// A sampled query slower than this emits a serve.slowlog journal event.
  double slowlog_threshold_us = 1000.0;
  /// Capacity of the client/qname Space-Saving sketches.
  std::size_t top_k = 64;
  /// Aggregation cadence of the admin thread.
  unsigned aggregate_interval_ms = 250;
  /// Simulated timestamp stamped on serve.slowlog journal events (the
  /// frozen world instant — serving does not advance simulated time).
  util::SimTime sim_time = 0;
};

/// Fixed latency bucketing for the per-worker histograms: upper bounds
/// 1us * 2^i, i = 0..kLatencyBuckets-1, plus an overflow bucket.
inline constexpr std::size_t kServeLatencyBuckets = 24;

/// One worker's published view, and the fold of all of them.
struct ServeLatencySnapshot {
  std::array<std::uint64_t, kServeLatencyBuckets + 1> buckets{};
  std::uint64_t count = 0;
  double sum_us = 0;

  [[nodiscard]] double percentile(double p) const noexcept;
  ServeLatencySnapshot& operator+=(const ServeLatencySnapshot& other) noexcept;
};

class ServeIntrospection {
 public:
  /// The aggregator's folded view of the whole serving loop.
  struct Aggregate {
    UdpServeStats totals;
    ServeLatencySnapshot latency;
    double qps_1s = 0, qps_10s = 0, qps_60s = 0;  ///< responses/s windows
    std::uint64_t sampled = 0;                    ///< queries clocked so far
    std::uint64_t slowlog = 0;                    ///< slowlog events emitted
    std::vector<util::SpaceSaving::Entry> top_clients;
    std::vector<util::SpaceSaving::Entry> top_qnames;
    double uptime_s = 0;
  };

  /// Per-worker hot-path hooks. All methods are called by exactly one
  /// worker thread; publish() is the only synchronization point.
  class WorkerProbe {
   public:
    /// Deterministic 1-in-N gate by transaction-id hash (payload bytes
    /// 0..1). False when sampling is off or the payload is headerless.
    [[nodiscard]] bool should_sample(std::span<const std::uint8_t> query) const noexcept;

    /// Record a client address (host order) for the heavy-hitter sketch;
    /// buffered locally, folded at publish().
    void note_client(std::uint32_t address);

    /// Record a sampled query: latency histogram, qname sketch, slowlog.
    void on_sampled(std::span<const std::uint8_t> query,
                    const std::optional<std::vector<std::uint8_t>>& response, double latency_us,
                    const net::UdpEndpoint& client);

    /// Seqlock-publish the worker's stats + latency view and flush the
    /// sketch buffers. Called once per socket drain.
    void publish(const UdpServeStats& stats);

   private:
    friend class ServeIntrospection;
    WorkerProbe(ServeIntrospection* owner, unsigned index)
        : owner_(owner), index_(index) {}

    ServeIntrospection* owner_;
    unsigned index_;
    ServeLatencySnapshot latency_;
    std::uint64_t sampled_ = 0;
    std::uint64_t slowlog_ = 0;
    std::vector<std::uint32_t> client_buf_;
    std::vector<std::string> qname_buf_;
  };

  ServeIntrospection(unsigned workers, ServeAdminConfig config);
  ~ServeIntrospection();

  ServeIntrospection(const ServeIntrospection&) = delete;
  ServeIntrospection& operator=(const ServeIntrospection&) = delete;

  [[nodiscard]] WorkerProbe& probe(unsigned worker) { return *probes_[worker]; }
  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(probes_.size());
  }
  [[nodiscard]] const ServeAdminConfig& config() const noexcept { return config_; }

  /// Launch the aggregation thread (idempotent). stop() joins it; the
  /// destructor calls stop().
  void start();
  void stop();

  /// One synchronous aggregation pass (the admin surfaces call this before
  /// rendering so scrapes are fresh; tests drive it directly).
  void aggregate_now();

  /// Copy of the latest aggregate.
  [[nodiscard]] Aggregate aggregate() const;

  /// Wrap a serving handler with the CHAOS-class TXT stats interface:
  /// queries with QCLASS=CH and QTYPE=TXT for stats.rdns / version.rdns /
  /// top.clients.rdns / top.qnames.rdns / loglevel.rdns (plus the
  /// version.bind alias) are answered from the introspection plane; every
  /// other datagram goes to `inner` untouched.
  [[nodiscard]] UdpServerLoop::WireHandler wrap_chaos(UdpServerLoop::WireHandler inner);

  /// Prometheus text exposition: the whole global metrics registry plus
  /// build info, QPS windows, latency percentiles and top-K tables.
  [[nodiscard]] std::string render_prometheus();

  /// Compact JSON stats document (schema rdns.serve-stats.v1) — what
  /// `rdns_tool top` polls.
  [[nodiscard]] std::string render_stats_json();

  /// Register /metrics, /stats.json and / on an admin HTTP server.
  void install_http_routes(net::AdminHttpServer& http);

 private:
  /// Epoch-versioned publication slot: a seqlock over relaxed atomic words
  /// (TSan-clean — every racing cell is an atomic; the epoch only decides
  /// whether the reader's copy is a consistent snapshot).
  struct Slot {
    static constexpr std::size_t kWords = UdpServeStats::kFieldCount +
                                          (kServeLatencyBuckets + 1) + 2 /*count,sum*/ +
                                          2 /*sampled,slow*/;
    std::atomic<std::uint64_t> epoch{0};
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  struct WorkerSketches {
    std::mutex mu;
    util::SpaceSaving clients;
    util::SpaceSaving qnames;
    WorkerSketches(std::size_t k) : clients(k), qnames(k) {}
  };

  /// True when the slot yielded a consistent snapshot.
  static bool read_slot(const Slot& slot, UdpServeStats& stats, ServeLatencySnapshot& latency,
                        std::uint64_t& sampled, std::uint64_t& slowlog);

  void aggregate_pass();
  [[nodiscard]] std::optional<std::vector<std::string>> chaos_txt_strings(
      const std::string& qname);

  ServeAdminConfig config_;
  std::vector<std::unique_ptr<WorkerProbe>> probes_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::unique_ptr<WorkerSketches>> sketches_;
  std::chrono::steady_clock::time_point started_;

  std::mutex pass_mu_;  ///< serializes aggregate_pass (thread + on-demand)
  RateWindows received_rate_;
  RateWindows sent_rate_;

  mutable std::mutex agg_mu_;
  Aggregate latest_;

  std::thread aggregator_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
};

/// Fast, allocation-light peek at the first question of a query datagram:
/// walks the qname labels (rejecting compression) and reads QTYPE/QCLASS.
/// Returns false on anything malformed. `qname_out` (optional) receives the
/// lowercased dotted name without trailing dot ("stats.rdns").
[[nodiscard]] bool peek_question(std::span<const std::uint8_t> payload, std::uint16_t* qtype,
                                 std::uint16_t* qclass, std::string* qname_out);

}  // namespace rdns::dns
