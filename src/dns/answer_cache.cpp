#include "dns/answer_cache.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <utility>

#include "dns/server.hpp"
#include "dns/wire.hpp"
#include "dns/zone.hpp"
#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

/// The dns.server.* counters a cache hit keeps honest. Same registry cells
/// as server.cpp's ServerMetrics — the registry is keyed by name.
struct HitMetrics {
  metrics::Counter& queries = metrics::counter("dns.server.queries");
  metrics::Counter& qtype_ptr = metrics::counter("dns.server.qtype.ptr");
  metrics::Counter& answered = metrics::counter("dns.server.answered");
  metrics::Counter& nxdomain = metrics::counter("dns.server.nxdomain");
  metrics::Counter& nodata = metrics::counter("dns.server.nodata");
};

HitMetrics& hit_metrics() {
  static HitMetrics m;
  return m;
}

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t get_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

/// Parse a canonical decimal octet label (1..3 digits, no leading zero,
/// value <= 255). Non-canonical spellings miss the cache on purpose: the
/// handler resolves them through the same zone lookup, so behavior is
/// identical, just slower — and real PTR floods use canonical names.
bool parse_octet(const std::uint8_t* p, std::size_t len, std::uint32_t& out) noexcept {
  if (len == 0 || len > 3) return false;
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (p[i] < '0' || p[i] > '9') return false;
    v = v * 10 + static_cast<std::uint32_t>(p[i] - '0');
  }
  if (len > 1 && p[0] == '0') return false;
  if (v > 255) return false;
  out = v;
  return true;
}

bool label_eq_ci(const std::uint8_t* p, std::size_t len, const char* lit) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    const char c = static_cast<char>(p[i] | 0x20);  // ASCII lowercase
    if (c != lit[i]) return false;
  }
  return lit[len] == '\0';
}

}  // namespace

const AnswerCache::Shard* AnswerCache::shard_for(std::uint32_t base) const noexcept {
  auto it = std::lower_bound(shards_.begin(), shards_.end(), base,
                             [](const Shard& s, std::uint32_t b) { return s.base < b; });
  if (it == shards_.end() || it->base != base) return nullptr;
  return &*it;
}

std::size_t AnswerCache::bytes() const noexcept {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    total += s.blob.size() + s.offsets.size() * sizeof(std::uint32_t);
  }
  return total;
}

std::shared_ptr<const AnswerCache> AnswerCache::build(const std::vector<Source>& sources) {
  // Group the announced ranges by /16; first source listed wins overlaps.
  struct Range {
    std::uint32_t lo, hi;  // host parts, inclusive
    const AuthoritativeServer* server;
  };
  std::map<std::uint32_t, std::vector<Range>> by_base;
  for (const Source& src : sources) {
    if (src.server == nullptr || src.first.value() > src.last.value()) continue;
    for (std::uint32_t base = src.first.value() >> 16; base <= (src.last.value() >> 16);
         ++base) {
      const std::uint32_t lo =
          (base == src.first.value() >> 16) ? (src.first.value() & 0xFFFF) : 0;
      const std::uint32_t hi =
          (base == src.last.value() >> 16) ? (src.last.value() & 0xFFFF) : 0xFFFF;
      by_base[base].push_back(Range{lo, hi, src.server});
    }
  }

  auto cache = std::shared_ptr<AnswerCache>(new AnswerCache());
  for (auto& [base, ranges] : by_base) {
    Shard shard;
    shard.base = base;
    shard.offsets.resize(0x10000 + 1, 0);
    for (std::uint32_t host = 0; host < 0x10000; ++host) {
      shard.offsets[host] = static_cast<std::uint32_t>(shard.blob.size());
      const Range* covering = nullptr;
      for (const Range& r : ranges) {
        if (host >= r.lo && host <= r.hi) {
          covering = &r;
          break;
        }
      }
      if (covering == nullptr) continue;

      // Replicate answer_query through the reference codec, without the
      // stats/metrics/fault side effects of handle_readonly. The live
      // path's verdict for this address is a pure function of the frozen
      // zone, so the pre-encoded tail is exact.
      const net::Ipv4Addr addr{(base << 16) | host};
      const Message query = make_ptr_query(0, addr);
      const Question& q = query.questions.front();
      const Zone* zone = covering->server->find_zone(q.qname);
      if (zone == nullptr) continue;  // handler would refuse; leave uncached

      Message response;
      auto answers = zone->find(q.qname, RrType::PTR);
      if (!answers.empty()) {
        response = make_response(query, Rcode::NoError);
        response.answers = std::move(answers);
      } else {
        const bool exists = zone->has_name(q.qname);
        response = make_response(query, exists ? Rcode::NoError : Rcode::NxDomain);
        response.authority.push_back(
            make_soa(zone->origin(), zone->soa(), zone->soa().minimum));
      }

      const std::vector<std::uint8_t> wire = encode(response);
      const std::size_t question_end = 12 + q.qname.wire_length() + 4;
      shard.blob.push_back(static_cast<std::uint8_t>(response.flags.rcode));
      shard.blob.push_back(static_cast<std::uint8_t>(response.answers.size() >> 8));
      shard.blob.push_back(static_cast<std::uint8_t>(response.answers.size() & 0xFF));
      shard.blob.push_back(static_cast<std::uint8_t>(response.authority.size()));
      shard.blob.insert(shard.blob.end(), wire.begin() + static_cast<std::ptrdiff_t>(question_end),
                        wire.end());
      ++cache->entries_;
    }
    shard.offsets[0x10000] = static_cast<std::uint32_t>(shard.blob.size());
    shard.blob.shrink_to_fit();
    cache->shards_.push_back(std::move(shard));
  }
  // std::map iteration is ordered, so shards_ is sorted by base already.
  return cache;
}

std::size_t AnswerCache::scan_question_end(std::span<const std::uint8_t> msg) noexcept {
  if (msg.size() < 12) return 0;
  const std::uint16_t qd = get_u16(msg.data() + 4);
  if (qd == 0) return 12;
  if (qd != 1) return 0;
  std::size_t pos = 12;
  while (true) {
    if (pos >= msg.size()) return 0;
    const std::uint8_t len = msg[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if ((len & 0xC0) != 0) return 0;  // compressed/reserved: cannot scan
    pos += 1 + len;
    if (pos - 12 > 255) return 0;
  }
  if (pos + 4 > msg.size()) return 0;
  return pos + 4;
}

AnswerCache::Probe AnswerCache::probe(std::span<const std::uint8_t> query) const noexcept {
  Probe p;
  if (query.size() < 12) return p;
  const std::uint8_t* d = query.data();
  // QR=0, opcode=0; AA/TC/RD bits are tolerated (the codec clears them).
  if ((d[2] & 0xF8) != 0) return p;
  const std::uint16_t qd = get_u16(d + 4);
  const std::uint16_t an = get_u16(d + 6);
  const std::uint16_t ns = get_u16(d + 8);
  const std::uint16_t ar = get_u16(d + 10);
  if (qd != 1) return p;

  // Scan the (uncompressed) qname, keeping the up-to-6 labels a PTR arpa
  // name has. More labels: keep scanning for question_end, drop the cache.
  struct LabelView {
    const std::uint8_t* ptr;
    std::size_t len;
  };
  LabelView labels[6];
  std::size_t label_count = 0;
  bool too_many = false;
  std::size_t pos = 12;
  while (true) {
    if (pos >= query.size()) return p;
    const std::uint8_t len = d[pos];
    if (len == 0) {
      ++pos;
      break;
    }
    if ((len & 0xC0) != 0) return p;
    if (pos + 1 + len > query.size()) return p;
    if (label_count < 6) {
      labels[label_count] = LabelView{d + pos + 1, len};
    } else {
      too_many = true;
    }
    ++label_count;
    pos += 1 + len;
    if (pos - 12 > 255) return p;
  }
  if (pos + 4 > query.size()) return p;
  const std::uint16_t qtype = get_u16(d + pos);
  const std::uint16_t qclass = get_u16(d + pos + 2);
  p.question_end = pos + 4;
  if (qclass == 3) {  // CHAOS: introspection plane; exempt from EDNS/TC
    p.chaos = true;
    return p;
  }

  // A single well-formed OPT RR directly after the question (queries carry
  // no answer/authority RRs). Anything else — including trailing bytes —
  // misses so the handler's full decoder stays authoritative.
  if (an != 0 || ns != 0 || ar > 1) return p;
  if (ar == 1) {
    const std::size_t o = p.question_end;
    if (o + 11 > query.size()) return p;
    if (d[o] != 0x00 || get_u16(d + o + 1) != 41) return p;
    const std::uint16_t rdlen = get_u16(d + o + 9);
    if (o + 11 + rdlen != query.size()) return p;  // RDLEN must cover the rest exactly
    p.edns = true;
    p.edns_udp_size = get_u16(d + o + 3);
  }

  if (too_many || label_count != 6) return p;
  if (qtype != 12 || qclass != 1) return p;  // PTR IN only
  if (!label_eq_ci(labels[4].ptr, labels[4].len, "in-addr") ||
      !label_eq_ci(labels[5].ptr, labels[5].len, "arpa")) {
    return p;
  }
  std::uint32_t octets[4];
  for (int i = 0; i < 4; ++i) {
    if (!parse_octet(labels[i].ptr, labels[i].len, octets[i])) return p;
  }
  // d.c.b.a.in-addr.arpa <-> a.b.c.d
  const std::uint32_t addr =
      (octets[3] << 24) | (octets[2] << 16) | (octets[1] << 8) | octets[0];
  p.cacheable = true;

  const Shard* shard = shard_for(addr >> 16);
  if (shard == nullptr) return p;
  const std::uint32_t host = addr & 0xFFFF;
  const std::uint32_t off = shard->offsets[host];
  const std::uint32_t end = shard->offsets[host + 1];
  if (off == end) return p;

  p.hit = true;
  p.rcode = static_cast<Rcode>(shard->blob[off]);
  p.ancount = get_u16(shard->blob.data() + off + 1);
  p.nscount = shard->blob[off + 3];
  p.tail = std::span<const std::uint8_t>(shard->blob.data() + off + 4, end - off - 4);
  return p;
}

std::size_t AnswerCache::assemble(const Probe& p, std::span<const std::uint8_t> query,
                                  std::uint8_t* out) noexcept {
  // Client header + question verbatim (case echo included), then patch the
  // header to exactly what encode(make_response(...)) emits: QR|AA set, RD
  // echoed, opcode 0, TC/RA/Z cleared, rcode + section counts ours.
  std::memcpy(out, query.data(), p.question_end);
  out[2] = static_cast<std::uint8_t>(0x84 | (query[2] & 0x01));
  out[3] = static_cast<std::uint8_t>(p.rcode);
  put_u16(out + 4, 1);
  put_u16(out + 6, p.ancount);
  put_u16(out + 8, p.nscount);
  put_u16(out + 10, 0);
  std::memcpy(out + p.question_end, p.tail.data(), p.tail.size());

  HitMetrics& m = hit_metrics();
  m.queries.inc();
  m.qtype_ptr.inc();
  if (p.ancount > 0) {
    m.answered.inc();
  } else if (p.rcode == Rcode::NxDomain) {
    m.nxdomain.inc();
  } else {
    m.nodata.inc();
  }
  return p.question_end + p.tail.size();
}

std::size_t AnswerCache::append_opt(std::uint8_t* reply, std::size_t len,
                                    std::uint16_t udp_size) noexcept {
  std::uint8_t* o = reply + len;
  o[0] = 0x00;            // root owner
  put_u16(o + 1, 41);     // TYPE = OPT
  put_u16(o + 3, udp_size);
  o[5] = o[6] = o[7] = o[8] = 0;  // extended RCODE/version/flags
  put_u16(o + 9, 0);      // RDLEN
  put_u16(reply + 10, static_cast<std::uint16_t>(get_u16(reply + 10) + 1));
  return len + 11;
}

std::size_t AnswerCache::truncate_to_tc(std::uint8_t* reply, std::size_t question_end,
                                        std::uint16_t opt_udp_size) noexcept {
  reply[2] |= 0x02;  // TC
  put_u16(reply + 6, 0);
  put_u16(reply + 8, 0);
  put_u16(reply + 10, 0);
  std::size_t len = question_end;
  if (opt_udp_size != 0) len = append_opt(reply, len, opt_udp_size);
  return len;
}

}  // namespace rdns::dns
