#pragma once
/// \file answer_cache.hpp
/// Pre-serialized wire-image cache for hot PTR answers.
///
/// The serve path freezes its zones for the lifetime of a generation (the
/// switchboard swaps whole worlds on reload), so every PTR answer is known
/// at serve start. This cache stores, per address, the *tail* of the
/// encoded reply — everything after the question section — built once by
/// the reference codec. The hot path then assembles a reply with two
/// memcpys and a four-byte header patch: copy the client's own header +
/// question, patch flags/rcode/section counts, append the cached tail. No
/// Message object, no WireWriter, no allocation.
///
/// Why the tail is byte-stable across clients: RFC 1035 §4.1.4 compression
/// pointers in the answer/authority sections reference offsets inside the
/// question, and those offsets depend only on the *lengths* of the qname
/// labels (the codec's compression map is keyed on lowercased suffixes).
/// Any letter-casing of the same qname therefore yields the same tail, and
/// copying the client's question preserves the 0x20-style case echo the
/// codec path produces. Parity is asserted record-by-record in
/// tests/test_answer_cache.cpp against encode(handle_readonly(query)).
///
/// Invalidation is a whole-cache epoch bump: the serve loop re-fetches the
/// cache through its provider whenever the switchboard epoch moves, and the
/// old image is dropped when the last worker releases its shared_ptr.
///
/// The cache must only cover *announced* address space: the world router
/// models unannounced addresses as timeouts (no reply at all), so caching a
/// whole /16 would invent NXDOMAINs. build() therefore takes explicit
/// [first, last] ranges mirroring the router's announced-prefix table; any
/// address outside them probes as a miss and falls through to the handler.
///
/// Fault injection: a cache hit bypasses handle_readonly and with it the
/// deterministic fault sites (DnsTimeout/DnsServfail/DnsTruncate) and any
/// per-server FaultPolicy. Callers must not arm the cache when either is
/// active; rdns_tool serve auto-disables it and says so.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dns/message.hpp"
#include "net/ipv4.hpp"

namespace rdns::dns {

class AuthoritativeServer;

class AnswerCache {
 public:
  /// One announced range served by one authoritative server. Ranges are
  /// expected to be disjoint (the router's announced prefixes are); when
  /// they overlap, the first source listed wins, matching router scan
  /// order.
  struct Source {
    const AuthoritativeServer* server = nullptr;
    net::Ipv4Addr first;
    net::Ipv4Addr last;
  };

  /// Result of probing a raw datagram against the cache. `question_end` is
  /// filled (one past the question section) whenever the question scanned
  /// cleanly, even on a miss — the serve loop reuses it for TC truncation.
  struct Probe {
    bool hit = false;        ///< tail/rcode/counts below are valid
    bool cacheable = false;  ///< canonical IN PTR query for a 4-octet arpa name
    bool chaos = false;      ///< CHAOS-class query (introspection; EDNS/TC exempt)
    bool edns = false;       ///< carried a single well-formed OPT RR
    std::uint16_t edns_udp_size = 0;  ///< client's advertised payload size
    std::size_t question_end = 0;     ///< 0 when the question could not be scanned
    Rcode rcode = Rcode::NoError;
    std::uint16_t ancount = 0;
    std::uint16_t nscount = 0;
    std::span<const std::uint8_t> tail;  ///< reply bytes after the question
  };

  /// Pre-encode every PTR answer in the given ranges by replicating the
  /// server's answer_query logic through the reference codec. Pure: no
  /// ServerStats or dns.server.* side effects during the build.
  [[nodiscard]] static std::shared_ptr<const AnswerCache> build(
      const std::vector<Source>& sources);

  /// Allocation-free parse + lookup of a raw query datagram.
  [[nodiscard]] Probe probe(std::span<const std::uint8_t> query) const noexcept;

  /// Bytes assemble() writes for a hit.
  [[nodiscard]] static std::size_t reply_size(const Probe& p) noexcept {
    return p.question_end + p.tail.size();
  }

  /// Assemble the full reply for a hit into `out` (≥ reply_size(p) bytes):
  /// client header + question verbatim, then flags patched to the codec's
  /// response bits (QR|AA, RD echoed, everything else cleared), counts set,
  /// cached tail appended. ARCOUNT is written as 0; EDNS OPT append is the
  /// serve loop's post-step so parity with the codec path holds. Returns
  /// bytes written. Bumps the dns.server.* query counters a codec-path
  /// answer would have bumped (metric parity; per-org ServerStats are not
  /// visible from the serve loop and stay untouched — see DESIGN.md §16).
  static std::size_t assemble(const Probe& p, std::span<const std::uint8_t> query,
                              std::uint8_t* out) noexcept;

  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }
  [[nodiscard]] std::size_t bytes() const noexcept;

  // -- wire post-processing helpers shared by the serve loop and tests --

  /// Append a minimal EDNS0 OPT RR (root owner, type 41, class =
  /// `udp_size`, zero TTL/RDLEN) to `reply` of length `len` and bump
  /// ARCOUNT. Caller guarantees 11 spare bytes. Returns the new length.
  static std::size_t append_opt(std::uint8_t* reply, std::size_t len,
                                std::uint16_t udp_size) noexcept;

  /// Truncate `reply` to header + question (RFC 2181 §9: do not send
  /// partial sections): TC=1, AN/NS/AR zeroed; when `opt_udp_size` is
  /// non-zero an OPT advertising it is re-appended. Returns the new length.
  static std::size_t truncate_to_tc(std::uint8_t* reply, std::size_t question_end,
                                    std::uint16_t opt_udp_size) noexcept;

  /// Scan an uncompressed single-question message for the offset one past
  /// the question section (QDCOUNT 0 → 12). 0 when it cannot be scanned.
  [[nodiscard]] static std::size_t scan_question_end(
      std::span<const std::uint8_t> msg) noexcept;

 private:
  /// One /16 of pre-encoded answers. `offsets` holds 65537 prefix sums
  /// into `blob`; a zero-length slice means "not cached". Entry layout:
  /// [rcode u8][ancount u16 BE][nscount u8][tail bytes].
  struct Shard {
    std::uint32_t base = 0;  ///< address >> 16
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint8_t> blob;
  };

  AnswerCache() = default;
  [[nodiscard]] const Shard* shard_for(std::uint32_t base) const noexcept;

  std::vector<Shard> shards_;  ///< sorted by base
  std::size_t entries_ = 0;
};

}  // namespace rdns::dns
