#include "dns/cache.hpp"

#include <algorithm>

#include "net/arpa.hpp"

namespace rdns::dns {

std::optional<DnsCache::Entry> DnsCache::lookup(const DnsName& qname, RrType qtype,
                                                util::SimTime now) {
  const Key key{qname.to_canonical_string(), static_cast<std::uint16_t>(qtype)};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.entry.expires <= now) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  touch(key, it->second);
  if (it->second.entry.status == LookupStatus::Ok) {
    ++stats_.hits;
  } else {
    ++stats_.negative_hits;
  }
  return it->second.entry;
}

void DnsCache::touch(const Key& key, Slot& slot) {
  lru_.erase(slot.lru_position);
  lru_.push_front(key);
  slot.lru_position = lru_.begin();
}

void DnsCache::insert(const Key& key, Entry entry) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.entry = std::move(entry);
    touch(key, it->second);
    return;
  }
  if (entries_.size() >= capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  ++stats_.insertions;
}

void DnsCache::insert_positive(const DnsName& qname, RrType qtype,
                               std::vector<ResourceRecord> answers, util::SimTime now) {
  std::uint32_t ttl = 0xFFFFFFFFu;
  for (const auto& rr : answers) ttl = std::min(ttl, rr.ttl);
  if (answers.empty()) ttl = 0;
  Entry entry;
  entry.status = LookupStatus::Ok;
  entry.answers = std::move(answers);
  entry.expires = now + ttl;
  insert(Key{qname.to_canonical_string(), static_cast<std::uint16_t>(qtype)},
         std::move(entry));
}

void DnsCache::insert_negative(const DnsName& qname, RrType qtype, LookupStatus status,
                               std::uint32_t negative_ttl, util::SimTime now) {
  Entry entry;
  entry.status = status;
  entry.expires = now + negative_ttl;
  insert(Key{qname.to_canonical_string(), static_cast<std::uint16_t>(qtype)},
         std::move(entry));
}

void DnsCache::flush() {
  entries_.clear();
  lru_.clear();
}

CachingResolver::CachingResolver(Transport& upstream, std::size_t capacity,
                                 std::uint32_t default_negative_ttl)
    : cache_(capacity), upstream_(upstream), default_negative_ttl_(default_negative_ttl) {}

LookupResult CachingResolver::lookup_ptr(net::Ipv4Addr address, util::SimTime now) {
  return lookup(DnsName::must_parse(net::to_arpa(address)), RrType::PTR, now);
}

LookupResult CachingResolver::lookup(const DnsName& qname, RrType qtype, util::SimTime now) {
  if (const auto cached = cache_.lookup(qname, qtype, now)) {
    LookupResult result;
    result.status = cached->status;
    result.answers = cached->answers;
    for (const auto& rr : cached->answers) {
      if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
        result.ptr = ptr->ptrdname;
        break;
      }
    }
    return result;
  }

  LookupResult result = upstream_.lookup(qname, qtype, now);
  if (result.status == LookupStatus::Ok) {
    cache_.insert_positive(qname, qtype, result.answers, now);
  } else if (result.status == LookupStatus::NxDomain ||
             result.status == LookupStatus::NoData) {
    // RFC 2308: the negative TTL derives from the SOA in the authority
    // section; our StubResolver does not surface it, so the configured
    // default (the common 300s of our reverse zones) applies.
    cache_.insert_negative(qname, qtype, result.status, default_negative_ttl_, now);
  }
  // Transient errors (SERVFAIL/timeout) are not cached.
  return result;
}

}  // namespace rdns::dns
