#pragma once
/// \file cache.hpp
/// A TTL-honouring DNS cache and a caching resolver.
///
/// The paper's measurement deliberately avoids caches: "We query the
/// authoritative name server for the IP address in question directly, to
/// make sure we get a fresh answer (i.e., not from a cache)" (§6.1). This
/// module exists to make that choice quantifiable: a measurement pipeline
/// run through a recursive cache observes PTR records for up to TTL (and
/// absences for up to the SOA minimum / negative TTL, RFC 2308) after the
/// authoritative state changed — inflating apparent lingering times. The
/// bench_ablation_cache experiment measures exactly that distortion.

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "dns/resolver.hpp"

namespace rdns::dns {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t negative_hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits + negative_hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits + negative_hits) / total;
  }
};

/// A positive-and-negative answer cache keyed by (qname, qtype), with TTL
/// expiry in simulated time and LRU eviction at capacity.
class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity = 100000) : capacity_(capacity) {}

  struct Entry {
    LookupStatus status = LookupStatus::Ok;  ///< Ok or NxDomain
    std::vector<ResourceRecord> answers;     ///< empty for negative entries
    util::SimTime expires = 0;
  };

  /// Cached entry if present and not expired.
  [[nodiscard]] std::optional<Entry> lookup(const DnsName& qname, RrType qtype,
                                            util::SimTime now);

  /// Insert a positive answer; TTL = min of the answer records' TTLs.
  void insert_positive(const DnsName& qname, RrType qtype,
                       std::vector<ResourceRecord> answers, util::SimTime now);

  /// Insert a negative (NXDOMAIN/NODATA) entry with the negative TTL
  /// (RFC 2308: min(SOA TTL, SOA minimum); callers pass the resolved value).
  void insert_negative(const DnsName& qname, RrType qtype, LookupStatus status,
                       std::uint32_t negative_ttl, util::SimTime now);

  /// Drop everything (operator `rndc flush`).
  void flush();

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Key {
    std::string qname;  // canonical
    std::uint16_t qtype;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::string>{}(k.qname) ^ (static_cast<std::size_t>(k.qtype) << 1);
    }
  };
  struct Slot {
    Entry entry;
    std::list<Key>::iterator lru_position;
  };

  void touch(const Key& key, Slot& slot);
  void insert(const Key& key, Entry entry);

  std::size_t capacity_;
  std::unordered_map<Key, Slot, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recent
  CacheStats stats_;
};

/// A resolver that consults a DnsCache before the upstream transport —
/// what a measurement pipeline sees when it queries through a recursive
/// resolver instead of hitting authoritative servers directly.
class CachingResolver {
 public:
  CachingResolver(Transport& upstream, std::size_t capacity = 100000,
                  std::uint32_t default_negative_ttl = 300);

  [[nodiscard]] LookupResult lookup_ptr(net::Ipv4Addr address, util::SimTime now);
  [[nodiscard]] LookupResult lookup(const DnsName& qname, RrType qtype, util::SimTime now);

  [[nodiscard]] const CacheStats& cache_stats() const noexcept { return cache_.stats(); }
  [[nodiscard]] const ResolverStats& upstream_stats() const noexcept {
    return upstream_.stats();
  }
  void flush() { cache_.flush(); }

 private:
  DnsCache cache_;
  StubResolver upstream_;
  std::uint32_t default_negative_ttl_;
};

}  // namespace rdns::dns
