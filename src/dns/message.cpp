#include "dns/message.hpp"

#include "net/arpa.hpp"
#include "util/strings.hpp"

namespace rdns::dns {

const char* to_string(Rcode r) noexcept {
  switch (r) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NxDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
    case Rcode::NotZone: return "NOTZONE";
  }
  return "RCODE?";
}

std::string Message::to_string() const {
  std::string out = util::format(
      ";; id %u, %s, opcode %u, rcode %s%s%s%s\n", id, flags.qr ? "response" : "query",
      static_cast<unsigned>(flags.opcode), dns::to_string(flags.rcode), flags.aa ? ", aa" : "",
      flags.tc ? ", tc" : "", flags.rd ? ", rd" : "");
  out += ";; QUESTION\n";
  for (const auto& q : questions) {
    out += util::format(";  %s %s %s\n", q.qname.to_string().c_str(), dns::to_string(q.qclass),
                        dns::to_string(q.qtype));
  }
  const auto section = [&out](const char* header, const std::vector<ResourceRecord>& rrs) {
    if (rrs.empty()) return;
    out += util::format(";; %s\n", header);
    for (const auto& rr : rrs) out += rr.to_string() + "\n";
  };
  section("ANSWER", answers);
  section("AUTHORITY", authority);
  section("ADDITIONAL", additional);
  return out;
}

Message make_query(std::uint16_t id, const DnsName& qname, RrType qtype) {
  Message m;
  m.id = id;
  m.flags.rd = false;  // the study queries authoritative servers directly
  m.questions.push_back(Question{qname, qtype, RrClass::IN});
  return m;
}

Message make_ptr_query(std::uint16_t id, net::Ipv4Addr address) {
  return make_query(id, DnsName::must_parse(net::to_arpa(address)), RrType::PTR);
}

Message make_response(const Message& query, Rcode rcode, bool authoritative) {
  Message m;
  m.id = query.id;
  m.flags.qr = true;
  m.flags.opcode = query.flags.opcode;
  m.flags.aa = authoritative;
  m.flags.rd = query.flags.rd;
  m.flags.rcode = rcode;
  m.questions = query.questions;
  return m;
}

}  // namespace rdns::dns
