#pragma once
/// \file message.hpp
/// DNS messages (RFC 1035 §4): header, question and RR sections, plus
/// helpers to build the queries/responses the scanners and servers exchange.

#include <cstdint>
#include <string>
#include <vector>

#include "dns/rr.hpp"

namespace rdns::dns {

/// Header OPCODEs (subset).
enum class Opcode : std::uint8_t {
  Query = 0,
  Update = 5,  ///< RFC 2136 dynamic update
};

/// Response codes (subset).
enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
  NotZone = 10,
};

[[nodiscard]] const char* to_string(Rcode r) noexcept;

/// A question entry (QNAME/QTYPE/QCLASS).
struct Question {
  DnsName qname;
  RrType qtype = RrType::A;
  RrClass qclass = RrClass::IN;

  bool operator==(const Question&) const = default;
};

/// Parsed header flags.
struct Flags {
  bool qr = false;  ///< response?
  Opcode opcode = Opcode::Query;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired
  bool ra = false;  ///< recursion available
  Rcode rcode = Rcode::NoError;

  bool operator==(const Flags&) const = default;
};

/// A full message. In update messages (RFC 2136) the sections are reused:
/// question = zone, answer = prerequisites, authority = updates.
struct Message {
  std::uint16_t id = 0;
  Flags flags;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  bool operator==(const Message&) const = default;

  /// Multi-line presentation (dig-like) for logging and golden tests.
  [[nodiscard]] std::string to_string() const;
};

/// A standard query for (qname, qtype).
[[nodiscard]] Message make_query(std::uint16_t id, const DnsName& qname, RrType qtype);

/// A PTR query for the reverse name of an IPv4 address.
[[nodiscard]] Message make_ptr_query(std::uint16_t id, net::Ipv4Addr address);

/// Start a response to `query`: copies id/opcode/question, sets qr (and aa).
[[nodiscard]] Message make_response(const Message& query, Rcode rcode, bool authoritative = true);

}  // namespace rdns::dns
