#include "dns/name.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace rdns::dns {

namespace {

constexpr std::size_t kMaxLabel = 63;
constexpr std::size_t kMaxName = 255;

[[nodiscard]] char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

[[nodiscard]] int ilabel_cmp(std::string_view a, std::string_view b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = ascii_lower(a[i]);
    const char cb = ascii_lower(b[i]);
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

/// Common public second-level suffixes under which organizations register,
/// so that registered_domain("uni.ac.uk") behaves like the paper's TLD+1
/// indexing would want. Deliberately small: covers what the simulator emits.
[[nodiscard]] bool is_public_second_level(std::string_view second, std::string_view tld) noexcept {
  using rdns::util::iequals;
  if (iequals(tld, "uk") || iequals(tld, "jp") || iequals(tld, "nz") || iequals(tld, "za")) {
    return iequals(second, "ac") || iequals(second, "co") || iequals(second, "gov") ||
           iequals(second, "edu") || iequals(second, "net") || iequals(second, "org");
  }
  if (iequals(tld, "au") || iequals(tld, "br") || iequals(tld, "cn") || iequals(tld, "in")) {
    return iequals(second, "edu") || iequals(second, "com") || iequals(second, "gov") ||
           iequals(second, "net") || iequals(second, "org") || iequals(second, "ac");
  }
  return false;
}

}  // namespace

bool is_valid_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > kMaxLabel) return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

DnsName::DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {
  std::size_t total = 1;  // root label
  for (const auto& l : labels_) {
    if (!is_valid_label(l)) {
      throw std::invalid_argument("DnsName: invalid label: '" + l + "'");
    }
    total += l.size() + 1;
  }
  if (total > kMaxName) throw std::invalid_argument("DnsName: name exceeds 255 octets");
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text.empty() || text == ".") return DnsName{};
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t start = 0;
  std::size_t total = 1;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      const std::string_view label = text.substr(start, i - start);
      if (!is_valid_label(label)) return std::nullopt;
      total += label.size() + 1;
      if (total > kMaxName) return std::nullopt;
      labels.emplace_back(label);
      start = i + 1;
    }
  }
  return DnsName{std::move(labels)};
}

DnsName DnsName::must_parse(std::string_view text) {
  auto n = parse(text);
  if (!n) throw std::invalid_argument("DnsName: malformed name: " + std::string{text});
  return *std::move(n);
}

std::size_t DnsName::wire_length() const noexcept {
  std::size_t total = 1;
  for (const auto& l : labels_) total += l.size() + 1;
  return total;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

std::string DnsName::to_canonical_string() const { return util::to_lower(to_string()); }

bool DnsName::ends_with(const DnsName& suffix) const noexcept {
  if (suffix.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - suffix.labels_.size();
  for (std::size_t i = 0; i < suffix.labels_.size(); ++i) {
    if (ilabel_cmp(labels_[offset + i], suffix.labels_[i]) != 0) return false;
  }
  return true;
}

DnsName DnsName::suffix(std::size_t n) const {
  if (n > labels_.size()) throw std::out_of_range("DnsName::suffix: n exceeds label count");
  return DnsName{std::vector<std::string>(labels_.begin() + static_cast<std::ptrdiff_t>(n),
                                          labels_.end())};
}

DnsName DnsName::prepend(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName{std::move(labels)};
}

DnsName DnsName::concat(const DnsName& other) const {
  std::vector<std::string> labels = labels_;
  labels.insert(labels.end(), other.labels_.begin(), other.labels_.end());
  return DnsName{std::move(labels)};
}

DnsName DnsName::registered_domain() const {
  if (labels_.size() <= 2) return *this;
  const std::string& tld = labels_.back();
  const std::string& second = labels_[labels_.size() - 2];
  const std::size_t keep = is_public_second_level(second, tld) ? 3 : 2;
  if (labels_.size() <= keep) return *this;
  return suffix(labels_.size() - keep);
}

bool DnsName::equals(const DnsName& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (ilabel_cmp(labels_[i], other.labels_[i]) != 0) return false;
  }
  return true;
}

std::strong_ordering DnsName::operator<=>(const DnsName& other) const noexcept {
  // Compare label-wise from the right (DNSSEC canonical order), so that a
  // zone's names sort with the apex first and children grouped together.
  const std::size_t na = labels_.size();
  const std::size_t nb = other.labels_.size();
  const std::size_t n = std::min(na, nb);
  for (std::size_t i = 1; i <= n; ++i) {
    const int c = ilabel_cmp(labels_[na - i], other.labels_[nb - i]);
    if (c != 0) return c < 0 ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  if (na != nb) return na < nb ? std::strong_ordering::less : std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace rdns::dns
