#pragma once
/// \file name.hpp
/// DNS domain names (RFC 1035 §2.3). Names are sequences of labels, stored
/// without the trailing root label, compared ASCII-case-insensitively (DNS
/// is case-preserving but case-insensitive).

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rdns::dns {

class DnsName {
 public:
  DnsName() = default;

  /// From labels; each label must be 1..63 octets (throws otherwise).
  explicit DnsName(std::vector<std::string> labels);

  /// Parse dotted text ("www.Example.COM", optional trailing dot).
  /// Empty string or "." yields the root (empty) name. Returns nullopt for
  /// malformed names (empty interior label, label > 63, total > 255).
  [[nodiscard]] static std::optional<DnsName> parse(std::string_view text);

  /// Parse or throw std::invalid_argument.
  [[nodiscard]] static DnsName must_parse(std::string_view text);

  [[nodiscard]] const std::vector<std::string>& labels() const noexcept { return labels_; }
  [[nodiscard]] bool is_root() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t label_count() const noexcept { return labels_.size(); }

  /// Total encoded length in octets (sum of 1+len per label, +1 root).
  [[nodiscard]] std::size_t wire_length() const noexcept;

  /// Dotted text form, original case preserved; root renders as ".".
  [[nodiscard]] std::string to_string() const;

  /// Lowercased dotted form (canonical for comparisons/maps).
  [[nodiscard]] std::string to_canonical_string() const;

  /// True if `this` ends with `suffix` (whole labels, case-insensitive).
  /// Every name ends with the root name.
  [[nodiscard]] bool ends_with(const DnsName& suffix) const noexcept;

  /// Name with the first `n` labels removed (n <= label_count()).
  [[nodiscard]] DnsName suffix(std::size_t n) const;

  /// `label` prepended to this name; label must be a valid DNS label.
  [[nodiscard]] DnsName prepend(std::string_view label) const;

  /// Concatenate: this.labels ++ other.labels.
  [[nodiscard]] DnsName concat(const DnsName& other) const;

  /// The registered-domain approximation the paper uses to index networks:
  /// TLD+1 for ordinary names ("cs.uni.edu" -> "uni.edu"), TLD+2 when the
  /// TLD+1 is a common public second-level label ("x.ac.uk" -> "x.ac.uk"
  /// stays, i.e. "foo.ac.uk" for "bar.foo.ac.uk"). Root/TLD-only names
  /// return themselves.
  [[nodiscard]] DnsName registered_domain() const;

  /// Case-insensitive equality.
  [[nodiscard]] bool equals(const DnsName& other) const noexcept;

  bool operator==(const DnsName& other) const noexcept { return equals(other); }
  /// Canonical (lowercase, label-wise from the right) ordering, suitable
  /// for zone storage.
  std::strong_ordering operator<=>(const DnsName& other) const noexcept;

 private:
  std::vector<std::string> labels_;
};

/// Validate a single label: 1..63 chars, LDH (letters/digits/hyphen/underscore).
/// Underscore is tolerated because real-world PTR data contains it.
[[nodiscard]] bool is_valid_label(std::string_view label) noexcept;

}  // namespace rdns::dns

template <>
struct std::hash<rdns::dns::DnsName> {
  [[nodiscard]] std::size_t operator()(const rdns::dns::DnsName& n) const noexcept {
    return std::hash<std::string>{}(n.to_canonical_string());
  }
};
