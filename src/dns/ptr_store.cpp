#include "dns/ptr_store.hpp"

#include <algorithm>
#include <cstdio>

#include "util/strings.hpp"

namespace rdns::dns {

namespace {

/// "host-a-b-c-d" for an address, written into a stack buffer. Must stay
/// byte-compatible with dhcp::generic_label (asserted by test_ptr_store) —
/// if the formats ever diverge the store silently falls back to interning
/// the full name, which is correct but larger.
struct GenericLabel {
  char text[24];
  int len;
};

[[nodiscard]] GenericLabel generic_label_of(net::Ipv4Addr a) noexcept {
  GenericLabel out;
  out.len = std::snprintf(out.text, sizeof out.text, "host-%u-%u-%u-%u", a.octet(0), a.octet(1),
                          a.octet(2), a.octet(3));
  return out;
}

[[nodiscard]] bool key_less(const std::pair<std::uint16_t, std::uint32_t>&,
                            const std::pair<std::uint16_t, std::uint32_t>&) = delete;

struct KeyLess {
  template <typename Pair>
  bool operator()(const Pair& a, std::uint16_t key) const noexcept {
    return a.first < key;
  }
  template <typename Pair>
  bool operator()(std::uint16_t key, const Pair& a) const noexcept {
    return key < a.first;
  }
};

}  // namespace

const std::array<std::uint8_t, 256>& CompactPtrStore::octet_rank() noexcept {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint16_t, 256> order{};
    for (std::uint16_t i = 0; i < 256; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [](std::uint16_t a, std::uint16_t b) {
      return std::to_string(a) < std::to_string(b);
    });
    std::array<std::uint8_t, 256> rank{};
    for (std::uint16_t r = 0; r < 256; ++r) rank[order[r]] = static_cast<std::uint8_t>(r);
    return rank;
  }();
  return table;
}

const std::array<std::uint8_t, 256>& CompactPtrStore::octet_at_rank() noexcept {
  static const std::array<std::uint8_t, 256> table = [] {
    const auto& rank = octet_rank();
    std::array<std::uint8_t, 256> inverse{};
    for (std::uint16_t i = 0; i < 256; ++i) inverse[rank[i]] = static_cast<std::uint8_t>(i);
    return inverse;
  }();
  return table;
}

std::uint16_t CompactPtrStore::ckey_of(std::uint16_t offset) noexcept {
  const auto& rank = octet_rank();
  return static_cast<std::uint16_t>((rank[offset >> 8] << 8) | rank[offset & 0xFF]);
}

std::uint16_t CompactPtrStore::offset_of_ckey(std::uint16_t ckey) noexcept {
  const auto& octet = octet_at_rank();
  return static_cast<std::uint16_t>((octet[ckey >> 8] << 8) | octet[ckey & 0xFF]);
}

std::string_view CompactPtrStore::resolve(std::uint16_t offset, Entry entry,
                                          std::string& scratch) const {
  if ((entry.name_ref & kGenericBit) == 0) return pool_->view(entry.name_ref);
  const GenericLabel label = generic_label_of(address_of(offset));
  scratch.assign(label.text, static_cast<std::size_t>(label.len));
  const std::string_view suffix = pool_->view(entry.name_ref & ~kGenericBit);
  if (!suffix.empty()) {
    scratch.push_back('.');
    scratch.append(suffix);
  }
  return scratch;
}

std::uint32_t CompactPtrStore::encode_target(std::uint16_t offset, const DnsName& target,
                                             const std::string& text) {
  const auto& labels = target.labels();
  if (!labels.empty()) {
    const GenericLabel expect = generic_label_of(address_of(offset));
    const std::string& first = labels.front();
    if (first.size() == static_cast<std::size_t>(expect.len) &&
        first.compare(0, first.size(), expect.text, static_cast<std::size_t>(expect.len)) == 0) {
      // Synthesizable: store only the suffix ("" when the label is the
      // whole name). Reconstruction is byte-exact because the match above
      // is case-sensitive against the canonical lowercase form.
      const std::string_view suffix =
          text.size() > first.size() ? std::string_view{text}.substr(first.size() + 1)
                                     : std::string_view{};
      return kGenericBit | pool_->intern(suffix);
    }
  }
  return pool_->intern(text);
}

bool CompactPtrStore::entry_matches(std::uint16_t offset, Entry entry, std::string_view text,
                                    std::uint32_t ttl, std::string& scratch) const {
  if (entry.ttl != ttl) return false;
  return util::iequals(resolve(offset, entry, scratch), text);
}

void CompactPtrStore::densify() {
  slots_.assign(65536, Entry{});
  overflow_.clear();
  for (const auto& [ckey, entry] : sparse_) {
    Entry& slot = slots_[offset_of_ckey(ckey)];
    if (slot.name_ref == kEmptyRef) {
      slot = entry;
    } else {
      overflow_.emplace_back(ckey, entry);  // sparse_ is key-sorted already
    }
  }
  sparse_.clear();
  sparse_.shrink_to_fit();
  dense_ = true;
}

bool CompactPtrStore::add(std::uint16_t offset, const DnsName& target, std::uint32_t ttl) {
  const std::string text = target.to_string();
  const std::uint16_t ckey = ckey_of(offset);
  std::string scratch;
  if (dense_) {
    Entry& slot = slots_[offset];
    if (slot.name_ref == kEmptyRef) {
      slot.name_ref = encode_target(offset, target, text);
      slot.ttl = ttl;
      ++count_;
      ++owners_;
      return true;
    }
    if (entry_matches(offset, slot, text, ttl, scratch)) return false;
    const auto range = std::equal_range(overflow_.begin(), overflow_.end(), ckey, KeyLess{});
    for (auto it = range.first; it != range.second; ++it) {
      if (entry_matches(offset, it->second, text, ttl, scratch)) return false;
    }
    Entry entry{encode_target(offset, target, text), ttl};
    overflow_.emplace(range.second, ckey, entry);
    ++count_;
    return true;
  }
  const auto range = std::equal_range(sparse_.begin(), sparse_.end(), ckey, KeyLess{});
  for (auto it = range.first; it != range.second; ++it) {
    if (entry_matches(offset, it->second, text, ttl, scratch)) return false;
  }
  Entry entry{encode_target(offset, target, text), ttl};
  const bool new_owner = range.first == range.second;
  sparse_.emplace(range.second, ckey, entry);
  ++count_;
  if (new_owner) ++owners_;
  if (sparse_.size() > kDenseThreshold) densify();
  return true;
}

std::size_t CompactPtrStore::add_generic_range(std::uint16_t first, std::uint16_t last,
                                               std::string_view suffix_text, std::uint32_t ttl) {
  const std::size_t span = static_cast<std::size_t>(last) - first + 1;
  if (!dense_ && count_ + span > kDenseThreshold) densify();
  const std::uint32_t ref = kGenericBit | pool_->intern(suffix_text);
  std::size_t inserted = 0;
  std::string scratch;
  if (dense_) {
    for (std::uint32_t offset = first; offset <= last; ++offset) {
      Entry& slot = slots_[offset];
      if (slot.name_ref == kEmptyRef) {
        slot.name_ref = ref;
        slot.ttl = ttl;
        ++count_;
        ++owners_;
        ++inserted;
        continue;
      }
      // Occupied owner: fall back to the general path (dup check against
      // the synthesized text, overflow placement). Rare in bulk fills.
      const DnsName target = DnsName::must_parse(
          resolve(static_cast<std::uint16_t>(offset), Entry{ref, ttl}, scratch));
      if (add(static_cast<std::uint16_t>(offset), target, ttl)) ++inserted;
    }
    return inserted;
  }
  for (std::uint32_t offset = first; offset <= last; ++offset) {
    const DnsName target = DnsName::must_parse(
        resolve(static_cast<std::uint16_t>(offset), Entry{ref, ttl}, scratch));
    if (add(static_cast<std::uint16_t>(offset), target, ttl)) ++inserted;
  }
  return inserted;
}

std::size_t CompactPtrStore::remove_owner(std::uint16_t offset) {
  const std::uint16_t ckey = ckey_of(offset);
  std::size_t removed = 0;
  if (dense_) {
    Entry& slot = slots_[offset];
    if (slot.name_ref == kEmptyRef) return 0;
    slot = Entry{};
    ++removed;
    const auto range = std::equal_range(overflow_.begin(), overflow_.end(), ckey, KeyLess{});
    removed += static_cast<std::size_t>(range.second - range.first);
    overflow_.erase(range.first, range.second);
  } else {
    const auto range = std::equal_range(sparse_.begin(), sparse_.end(), ckey, KeyLess{});
    removed = static_cast<std::size_t>(range.second - range.first);
    if (removed == 0) return 0;
    sparse_.erase(range.first, range.second);
  }
  count_ -= removed;
  --owners_;
  return removed;
}

bool CompactPtrStore::remove_exact(std::uint16_t offset, const DnsName& target,
                                   std::uint32_t ttl) {
  const std::string text = target.to_string();
  const std::uint16_t ckey = ckey_of(offset);
  std::string scratch;
  if (dense_) {
    Entry& slot = slots_[offset];
    if (slot.name_ref == kEmptyRef) return false;
    const auto range = std::equal_range(overflow_.begin(), overflow_.end(), ckey, KeyLess{});
    if (entry_matches(offset, slot, text, ttl, scratch)) {
      if (range.first != range.second) {
        // Promote the next record in insertion order so slot-then-overflow
        // remains the owner's insertion order.
        slot = range.first->second;
        overflow_.erase(range.first);
      } else {
        slot = Entry{};
        --owners_;
      }
      --count_;
      return true;
    }
    for (auto it = range.first; it != range.second; ++it) {
      if (entry_matches(offset, it->second, text, ttl, scratch)) {
        overflow_.erase(it);
        --count_;
        return true;
      }
    }
    return false;
  }
  const auto range = std::equal_range(sparse_.begin(), sparse_.end(), ckey, KeyLess{});
  for (auto it = range.first; it != range.second; ++it) {
    if (entry_matches(offset, it->second, text, ttl, scratch)) {
      const bool last_at_owner = range.second - range.first == 1;
      sparse_.erase(it);
      --count_;
      if (last_at_owner) --owners_;
      return true;
    }
  }
  return false;
}

bool CompactPtrStore::has(std::uint16_t offset) const noexcept {
  if (dense_) return slots_[offset].name_ref != kEmptyRef;
  const std::uint16_t ckey = ckey_of(offset);
  return std::binary_search(sparse_.begin(), sparse_.end(), ckey, KeyLess{});
}

void CompactPtrStore::find(std::uint16_t offset, std::vector<Found>& out) const {
  std::string scratch;
  const std::uint16_t ckey = ckey_of(offset);
  if (dense_) {
    const Entry slot = slots_[offset];
    if (slot.name_ref == kEmptyRef) return;
    out.push_back(Found{std::string{resolve(offset, slot, scratch)}, slot.ttl});
    const auto range = std::equal_range(overflow_.begin(), overflow_.end(), ckey, KeyLess{});
    for (auto it = range.first; it != range.second; ++it) {
      out.push_back(Found{std::string{resolve(offset, it->second, scratch)}, it->second.ttl});
    }
    return;
  }
  const auto range = std::equal_range(sparse_.begin(), sparse_.end(), ckey, KeyLess{});
  for (auto it = range.first; it != range.second; ++it) {
    out.push_back(Found{std::string{resolve(offset, it->second, scratch)}, it->second.ttl});
  }
}

bool CompactPtrStore::Cursor::next() {
  const CompactPtrStore& store = *store_;
  if (store.dense_) {
    if (pending_overflow_ > 0) {
      const auto& [ckey, entry] = store.overflow_[overflow_i_];
      offset_ = offset_of_ckey(ckey);
      ttl_ = entry.ttl;
      target_ = store.resolve(offset_, entry, scratch_);
      ++overflow_i_;
      --pending_overflow_;
      return true;
    }
    while (ckey_ < 65536) {
      const std::uint16_t ckey = static_cast<std::uint16_t>(ckey_++);
      const std::uint16_t offset = offset_of_ckey(ckey);
      const Entry slot = store.slots_[offset];
      std::size_t run = 0;
      while (overflow_i_ + run < store.overflow_.size() &&
             store.overflow_[overflow_i_ + run].first == ckey) {
        ++run;
      }
      if (slot.name_ref == kEmptyRef) {
        overflow_i_ += run;  // unreachable with slot-promotion, but stay safe
        continue;
      }
      pending_overflow_ = run;
      offset_ = offset;
      ttl_ = slot.ttl;
      target_ = store.resolve(offset, slot, scratch_);
      return true;
    }
    return false;
  }
  if (sparse_i_ >= store.sparse_.size()) return false;
  const auto& [ckey, entry] = store.sparse_[sparse_i_++];
  offset_ = offset_of_ckey(ckey);
  ttl_ = entry.ttl;
  target_ = store.resolve(offset_, entry, scratch_);
  return true;
}

std::size_t CompactPtrStore::footprint_bytes() const noexcept {
  return sparse_.capacity() * sizeof(sparse_[0]) + slots_.capacity() * sizeof(Entry) +
         overflow_.capacity() * sizeof(overflow_[0]);
}

}  // namespace rdns::dns
