#pragma once
/// \file ptr_store.hpp
/// Compact storage for the PTR records of one /16 reverse zone.
///
/// A reverse /16 zone's owner space is exactly the 65536 addresses under
/// its origin, so a PTR record needs no owner DnsName at all: 16 bits of
/// offset identify the owner, and the target hostname is an interned
/// util::NamePool id. Fixed-form generic targets ("host-a-b-c-d.<suffix>",
/// the DHCP bridge's StaticGeneric/revert vocabulary) compress further:
/// the first label is derivable from the owner address, so the entry only
/// references the interned suffix and the label is synthesized on read.
/// Net effect: ~8 bytes per record against the ~600 bytes of the
/// std::map<DnsName, vector<ResourceRecord>> representation.
///
/// Iteration yields records in the zone's canonical owner order (DNSSEC
/// ordering: label-wise from the right). For 4-octet arpa owners under one
/// /16 origin that order is the lexicographic order of the (third octet,
/// fourth octet) decimal strings, which is a fixed permutation of the
/// numeric offsets — precomputed once as a rank table, so lookups stay
/// O(1) array indexing while dumps/sweeps stay byte-identical to the
/// std::map walk.
///
/// Storage is adaptive: a sorted array of (canonical key, entry) pairs for
/// sparse zones, switching to a 65536-slot direct-index array (plus a tiny
/// overflow list for the rare owner with several PTRs) once the zone is
/// dense enough that sorted-insert churn would dominate. Both shapes
/// iterate in the same canonical order.
///
/// Thread safety follows the zone contract: mutation is single-threaded on
/// the sim clock; concurrent reads (find/cursor) are safe while frozen.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dns/name.hpp"
#include "net/ipv4.hpp"
#include "util/name_pool.hpp"

namespace rdns::dns {

class CompactPtrStore {
 public:
  /// `pool` must outlive the store; `base` is the /16 network address
  /// (A.B.0.0) whose low 16 bits the offsets index.
  CompactPtrStore(util::NamePool* pool, std::uint32_t base) noexcept
      : pool_(pool), base_(base) {}

  CompactPtrStore(const CompactPtrStore&) = delete;
  CompactPtrStore& operator=(const CompactPtrStore&) = delete;

  /// Add a PTR at `offset`; returns false for an exact duplicate
  /// (same target, case-insensitively, and same TTL — RR equality).
  bool add(std::uint16_t offset, const DnsName& target, std::uint32_t ttl);

  /// Bulk add of fixed-form generic names host-a-b-c-d.<suffix> at every
  /// offset in [first, last] (inclusive; suffix text without trailing dot,
  /// empty for none). Equivalent to repeated add(); returns records
  /// actually inserted (duplicates skipped).
  std::size_t add_generic_range(std::uint16_t first, std::uint16_t last,
                                std::string_view suffix_text, std::uint32_t ttl);

  /// Remove every PTR at `offset`; returns removed count.
  std::size_t remove_owner(std::uint16_t offset);

  /// Remove the first PTR at `offset` matching target (case-insensitive)
  /// and ttl; returns whether one was removed.
  bool remove_exact(std::uint16_t offset, const DnsName& target, std::uint32_t ttl);

  [[nodiscard]] bool has(std::uint16_t offset) const noexcept;

  /// Materialized record at an owner (query path).
  struct Found {
    std::string target;  ///< presentation text, case-preserved, no trailing dot
    std::uint32_t ttl = 0;
  };
  /// Append all PTRs at `offset` to `out` in insertion order.
  void find(std::uint16_t offset, std::vector<Found>& out) const;

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }
  [[nodiscard]] std::size_t owner_count() const noexcept { return owners_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  [[nodiscard]] net::Ipv4Addr address_of(std::uint16_t offset) const noexcept {
    return net::Ipv4Addr{base_ | offset};
  }

  /// Streaming iterator over all records in canonical owner order. The
  /// target view is valid until the next call to next() on this cursor.
  /// Independent cursors are safe concurrently (reads only).
  class Cursor {
   public:
    /// Advance to the next record; false when exhausted.
    bool next();

    [[nodiscard]] std::uint16_t offset() const noexcept { return offset_; }
    [[nodiscard]] std::string_view target() const noexcept { return target_; }
    [[nodiscard]] std::uint32_t ttl() const noexcept { return ttl_; }

   private:
    friend class CompactPtrStore;
    explicit Cursor(const CompactPtrStore& store) noexcept : store_(&store) {}

    const CompactPtrStore* store_;
    std::size_t sparse_i_ = 0;
    std::uint32_t ckey_ = 0;           ///< dense mode: next canonical key
    std::size_t overflow_i_ = 0;
    std::size_t pending_overflow_ = 0;  ///< overflow entries left at current key
    std::uint16_t offset_ = 0;
    std::uint32_t ttl_ = 0;
    std::string_view target_;
    std::string scratch_;
  };

  [[nodiscard]] Cursor cursor() const noexcept { return Cursor{*this}; }

  /// Canonical rank of each octet's decimal string ("0" < "1" < "10" < ...)
  /// and its inverse. Exposed for tests.
  [[nodiscard]] static const std::array<std::uint8_t, 256>& octet_rank() noexcept;
  [[nodiscard]] static const std::array<std::uint8_t, 256>& octet_at_rank() noexcept;

  /// Approximate heap footprint of the store's own tables (bench accounting;
  /// excludes the shared name pool).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

 private:
  struct Entry {
    std::uint32_t name_ref = kEmptyRef;  ///< pool id, or kGenericBit | suffix id
    std::uint32_t ttl = 0;
  };

  static constexpr std::uint32_t kEmptyRef = 0xFFFFFFFFu;
  static constexpr std::uint32_t kGenericBit = 0x80000000u;
  /// Sorted-array size beyond which sorted-insert memmove traffic loses to
  /// the 512 KiB direct-index array.
  static constexpr std::size_t kDenseThreshold = 4096;

  [[nodiscard]] static std::uint16_t ckey_of(std::uint16_t offset) noexcept;
  [[nodiscard]] static std::uint16_t offset_of_ckey(std::uint16_t ckey) noexcept;

  /// Encode a target into an entry ref, interning as needed. `text` must be
  /// target.to_string().
  [[nodiscard]] std::uint32_t encode_target(std::uint16_t offset, const DnsName& target,
                                            const std::string& text);

  /// Resolve an entry's target text (synthesizing generic labels into
  /// `scratch` when needed).
  [[nodiscard]] std::string_view resolve(std::uint16_t offset, Entry entry,
                                         std::string& scratch) const;

  [[nodiscard]] bool entry_matches(std::uint16_t offset, Entry entry, std::string_view text,
                                   std::uint32_t ttl, std::string& scratch) const;

  void densify();

  util::NamePool* pool_;
  std::uint32_t base_;
  bool dense_ = false;
  /// Sparse shape: sorted by canonical key; equal-key runs keep insertion
  /// order (multiple PTRs at one owner).
  std::vector<std::pair<std::uint16_t, Entry>> sparse_;
  /// Dense shape: one slot per offset (first record at the owner) ...
  std::vector<Entry> slots_;
  /// ... plus later records at the same owner, sorted by canonical key.
  std::vector<std::pair<std::uint16_t, Entry>> overflow_;
  std::size_t count_ = 0;
  std::size_t owners_ = 0;
};

}  // namespace rdns::dns
