#include "dns/resolver.hpp"

#include <algorithm>

#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "util/flight.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

/// Process-wide lookup accounting across every resolver instance (sweeps
/// run one resolver per shard; the per-instance split lives in
/// ResolverStats). Pure relaxed-atomic sums: totals match at any thread
/// count because chunk shapes — and therefore the set of lookups — do.
struct ResolverMetrics {
  metrics::Counter& queries_sent = metrics::counter("dns.resolver.queries_sent");
  metrics::Counter& ok = metrics::counter("dns.resolver.ok");
  metrics::Counter& nxdomain = metrics::counter("dns.resolver.nxdomain");
  metrics::Counter& servfail = metrics::counter("dns.resolver.servfail");
  metrics::Counter& timeout = metrics::counter("dns.resolver.timeout");
  metrics::Counter& refused = metrics::counter("dns.resolver.refused");
  metrics::Counter& other = metrics::counter("dns.resolver.other");
  metrics::Counter& retries = metrics::counter("dns.resolver.retries");
  metrics::Counter& rrl_throttled = metrics::counter("dns.resolver.rrl_throttled");
  metrics::Counter& tcp_fallbacks = metrics::counter("dns.resolver.tcp_fallbacks");
  metrics::Histogram& attempts = metrics::histogram(
      "dns.resolver.attempts", metrics::Histogram::linear_bounds(1, 1, 8));
};

ResolverMetrics& resolver_metrics() {
  static ResolverMetrics m;
  return m;
}

/// Records the finished lookup on every return path (and journals it when
/// the owning resolver has a sink attached).
struct LookupNote {
  const LookupResult& result;
  const DnsName& qname;
  util::SimTime when;
  util::journal::Sink* journal;
  ~LookupNote() {
    ResolverMetrics& m = resolver_metrics();
    m.attempts.observe(static_cast<double>(result.attempts));
    if (result.attempts > 1) m.retries.inc(static_cast<std::uint64_t>(result.attempts - 1));
    switch (result.status) {
      case LookupStatus::Ok: m.ok.inc(); break;
      case LookupStatus::NxDomain: m.nxdomain.inc(); break;
      case LookupStatus::ServFail: m.servfail.inc(); break;
      case LookupStatus::Timeout: m.timeout.inc(); break;
      case LookupStatus::Refused: m.refused.inc(); break;
      default: m.other.inc(); break;
    }
    if (journal != nullptr) {
      util::journal::Event e{"dns.lookup", when};
      e.str("qname", qname.to_string()).str("status", to_string(result.status));
      if (result.ptr) e.str("answer", result.ptr->to_string());
      e.num("attempts", result.attempts);
      journal->emit(e);
    }
    util::flight::record(util::flight::Kind::QueryDone,
                         static_cast<std::uint64_t>(result.attempts),
                         static_cast<std::uint64_t>(result.status));
  }
};

}  // namespace

const char* to_string(LookupStatus s) noexcept {
  switch (s) {
    case LookupStatus::Ok: return "OK";
    case LookupStatus::NxDomain: return "NXDOMAIN";
    case LookupStatus::NoData: return "NODATA";
    case LookupStatus::ServFail: return "SERVFAIL";
    case LookupStatus::Timeout: return "TIMEOUT";
    case LookupStatus::Refused: return "REFUSED";
    case LookupStatus::Malformed: return "MALFORMED";
  }
  return "?";
}

StubResolver::StubResolver(Transport& transport, int retries, std::uint64_t id_seed)
    : transport_(&transport),
      retries_(retries),
      next_id_(static_cast<std::uint16_t>(util::mix64(id_seed))),
      jitter_seed_(util::mix64(id_seed ^ 0xBACC0FFULL)) {}

LookupResult StubResolver::lookup_ptr(net::Ipv4Addr address, util::SimTime now) {
  return lookup(DnsName::must_parse(net::to_arpa(address)), RrType::PTR, now);
}

LookupResult StubResolver::lookup(const DnsName& qname, RrType qtype, util::SimTime now) {
  LookupResult result;
  const LookupNote note{result, qname, now, journal_lookups_ ? journal_ : nullptr};

  // Retry-schedule state: the exponent advances one step per ordinary
  // retry and two per REFUSED retry (see RetryPolicy); `exhaust_status`
  // remembers the most recent retryable signal so a lookup that keeps
  // getting REFUSED ends REFUSED, not TIMEOUT.
  unsigned exponent = 0;
  LookupStatus exhaust_status = LookupStatus::Timeout;

  for (int attempt = 0;; ++attempt) {
    // A fresh transaction id per attempt (a retry is a new transaction),
    // so stateless server-side fault decisions — which hash the id — stay
    // independent across attempts just like independent RNG draws.
    const std::uint16_t id = next_id_++;
    const Message query = make_query(id, qname, qtype);
    const auto query_wire = encode(query);
    ++result.attempts;
    ++stats_.queries_sent;
    resolver_metrics().queries_sent.inc();
    util::flight::record(util::flight::Kind::QueryIssue, id,
                         static_cast<std::uint64_t>(attempt));
    const auto response_wire = transport_->exchange(query_wire, now);
    if (!response_wire) {
      // Covers both the in-process injected timeout and a UDP transport
      // whose poll deadline expired — the transports share this seam.
      util::flight::record(util::flight::Kind::Timeout, id,
                           static_cast<std::uint64_t>(attempt));
    }

    // Outcomes that end the lookup return directly; the fallthrough below
    // is the retryable set: timeout, mismatched transaction, truncation,
    // and REFUSED (a defended server's RRL slip or shed policy).
    exhaust_status = LookupStatus::Timeout;
    const char* retry_reason = "timeout";
    if (response_wire) {
      Message response;
      try {
        response = decode(*response_wire);
      } catch (const WireError&) {
        result.status = LookupStatus::Malformed;
        ++stats_.other;
        return result;
      }
      bool truncated = false;
      if (response.id != id || !response.flags.qr) {
        // Mismatched transaction: treat as lost and retry (the id/qr guard
        // below keeps it out of the rcode switch).
      } else if (response.flags.tc) {
        // Truncated: re-ask over TCP when the transport has a stream
        // fallback (RFC 1035 §4.2.2); a full answer replaces the TC one
        // and classifies normally below. Without a fallback — or when the
        // stream attempt fails — retry over UDP as before. Against our
        // hardened serve path a TC=1 empty answer is specifically the RRL
        // slip — count it either way so sweeps can report server-side
        // throttling.
        truncated = true;
        ++stats_.truncated;
        ++stats_.rrl_throttled;
        resolver_metrics().rrl_throttled.inc();
        retry_reason = "tc";
        if (auto stream_wire = transport_->exchange_stream(query_wire, now)) {
          try {
            Message full = decode(*stream_wire);
            if (full.id == id && full.flags.qr && !full.flags.tc) {
              response = std::move(full);
              truncated = false;
              ++stats_.tcp_fallbacks;
              resolver_metrics().tcp_fallbacks.inc();
            }
          } catch (const WireError&) {
            // Undecodable stream reply: fall back to the UDP retry ladder.
          }
        }
      }
      if (response.id == id && response.flags.qr && !truncated) {
        switch (response.flags.rcode) {
          case Rcode::NoError:
            if (response.answers.empty()) {
              result.status = LookupStatus::NoData;
              ++stats_.other;
            } else {
              result.status = LookupStatus::Ok;
              result.answers = response.answers;
              for (const auto& rr : response.answers) {
                if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
                  result.ptr = ptr->ptrdname;
                  break;
                }
              }
              ++stats_.ok;
            }
            return result;
          case Rcode::NxDomain:
            result.status = LookupStatus::NxDomain;
            ++stats_.nxdomain;
            return result;
          case Rcode::ServFail:
            result.status = LookupStatus::ServFail;
            ++stats_.servfail;
            return result;
          case Rcode::Refused:
            // Retryable, but with the hardest backoff: a defended server
            // says REFUSED both for policy (permanent) and under shed
            // pressure (transient), and the stub cannot tell which. If
            // every attempt stays refused the lookup ends REFUSED.
            exhaust_status = LookupStatus::Refused;
            retry_reason = "refused";
            break;
          default:
            result.status = LookupStatus::Malformed;
            ++stats_.other;
            return result;
        }
      }
    }

    if (attempt >= retries_) break;
    if (budget_ == 0) {
      // Retry denied: the shard's budget is spent. The caller (sweep)
      // decides whether to re-run or degrade the shard.
      budget_exhausted_ = true;
      break;
    }
    if (budget_ != RetryPolicy::kNoBudgetLimit) --budget_;

    // Virtual exponential backoff with deterministic jitter: the exponent
    // advances one step per ordinary retry (base doubles) and two per
    // REFUSED retry (base quadruples), plus a hash-derived jitter in
    // [0, base). Accounted, not slept — sweep observations are
    // instantaneous — but journalled so `verify` can audit the schedule.
    exponent += exhaust_status == LookupStatus::Refused ? 2u : 1u;  // REFUSED backs off harder
    const std::uint64_t base = backoff_base_ << std::min(exponent - 1, 20u);
    const std::uint64_t jitter = base > 1 ? util::mix64(jitter_seed_ ^ id) % base : 0;
    const std::uint64_t delay = base + jitter;
    ++stats_.retries;
    stats_.backoff_s += delay;
    util::flight::record(util::flight::Kind::Retry, id,
                         static_cast<std::uint64_t>(attempt));
    util::flight::record(util::flight::Kind::Backoff, delay, base);
    if (journal_ != nullptr) {
      util::journal::Event e{"dns.retry", now};
      e.str("qname", qname.to_string())
          .num("n", attempt + 1)
          .unum("base_s", base)
          .unum("delay_s", delay)
          .str("reason", retry_reason);
      journal_->emit(e);
    }
  }
  result.status = exhaust_status;
  if (exhaust_status == LookupStatus::Refused) {
    ++stats_.refused;
  } else {
    ++stats_.timeout;
  }
  return result;
}

}  // namespace rdns::dns
