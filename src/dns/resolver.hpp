#pragma once
/// \file resolver.hpp
/// Stub resolver used by the measurement tooling. Mirrors the paper's
/// custom dnspython wrapper (Section 6.1): it queries the authoritative
/// side directly and is itself cache-free — caching is a separate opt-in
/// layer (dns/cache.hpp) whose distortion bench_ablation_cache quantifies.
/// Answers arrive through the Transport interface, so the same resolver
/// runs against the in-process server (deterministic reference) or a real
/// UDP socket (dns/udp_transport.hpp). Outcomes classify into the error
/// taxonomy of Fig. 6; rate limiting is left to the caller (scanners).

#include <cstdint>
#include <optional>
#include <string>

#include "dns/message.hpp"
#include "dns/server.hpp"
#include "net/ipv4.hpp"
#include "util/time.hpp"

namespace rdns::util::journal {
class Sink;
}  // namespace rdns::util::journal

namespace rdns::dns {

/// Outcome classification (Fig. 6 taxonomy).
enum class LookupStatus : std::uint8_t {
  Ok = 0,
  NxDomain,
  NoData,        ///< name exists, no PTR (rare in reverse zones)
  ServFail,      ///< "name server failure"
  Timeout,       ///< no response after retries
  Refused,
  Malformed,     ///< undecodable response
};

[[nodiscard]] const char* to_string(LookupStatus s) noexcept;
[[nodiscard]] constexpr bool is_error(LookupStatus s) noexcept { return s != LookupStatus::Ok; }

struct LookupResult {
  LookupStatus status = LookupStatus::Timeout;
  /// First PTR target when status == Ok.
  std::optional<DnsName> ptr;
  /// All answer records (for multi-RR answers).
  std::vector<ResourceRecord> answers;
  int attempts = 0;
};

/// Resolver statistics, accumulated across lookups. All fields are sums,
/// so per-worker accumulators from a sharded sweep merge with operator+=
/// in any order.
struct ResolverStats {
  std::uint64_t queries_sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
  std::uint64_t timeout = 0;
  std::uint64_t refused = 0;       ///< lookups that ended REFUSED after retries
  std::uint64_t other = 0;
  std::uint64_t retries = 0;       ///< re-sent queries (timeout/mismatch/TC/REFUSED)
  std::uint64_t truncated = 0;     ///< TC responses received
  std::uint64_t rrl_throttled = 0; ///< TC slips, the server-side RRL signal
  std::uint64_t tcp_fallbacks = 0; ///< TC answers completed over the stream transport
  std::uint64_t backoff_s = 0;     ///< total virtual backoff delay accrued

  ResolverStats& operator+=(const ResolverStats& other_stats) noexcept {
    queries_sent += other_stats.queries_sent;
    ok += other_stats.ok;
    nxdomain += other_stats.nxdomain;
    servfail += other_stats.servfail;
    timeout += other_stats.timeout;
    refused += other_stats.refused;
    other += other_stats.other;
    retries += other_stats.retries;
    truncated += other_stats.truncated;
    rrl_throttled += other_stats.rrl_throttled;
    tcp_fallbacks += other_stats.tcp_fallbacks;
    backoff_s += other_stats.backoff_s;
    return *this;
  }
};

/// Retry behaviour for lost/truncated/refused exchanges. The backoff is
/// *virtual*: sweeps observe the world at a frozen instant, so delays are
/// accounted (stats, `dns.retry` journal events) rather than advancing the
/// clock. The backoff exponent advances one step per timeout/mismatch/TC
/// retry (base doubles) and two steps per REFUSED retry (base quadruples —
/// REFUSED from a defended server means "back off hard", per its RRL/shed
/// policy), plus a deterministic jitter in [0, base) hashed from the
/// transaction id, so the full schedule is reproducible at any thread
/// count.
struct RetryPolicy {
  static constexpr std::uint64_t kNoBudgetLimit = ~0ULL;

  int max_retries = 1;               ///< extra attempts after the first
  std::uint64_t backoff_base_s = 1;  ///< first retry delay (seconds)
  /// Total retries this resolver may spend across all lookups before it
  /// reports budget_exhausted() — the sweep's per-shard budget.
  std::uint64_t retry_budget = kNoBudgetLimit;
};

class StubResolver {
 public:
  /// `retries` = additional attempts after a timeout (a real stub retries
  /// lost UDP datagrams).
  explicit StubResolver(Transport& transport, int retries = 1, std::uint64_t id_seed = 0x1D5EED);

  /// Look up the PTR for an address.
  [[nodiscard]] LookupResult lookup_ptr(net::Ipv4Addr address, util::SimTime now);

  /// Generic lookup.
  [[nodiscard]] LookupResult lookup(const DnsName& qname, RrType qtype, util::SimTime now);

  [[nodiscard]] const ResolverStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Attach a journal sink: every finished lookup emits a `dns.lookup`
  /// event (qname, status, answer, attempts) into it. Opt-in per resolver
  /// instance — the campaign engine attaches its serial resolver, while
  /// bulk sweeps leave theirs detached to keep journal volume bounded.
  void set_journal(util::journal::Sink* sink) noexcept {
    journal_ = sink;
    journal_lookups_ = true;
  }

  /// Attach a sink that receives only `dns.retry` events (no per-lookup
  /// `dns.lookup` volume) — what the sharded sweep uses so retry chains
  /// are auditable without journalling every address.
  void set_retry_journal(util::journal::Sink* sink) noexcept {
    journal_ = sink;
    journal_lookups_ = false;
  }

  /// Override retry count / backoff / budget (see RetryPolicy).
  void set_retry_policy(const RetryPolicy& policy) noexcept {
    retries_ = policy.max_retries;
    backoff_base_ = policy.backoff_base_s > 0 ? policy.backoff_base_s : 1;
    budget_ = policy.retry_budget;
    budget_exhausted_ = false;
  }

  /// True once a retry was denied because the budget hit zero. Sticky
  /// until the next set_retry_policy().
  [[nodiscard]] bool budget_exhausted() const noexcept { return budget_exhausted_; }

 private:
  Transport* transport_;
  int retries_;
  std::uint16_t next_id_;
  std::uint64_t jitter_seed_;
  std::uint64_t backoff_base_ = 1;
  std::uint64_t budget_ = RetryPolicy::kNoBudgetLimit;
  bool budget_exhausted_ = false;
  bool journal_lookups_ = true;
  ResolverStats stats_;
  util::journal::Sink* journal_ = nullptr;
};

}  // namespace rdns::dns
