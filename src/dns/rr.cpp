#include "dns/rr.hpp"

#include "util/strings.hpp"

namespace rdns::dns {

const char* to_string(RrType t) noexcept {
  switch (t) {
    case RrType::A: return "A";
    case RrType::NS: return "NS";
    case RrType::CNAME: return "CNAME";
    case RrType::SOA: return "SOA";
    case RrType::PTR: return "PTR";
    case RrType::TXT: return "TXT";
    case RrType::AAAA: return "AAAA";
    case RrType::ANY: return "ANY";
  }
  return "TYPE?";
}

const char* to_string(RrClass c) noexcept {
  switch (c) {
    case RrClass::IN: return "IN";
    case RrClass::CH: return "CH";
    case RrClass::NONE: return "NONE";
    case RrClass::ANY: return "ANY";
  }
  return "CLASS?";
}

RrType rdata_type(const Rdata& rdata) noexcept {
  struct Visitor {
    RrType operator()(const ARdata&) const noexcept { return RrType::A; }
    RrType operator()(const NsRdata&) const noexcept { return RrType::NS; }
    RrType operator()(const CnameRdata&) const noexcept { return RrType::CNAME; }
    RrType operator()(const SoaRdata&) const noexcept { return RrType::SOA; }
    RrType operator()(const PtrRdata&) const noexcept { return RrType::PTR; }
    RrType operator()(const TxtRdata&) const noexcept { return RrType::TXT; }
    RrType operator()(const RawRdata& r) const noexcept { return static_cast<RrType>(r.type); }
  };
  return std::visit(Visitor{}, rdata);
}

std::string ResourceRecord::to_string() const {
  std::string out = name.to_string() + " " + std::to_string(ttl) + " " +
                    dns::to_string(klass) + " " + dns::to_string(type()) + " ";
  struct Visitor {
    std::string operator()(const ARdata& r) const { return r.address.to_string(); }
    std::string operator()(const NsRdata& r) const { return r.nsdname.to_string(); }
    std::string operator()(const CnameRdata& r) const { return r.cname.to_string(); }
    std::string operator()(const SoaRdata& r) const {
      return util::format("%s %s %u %u %u %u %u", r.mname.to_string().c_str(),
                          r.rname.to_string().c_str(), r.serial, r.refresh, r.retry, r.expire,
                          r.minimum);
    }
    std::string operator()(const PtrRdata& r) const { return r.ptrdname.to_string(); }
    std::string operator()(const TxtRdata& r) const {
      std::string s;
      for (const auto& part : r.strings) {
        if (!s.empty()) s += " ";
        s += "\"" + part + "\"";
      }
      return s;
    }
    std::string operator()(const RawRdata& r) const {
      return util::format("\\# %zu", r.data.size());
    }
  };
  return out + std::visit(Visitor{}, rdata);
}

ResourceRecord make_ptr(const DnsName& owner, const DnsName& target, std::uint32_t ttl) {
  return ResourceRecord{owner, RrClass::IN, ttl, PtrRdata{target}};
}

ResourceRecord make_a(const DnsName& owner, net::Ipv4Addr address, std::uint32_t ttl) {
  return ResourceRecord{owner, RrClass::IN, ttl, ARdata{address}};
}

ResourceRecord make_soa(const DnsName& owner, SoaRdata soa, std::uint32_t ttl) {
  return ResourceRecord{owner, RrClass::IN, ttl, std::move(soa)};
}

ResourceRecord make_ns(const DnsName& owner, const DnsName& nsdname, std::uint32_t ttl) {
  return ResourceRecord{owner, RrClass::IN, ttl, NsRdata{nsdname}};
}

ResourceRecord make_txt(const DnsName& owner, std::vector<std::string> strings,
                        std::uint32_t ttl) {
  return ResourceRecord{owner, RrClass::IN, ttl, TxtRdata{std::move(strings)}};
}

}  // namespace rdns::dns
