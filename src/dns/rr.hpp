#pragma once
/// \file rr.hpp
/// Resource records (RFC 1035 §3.2). The study revolves around PTR records;
/// A/NS/SOA/TXT are implemented because real reverse zones carry them and
/// the dynamic-update path manipulates SOA serials.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.hpp"
#include "net/ipv4.hpp"

namespace rdns::dns {

/// RR TYPE codes (subset; values per IANA registry).
enum class RrType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  TXT = 16,
  AAAA = 28,
  ANY = 255,  ///< QTYPE only
};

/// CLASS codes. NONE and ANY appear in dynamic updates (RFC 2136); CH
/// carries the server's TXT stats interface (the `version.bind` idiom).
enum class RrClass : std::uint16_t {
  IN = 1,
  CH = 3,
  NONE = 254,
  ANY = 255,
};

[[nodiscard]] const char* to_string(RrType t) noexcept;
[[nodiscard]] const char* to_string(RrClass c) noexcept;

struct ARdata {
  net::Ipv4Addr address;
  bool operator==(const ARdata&) const = default;
};

struct NsRdata {
  DnsName nsdname;
  bool operator==(const NsRdata&) const = default;
};

struct CnameRdata {
  DnsName cname;
  bool operator==(const CnameRdata&) const = default;
};

struct SoaRdata {
  DnsName mname;   ///< primary name server
  DnsName rname;   ///< responsible mailbox
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 900;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 300;  ///< negative-caching TTL
  bool operator==(const SoaRdata&) const = default;
};

struct PtrRdata {
  DnsName ptrdname;  ///< the hostname an address reverse-maps to
  bool operator==(const PtrRdata&) const = default;
};

struct TxtRdata {
  std::vector<std::string> strings;
  bool operator==(const TxtRdata&) const = default;
};

/// Uninterpreted RDATA (unknown types round-trip through the wire codec).
struct RawRdata {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const RawRdata&) const = default;
};

using Rdata = std::variant<ARdata, NsRdata, CnameRdata, SoaRdata, PtrRdata, TxtRdata, RawRdata>;

/// RR TYPE implied by an Rdata alternative.
[[nodiscard]] RrType rdata_type(const Rdata& rdata) noexcept;

/// A complete resource record.
struct ResourceRecord {
  DnsName name;
  RrClass klass = RrClass::IN;
  std::uint32_t ttl = 3600;
  Rdata rdata;

  [[nodiscard]] RrType type() const noexcept { return rdata_type(rdata); }

  /// "name TTL IN TYPE rdata" presentation form (for logs and goldens).
  [[nodiscard]] std::string to_string() const;

  bool operator==(const ResourceRecord&) const = default;
};

/// Convenience constructors.
[[nodiscard]] ResourceRecord make_ptr(const DnsName& owner, const DnsName& target,
                                      std::uint32_t ttl = 3600);
[[nodiscard]] ResourceRecord make_a(const DnsName& owner, net::Ipv4Addr address,
                                    std::uint32_t ttl = 3600);
[[nodiscard]] ResourceRecord make_soa(const DnsName& owner, SoaRdata soa,
                                      std::uint32_t ttl = 3600);
[[nodiscard]] ResourceRecord make_ns(const DnsName& owner, const DnsName& nsdname,
                                     std::uint32_t ttl = 3600);
[[nodiscard]] ResourceRecord make_txt(const DnsName& owner, std::vector<std::string> strings,
                                      std::uint32_t ttl = 3600);

}  // namespace rdns::dns
