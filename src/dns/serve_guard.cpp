#include "dns/serve_guard.hpp"

#include <string_view>

#include "dns/name.hpp"
#include "dns/wire.hpp"

namespace rdns::dns {

namespace {

constexpr std::size_t kHeaderBytes = 12;

[[nodiscard]] std::uint16_t read_u16(std::span<const std::uint8_t> p, std::size_t at) noexcept {
  return static_cast<std::uint16_t>((p[at] << 8) | p[at + 1]);
}

/// Policy verdict for a scanned question. CH TXT is the chaos/introspection
/// plane and always passes; everything else must be IN (and PTR when the
/// PTR-only policy is on).
[[nodiscard]] WireVerdict policy_verdict(std::uint16_t qtype, std::uint16_t qclass,
                                         bool restrict_ptr) noexcept {
  if (qclass == static_cast<std::uint16_t>(RrClass::CH)) {
    return qtype == static_cast<std::uint16_t>(RrType::TXT) ? WireVerdict::Answer
                                                            : WireVerdict::Refused;
  }
  if (qclass != static_cast<std::uint16_t>(RrClass::IN)) return WireVerdict::Refused;
  if (restrict_ptr && qtype != static_cast<std::uint16_t>(RrType::PTR)) {
    return WireVerdict::Refused;
  }
  return WireVerdict::Answer;
}

/// Exact slow path for the rare shapes the fast scan refuses to guess at
/// (compression pointers in the qname, non-empty trailing sections): run
/// the same WireReader the zone handler will use, so an `Answer` verdict is
/// a guarantee that `decode()` cannot throw downstream. Compressed qnames
/// get `question_end = 0` — echoing a prefix that contains forward pointers
/// could produce an undecodable error response, so those replies carry a
/// bare header instead.
[[nodiscard]] Classified classify_slow(std::span<const std::uint8_t> payload, bool restrict_ptr,
                                       bool compressed_qname) {
  try {
    WireReader r{payload};
    (void)r.u16();  // id
    (void)r.u16();  // flags (already vetted by the caller)
    const std::uint16_t qd = r.u16();
    const std::uint16_t an = r.u16();
    const std::uint16_t ns = r.u16();
    const std::uint16_t ar = r.u16();
    if (qd != 1) return {WireVerdict::FormErr, 0};
    const Question q = r.question();
    const std::size_t question_end = compressed_qname ? 0 : r.position();
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(an) + ns + ar; ++i) (void)r.rr();
    return {policy_verdict(static_cast<std::uint16_t>(q.qtype),
                           static_cast<std::uint16_t>(q.qclass), restrict_ptr),
            question_end, q.qclass == RrClass::CH && q.qtype == RrType::TXT};
  } catch (const WireError&) {
    return {WireVerdict::FormErr, 0, false};
  }
}

}  // namespace

const char* to_string(WireVerdict v) noexcept {
  switch (v) {
    case WireVerdict::Answer: return "answer";
    case WireVerdict::SilentDrop: return "silent-drop";
    case WireVerdict::FormErr: return "formerr";
    case WireVerdict::NotImp: return "notimp";
    case WireVerdict::Refused: return "refused";
  }
  return "unknown";
}

Classified classify_query(std::span<const std::uint8_t> payload, bool restrict_ptr) {
  // Shorter than a header: not even classifiable, drop silently.
  if (payload.size() < kHeaderBytes) return {WireVerdict::SilentDrop, 0};

  const std::uint16_t flags = read_u16(payload, 2);
  // A response (QR=1) aimed at a server port is reflection noise, never a
  // query — answering it would complete an amplification loop.
  if ((flags & 0x8000) != 0) return {WireVerdict::SilentDrop, 0};
  const auto opcode = static_cast<std::uint8_t>((flags >> 11) & 0xF);
  if (opcode != static_cast<std::uint8_t>(Opcode::Query)) return {WireVerdict::NotImp, 0};

  const std::uint16_t qd = read_u16(payload, 4);
  const std::uint16_t an = read_u16(payload, 6);
  const std::uint16_t ns = read_u16(payload, 8);
  const std::uint16_t ar = read_u16(payload, 10);
  if (qd != 1) return {WireVerdict::FormErr, 0};

  // Strict allocation-free scan of the single question, mirroring the
  // decoder's rules exactly (label length, LDH bytes, 255-octet bound).
  std::size_t pos = kHeaderBytes;
  std::size_t name_octets = 1;  // root label
  for (;;) {
    if (pos >= payload.size()) return {WireVerdict::FormErr, 0};
    const std::uint8_t len = payload[pos];
    if ((len & 0xC0) == 0xC0) {
      // Compression in a qname: legal but rare; take the exact slow path.
      return classify_slow(payload, restrict_ptr, /*compressed_qname=*/true);
    }
    if ((len & 0xC0) != 0) return {WireVerdict::FormErr, 0};  // reserved label type
    ++pos;
    if (len == 0) break;
    if (pos + len > payload.size()) return {WireVerdict::FormErr, 0};
    const std::string_view label{reinterpret_cast<const char*>(payload.data() + pos), len};
    if (!is_valid_label(label)) return {WireVerdict::FormErr, 0};
    name_octets += static_cast<std::size_t>(len) + 1;
    if (name_octets > 255) return {WireVerdict::FormErr, 0};
    pos += len;
  }
  if (pos + 4 > payload.size()) return {WireVerdict::FormErr, 0};
  const std::uint16_t qtype = read_u16(payload, pos);
  const std::uint16_t qclass = read_u16(payload, pos + 2);
  const std::size_t question_end = pos + 4;

  // Extra sections in a query are suspicious but decodable shapes exist;
  // verify them with the real decoder so the verdict matches what the
  // handler would see. One exception stays on the fast path: a single
  // well-formed EDNS0 OPT RR in the additional section (RFC 6891 — root
  // owner, type 41, RDLEN covering the remaining bytes exactly), the shape
  // every EDNS-speaking client sends. Anything else — OPT with trailing
  // junk, a lying RDLEN, answer/authority RRs — takes the slow path.
  if (an != 0 || ns != 0 || ar != 0) {
    if (an == 0 && ns == 0 && ar == 1 && question_end + 11 <= payload.size() &&
        payload[question_end] == 0x00 && read_u16(payload, question_end + 1) == 41 &&
        question_end + 11 + read_u16(payload, question_end + 9) == payload.size()) {
      return {policy_verdict(qtype, qclass, restrict_ptr), question_end,
              qclass == static_cast<std::uint16_t>(RrClass::CH) &&
                  qtype == static_cast<std::uint16_t>(RrType::TXT)};
    }
    Classified c = classify_slow(payload, restrict_ptr, /*compressed_qname=*/false);
    if (c.verdict == WireVerdict::FormErr && c.question_end == 0) c.question_end = question_end;
    return c;
  }

  return {policy_verdict(qtype, qclass, restrict_ptr), question_end,
          qclass == static_cast<std::uint16_t>(RrClass::CH) &&
              qtype == static_cast<std::uint16_t>(RrType::TXT)};
}

std::vector<std::uint8_t> make_guard_response(std::span<const std::uint8_t> query,
                                              std::size_t question_end, Rcode rcode, bool tc) {
  // Echo the header (and the question when it scanned clean); everything
  // past the question is dropped and the section counts zeroed.
  const std::size_t copy = question_end >= kHeaderBytes + 1
                               ? std::min(question_end, query.size())
                               : std::min(kHeaderBytes, query.size());
  std::vector<std::uint8_t> out(query.begin(),
                                query.begin() + static_cast<std::ptrdiff_t>(copy));
  out.resize(std::max<std::size_t>(out.size(), kHeaderBytes), 0);

  // Flags: QR=1, preserve opcode + RD, clear AA/RA, stamp TC and rcode.
  std::uint16_t flags = read_u16(out, 2);
  flags = static_cast<std::uint16_t>(flags & 0x7900);  // keep opcode + RD
  flags |= 0x8000;                                     // QR
  if (tc) flags |= 0x0200;
  flags |= static_cast<std::uint16_t>(rcode) & 0xF;
  out[2] = static_cast<std::uint8_t>(flags >> 8);
  out[3] = static_cast<std::uint8_t>(flags);

  const std::uint16_t qd = copy > kHeaderBytes ? 1 : 0;
  out[4] = 0;
  out[5] = static_cast<std::uint8_t>(qd);
  for (std::size_t i = 6; i < kHeaderBytes; ++i) out[i] = 0;  // an/ns/ar = 0
  return out;
}

// ------------------------------------------------------------- ServeGuard --

ServeGuard::ServeGuard(const ServeHardeningOptions& options) : options_(options) {
  if (options_.rrl_burst <= 0.0) options_.rrl_burst = options_.rrl_rate;
  if (options_.shed_answer_every < 2) options_.shed_answer_every = 2;
  if (rrl_armed()) buckets_.reserve(std::min<std::size_t>(options_.rrl_table_cap, 1024));
}

ServeGuard::RrlDecision ServeGuard::rrl_check(std::uint32_t client_address, std::int64_t now_s) {
  const std::uint32_t key = client_address & 0xFFFFFF00u;
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    if (buckets_.size() >= options_.rrl_table_cap) {
      // Bounded memory under address spoofing: wipe and start over. Brief
      // over-admission beats an unbounded table.
      buckets_.clear();
      ++table_flushes_;
    }
    it = buckets_.emplace(key, util::TokenBucket{options_.rrl_rate, options_.rrl_burst, now_s})
             .first;
  }
  if (it->second.try_acquire(now_s)) return RrlDecision::Answer;
  ++slip_counter_;
  if (options_.rrl_slip != 0 && slip_counter_ % options_.rrl_slip == 0) {
    return RrlDecision::Slip;
  }
  return RrlDecision::Drop;
}

unsigned ServeGuard::on_batch(bool full) noexcept {
  // Full batches mean the socket queue is outrunning us; the streak climbs
  // one per batch and halves on any breather, so levels shed quickly once
  // the flood stops but need sustained pressure to engage.
  if (full) {
    if (full_streak_ < 1u << 20) ++full_streak_;
  } else {
    full_streak_ /= 2;
  }
  unsigned level = 0;
  if (options_.shed_l1_batches != 0 && full_streak_ >= options_.shed_l1_batches) level = 1;
  if (options_.shed_l2_batches != 0 && full_streak_ >= options_.shed_l2_batches) level = 2;
  if (options_.shed_l3_batches != 0 && full_streak_ >= options_.shed_l3_batches) level = 3;
  shed_level_ = level;
  return level;
}

bool ServeGuard::shed_answer() noexcept {
  return ++answer_counter_ % options_.shed_answer_every == 0;
}

}  // namespace rdns::dns
