#pragma once
/// \file serve_guard.hpp
/// Abuse defense for the UDP serving loop: wire classification, response
/// rate limiting and load shedding, applied per worker before the zone
/// handler runs (DESIGN.md §15).
///
/// Three layers, cheapest first:
///
///   1. **Wire defense** — an allocation-free strict walk over the query
///      bytes classifies every datagram before it can reach the codec:
///      undecodable garbage is dropped silently (`serve.dropped_malformed`),
///      a decodable header with a broken body earns FORMERR, an unsupported
///      opcode NOTIMP, and an out-of-policy question (non-IN class or, under
///      the PTR-only policy, a non-PTR qtype) REFUSED. Queries that carry
///      extra sections take a slow path through the full decoder so the
///      classification stays exact without taxing the common case (QD=1,
///      everything else 0).
///
///   2. **Response rate limiting (RRL)** — a per-client-/24 token bucket
///      (util::TokenBucket on whole wall-clock seconds, the BIND RRL
///      window idiom) gates answers *before* the zone lookup, so an abusive
///      /24 costs a table probe instead of a handler run. Over-limit
///      queries are dropped except for every `slip`-th one, which gets a
///      minimal TC=1 response — the standard RRL "slip" escape hatch that
///      lets a legitimate client behind a spoofed /24 learn to retry.
///
///   3. **Overload shedding** — a per-worker backlog monitor watches how
///      often recvmmsg fills its whole batch (the only backlog signal a
///      SO_REUSEPORT worker has) and walks a shed ladder, dumping the
///      lowest-value work first: error responses, then RRL slips, then a
///      deterministic fraction of answers. Levels decay as the backlog
///      clears.
///
/// The guard is per-worker state (no locks on the hot path); with
/// `ServeHardeningOptions.guard == false` the serving loop behaves exactly
/// as before — one branch per query.

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/message.hpp"
#include "util/token_bucket.hpp"

namespace rdns::dns {

/// Tuning knobs for the serve-path defense; defaults keep everything off so
/// bare UdpServerLoop users (unit tests, benches) see no behavior change.
struct ServeHardeningOptions {
  /// Master switch for the wire-classification front-end (and with it the
  /// FORMERR/NOTIMP/REFUSED error responses).
  bool guard = false;
  /// Refuse IN-class questions whose qtype is not PTR (CH TXT chaos
  /// queries are always exempt — they are the introspection plane).
  bool restrict_ptr = true;
  /// Per-client-/24 answer budget in responses/second (0 = RRL off).
  /// Token granularity is one wall-clock second, like BIND's RRL window.
  double rrl_rate = 0.0;
  /// Bucket depth; 0 = one second's worth (`rrl_rate`).
  double rrl_burst = 0.0;
  /// Answer every Nth over-limit query with a minimal TC=1 response
  /// instead of silence (0 = never slip).
  unsigned rrl_slip = 2;
  /// Max tracked /24 buckets per worker; on overflow the table is flushed
  /// (counted in serve.rrl_table_flushes) — bounded memory under spoofing.
  std::size_t rrl_table_cap = 4096;
  /// Consecutive full recv batches before the shed ladder steps to L1
  /// (drop error responses), L2 (drop RRL slips too), L3 (drop a fraction
  /// of answers). 0 disables that level.
  unsigned shed_l1_batches = 8;
  unsigned shed_l2_batches = 32;
  unsigned shed_l3_batches = 128;
  /// At L3, drop one in `shed_answer_every` would-be answers (>= 2).
  unsigned shed_answer_every = 4;
};

/// Wire-classification verdict for one inbound datagram.
enum class WireVerdict : std::uint8_t {
  Answer,        ///< well-formed, in policy: run the zone handler
  SilentDrop,    ///< undecodable (or a response): drop without a reply
  FormErr,       ///< header decodes, body does not
  NotImp,        ///< unsupported opcode
  Refused,       ///< out-of-policy class/qtype
};

[[nodiscard]] const char* to_string(WireVerdict v) noexcept;

/// Classification result: the verdict plus, when the question section
/// scanned clean, the offset one past the question (for echoing it into
/// minimal error/TC responses without re-encoding).
struct Classified {
  WireVerdict verdict = WireVerdict::SilentDrop;
  std::size_t question_end = 0;  ///< 0 = question did not scan
  /// CH TXT introspection query: exempt from RRL and shedding so the
  /// chaos plane stays reachable under flood.
  bool chaos = false;
};

/// Classify one query datagram. Pure function over the bytes: never
/// throws, never allocates on the fast path (QD=1 and no extra sections);
/// queries with extra sections are verified through the full decoder.
/// `restrict_ptr` applies the PTR-only policy described above.
[[nodiscard]] Classified classify_query(std::span<const std::uint8_t> payload,
                                        bool restrict_ptr);

/// Build a minimal response for a classified query: echoes the 12-byte
/// header (and the question section when `question_end > 0`), sets QR,
/// zeroes the answer counts and stamps `rcode` (+ the TC bit for RRL
/// slips). The result always re-decodes cleanly.
[[nodiscard]] std::vector<std::uint8_t> make_guard_response(
    std::span<const std::uint8_t> query, std::size_t question_end, Rcode rcode, bool tc);

/// Per-worker defense state: RRL bucket table + shed ladder. All methods
/// are called from exactly one worker thread.
class ServeGuard {
 public:
  explicit ServeGuard(const ServeHardeningOptions& options);

  [[nodiscard]] const ServeHardeningOptions& options() const noexcept { return options_; }
  [[nodiscard]] bool rrl_armed() const noexcept { return options_.rrl_rate > 0.0; }

  /// RRL gate for one would-be answer from `client_address` (host order)
  /// at wall-clock second `now_s` (monotone within a worker).
  enum class RrlDecision : std::uint8_t { Answer, Drop, Slip };
  [[nodiscard]] RrlDecision rrl_check(std::uint32_t client_address, std::int64_t now_s);

  /// Feed one recv batch outcome into the backlog monitor and return the
  /// (possibly changed) shed level. `full` = the batch filled completely,
  /// i.e. the socket queue still had more.
  unsigned on_batch(bool full) noexcept;

  [[nodiscard]] unsigned shed_level() const noexcept { return shed_level_; }

  /// At L3+: returns true when this would-be answer should be shed (one in
  /// `shed_answer_every`, deterministic by arrival order).
  [[nodiscard]] bool shed_answer() noexcept;

  /// Monotone counter of RRL table flushes (capacity overflow).
  [[nodiscard]] std::uint64_t table_flushes() const noexcept { return table_flushes_; }
  [[nodiscard]] std::size_t table_size() const noexcept { return buckets_.size(); }

 private:
  ServeHardeningOptions options_;
  std::unordered_map<std::uint32_t, util::TokenBucket> buckets_;
  std::uint64_t slip_counter_ = 0;
  std::uint64_t table_flushes_ = 0;
  unsigned full_streak_ = 0;
  unsigned shed_level_ = 0;
  std::uint64_t answer_counter_ = 0;
};

}  // namespace rdns::dns
