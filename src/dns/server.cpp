#include "dns/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "dns/wire.hpp"
#include "net/arpa.hpp"
#include "util/faults.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

/// Process-wide query accounting, aggregated across every server instance
/// (per-instance detail stays in ServerStats). All counters are relaxed
/// atomics, safe on the concurrent handle_readonly path, and the totals
/// are plain sums, so they come out identical at any thread count.
struct ServerMetrics {
  metrics::Counter& queries = metrics::counter("dns.server.queries");
  metrics::Counter& answered = metrics::counter("dns.server.answered");
  metrics::Counter& nxdomain = metrics::counter("dns.server.nxdomain");
  metrics::Counter& nodata = metrics::counter("dns.server.nodata");
  metrics::Counter& servfail_injected = metrics::counter("dns.server.servfail_injected");
  metrics::Counter& timeouts_injected = metrics::counter("dns.server.timeouts_injected");
  metrics::Counter& truncations_injected = metrics::counter("dns.server.truncations_injected");
  metrics::Counter& refused = metrics::counter("dns.server.refused");
  metrics::Counter& updates = metrics::counter("dns.server.updates");
  metrics::Counter& qtype_ptr = metrics::counter("dns.server.qtype.ptr");
  metrics::Counter& qtype_a = metrics::counter("dns.server.qtype.a");
  metrics::Counter& qtype_soa = metrics::counter("dns.server.qtype.soa");
  metrics::Counter& qtype_other = metrics::counter("dns.server.qtype.other");
  metrics::Histogram& update_rrs = metrics::histogram(
      "dns.server.update_rrs", metrics::Histogram::exponential_bounds(1, 2, 8));
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

void count_qtype(const Message& request) {
  if (request.questions.empty()) return;
  ServerMetrics& m = server_metrics();
  switch (request.questions.front().qtype) {
    case RrType::PTR: m.qtype_ptr.inc(); break;
    case RrType::A: m.qtype_a.inc(); break;
    case RrType::SOA: m.qtype_soa.inc(); break;
    default: m.qtype_other.inc(); break;
  }
}

/// Entity key for util::faults decisions: transaction id + lowercased
/// qname, mirroring fault_hit()'s inputs so injected outcomes are a pure
/// function of the query regardless of thread count or issue order.
std::uint64_t request_entity(const Message& request) noexcept {
  std::uint64_t h = util::mix64(request.id);
  if (!request.questions.empty()) {
    for (const auto& label : request.questions.front().qname.labels()) {
      for (const char c : label) {
        const auto lower =
            static_cast<std::uint64_t>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
        h = util::mix64(h ^ lower);
      }
      h = util::mix64(h ^ 0x2EULL);  // label separator
    }
  }
  return h;
}

}  // namespace

ServerStats& ServerStats::operator+=(const ServerStats& other) noexcept {
  queries += other.queries;
  answered += other.answered;
  nxdomain += other.nxdomain;
  nodata += other.nodata;
  servfail_injected += other.servfail_injected;
  timeouts_injected += other.timeouts_injected;
  truncations_injected += other.truncations_injected;
  refused += other.refused;
  updates += other.updates;
  return *this;
}

AuthoritativeServer::AuthoritativeServer(FaultPolicy faults, std::uint64_t fault_seed)
    : faults_(faults), fault_seed_(fault_seed) {}

Zone& AuthoritativeServer::add_zone(DnsName origin, SoaRdata soa) {
  zones_.push_back(std::make_unique<Zone>(std::move(origin), std::move(soa), &pool_));
  return *zones_.back();
}

std::size_t AuthoritativeServer::populate_generic(net::Ipv4Addr first, net::Ipv4Addr last,
                                                  const DnsName& suffix, std::uint32_t ttl) {
  std::size_t inserted = 0;
  std::uint64_t total = 0;
  // Chunk on /16 boundaries: each chunk lands in one reverse zone.
  std::uint64_t v = first.value();
  const std::uint64_t end = last.value();
  while (v <= end) {
    const std::uint64_t chunk_end = std::min<std::uint64_t>(end, v | 0xFFFFu);
    const net::Ipv4Addr chunk_first{static_cast<std::uint32_t>(v)};
    const net::Ipv4Addr chunk_last{static_cast<std::uint32_t>(chunk_end)};
    Zone* zone = find_zone(DnsName::must_parse(net::to_arpa(chunk_first)));
    if (zone == nullptr) {
      throw std::invalid_argument("populate_generic: no zone for " + chunk_first.to_string());
    }
    inserted += zone->populate_generic(chunk_first, chunk_last, suffix, ttl);
    total += chunk_end - v + 1;
    v = chunk_end + 1;
  }
  // Advance statistics exactly as `total` replace-updates through handle()
  // would have on a fault-free server: each update is one query, one
  // applied update, and one update_rrs observation of its 2 authority RRs
  // (delete-RRset + add).
  ServerMetrics& m = server_metrics();
  stats_.queries += total;
  stats_.updates += total;
  m.queries.inc(total);
  m.updates.inc(total);
  for (std::uint64_t i = 0; i < total; ++i) m.update_rrs.observe(2.0);
  return inserted;
}

Zone* AuthoritativeServer::find_zone(const DnsName& name) noexcept {
  Zone* best = nullptr;
  for (const auto& zone : zones_) {
    if (name.ends_with(zone->origin())) {
      if (best == nullptr || zone->origin().label_count() > best->origin().label_count()) {
        best = zone.get();
      }
    }
  }
  return best;
}

const Zone* AuthoritativeServer::find_zone(const DnsName& name) const noexcept {
  return const_cast<AuthoritativeServer*>(this)->find_zone(name);
}

std::vector<Zone*> AuthoritativeServer::zones() noexcept {
  std::vector<Zone*> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.get());
  return out;
}

std::vector<const Zone*> AuthoritativeServer::zones() const {
  std::vector<const Zone*> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.get());
  return out;
}

bool AuthoritativeServer::fault_hit(const Message& request, std::uint64_t salt,
                                    double p) const noexcept {
  // Stateless fault decision: a hash of (server seed, transaction id,
  // lowercased qname). Unlike a shared RNG stream, the outcome for a given
  // query does not depend on how many queries other threads issued first,
  // which keeps parallel sweeps byte-identical at every thread count.
  std::uint64_t h = fault_seed_ ^ salt;
  h = util::mix64(h ^ request.id);
  if (!request.questions.empty()) {
    for (const auto& label : request.questions.front().qname.labels()) {
      for (const char c : label) {
        const auto lower =
            static_cast<std::uint64_t>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
        h = util::mix64(h ^ lower);
      }
      h = util::mix64(h ^ 0x2EULL);  // label separator
    }
  }
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

std::optional<Message> AuthoritativeServer::handle(const Message& request) {
  if (request.flags.opcode == Opcode::Update) {
    ServerMetrics& m = server_metrics();
    ++stats_.queries;
    m.queries.inc();
    if (faults_.timeout_probability > 0 &&
        fault_hit(request, 0x7E0ULL, faults_.timeout_probability)) {
      ++stats_.timeouts_injected;
      m.timeouts_injected.inc();
      return std::nullopt;
    }
    if (faults_.servfail_probability > 0 &&
        fault_hit(request, 0x5FA1ULL, faults_.servfail_probability)) {
      ++stats_.servfail_injected;
      m.servfail_injected.inc();
      return make_response(request, Rcode::ServFail);
    }
    ++stats_.updates;
    m.updates.inc();
    return apply_update(request);
  }
  return handle_readonly(request, stats_);
}

std::optional<Message> AuthoritativeServer::handle_readonly(const Message& request,
                                                            ServerStats& stats) const {
  ServerMetrics& m = server_metrics();
  ++stats.queries;
  m.queries.inc();
  count_qtype(request);
  if (faults_.timeout_probability > 0 &&
      fault_hit(request, 0x7E0ULL, faults_.timeout_probability)) {
    ++stats.timeouts_injected;
    m.timeouts_injected.inc();
    return std::nullopt;
  }
  if (faults_.servfail_probability > 0 &&
      fault_hit(request, 0x5FA1ULL, faults_.servfail_probability)) {
    ++stats.servfail_injected;
    m.servfail_injected.inc();
    return make_response(request, Rcode::ServFail);
  }
  if (request.flags.opcode == Opcode::Update) {
    // Mutation is not allowed on the concurrent read path.
    ++stats.refused;
    m.refused.inc();
    return make_response(request, Rcode::Refused, /*authoritative=*/false);
  }
  // Chaos-profile faults (util::faults) on top of the per-server policy:
  // same stateless-hash determinism, but driven by the process-wide
  // profile so `--faults flaky-dns` degrades every server at once. No
  // journal emission here — this path runs concurrently; the per-shard
  // aggregates ride in the sweep.shard events.
  if (auto* inj = util::faults::active()) {
    const std::uint64_t entity = request_entity(request);
    if (inj->should_fail(util::faults::Site::DnsTimeout, entity)) {
      ++stats.timeouts_injected;
      m.timeouts_injected.inc();
      return std::nullopt;
    }
    if (inj->should_fail(util::faults::Site::DnsServfail, entity)) {
      ++stats.servfail_injected;
      m.servfail_injected.inc();
      return make_response(request, Rcode::ServFail);
    }
    if (inj->should_fail(util::faults::Site::DnsTruncate, entity)) {
      // UDP truncation: TC bit set, no answers. The stub retries (a real
      // one would fall back to TCP).
      ++stats.truncations_injected;
      m.truncations_injected.inc();
      Message response = make_response(request, Rcode::NoError);
      response.flags.tc = true;
      return response;
    }
  }
  return answer_query(request, stats);
}

Message AuthoritativeServer::answer_query(const Message& query, ServerStats& stats) const {
  ServerMetrics& m = server_metrics();
  if (query.questions.size() != 1) {
    ++stats.refused;
    m.refused.inc();
    return make_response(query, Rcode::FormErr, /*authoritative=*/false);
  }
  const Question& q = query.questions.front();
  const Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    ++stats.refused;
    m.refused.inc();
    return make_response(query, Rcode::Refused, /*authoritative=*/false);
  }

  auto answers = zone->find(q.qname, q.qtype);
  if (!answers.empty()) {
    Message response = make_response(query, Rcode::NoError);
    response.answers = std::move(answers);
    ++stats.answered;
    m.answered.inc();
    return response;
  }

  // Name exists but not with this type -> NODATA (NOERROR, SOA in
  // authority); name absent -> NXDOMAIN (also with SOA, RFC 2308).
  const bool exists = zone->has_name(q.qname);
  Message response = make_response(query, exists ? Rcode::NoError : Rcode::NxDomain);
  response.authority.push_back(make_soa(zone->origin(), zone->soa(), zone->soa().minimum));
  if (exists) {
    ++stats.nodata;
    m.nodata.inc();
  } else {
    ++stats.nxdomain;
    m.nxdomain.inc();
  }
  return response;
}

Message AuthoritativeServer::apply_update(const Message& update) {
  server_metrics().update_rrs.observe(static_cast<double>(update.authority.size()));
  // RFC 2136 layout: question = zone (qtype SOA), authority = update RRs.
  if (update.questions.size() != 1 || update.questions.front().qtype != RrType::SOA) {
    return make_response(update, Rcode::FormErr);
  }
  Zone* zone = find_zone(update.questions.front().qname);
  if (zone == nullptr || !(zone->origin() == update.questions.front().qname)) {
    return make_response(update, Rcode::NotZone);
  }
  // Validate owners first (RFC 2136 §3.4.1: check before any mutation).
  for (const auto& rr : update.authority) {
    if (!zone->contains(rr.name)) return make_response(update, Rcode::NotZone);
  }
  for (const auto& rr : update.authority) {
    if (rr.klass == RrClass::IN) {
      zone->add(rr);
    } else if (rr.klass == RrClass::ANY) {
      if (rr.type() == RrType::ANY) {
        zone->remove_all(rr.name);
      } else {
        zone->remove(rr.name, rr.type());
      }
    } else if (rr.klass == RrClass::NONE) {
      // Match irrespective of TTL: delete any record with same name/type/rdata.
      for (const auto& existing : zone->find(rr.name, rr.type())) {
        if (existing.rdata == rr.rdata) {
          zone->remove_exact(existing);
          break;
        }
      }
    } else {
      return make_response(update, Rcode::FormErr);
    }
  }
  return make_response(update, Rcode::NoError);
}

std::optional<std::vector<std::uint8_t>> LoopbackTransport::exchange(
    std::span<const std::uint8_t> query_wire, util::SimTime /*now*/) {
  Message query;
  try {
    query = decode(query_wire);
  } catch (const WireError&) {
    return std::nullopt;  // a real server would drop an unparseable datagram
  }
  const auto response = server_->handle(query);
  if (!response) return std::nullopt;
  return encode(*response);
}

}  // namespace rdns::dns
