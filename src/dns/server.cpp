#include "dns/server.hpp"

#include "dns/wire.hpp"

namespace rdns::dns {

AuthoritativeServer::AuthoritativeServer(FaultPolicy faults, std::uint64_t fault_seed)
    : faults_(faults), fault_rng_(fault_seed) {}

Zone& AuthoritativeServer::add_zone(DnsName origin, SoaRdata soa) {
  zones_.push_back(std::make_unique<Zone>(std::move(origin), std::move(soa)));
  return *zones_.back();
}

Zone* AuthoritativeServer::find_zone(const DnsName& name) noexcept {
  Zone* best = nullptr;
  for (const auto& zone : zones_) {
    if (name.ends_with(zone->origin())) {
      if (best == nullptr || zone->origin().label_count() > best->origin().label_count()) {
        best = zone.get();
      }
    }
  }
  return best;
}

const Zone* AuthoritativeServer::find_zone(const DnsName& name) const noexcept {
  return const_cast<AuthoritativeServer*>(this)->find_zone(name);
}

std::vector<Zone*> AuthoritativeServer::zones() noexcept {
  std::vector<Zone*> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.get());
  return out;
}

std::vector<const Zone*> AuthoritativeServer::zones() const {
  std::vector<const Zone*> out;
  out.reserve(zones_.size());
  for (const auto& z : zones_) out.push_back(z.get());
  return out;
}

std::optional<Message> AuthoritativeServer::handle(const Message& request) {
  ++stats_.queries;
  if (faults_.timeout_probability > 0 && fault_rng_.chance(faults_.timeout_probability)) {
    ++stats_.timeouts_injected;
    return std::nullopt;
  }
  if (faults_.servfail_probability > 0 && fault_rng_.chance(faults_.servfail_probability)) {
    ++stats_.servfail_injected;
    return make_response(request, Rcode::ServFail);
  }
  if (request.flags.opcode == Opcode::Update) {
    ++stats_.updates;
    return apply_update(request);
  }
  return answer_query(request);
}

Message AuthoritativeServer::answer_query(const Message& query) {
  if (query.questions.size() != 1) {
    ++stats_.refused;
    return make_response(query, Rcode::FormErr, /*authoritative=*/false);
  }
  const Question& q = query.questions.front();
  const Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    ++stats_.refused;
    return make_response(query, Rcode::Refused, /*authoritative=*/false);
  }

  auto answers = zone->find(q.qname, q.qtype);
  if (!answers.empty()) {
    Message response = make_response(query, Rcode::NoError);
    response.answers = std::move(answers);
    ++stats_.answered;
    return response;
  }

  // Name exists but not with this type -> NODATA (NOERROR, SOA in
  // authority); name absent -> NXDOMAIN (also with SOA, RFC 2308).
  const bool exists = zone->has_name(q.qname);
  Message response = make_response(query, exists ? Rcode::NoError : Rcode::NxDomain);
  response.authority.push_back(make_soa(zone->origin(), zone->soa(), zone->soa().minimum));
  if (exists) {
    ++stats_.nodata;
  } else {
    ++stats_.nxdomain;
  }
  return response;
}

Message AuthoritativeServer::apply_update(const Message& update) {
  // RFC 2136 layout: question = zone (qtype SOA), authority = update RRs.
  if (update.questions.size() != 1 || update.questions.front().qtype != RrType::SOA) {
    return make_response(update, Rcode::FormErr);
  }
  Zone* zone = find_zone(update.questions.front().qname);
  if (zone == nullptr || !(zone->origin() == update.questions.front().qname)) {
    return make_response(update, Rcode::NotZone);
  }
  // Validate owners first (RFC 2136 §3.4.1: check before any mutation).
  for (const auto& rr : update.authority) {
    if (!zone->contains(rr.name)) return make_response(update, Rcode::NotZone);
  }
  for (const auto& rr : update.authority) {
    if (rr.klass == RrClass::IN) {
      zone->add(rr);
    } else if (rr.klass == RrClass::ANY) {
      if (rr.type() == RrType::ANY) {
        zone->remove_all(rr.name);
      } else {
        zone->remove(rr.name, rr.type());
      }
    } else if (rr.klass == RrClass::NONE) {
      // Match irrespective of TTL: delete any record with same name/type/rdata.
      for (const auto& existing : zone->find(rr.name, rr.type())) {
        if (existing.rdata == rr.rdata) {
          zone->remove_exact(existing);
          break;
        }
      }
    } else {
      return make_response(update, Rcode::FormErr);
    }
  }
  return make_response(update, Rcode::NoError);
}

std::optional<std::vector<std::uint8_t>> LoopbackTransport::exchange(
    std::span<const std::uint8_t> query_wire, util::SimTime /*now*/) {
  Message query;
  try {
    query = decode(query_wire);
  } catch (const WireError&) {
    return std::nullopt;  // a real server would drop an unparseable datagram
  }
  const auto response = server_->handle(query);
  if (!response) return std::nullopt;
  return encode(*response);
}

}  // namespace rdns::dns
