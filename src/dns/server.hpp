#pragma once
/// \file server.hpp
/// Authoritative name server hosting one or more zones, plus the Transport
/// interface the resolver speaks wire format through.
///
/// Transport has two implementations with one contract: the in-process
/// path here (function call instead of a socket — the deterministic
/// reference every other path is byte-compared against) and the real UDP
/// client in dns/udp_transport.hpp aimed at a dns::UdpServerLoop hosting
/// these same zones on a live port. Caching sits above this layer as an
/// explicit opt-in (dns/cache.hpp), never inside it.
///
/// Fault injection models the failure modes the paper observed during its
/// supplemental measurement (Fig. 6): next to normal answers, "name server
/// failures, timeouts, and NXDOMAIN responses".

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dns/message.hpp"
#include "dns/zone.hpp"
#include "util/name_pool.hpp"
#include "util/time.hpp"

namespace rdns::dns {

/// Probabilities of transient failures, evaluated per query.
struct FaultPolicy {
  double servfail_probability = 0.0;
  double timeout_probability = 0.0;

  [[nodiscard]] static FaultPolicy none() noexcept { return {}; }
};

/// Query-handling statistics (per server). Parallel sweeps accumulate
/// these per worker and fold them back with operator+= — all fields are
/// sums, so the merge is order-independent.
struct ServerStats {
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t nodata = 0;
  std::uint64_t servfail_injected = 0;
  std::uint64_t timeouts_injected = 0;
  std::uint64_t truncations_injected = 0;
  std::uint64_t refused = 0;
  std::uint64_t updates = 0;

  ServerStats& operator+=(const ServerStats& other) noexcept;
};

/// Byte-level transport: what a UDP socket would be. The simulator wires a
/// resolver to a server through this, round-tripping RFC 1035 wire format.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Send a query; nullopt models a timeout / dropped datagram.
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query_wire, util::SimTime now) = 0;

  /// Stream (TCP) retry for TC=1 answers. The default is "no stream
  /// transport" — the resolver treats nullopt as an unavailable fallback
  /// and keeps its UDP retry ladder, so transports that never opt in (the
  /// in-process reference path, the deterministic sweep) are byte-for-byte
  /// unaffected. UdpTransport overrides this when a TCP port is configured.
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>> exchange_stream(
      std::span<const std::uint8_t> query_wire, util::SimTime now) {
    (void)query_wire;
    (void)now;
    return std::nullopt;
  }
};

class AuthoritativeServer {
 public:
  explicit AuthoritativeServer(FaultPolicy faults = FaultPolicy::none(),
                               std::uint64_t fault_seed = 0xFA017);

  /// Host a zone; returns a stable reference for later mutation. The server
  /// owns the zone. Compact-eligible zones share the server's name pool,
  /// so one hostname interned in any zone costs its bytes once.
  Zone& add_zone(DnsName origin, SoaRdata soa);

  /// Bulk-install generic PTRs host-a-b-c-d.<suffix> for every address in
  /// [first, last], observably equivalent to sending one RFC 2136
  /// replace-update per address through handle() against a fault-free
  /// server with no pre-existing records in the range: zone contents,
  /// serials, ServerStats and the dns.server.* counters all advance as the
  /// wire path would. Must not be used when fault injection is configured
  /// (the wire path would then drop some updates). Returns PTRs inserted.
  std::size_t populate_generic(net::Ipv4Addr first, net::Ipv4Addr last, const DnsName& suffix,
                               std::uint32_t ttl);

  /// Zone whose origin best matches (longest suffix of) `name`.
  [[nodiscard]] Zone* find_zone(const DnsName& name) noexcept;
  [[nodiscard]] const Zone* find_zone(const DnsName& name) const noexcept;

  /// Answer a parsed message (query or RFC 2136 update). Returns nullopt
  /// when fault injection decides this query is lost (timeout).
  [[nodiscard]] std::optional<Message> handle(const Message& request);

  /// Const query path for concurrent scanners: answers a QUERY without
  /// touching any server state; statistics land in the caller-supplied
  /// accumulator (merge them back via merge_stats). Fault injection is a
  /// pure hash of (fault seed, transaction id, qname), so the outcome of
  /// every query is independent of query order and thread count — the
  /// property the deterministic parallel sweep relies on. UPDATE messages
  /// are refused here; mutation must go through handle().
  ///
  /// Thread safety: safe to call from many threads concurrently as long
  /// as nothing mutates the hosted zones meanwhile (frozen sim clock).
  [[nodiscard]] std::optional<Message> handle_readonly(const Message& request,
                                                       ServerStats& stats) const;

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Fold a per-worker accumulator into the server's own counters.
  void merge_stats(const ServerStats& delta) noexcept { stats_ += delta; }

  void set_faults(FaultPolicy faults) noexcept { faults_ = faults; }
  [[nodiscard]] const FaultPolicy& faults() const noexcept { return faults_; }

  [[nodiscard]] std::size_t zone_count() const noexcept { return zones_.size(); }
  [[nodiscard]] std::vector<Zone*> zones() noexcept;
  [[nodiscard]] std::vector<const Zone*> zones() const;

 private:
  [[nodiscard]] Message answer_query(const Message& query, ServerStats& stats) const;
  [[nodiscard]] Message apply_update(const Message& update);
  [[nodiscard]] bool fault_hit(const Message& request, std::uint64_t salt,
                               double p) const noexcept;

  util::NamePool pool_;  ///< declared before zones_: zones borrow it
  std::vector<std::unique_ptr<Zone>> zones_;
  FaultPolicy faults_;
  std::uint64_t fault_seed_;
  ServerStats stats_;
};

/// Transport bound to one server: encodes/decodes through the wire codec so
/// the binary format is on the hot path.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(AuthoritativeServer& server) noexcept : server_(&server) {}

  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query_wire, util::SimTime now) override;

 private:
  AuthoritativeServer* server_;
};

}  // namespace rdns::dns
