#include "dns/tcp_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include <chrono>
#include <cstring>

#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;
using Clock = std::chrono::steady_clock;

struct TcpMetrics {
  metrics::Counter& accepted = metrics::counter("serve.tcp.accepted");
  metrics::Counter& rejected = metrics::counter("serve.tcp.rejected");
  metrics::Counter& queries = metrics::counter("serve.tcp.queries");
  metrics::Counter& responses = metrics::counter("serve.tcp.responses");
  metrics::Counter& timeouts = metrics::counter("serve.tcp.timeouts");
  metrics::Counter& errors = metrics::counter("serve.tcp.errors");
};

TcpMetrics& tcp_metrics() {
  static TcpMetrics m;
  return m;
}

void set_nonblocking(int fd) { ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK); }

}  // namespace

/// One connection's state machine: accumulate framed queries in `in`,
/// stage framed replies in `out`, drain `out` before reading more.
struct DnsTcpServer::Conn {
  int fd = -1;
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  Clock::time_point deadline{};
};

DnsTcpServer::DnsTcpServer(Options options, WireHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (options_.io_timeout_ms == 0) options_.io_timeout_ms = 2000;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

DnsTcpServer::~DnsTcpServer() { stop(); }

bool DnsTcpServer::start(std::string* error) {
  if (running_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string{"socket: "} + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(options_.endpoint.address);
  sa.sin_port = htons(options_.endpoint.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "bind " + options_.endpoint.to_string() + ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_.address = ntohl(bound.sin_addr.s_addr);
    bound_.port = ntohs(bound.sin_port);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = std::string{"pipe: "} + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(listen_fd_);
  set_nonblocking(wake_fd_);
  stop_.store(false, std::memory_order_relaxed);
  running_ = true;
  thread_ = std::thread([this] { run(); });
  util::log_info("serve: TCP listener on " + bound_.to_string());
  return true;
}

void DnsTcpServer::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  for (auto& c : conns_) {
    if (c->fd >= 0) ::close(c->fd);
  }
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_fd_ = wake_write_fd_ = -1;
  running_ = false;
}

void DnsTcpServer::set_handler(WireHandler handler) {
  const std::lock_guard<std::mutex> lock(handler_mu_);
  pending_handler_ = std::move(handler);
  handler_swap_.store(true, std::memory_order_release);
}

void DnsTcpServer::close_conn(std::size_t i) {
  ::close(conns_[i]->fd);
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
}

/// Pump one connection: flush pending output first, then consume complete
/// frames from the input buffer. Returns false when the connection must be
/// closed (EOF, error, oversize frame, handler-modelled timeout).
bool DnsTcpServer::service_conn(std::size_t i) {
  TcpMetrics& m = tcp_metrics();
  Conn& c = *conns_[i];

  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;  // wait for POLLOUT
    m.errors.inc();
    return false;
  }
  if (!c.out.empty() && c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    // A full reply went out: the peer earned a fresh exchange budget.
    c.deadline = Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  }

  for (;;) {
    std::uint8_t buf[4096];
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      c.in.insert(c.in.end(), buf, buf + n);
      if (c.in.size() > options_.max_message_bytes + 2) {
        m.errors.inc();
        return false;
      }
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    m.errors.inc();
    return false;
  }

  // Consume every complete frame (RFC 1035 §4.2.2 two-byte length prefix);
  // pipelined queries are answered in order.
  while (c.in.size() >= 2) {
    const std::size_t msg_len = (static_cast<std::size_t>(c.in[0]) << 8) | c.in[1];
    if (msg_len > options_.max_message_bytes) {
      m.errors.inc();
      return false;
    }
    if (c.in.size() < 2 + msg_len) break;
    m.queries.inc();
    // Adopt a pending handler swap here, between messages: a reload
    // published before this frame arrived must answer it (the in-flight
    // check at the loop top alone would lag one epoll wakeup behind).
    if (handler_swap_.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(handler_mu_);
      handler_ = std::move(pending_handler_);
      handler_swap_.store(false, std::memory_order_relaxed);
    }
    auto response = handler_(std::span<const std::uint8_t>(c.in.data() + 2, msg_len));
    c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(2 + msg_len));
    if (!response) {
      // The stream analogue of a dropped datagram: hang up so the client's
      // own deadline fires, exactly like a UDP timeout.
      return false;
    }
    if (response->size() > 0xFFFF) {
      m.errors.inc();
      return false;
    }
    c.out.push_back(static_cast<std::uint8_t>(response->size() >> 8));
    c.out.push_back(static_cast<std::uint8_t>(response->size() & 0xFF));
    c.out.insert(c.out.end(), response->begin(), response->end());
    m.responses.inc();
  }

  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    m.errors.inc();
    return false;
  }
  if (!c.out.empty() && c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    c.deadline = Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  }
  return true;
}

void DnsTcpServer::run() {
  TcpMetrics& m = tcp_metrics();
#if defined(__linux__)
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  auto arm = [&](int fd, std::uint32_t events, int op) {
    epoll_event e{};
    e.events = events;
    e.data.fd = fd;
    ::epoll_ctl(ep, op, fd, &e);
  };
  arm(listen_fd_, EPOLLIN, EPOLL_CTL_ADD);
  arm(wake_fd_, EPOLLIN, EPOLL_CTL_ADD);
#else
  std::vector<pollfd> pfds;
#endif

  auto accept_new = [&] {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      if (conns_.size() >= options_.max_connections) {
        m.rejected.inc();
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->deadline = Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
#if defined(__linux__)
      arm(fd, EPOLLIN, EPOLL_CTL_ADD);
#endif
      conns_.push_back(std::move(conn));
      m.accepted.inc();
    }
  };
  auto service_or_close = [&](int fd) {
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i]->fd != fd) continue;
      if (!service_conn(i)) {
        close_conn(i);  // close() drops the fd from the epoll set too
      }
#if defined(__linux__)
      else {
        // Level-triggered: ask for POLLOUT only while output is pending,
        // so an idle writable socket never spins the loop.
        Conn& c = *conns_[i];
        arm(c.fd, c.out_off < c.out.size() ? (EPOLLIN | EPOLLOUT) : EPOLLIN, EPOLL_CTL_MOD);
      }
#endif
      break;
    }
  };
  auto sweep_deadlines = [&] {
    // Slowloris bound: close every connection whose exchange budget lapsed
    // — checked on every wakeup including timeouts.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = conns_.size(); i-- > 0;) {
      if (now >= conns_[i]->deadline) {
        m.timeouts.inc();
        close_conn(i);
      }
    }
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    if (handler_swap_.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(handler_mu_);
      handler_ = std::move(pending_handler_);
      handler_swap_.store(false, std::memory_order_relaxed);
    }
#if defined(__linux__)
    epoll_event events[64];
    const int ready = ::epoll_wait(ep, events, 64, 250);
    if (ready < 0 && errno != EINTR) break;
    sweep_deadlines();
    if (ready <= 0) continue;
    bool accept_ready = false;
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_ready = true;
      } else if (fd != wake_fd_) {
        service_or_close(fd);
      }
    }
    if (accept_ready) accept_new();
#else
    pfds.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    pfds.push_back(pollfd{wake_fd_, POLLIN, 0});
    for (const auto& c : conns_) {
      const short want =
          static_cast<short>(c->out_off < c->out.size() ? (POLLIN | POLLOUT) : POLLIN);
      pfds.push_back(pollfd{c->fd, want, 0});
    }
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 250);
    if (ready < 0 && errno != EINTR) break;
    sweep_deadlines();
    if (ready <= 0) continue;
    for (std::size_t p = 2; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLOUT | POLLERR | POLLHUP)) != 0) {
        service_or_close(pfds[p].fd);
      }
    }
    if ((pfds[0].revents & POLLIN) != 0) accept_new();
#endif
  }

#if defined(__linux__)
  ::close(ep);
#endif
}

}  // namespace rdns::dns
