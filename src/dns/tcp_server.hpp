#pragma once
/// \file tcp_server.hpp
/// Minimal DNS-over-TCP listener (RFC 1035 §4.2.2): the transport of last
/// resort behind TC=1. UDP replies that exceed the negotiated payload size
/// are truncated by the serve loop; clients retry here and read the full
/// answer over a two-byte length-prefixed stream.
///
/// Shape: one event-loop thread (epoll on Linux, poll elsewhere) owning a
/// non-blocking listener plus a bounded set of connection state machines —
/// read the length prefix, read the message, run the handler, write the
/// framed reply, repeat (pipelining works). Per-connection wall-clock
/// deadlines reuse the AdminHttpServer slowloris discipline: a peer that
/// drips one byte per poll window is closed when its exchange budget
/// lapses, and the deadline re-arms only after a fully written response.
/// TCP traffic is the slow path by design — the single thread cannot be
/// amplified into load against the UDP workers.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/udp.hpp"

namespace rdns::dns {

class DnsTcpServer {
 public:
  /// Same contract as UdpServerLoop::WireHandler; nullopt closes the
  /// connection (the stream analogue of a dropped datagram).
  using WireHandler =
      std::function<std::optional<std::vector<std::uint8_t>>(std::span<const std::uint8_t>)>;

  struct Options {
    /// Bind endpoint; port 0 = kernel-assigned (read back via endpoint()).
    net::UdpEndpoint endpoint{/*address=*/0x7F000001u, /*port=*/0};
    /// Per-exchange wall-clock budget (connect-to-reply, then re-armed per
    /// message) — the slowloris bound.
    unsigned io_timeout_ms = 2000;
    /// Hard cap on one framed query (the prefix allows 65535).
    std::size_t max_message_bytes = 65535;
    /// Bound on simultaneously open connections; accepts beyond it are
    /// closed immediately.
    std::size_t max_connections = 64;
  };

  DnsTcpServer(Options options, WireHandler handler);
  ~DnsTcpServer();

  DnsTcpServer(const DnsTcpServer&) = delete;
  DnsTcpServer& operator=(const DnsTcpServer&) = delete;

  /// Bind + listen + launch the event-loop thread. Returns false (and
  /// fills `error`) when the listener cannot be bound.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Signal the loop, join it, close every connection. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The actually bound endpoint (resolves port 0). Valid after start().
  [[nodiscard]] net::UdpEndpoint endpoint() const noexcept { return bound_; }

  /// Replace the handler for subsequent exchanges (hot reload). The swap
  /// happens on the event-loop thread between messages, so in-flight
  /// exchanges finish against the handler they started with.
  void set_handler(WireHandler handler);

 private:
  struct Conn;
  void run();
  void close_conn(std::size_t i);
  bool service_conn(std::size_t i);

  Options options_;
  WireHandler handler_;
  WireHandler pending_handler_;
  std::atomic<bool> handler_swap_{false};
  std::mutex handler_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread thread_;
  net::UdpEndpoint bound_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool running_ = false;
};

}  // namespace rdns::dns
