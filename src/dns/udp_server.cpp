#include "dns/udp_server.hpp"

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <fcntl.h>
#endif

#include <atomic>
#include <chrono>
#include <cstring>

#include "dns/admin.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

/// Serving-path accounting, shared by every worker (relaxed counters, so
/// concurrent increments cost one RMW each — the registry's concurrency
/// model). The latency histogram is timing-gated like every other clocked
/// series.
struct ServeMetrics {
  metrics::Counter& received = metrics::counter("serve.datagrams_received");
  metrics::Counter& sent = metrics::counter("serve.responses_sent");
  metrics::Counter& dropped = metrics::counter("serve.dropped_no_answer");
  metrics::Counter& truncated = metrics::counter("serve.truncated_queries");
  metrics::Counter& send_failures = metrics::counter("serve.send_failures");
  metrics::Histogram& batch_size = metrics::histogram(
      "serve.recv_batch_size", metrics::Histogram::linear_bounds(1, 4, 16));
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

UdpServeStats& UdpServeStats::operator+=(const UdpServeStats& other) noexcept {
  datagrams_received += other.datagrams_received;
  responses_sent += other.responses_sent;
  dropped_no_answer += other.dropped_no_answer;
  truncated_queries += other.truncated_queries;
  send_failures += other.send_failures;
  recv_batches += other.recv_batches;
  return *this;
}

struct UdpServerLoop::Worker {
  net::UdpSocket socket;
  WireHandler handler;
  UdpServeStats stats;
  std::atomic<bool> stop{false};
};

UdpServerLoop::UdpServerLoop(UdpServeOptions options, HandlerFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {
  if (options_.threads == 0) options_.threads = 1;
  if (options_.batch == 0) options_.batch = 1;
}

UdpServerLoop::~UdpServerLoop() { stop(); }

bool UdpServerLoop::start(std::string* error) {
  if (running_) return true;

  // The wake fd interrupts epoll_wait/poll so stop() never has to wait for
  // a datagram: eventfd on Linux, a self-pipe elsewhere.
#if defined(__linux__)
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  wake_write_fd_ = wake_fd_;
  if (wake_fd_ < 0) {
    if (error != nullptr) *error = std::string{"eventfd: "} + std::strerror(errno);
    return false;
  }
#else
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = std::string{"pipe: "} + std::strerror(errno);
    return false;
  }
  ::fcntl(pipe_fds[0], F_SETFL, ::fcntl(pipe_fds[0], F_GETFL, 0) | O_NONBLOCK);
  wake_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
#endif

  // One SO_REUSEPORT socket per worker on the same endpoint: the kernel
  // hashes flows across them. The first bind resolves port 0; the rest
  // bind the resolved port so they actually share it.
  net::UdpEndpoint target = options_.endpoint;
  const bool reuse = options_.threads > 1;
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto socket = net::UdpSocket::bind(target, reuse, error);
    if (!socket) {
      workers_.clear();
      return false;
    }
    if (i == 0) {
      const auto bound = socket->local_endpoint();
      if (!bound) {
        if (error != nullptr) *error = "getsockname failed on the first worker socket";
        workers_.clear();
        return false;
      }
      bound_ = *bound;
      target = bound_;
    }
    auto worker = std::make_unique<Worker>();
    worker->socket = std::move(*socket);
    worker->handler = factory_(i);
    workers_.push_back(std::move(worker));
  }

  running_ = true;
  threads_.reserve(workers_.size());
  for (unsigned i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { run_worker(*workers_[i], i); });
  }
  util::log_info("serve: listening on " + bound_.to_string() + " with " +
                 std::to_string(workers_.size()) + " worker(s)");
  return true;
}

void UdpServerLoop::stop() {
  if (!running_) return;
  for (auto& worker : workers_) worker->stop.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_write_fd_, &one, sizeof(one));
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  totals_ = {};
  for (auto& worker : workers_) totals_ += worker->stats;
  workers_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_fd_) ::close(wake_write_fd_);
  wake_fd_ = wake_write_fd_ = -1;
  running_ = false;
}

void UdpServerLoop::run_worker(Worker& worker, unsigned index) {
  ServeMetrics& sm = serve_metrics();
  ServeIntrospection::WorkerProbe* probe =
      options_.introspection != nullptr && index < options_.introspection->workers()
          ? &options_.introspection->probe(index)
          : nullptr;
  std::vector<net::UdpDatagram> inbound;
  std::vector<net::UdpDatagram> outbound;
  inbound.reserve(options_.batch);
  outbound.reserve(options_.batch);

#if defined(__linux__)
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event socket_event{};
  socket_event.events = EPOLLIN;
  socket_event.data.fd = worker.socket.fd();
  ::epoll_ctl(ep, EPOLL_CTL_ADD, worker.socket.fd(), &socket_event);
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.fd = wake_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd_, &wake_event);
#endif

  while (!worker.stop.load(std::memory_order_relaxed)) {
#if defined(__linux__)
    epoll_event events[2];
    const int ready = ::epoll_wait(ep, events, 2, /*timeout_ms=*/250);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    // The wake fd is never drained: once stop is signalled it stays
    // readable, so every worker's epoll_wait returns immediately.
#else
    if (!worker.socket.wait_readable(/*timeout_ms=*/250)) continue;
#endif
    // Drain the socket: keep pulling batches until the queue is dry, so a
    // burst costs one epoll wakeup, not one per datagram.
    for (;;) {
      inbound.clear();
      const std::size_t got =
          worker.socket.recv_batch(inbound, options_.batch, options_.payload_cap);
      if (got == 0) break;
      ++worker.stats.recv_batches;
      sm.batch_size.observe(static_cast<double>(got));
      worker.stats.datagrams_received += got;
      sm.received.inc(got);
      outbound.clear();
      for (net::UdpDatagram& query : inbound) {
        if (query.truncated) {
          // Over-long datagram: the payload is a cut-off prefix, so any
          // parse would misfire. Drop it; a real resolver's retry covers.
          ++worker.stats.truncated_queries;
          sm.truncated.inc();
          continue;
        }
        // Introspection is off the fast path by construction: one pointer
        // test when disabled; when enabled, clocks only tick for the
        // deterministic 1-in-N sampled subset.
        const bool sampled = probe != nullptr && probe->should_sample(query.payload);
        std::chrono::steady_clock::time_point t0{};
        if (sampled) t0 = std::chrono::steady_clock::now();
        auto response = worker.handler(query.payload);
        if (sampled) {
          const double latency_us = std::chrono::duration<double, std::micro>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count();
          probe->on_sampled(query.payload, response, latency_us, query.peer);
        }
        if (probe != nullptr) probe->note_client(query.peer.address);
        if (!response) {
          ++worker.stats.dropped_no_answer;  // injected timeout: stay silent
          sm.dropped.inc();
          continue;
        }
        net::UdpDatagram reply;
        reply.payload = std::move(*response);
        reply.peer = query.peer;
        outbound.push_back(std::move(reply));
      }
      if (!outbound.empty()) {
        const std::size_t sent = worker.socket.send_batch(outbound.data(), outbound.size());
        worker.stats.responses_sent += sent;
        sm.sent.inc(sent);
        if (sent < outbound.size()) {
          const std::uint64_t lost = outbound.size() - sent;
          worker.stats.send_failures += lost;
          sm.send_failures.inc(lost);
        }
      }
      // Publish once per batch: the aggregator reads a consistent snapshot
      // without ever touching the worker's cache lines mid-datagram.
      if (probe != nullptr) probe->publish(worker.stats);
    }
  }

#if defined(__linux__)
  ::close(ep);
#endif
}

}  // namespace rdns::dns
