#include "dns/udp_server.hpp"

#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#include <fcntl.h>
#endif

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>

#include "dns/admin.hpp"
#include "dns/answer_cache.hpp"
#include "util/flight.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;
namespace flight = rdns::util::flight;

/// Serving-path accounting, shared by every worker (relaxed counters, so
/// concurrent increments cost one RMW each — the registry's concurrency
/// model). The latency histogram is timing-gated like every other clocked
/// series.
struct ServeMetrics {
  metrics::Counter& received = metrics::counter("serve.datagrams_received");
  metrics::Counter& sent = metrics::counter("serve.responses_sent");
  metrics::Counter& dropped_malformed = metrics::counter("serve.dropped_malformed");
  metrics::Counter& dropped_timeout_fault = metrics::counter("serve.dropped_timeout_fault");
  metrics::Counter& dropped_policy = metrics::counter("serve.dropped_policy");
  metrics::Counter& truncated = metrics::counter("serve.truncated_queries");
  metrics::Counter& send_failures = metrics::counter("serve.send_failures");
  metrics::Counter& formerr_sent = metrics::counter("serve.formerr_sent");
  metrics::Counter& notimp_sent = metrics::counter("serve.notimp_sent");
  metrics::Counter& refused_sent = metrics::counter("serve.refused_sent");
  metrics::Counter& rrl_dropped = metrics::counter("serve.rrl_dropped");
  metrics::Counter& rrl_slipped = metrics::counter("serve.rrl_slipped");
  metrics::Counter& rrl_table_flushes = metrics::counter("serve.rrl_table_flushes");
  metrics::Counter& shed_errors = metrics::counter("serve.shed_errors");
  metrics::Counter& shed_answers = metrics::counter("serve.shed_answers");
  metrics::Counter& cache_hits = metrics::counter("serve.cache_hits");
  metrics::Counter& cache_misses = metrics::counter("serve.cache_misses");
  metrics::Counter& edns_queries = metrics::counter("serve.edns_queries");
  metrics::Counter& tc_responses = metrics::counter("serve.tc_responses");
  metrics::Gauge& shed_level = metrics::gauge("serve.shed_level");
  metrics::Histogram& batch_size = metrics::histogram(
      "serve.recv_batch_size", metrics::Histogram::linear_bounds(1, 4, 16));
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

UdpServeStats& UdpServeStats::operator+=(const UdpServeStats& other) noexcept {
  datagrams_received += other.datagrams_received;
  responses_sent += other.responses_sent;
  dropped_malformed += other.dropped_malformed;
  dropped_timeout_fault += other.dropped_timeout_fault;
  dropped_policy += other.dropped_policy;
  truncated_queries += other.truncated_queries;
  send_failures += other.send_failures;
  recv_batches += other.recv_batches;
  formerr_sent += other.formerr_sent;
  notimp_sent += other.notimp_sent;
  refused_sent += other.refused_sent;
  rrl_dropped += other.rrl_dropped;
  rrl_slipped += other.rrl_slipped;
  shed_errors += other.shed_errors;
  shed_answers += other.shed_answers;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  edns_queries += other.edns_queries;
  tc_responses += other.tc_responses;
  return *this;
}

struct UdpServerLoop::Worker {
  explicit Worker(const ServeHardeningOptions& hardening) : guard(hardening) {}

  net::UdpSocket socket;
  WireHandler handler;
  UdpServeStats stats;
  ServeGuard guard;
  std::atomic<bool> stop{false};
  std::atomic<bool> drain{false};
};

UdpServerLoop::UdpServerLoop(UdpServeOptions options, HandlerFactory factory)
    : options_(std::move(options)), factory_(std::move(factory)) {
  if (options_.threads == 0) options_.threads = 1;
  if (options_.batch == 0) options_.batch = 1;
}

UdpServerLoop::~UdpServerLoop() { stop(); }

bool UdpServerLoop::start(std::string* error) {
  if (running_) return true;

  // The wake fd interrupts epoll_wait/poll so stop() never has to wait for
  // a datagram: eventfd on Linux, a self-pipe elsewhere.
#if defined(__linux__)
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  wake_write_fd_ = wake_fd_;
  if (wake_fd_ < 0) {
    if (error != nullptr) *error = std::string{"eventfd: "} + std::strerror(errno);
    return false;
  }
#else
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = std::string{"pipe: "} + std::strerror(errno);
    return false;
  }
  ::fcntl(pipe_fds[0], F_SETFL, ::fcntl(pipe_fds[0], F_GETFL, 0) | O_NONBLOCK);
  wake_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
#endif

  // One SO_REUSEPORT socket per worker on the same endpoint: the kernel
  // hashes flows across them. The first bind resolves port 0; the rest
  // bind the resolved port so they actually share it.
  net::UdpEndpoint target = options_.endpoint;
  const bool reuse = options_.threads > 1;
  for (unsigned i = 0; i < options_.threads; ++i) {
    auto socket = net::UdpSocket::bind(target, reuse, error);
    if (!socket) {
      workers_.clear();
      return false;
    }
    if (i == 0) {
      const auto bound = socket->local_endpoint();
      if (!bound) {
        if (error != nullptr) *error = "getsockname failed on the first worker socket";
        workers_.clear();
        return false;
      }
      bound_ = *bound;
      target = bound_;
    }
    auto worker = std::make_unique<Worker>(options_.hardening);
    worker->socket = std::move(*socket);
    worker->handler = factory_(i);
    workers_.push_back(std::move(worker));
  }

  running_ = true;
  threads_.reserve(workers_.size());
  for (unsigned i = 0; i < workers_.size(); ++i) {
    threads_.emplace_back([this, i] { run_worker(*workers_[i], i); });
  }
  util::log_info("serve: listening on " + bound_.to_string() + " with " +
                 std::to_string(workers_.size()) + " worker(s)");
  return true;
}

void UdpServerLoop::request_drain() {
  if (!running_) return;
  for (auto& worker : workers_) worker->drain.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_write_fd_, &one, sizeof(one));
  }
  // Join here rather than in stop(): stop() raises the hard-stop flag,
  // which workers honor between batches — if it raced the drain, a worker
  // could exit with backlog still queued. Each worker's drain loop is
  // bounded by drain_deadline_ms, so this join is too.
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void UdpServerLoop::stop() {
  if (!running_) return;
  for (auto& worker : workers_) worker->stop.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_write_fd_, &one, sizeof(one));
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  totals_ = {};
  for (auto& worker : workers_) totals_ += worker->stats;
  workers_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_fd_) ::close(wake_write_fd_);
  wake_fd_ = wake_write_fd_ = -1;
  running_ = false;
}

void UdpServerLoop::run_worker(Worker& worker, unsigned index) {
  using Clock = std::chrono::steady_clock;
  ServeMetrics& sm = serve_metrics();
  ServeIntrospection::WorkerProbe* probe =
      options_.introspection != nullptr && index < options_.introspection->workers()
          ? &options_.introspection->probe(index)
          : nullptr;
  ServeGuard& guard = worker.guard;
  const bool guard_on = guard.options().guard;
  const bool rrl_on = guard_on && guard.rrl_armed();
  const bool restrict_ptr = guard.options().restrict_ptr;
  const Clock::time_point epoch = Clock::now();
  unsigned last_shed_level = 0;
  std::uint64_t last_table_flushes = 0;
  std::vector<net::UdpDatagram> inbound;
  std::vector<net::UdpDatagram> outbound;
  inbound.reserve(options_.batch);
  outbound.reserve(options_.batch);

  // Answer-cache fast path: with a cache armed, every reply of a batch is
  // assembled into one reused slab and flushed through a single
  // sendmmsg over borrowed iovecs — no per-reply vector, no allocation
  // after warm-up. Replies are addressed by (offset, len) so slab growth
  // never invalidates them. When no cache is configured the legacy
  // vector path below runs unchanged.
  const bool cache_armed = static_cast<bool>(options_.answer_cache);
  std::shared_ptr<const AnswerCache> cache;
  std::uint64_t cache_epoch_seen = 0;
  struct SlabReply {
    std::size_t offset;
    std::size_t len;
    net::UdpEndpoint peer;
  };
  std::vector<std::uint8_t> slab;
  std::vector<SlabReply> slab_replies;
  std::vector<net::UdpSendView> views;
  if (cache_armed) {
    cache = options_.answer_cache();
    if (options_.answer_cache_epoch != nullptr) {
      cache_epoch_seen = options_.answer_cache_epoch->load(std::memory_order_acquire);
    }
    slab.reserve(options_.batch * (options_.payload_cap + 16));
    slab_replies.reserve(options_.batch);
    views.reserve(options_.batch);
  }
  // Route a fully built reply to the right outbound plumbing.
  auto emit = [&](std::vector<std::uint8_t>&& payload, const net::UdpEndpoint& peer) {
    if (cache_armed) {
      const std::size_t off = slab.size();
      slab.insert(slab.end(), payload.begin(), payload.end());
      slab_replies.push_back(SlabReply{off, payload.size(), peer});
    } else {
      net::UdpDatagram reply;
      reply.payload = std::move(payload);
      reply.peer = peer;
      outbound.push_back(std::move(reply));
    }
  };
  // EDNS0/TC post-step for answers in the slab at [off, off+len): append
  // our OPT for EDNS clients, then truncate to TC=1 when the reply exceeds
  // the client's advertised size (non-EDNS: the classic 512). The caller
  // guarantees 11 spare slab bytes past `len`. Returns the final length.
  auto postprocess = [&](std::size_t off, std::size_t len, const AnswerCache::Probe& pr) {
    std::uint8_t* reply = slab.data() + off;
    const std::size_t limit =
        pr.edns ? std::clamp<std::size_t>(pr.edns_udp_size, 512,
                                          std::max<std::size_t>(512, options_.payload_cap))
                : 512;
    if (pr.edns) len = AnswerCache::append_opt(reply, len, options_.edns_udp_size);
    if (len > limit) {
      const std::size_t qe = pr.question_end != 0
                                 ? pr.question_end
                                 : AnswerCache::scan_question_end({reply, len});
      if (qe != 0) {
        len = AnswerCache::truncate_to_tc(reply, qe, pr.edns ? options_.edns_udp_size : 0);
        ++worker.stats.tc_responses;
        sm.tc_responses.inc();
      }
    }
    return len;
  };

#if defined(__linux__)
  const int ep = ::epoll_create1(EPOLL_CLOEXEC);
  if (ep < 0) return;
  epoll_event socket_event{};
  socket_event.events = EPOLLIN;
  socket_event.data.fd = worker.socket.fd();
  ::epoll_ctl(ep, EPOLL_CTL_ADD, worker.socket.fd(), &socket_event);
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.fd = wake_fd_;
  ::epoll_ctl(ep, EPOLL_CTL_ADD, wake_fd_, &wake_event);
#endif

  // Drain state: once `worker.drain` is observed, the worker stops waiting
  // for new input, consumes whatever the kernel has already queued (bounded
  // by the deadline — a flood would keep the queue fed forever), flushes
  // its final sends/publish, and exits.
  bool draining = false;
  Clock::time_point drain_deadline{};
  bool exiting = false;

  while (!worker.stop.load(std::memory_order_relaxed) && !exiting) {
    if (!draining && worker.drain.load(std::memory_order_relaxed)) {
      draining = true;
      drain_deadline = Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
    }
    if (!draining) {
#if defined(__linux__)
      epoll_event events[2];
      const int ready = ::epoll_wait(ep, events, 2, /*timeout_ms=*/250);
      if (ready < 0 && errno != EINTR) break;
      if (ready <= 0) continue;
      // The wake fd is never drained: once stop/drain is signalled it
      // stays readable, so every worker's epoll_wait returns immediately.
#else
      if (!worker.socket.wait_readable(/*timeout_ms=*/250)) continue;
#endif
    }
    // Drain the socket: keep pulling batches until the queue is dry, so a
    // burst costs one epoll wakeup, not one per datagram.
    for (;;) {
      inbound.clear();
      const std::size_t got =
          worker.socket.recv_batch(inbound, options_.batch, options_.payload_cap);
      if (got == 0) {
        if (draining) exiting = true;  // backlog consumed: done
        break;
      }
      ++worker.stats.recv_batches;
      sm.batch_size.observe(static_cast<double>(got));
      worker.stats.datagrams_received += got;
      sm.received.inc(got);

      // Hot-reload invalidation: the switchboard bumps the epoch after
      // publishing a new generation; one acquire load per batch keeps the
      // worker's cache image in step with its zone view.
      if (cache_armed && options_.answer_cache_epoch != nullptr) {
        const std::uint64_t e = options_.answer_cache_epoch->load(std::memory_order_acquire);
        if (e != cache_epoch_seen) {
          cache = options_.answer_cache();
          cache_epoch_seen = e;
        }
      }

      // Wall-clock second for the RRL buckets, computed once per batch
      // (BIND-style one-second windows don't need finer resolution).
      std::int64_t now_s = 0;
      if (rrl_on) {
        now_s = std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - epoch).count();
      }
      // Backlog monitor: a full batch means the queue is outrunning us.
      unsigned shed = 0;
      if (guard_on) {
        shed = guard.on_batch(got == options_.batch);
        if (shed != last_shed_level) {
          sm.shed_level.set(static_cast<std::int64_t>(shed));
          flight::record(flight::Kind::ShedLevel, shed, index);
          last_shed_level = shed;
        }
      }

      outbound.clear();
      for (net::UdpDatagram& query : inbound) {
        if (query.truncated) {
          // Over-long datagram: the payload is a cut-off prefix, so any
          // parse would misfire. Drop it; a real resolver's retry covers.
          ++worker.stats.truncated_queries;
          sm.truncated.inc();
          continue;
        }
        if (probe != nullptr) probe->note_client(query.peer.address);
        Classified verdict{WireVerdict::Answer, 0, false};
        if (guard_on) {
          verdict = classify_query(query.payload, restrict_ptr);
          if (verdict.verdict == WireVerdict::SilentDrop) {
            ++worker.stats.dropped_malformed;
            sm.dropped_malformed.inc();
            continue;
          }
          if (verdict.verdict != WireVerdict::Answer) {
            // Error response (FORMERR/NOTIMP/REFUSED) — the first work the
            // shed ladder dumps: at L1+ the sender gets silence instead.
            if (shed >= 1) {
              ++worker.stats.shed_errors;
              ++worker.stats.dropped_policy;
              sm.shed_errors.inc();
              sm.dropped_policy.inc();
              continue;
            }
            Rcode rcode = Rcode::Refused;
            if (verdict.verdict == WireVerdict::FormErr) {
              rcode = Rcode::FormErr;
              ++worker.stats.formerr_sent;
              sm.formerr_sent.inc();
            } else if (verdict.verdict == WireVerdict::NotImp) {
              rcode = Rcode::NotImp;
              ++worker.stats.notimp_sent;
              sm.notimp_sent.inc();
            } else {
              ++worker.stats.refused_sent;
              sm.refused_sent.inc();
            }
            emit(make_guard_response(query.payload, verdict.question_end, rcode, /*tc=*/false),
                 query.peer);
            continue;
          }
          // In-policy query: RRL then the L3 answer shed. CH TXT chaos
          // queries bypass both so introspection survives a flood.
          if (!verdict.chaos) {
            if (rrl_on) {
              const auto decision = guard.rrl_check(query.peer.address, now_s);
              // At L2+ the slip escape hatch closes too: over-limit
              // traffic gets pure silence.
              if (decision == ServeGuard::RrlDecision::Drop ||
                  (decision == ServeGuard::RrlDecision::Slip && shed >= 2)) {
                ++worker.stats.rrl_dropped;
                ++worker.stats.dropped_policy;
                sm.rrl_dropped.inc();
                sm.dropped_policy.inc();
                flight::record(flight::Kind::RrlDrop, query.peer.address, index);
                continue;
              }
              if (decision == ServeGuard::RrlDecision::Slip) {
                ++worker.stats.rrl_slipped;
                sm.rrl_slipped.inc();
                flight::record(flight::Kind::RrlSlip, query.peer.address, index);
                emit(make_guard_response(query.payload, verdict.question_end, Rcode::NoError,
                                         /*tc=*/true),
                     query.peer);
                continue;
              }
              if (guard.table_flushes() != last_table_flushes) {
                sm.rrl_table_flushes.inc(guard.table_flushes() - last_table_flushes);
                last_table_flushes = guard.table_flushes();
              }
            }
            if (shed >= 3 && guard.shed_answer()) {
              ++worker.stats.shed_answers;
              ++worker.stats.dropped_policy;
              sm.shed_answers.inc();
              sm.dropped_policy.inc();
              continue;
            }
          }
        }
        // Introspection is off the fast path by construction: one pointer
        // test when disabled; when enabled, clocks only tick for the
        // deterministic 1-in-N sampled subset.
        const bool sampled = probe != nullptr && probe->should_sample(query.payload);
        std::chrono::steady_clock::time_point t0{};
        if (sampled) t0 = std::chrono::steady_clock::now();

        // Answer-cache probe: canonical IN PTR questions for pre-encoded
        // addresses skip the handler entirely — header+question memcpy,
        // four-byte patch, cached tail. Everything else (chaos, forward
        // names, unannounced space, non-canonical spellings) is a miss and
        // takes the handler exactly as before.
        AnswerCache::Probe pr;
        if (cache_armed && cache != nullptr) {
          pr = cache->probe(query.payload);
          if (pr.edns) {
            ++worker.stats.edns_queries;
            sm.edns_queries.inc();
          }
          if (pr.hit) {
            ++worker.stats.cache_hits;
            sm.cache_hits.inc();
            const std::size_t off = slab.size();
            slab.resize(off + AnswerCache::reply_size(pr) + 11);
            std::size_t len = AnswerCache::assemble(pr, query.payload, slab.data() + off);
            len = postprocess(off, len, pr);
            slab.resize(off + len);
            slab_replies.push_back(SlabReply{off, len, query.peer});
            if (sampled) {
              const double latency_us = std::chrono::duration<double, std::micro>(
                                            std::chrono::steady_clock::now() - t0)
                                            .count();
              std::optional<std::vector<std::uint8_t>> copy{
                  std::vector<std::uint8_t>(slab.begin() + static_cast<std::ptrdiff_t>(off),
                                            slab.end())};
              probe->on_sampled(query.payload, copy, latency_us, query.peer);
            }
            continue;
          }
          ++worker.stats.cache_misses;
          sm.cache_misses.inc();
        }

        auto response = worker.handler(query.payload);
        if (sampled) {
          const double latency_us = std::chrono::duration<double, std::micro>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count();
          probe->on_sampled(query.payload, response, latency_us, query.peer);
        }
        if (!response) {
          // Injected timeout (or, unguarded, undecodable input): silence.
          ++worker.stats.dropped_timeout_fault;
          sm.dropped_timeout_fault.inc();
          continue;
        }
        if (cache_armed) {
          // Handler replies share the slab so EDNS negotiation and the TC
          // size limit apply uniformly; chaos replies are exempt (the
          // introspection plane's TXT payloads are the point).
          const std::size_t off = slab.size();
          slab.resize(off + response->size() + 11);
          std::memcpy(slab.data() + off, response->data(), response->size());
          std::size_t len = response->size();
          if (!pr.chaos && !verdict.chaos) len = postprocess(off, len, pr);
          slab.resize(off + len);
          slab_replies.push_back(SlabReply{off, len, query.peer});
          continue;
        }
        net::UdpDatagram reply;
        reply.payload = std::move(*response);
        reply.peer = query.peer;
        outbound.push_back(std::move(reply));
      }
      if (!slab_replies.empty()) {
        // Slab flush: iovecs borrow straight from the slab — one sendmmsg,
        // zero owning copies.
        views.clear();
        for (const SlabReply& r : slab_replies) {
          views.push_back(net::UdpSendView{
              std::span<const std::uint8_t>(slab.data() + r.offset, r.len), r.peer});
        }
        const std::size_t sent = worker.socket.send_batch(views.data(), views.size());
        worker.stats.responses_sent += sent;
        sm.sent.inc(sent);
        if (sent < views.size()) {
          const std::uint64_t lost = views.size() - sent;
          worker.stats.send_failures += lost;
          sm.send_failures.inc(lost);
        }
        slab.clear();
        slab_replies.clear();
      }
      if (!outbound.empty()) {
        const std::size_t sent = worker.socket.send_batch(outbound.data(), outbound.size());
        worker.stats.responses_sent += sent;
        sm.sent.inc(sent);
        if (sent < outbound.size()) {
          const std::uint64_t lost = outbound.size() - sent;
          worker.stats.send_failures += lost;
          sm.send_failures.inc(lost);
        }
      }
      // Publish once per batch: the aggregator reads a consistent snapshot
      // without ever touching the worker's cache lines mid-datagram.
      if (probe != nullptr) probe->publish(worker.stats);

      // A sustained flood keeps this inner loop fed forever, so stop and
      // drain must be observable between batches, not just between epoll
      // wakeups.
      if (worker.stop.load(std::memory_order_relaxed)) {
        exiting = true;
        break;
      }
      if (!draining && worker.drain.load(std::memory_order_relaxed)) {
        draining = true;
        drain_deadline = Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
      }
      if (draining && Clock::now() >= drain_deadline) {
        exiting = true;
        break;
      }
    }
  }

  // Final publish so the introspection plane sees the drained totals even
  // when the last batch raced the aggregator.
  if (probe != nullptr) probe->publish(worker.stats);

#if defined(__linux__)
  ::close(ep);
#endif
}

}  // namespace rdns::dns
