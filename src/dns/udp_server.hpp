#pragma once
/// \file udp_server.hpp
/// Real UDP serving loop for the authoritative DNS surface: N worker
/// threads, each with its own SO_REUSEPORT socket on the shared port and an
/// epoll-driven drain loop (recvmmsg in, sendmmsg out). The kernel hashes
/// inbound flows across the worker sockets, so the serving path scales
/// without a user-space dispatcher — the same sharding move the parallel
/// sweep makes with per-/24 resolvers, applied at the socket layer.
///
/// The loop is handler-agnostic: each worker owns one WireHandler (built by
/// a factory at start), which maps query bytes to response bytes. The
/// rdns_tool `serve` command plugs in a per-worker sim::FrozenDnsView, so
/// the answers over real UDP are byte-identical to the in-process
/// transport; a handler returning nullopt models an injected timeout and
/// the datagram is simply dropped — a genuinely lossy medium for the
/// Fig. 6 error taxonomy.
///
/// With `UdpServeOptions.hardening.guard` armed, every datagram passes the
/// serve-guard front-end (dns/serve_guard.hpp) before the handler: garbage
/// is dropped or answered with FORMERR/NOTIMP/REFUSED, per-/24 RRL gates
/// answers with slip-to-TC, and a backlog-driven shed ladder dumps the
/// lowest-value work first under flood. `request_drain()` implements the
/// SIGTERM half of lifecycle robustness: workers stop waiting for new
/// input, drain what the kernel already accepted (bounded by
/// `drain_deadline_ms`), flush their final sendmmsg batches, and exit.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "dns/serve_guard.hpp"
#include "net/udp.hpp"

namespace rdns::dns {

class AnswerCache;         // dns/answer_cache.hpp
class ServeIntrospection;  // dns/admin.hpp

/// Per-worker serving statistics; all fields are sums, so worker
/// accumulators fold in any order (the ServerStats merge argument).
///
/// Every received datagram lands in exactly one of: responses_sent,
/// send_failures, truncated_queries, dropped_malformed,
/// dropped_timeout_fault, or dropped_policy — `datagrams_received` always
/// equals their sum (the schema checker enforces this on serve.stop).
/// The remaining counters are overlays: formerr/notimp/refused_sent and
/// rrl_slipped classify enqueued responses, rrl_dropped/shed_* classify
/// policy drops, and cache_hits/cache_misses/edns_queries/tc_responses
/// classify how answers were produced on the cache path.
struct UdpServeStats {
  std::uint64_t datagrams_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t dropped_malformed = 0;      ///< undecodable garbage, silent
  std::uint64_t dropped_timeout_fault = 0;  ///< handler returned nullopt (timeout)
  std::uint64_t dropped_policy = 0;         ///< RRL drop or shed decision
  std::uint64_t truncated_queries = 0;      ///< inbound datagram over the cap
  std::uint64_t send_failures = 0;          ///< kernel back-pressure, dropped
  std::uint64_t recv_batches = 0;           ///< recvmmsg calls that returned data
  std::uint64_t formerr_sent = 0;           ///< FORMERR error responses enqueued
  std::uint64_t notimp_sent = 0;            ///< NOTIMP error responses enqueued
  std::uint64_t refused_sent = 0;           ///< REFUSED error responses enqueued
  std::uint64_t rrl_dropped = 0;            ///< over-limit, silently dropped
  std::uint64_t rrl_slipped = 0;            ///< over-limit, answered with TC=1
  std::uint64_t shed_errors = 0;            ///< error responses shed at L1+
  std::uint64_t shed_answers = 0;           ///< answers shed at L3
  std::uint64_t cache_hits = 0;             ///< replies assembled from the answer cache
  std::uint64_t cache_misses = 0;           ///< cache armed but the handler answered
  std::uint64_t edns_queries = 0;           ///< queries carrying a well-formed OPT RR
  std::uint64_t tc_responses = 0;           ///< replies truncated to TC=1 (size limit)
  /// Number of stat words a seqlock slot needs (dns/admin.hpp).
  static constexpr std::size_t kFieldCount = 19;

  /// Silent drops across all three causes (the pre-split
  /// `dropped_no_answer` aggregate, kept for summaries).
  [[nodiscard]] std::uint64_t dropped_total() const noexcept {
    return dropped_malformed + dropped_timeout_fault + dropped_policy;
  }

  UdpServeStats& operator+=(const UdpServeStats& other) noexcept;
};

struct UdpServeOptions {
  /// Bind endpoint; port 0 = kernel-assigned (read back via endpoint()).
  net::UdpEndpoint endpoint{/*address=*/0x7F000001u, /*port=*/0};
  unsigned threads = 1;                 ///< worker sockets/threads (min 1)
  std::size_t batch = 32;               ///< max datagrams per recvmmsg
  std::size_t payload_cap = net::UdpSocket::kDefaultPayloadCap;
  /// Abuse defense (wire classification, RRL, shed ladder); defaults off.
  ServeHardeningOptions hardening;
  /// Upper bound on how long a draining worker keeps consuming the
  /// kernel's already-accepted backlog before exiting (a flood would
  /// otherwise keep the drain loop fed forever).
  unsigned drain_deadline_ms = 2000;
  /// Optional live introspection plane (dns/admin.hpp): when set (and
  /// sized for >= `threads` workers), each worker feeds its probe — sampled
  /// latency, heavy-hitter sketches, seqlock stat slots. When null the
  /// serving loop pays exactly one pointer test per query.
  ServeIntrospection* introspection = nullptr;
  /// Pre-serialized answer cache (dns/answer_cache.hpp). When set, each
  /// worker fetches the current cache at start and assembles cache hits
  /// zero-copy in a per-batch reply slab flushed through one sendmmsg;
  /// misses fall through to the handler. Null (default) keeps the legacy
  /// per-reply-vector path byte-for-byte unchanged.
  std::function<std::shared_ptr<const AnswerCache>()> answer_cache;
  /// Generation epoch watched between batches: when it moves (hot reload)
  /// the worker re-fetches the cache through `answer_cache` — whole-cache
  /// invalidation for the price of one relaxed load per batch.
  const std::atomic<std::uint64_t>* answer_cache_epoch = nullptr;
  /// EDNS0 (RFC 6891): payload size advertised in the OPT we attach to
  /// replies for EDNS queries on the cache path. Replies over the
  /// *client's* advertised size (clamped to [512, payload_cap]) — or over
  /// 512 for non-EDNS queries — are truncated to TC=1.
  std::uint16_t edns_udp_size = 1232;
};

class UdpServerLoop {
 public:
  /// Maps one query datagram to a response; nullopt = drop (timeout).
  using WireHandler =
      std::function<std::optional<std::vector<std::uint8_t>>(std::span<const std::uint8_t>)>;
  /// Called once per worker at start(); each worker owns its handler, so
  /// handlers may carry per-worker state (e.g. read-only world views with
  /// private statistics) without locking.
  using HandlerFactory = std::function<WireHandler(unsigned worker_index)>;

  UdpServerLoop(UdpServeOptions options, HandlerFactory factory);
  ~UdpServerLoop();

  UdpServerLoop(const UdpServerLoop&) = delete;
  UdpServerLoop& operator=(const UdpServerLoop&) = delete;

  /// Bind the worker sockets and launch the worker threads. Returns false
  /// (and fills `error`) when a socket cannot be bound.
  [[nodiscard]] bool start(std::string* error = nullptr);

  /// Graceful drain: workers stop waiting for new datagrams, consume the
  /// backlog the kernel has already accepted (bounded by
  /// `drain_deadline_ms`), flush their outbound batches and final probe
  /// publish, then exit. Blocks until every worker has drained (so the
  /// wait itself is bounded by the deadline); follow with stop() to fold
  /// stats and release sockets. Idempotent; no-op when not running.
  void request_drain();

  /// Signal the workers, join them, and fold per-worker stats into
  /// stats(). Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The actually bound endpoint (resolves port 0). Valid after start().
  [[nodiscard]] net::UdpEndpoint endpoint() const noexcept { return bound_; }

  [[nodiscard]] unsigned threads() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Merged per-worker totals. Stable only after stop(); while the loop
  /// runs, watch the `serve.*` counters in util::metrics instead.
  [[nodiscard]] const UdpServeStats& stats() const noexcept { return totals_; }

 private:
  struct Worker;
  void run_worker(Worker& worker, unsigned index);

  UdpServeOptions options_;
  HandlerFactory factory_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  net::UdpEndpoint bound_;
  int wake_fd_ = -1;  ///< eventfd (Linux) or pipe read-end wakes the epoll
  int wake_write_fd_ = -1;
  bool running_ = false;
  UdpServeStats totals_;
};

}  // namespace rdns::dns
