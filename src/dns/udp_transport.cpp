#include "dns/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

struct TransportMetrics {
  metrics::Counter& exchanges = metrics::counter("dns.transport.udp.exchanges");
  metrics::Counter& timeouts = metrics::counter("dns.transport.udp.timeouts");
  metrics::Counter& send_failures = metrics::counter("dns.transport.udp.send_failures");
  metrics::Counter& stale_drops = metrics::counter("dns.transport.udp.stale_drops");
  metrics::Histogram& rtt_us = metrics::histogram(
      "dns.transport.udp.rtt_us", metrics::Histogram::exponential_bounds(8, 2, 14));
  metrics::Counter& tcp_exchanges = metrics::counter("dns.transport.tcp.exchanges");
  metrics::Counter& tcp_timeouts = metrics::counter("dns.transport.tcp.timeouts");
  metrics::Counter& tcp_errors = metrics::counter("dns.transport.tcp.errors");
};

TransportMetrics& transport_metrics() {
  static TransportMetrics m;
  return m;
}

}  // namespace

UdpTransport::UdpTransport(Options options) : options_(options) {
  auto socket = net::UdpSocket::open(&error_);
  if (!socket) return;
  socket_ = std::move(*socket);
  // connect() pins the peer: plain send()/recv() after this, and the
  // kernel filters inbound datagrams to the server's address.
  if (!socket_.connect(options_.server, &error_)) return;
  ok_ = true;
}

std::optional<std::vector<std::uint8_t>> UdpTransport::exchange(
    std::span<const std::uint8_t> query_wire, util::SimTime /*now*/) {
  TransportMetrics& tm = transport_metrics();
  tm.exchanges.inc();
  if (!ok_) {
    tm.timeouts.inc();
    return std::nullopt;
  }
  if (!socket_.send(query_wire)) {
    tm.send_failures.inc();
    return std::nullopt;
  }
  const bool timing = metrics::collect_timing();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(options_.timeout_ms);
  // Accept only the reply whose transaction id matches this query, draining
  // anything else until the deadline. A reply that arrives after its
  // attempt timed out would otherwise sit in the socket buffer and be
  // handed to the *next* exchange — which then mismatches too, leaving the
  // socket permanently one reply behind (every lookup a timeout).
  const std::uint16_t query_id =
      query_wire.size() >= 2
          ? static_cast<std::uint16_t>((query_wire[0] << 8) | query_wire[1])
          : 0;
  std::vector<std::uint8_t> buffer;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0 ||
        !socket_.wait_readable(static_cast<int>(remaining.count()))) {
      tm.timeouts.inc();
      return std::nullopt;
    }
    buffer.assign(net::UdpSocket::kDefaultPayloadCap, 0);
    const auto got = socket_.recv(buffer);
    if (!got) continue;  // spurious readiness
    buffer.resize(std::min(*got, buffer.size()));
    if (buffer.size() >= 2 &&
        static_cast<std::uint16_t>((buffer[0] << 8) | buffer[1]) == query_id) {
      break;
    }
    tm.stale_drops.inc();
  }
  if (timing) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    tm.rtt_us.observe(std::chrono::duration<double, std::micro>(dt).count());
  }
  return buffer;
}

std::optional<std::vector<std::uint8_t>> UdpTransport::exchange_stream(
    std::span<const std::uint8_t> query_wire, util::SimTime /*now*/) {
  if (options_.tcp_port == 0 || query_wire.size() > 0xFFFF) return std::nullopt;
  TransportMetrics& tm = transport_metrics();
  tm.tcp_exchanges.inc();

  // Fresh connection per call: the fallback fires once per TC answer, so
  // connection reuse buys nothing and per-call teardown keeps the client
  // stateless (and the server's slowloris accounting simple).
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    tm.tcp_errors.inc();
    return std::nullopt;
  }
  struct Closer {
    int fd;
    ~Closer() { ::close(fd); }
  } closer{fd};
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + std::chrono::milliseconds(options_.timeout_ms);
  auto ms_left = [&]() -> int {
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
    return left > 0 ? static_cast<int>(left) : 0;
  };

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(options_.server.address);
  sa.sin_port = htons(options_.tcp_port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno != EINPROGRESS) {
      tm.tcp_errors.inc();
      return std::nullopt;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, ms_left()) <= 0) {
      tm.tcp_timeouts.inc();
      return std::nullopt;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      tm.tcp_errors.inc();
      return std::nullopt;
    }
  }

  // Framed write: 2-byte length prefix + query, poll-guarded to deadline.
  std::vector<std::uint8_t> framed(2 + query_wire.size());
  framed[0] = static_cast<std::uint8_t>(query_wire.size() >> 8);
  framed[1] = static_cast<std::uint8_t>(query_wire.size() & 0xFF);
  std::memcpy(framed.data() + 2, query_wire.data(), query_wire.size());
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int left = ms_left();
      pollfd pfd{fd, POLLOUT, 0};
      if (left <= 0 || ::poll(&pfd, 1, left) <= 0) {
        tm.tcp_timeouts.inc();
        return std::nullopt;
      }
      continue;
    }
    tm.tcp_errors.inc();
    return std::nullopt;
  }

  // Framed read: length prefix, then exactly that many reply bytes.
  std::vector<std::uint8_t> reply;
  std::size_t want = 2;  // prefix first
  bool have_len = false;
  while (reply.size() < want) {
    std::uint8_t buf[4096];
    const std::size_t chunk = std::min(sizeof buf, want - reply.size());
    const ssize_t n = ::recv(fd, buf, chunk, 0);
    if (n > 0) {
      reply.insert(reply.end(), buf, buf + n);
      if (!have_len && reply.size() >= 2) {
        want = 2 + ((static_cast<std::size_t>(reply[0]) << 8) | reply[1]);
        have_len = true;
      }
      continue;
    }
    if (n == 0) {
      tm.tcp_errors.inc();
      return std::nullopt;  // peer closed mid-frame
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      tm.tcp_errors.inc();
      return std::nullopt;
    }
    const int left = ms_left();
    pollfd pfd{fd, POLLIN, 0};
    if (left <= 0 || ::poll(&pfd, 1, left) <= 0) {
      tm.tcp_timeouts.inc();
      return std::nullopt;
    }
  }
  reply.erase(reply.begin(), reply.begin() + 2);
  return reply;
}

std::optional<net::UdpEndpoint> UdpTransport::parse_uri(const std::string& uri) {
  constexpr const char* kScheme = "udp://";
  std::string rest = uri;
  if (rest.rfind(kScheme, 0) == 0) rest = rest.substr(6);
  return net::UdpEndpoint::parse(rest);
}

}  // namespace rdns::dns
