#include "dns/udp_transport.hpp"

#include <chrono>

#include "util/metrics.hpp"

namespace rdns::dns {

namespace {

namespace metrics = rdns::util::metrics;

struct TransportMetrics {
  metrics::Counter& exchanges = metrics::counter("dns.transport.udp.exchanges");
  metrics::Counter& timeouts = metrics::counter("dns.transport.udp.timeouts");
  metrics::Counter& send_failures = metrics::counter("dns.transport.udp.send_failures");
  metrics::Counter& stale_drops = metrics::counter("dns.transport.udp.stale_drops");
  metrics::Histogram& rtt_us = metrics::histogram(
      "dns.transport.udp.rtt_us", metrics::Histogram::exponential_bounds(8, 2, 14));
};

TransportMetrics& transport_metrics() {
  static TransportMetrics m;
  return m;
}

}  // namespace

UdpTransport::UdpTransport(Options options) : options_(options) {
  auto socket = net::UdpSocket::open(&error_);
  if (!socket) return;
  socket_ = std::move(*socket);
  // connect() pins the peer: plain send()/recv() after this, and the
  // kernel filters inbound datagrams to the server's address.
  if (!socket_.connect(options_.server, &error_)) return;
  ok_ = true;
}

std::optional<std::vector<std::uint8_t>> UdpTransport::exchange(
    std::span<const std::uint8_t> query_wire, util::SimTime /*now*/) {
  TransportMetrics& tm = transport_metrics();
  tm.exchanges.inc();
  if (!ok_) {
    tm.timeouts.inc();
    return std::nullopt;
  }
  if (!socket_.send(query_wire)) {
    tm.send_failures.inc();
    return std::nullopt;
  }
  const bool timing = metrics::collect_timing();
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline = t0 + std::chrono::milliseconds(options_.timeout_ms);
  // Accept only the reply whose transaction id matches this query, draining
  // anything else until the deadline. A reply that arrives after its
  // attempt timed out would otherwise sit in the socket buffer and be
  // handed to the *next* exchange — which then mismatches too, leaving the
  // socket permanently one reply behind (every lookup a timeout).
  const std::uint16_t query_id =
      query_wire.size() >= 2
          ? static_cast<std::uint16_t>((query_wire[0] << 8) | query_wire[1])
          : 0;
  std::vector<std::uint8_t> buffer;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0 ||
        !socket_.wait_readable(static_cast<int>(remaining.count()))) {
      tm.timeouts.inc();
      return std::nullopt;
    }
    buffer.assign(net::UdpSocket::kDefaultPayloadCap, 0);
    const auto got = socket_.recv(buffer);
    if (!got) continue;  // spurious readiness
    buffer.resize(std::min(*got, buffer.size()));
    if (buffer.size() >= 2 &&
        static_cast<std::uint16_t>((buffer[0] << 8) | buffer[1]) == query_id) {
      break;
    }
    tm.stale_drops.inc();
  }
  if (timing) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    tm.rtt_us.observe(std::chrono::duration<double, std::micro>(dt).count());
  }
  return buffer;
}

std::optional<net::UdpEndpoint> UdpTransport::parse_uri(const std::string& uri) {
  constexpr const char* kScheme = "udp://";
  std::string rest = uri;
  if (rest.rfind(kScheme, 0) == 0) rest = rest.substr(6);
  return net::UdpEndpoint::parse(rest);
}

}  // namespace rdns::dns
