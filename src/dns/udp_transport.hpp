#pragma once
/// \file udp_transport.hpp
/// Socket-backed implementation of dns::Transport: sends the query datagram
/// to a real server endpoint and polls for the reply within a deadline.
/// Plugs into StubResolver unchanged, so the retry/backoff/budget machinery
/// built for the in-process transport exercises genuine packet loss and
/// genuine timeouts — nullopt here is a real elapsed deadline, not a hash
/// decision. The in-process transport remains the deterministic reference;
/// this one is the measurement instrument.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/server.hpp"
#include "net/udp.hpp"

namespace rdns::dns {

class UdpTransport final : public Transport {
 public:
  struct Options {
    net::UdpEndpoint server;
    /// Reply deadline per exchange; an attempt with no id-matching reply
    /// inside it reports a timeout (the resolver then retries with
    /// backoff). Replies for earlier, already-timed-out attempts are
    /// drained and dropped — never surfaced as the current answer.
    int timeout_ms = 1000;
    /// TCP port for the retry-on-TC stream fallback (RFC 1035 §4.2.2,
    /// 2-byte length-prefixed framing); 0 = fallback disabled, so
    /// exchange_stream() keeps the base-class "no stream" answer and the
    /// resolver's behavior is unchanged.
    std::uint16_t tcp_port = 0;
  };

  explicit UdpTransport(Options options);

  /// False when the socket could not be opened/connected; exchange() then
  /// always reports a timeout. `error()` carries the reason.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// Send the query and wait up to the deadline for a reply. `now` (sim
  /// time) is unused: this transport lives on the wall clock.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange(
      std::span<const std::uint8_t> query_wire, util::SimTime now) override;

  /// Retry the query over TCP (fresh connection per call, framed per
  /// RFC 1035 §4.2.2, same wall-clock deadline). nullopt when the fallback
  /// is disabled, the connection fails, or the deadline lapses.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> exchange_stream(
      std::span<const std::uint8_t> query_wire, util::SimTime now) override;

  /// Parse "udp://a.b.c.d:port" (or bare "a.b.c.d:port") into an endpoint.
  [[nodiscard]] static std::optional<net::UdpEndpoint> parse_uri(const std::string& uri);

 private:
  Options options_;
  net::UdpSocket socket_;
  bool ok_ = false;
  std::string error_;
};

}  // namespace rdns::dns
