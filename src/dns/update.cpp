#include "dns/update.hpp"

#include "net/arpa.hpp"

namespace rdns::dns {

UpdateBuilder::UpdateBuilder(std::uint16_t id, DnsName zone_origin) {
  message_.id = id;
  message_.flags.opcode = Opcode::Update;
  message_.questions.push_back(Question{std::move(zone_origin), RrType::SOA, RrClass::IN});
}

UpdateBuilder& UpdateBuilder::add(const ResourceRecord& rr) {
  ResourceRecord r = rr;
  r.klass = RrClass::IN;
  message_.authority.push_back(std::move(r));
  return *this;
}

UpdateBuilder& UpdateBuilder::delete_rrset(const DnsName& name, RrType type) {
  ResourceRecord r;
  r.name = name;
  r.klass = RrClass::ANY;
  r.ttl = 0;
  r.rdata = RawRdata{static_cast<std::uint16_t>(type), {}};
  message_.authority.push_back(std::move(r));
  return *this;
}

UpdateBuilder& UpdateBuilder::delete_name(const DnsName& name) {
  return delete_rrset(name, RrType::ANY);
}

UpdateBuilder& UpdateBuilder::delete_exact(const ResourceRecord& rr) {
  ResourceRecord r = rr;
  r.klass = RrClass::NONE;
  r.ttl = 0;
  message_.authority.push_back(std::move(r));
  return *this;
}

Message make_ptr_replace(std::uint16_t id, const DnsName& zone_origin, net::Ipv4Addr address,
                         const DnsName& target, std::uint32_t ttl) {
  const DnsName owner = DnsName::must_parse(net::to_arpa(address));
  UpdateBuilder b{id, zone_origin};
  b.delete_rrset(owner, RrType::PTR);
  b.add(make_ptr(owner, target, ttl));
  return b.build();
}

Message make_ptr_delete(std::uint16_t id, const DnsName& zone_origin, net::Ipv4Addr address) {
  const DnsName owner = DnsName::must_parse(net::to_arpa(address));
  UpdateBuilder b{id, zone_origin};
  b.delete_rrset(owner, RrType::PTR);
  return b.build();
}

}  // namespace rdns::dns
