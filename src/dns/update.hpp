#pragma once
/// \file update.hpp
/// RFC 2136 dynamic update construction. The DHCP→DNS bridge (the practice
/// the paper studies) issues these against the reverse zone whenever a lease
/// is granted or ends.

#include <cstdint>

#include "dns/message.hpp"

namespace rdns::dns {

/// Builder for an UPDATE message targeting one zone.
class UpdateBuilder {
 public:
  UpdateBuilder(std::uint16_t id, DnsName zone_origin);

  /// "Add to an RRset" (RFC 2136 §2.5.1): class IN record.
  UpdateBuilder& add(const ResourceRecord& rr);

  /// "Delete an RRset" (§2.5.2): class ANY, TTL 0, empty RDATA.
  UpdateBuilder& delete_rrset(const DnsName& name, RrType type);

  /// "Delete all RRsets from a name" (§2.5.3).
  UpdateBuilder& delete_name(const DnsName& name);

  /// "Delete an RR from an RRset" (§2.5.4): class NONE, TTL 0.
  UpdateBuilder& delete_exact(const ResourceRecord& rr);

  [[nodiscard]] Message build() const { return message_; }

 private:
  Message message_;
};

/// Convenience: an update replacing the PTR RRset at the reverse name of
/// `address` with a single PTR to `target`.
[[nodiscard]] Message make_ptr_replace(std::uint16_t id, const DnsName& zone_origin,
                                       net::Ipv4Addr address, const DnsName& target,
                                       std::uint32_t ttl);

/// Convenience: an update deleting the PTR RRset at the reverse name.
[[nodiscard]] Message make_ptr_delete(std::uint16_t id, const DnsName& zone_origin,
                                      net::Ipv4Addr address);

}  // namespace rdns::dns
