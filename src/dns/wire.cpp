#include "dns/wire.hpp"

#include <cstring>

#include "util/strings.hpp"

namespace rdns::dns {

namespace {

constexpr std::size_t kMaxCompressionOffset = 0x3FFF;
constexpr int kMaxPointerDepth = 32;  // guards against pointer loops

/// Canonical suffix string for compression dictionary keys.
[[nodiscard]] std::string suffix_key(const DnsName& n, std::size_t from_label) {
  std::string key;
  const auto& labels = n.labels();
  for (std::size_t i = from_label; i < labels.size(); ++i) {
    key += util::to_lower(labels[i]);
    key.push_back('.');
  }
  return key;
}

[[nodiscard]] std::uint16_t flags_to_u16(const Flags& f) noexcept {
  std::uint16_t v = 0;
  v |= static_cast<std::uint16_t>(f.qr ? 0x8000 : 0);
  v |= static_cast<std::uint16_t>((static_cast<std::uint16_t>(f.opcode) & 0xF) << 11);
  v |= static_cast<std::uint16_t>(f.aa ? 0x0400 : 0);
  v |= static_cast<std::uint16_t>(f.tc ? 0x0200 : 0);
  v |= static_cast<std::uint16_t>(f.rd ? 0x0100 : 0);
  v |= static_cast<std::uint16_t>(f.ra ? 0x0080 : 0);
  v |= static_cast<std::uint16_t>(static_cast<std::uint16_t>(f.rcode) & 0xF);
  return v;
}

[[nodiscard]] Flags flags_from_u16(std::uint16_t v) noexcept {
  Flags f;
  f.qr = (v & 0x8000) != 0;
  f.opcode = static_cast<Opcode>((v >> 11) & 0xF);
  f.aa = (v & 0x0400) != 0;
  f.tc = (v & 0x0200) != 0;
  f.rd = (v & 0x0100) != 0;
  f.ra = (v & 0x0080) != 0;
  f.rcode = static_cast<Rcode>(v & 0xF);
  return f;
}

}  // namespace

// ---------------------------------------------------------------- writer --

void WireWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void WireWriter::name(const DnsName& n) {
  const auto& labels = n.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Longest-suffix match against already-encoded names.
    const std::string key = suffix_key(n, i);
    for (const auto& [target_key, offset] : targets_) {
      if (target_key == key) {
        u16(static_cast<std::uint16_t>(0xC000 | offset));
        return;
      }
    }
    if (buf_.size() <= kMaxCompressionOffset) {
      targets_.emplace_back(key, static_cast<std::uint16_t>(buf_.size()));
    }
    const std::string& label = labels[i];
    u8(static_cast<std::uint8_t>(label.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  }
  u8(0);  // root
}

void WireWriter::name_uncompressed(const DnsName& n) {
  for (const auto& label : n.labels()) {
    u8(static_cast<std::uint8_t>(label.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(label.data()), label.size()});
  }
  u8(0);
}

void WireWriter::question(const Question& q) {
  name(q.qname);
  u16(static_cast<std::uint16_t>(q.qtype));
  u16(static_cast<std::uint16_t>(q.qclass));
}

void WireWriter::rdata(const Rdata& rd) {
  struct Visitor {
    WireWriter& w;
    void operator()(const ARdata& r) { w.u32(r.address.value()); }
    void operator()(const NsRdata& r) { w.name(r.nsdname); }
    void operator()(const CnameRdata& r) { w.name(r.cname); }
    void operator()(const SoaRdata& r) {
      w.name(r.mname);
      w.name(r.rname);
      w.u32(r.serial);
      w.u32(r.refresh);
      w.u32(r.retry);
      w.u32(r.expire);
      w.u32(r.minimum);
    }
    void operator()(const PtrRdata& r) { w.name(r.ptrdname); }
    void operator()(const TxtRdata& r) {
      for (const auto& s : r.strings) {
        w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(s.size(), 255)));
        w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()),
                 std::min<std::size_t>(s.size(), 255)});
      }
    }
    void operator()(const RawRdata& r) { w.bytes(r.data); }
  };
  std::visit(Visitor{*this}, rd);
}

void WireWriter::rr(const ResourceRecord& r) {
  name(r.name);
  u16(static_cast<std::uint16_t>(r.type()));
  u16(static_cast<std::uint16_t>(r.klass));
  u32(r.ttl);
  // Reserve RDLENGTH, encode RDATA, backpatch.
  const std::size_t len_pos = buf_.size();
  u16(0);
  const std::size_t rdata_start = buf_.size();
  rdata(r.rdata);
  const std::size_t rdlen = buf_.size() - rdata_start;
  if (rdlen > 0xFFFF) throw WireError("rr: RDATA exceeds 65535 octets");
  buf_[len_pos] = static_cast<std::uint8_t>(rdlen >> 8);
  buf_[len_pos + 1] = static_cast<std::uint8_t>(rdlen);
}

// ---------------------------------------------------------------- reader --

void WireReader::require(std::size_t n) const {
  if (pos_ + n > wire_.size()) throw WireError("decode: truncated message");
}

std::uint8_t WireReader::u8() {
  require(1);
  return wire_[pos_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  const std::uint32_t v = (static_cast<std::uint32_t>(wire_[pos_]) << 24) |
                          (static_cast<std::uint32_t>(wire_[pos_ + 1]) << 16) |
                          (static_cast<std::uint32_t>(wire_[pos_ + 2]) << 8) |
                          static_cast<std::uint32_t>(wire_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::vector<std::uint8_t> WireReader::bytes(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

DnsName WireReader::name_at(std::size_t& pos, int depth) const {
  if (depth > kMaxPointerDepth) throw WireError("decode: compression pointer loop");
  std::vector<std::string> labels;
  std::size_t total_octets = 1;  // root label
  while (true) {
    if (pos >= wire_.size()) throw WireError("decode: truncated name");
    const std::uint8_t len = wire_[pos];
    if ((len & 0xC0) == 0xC0) {
      if (pos + 1 >= wire_.size()) throw WireError("decode: truncated compression pointer");
      std::size_t target = static_cast<std::size_t>((len & 0x3F) << 8 | wire_[pos + 1]);
      pos += 2;
      if (target >= wire_.size()) throw WireError("decode: compression pointer out of range");
      const DnsName rest = name_at(target, depth + 1);
      for (const auto& l : rest.labels()) {
        total_octets += l.size() + 1;
        if (total_octets > 255) throw WireError("decode: name exceeds 255 octets");
        labels.push_back(l);
      }
      return DnsName{std::move(labels)};
    }
    if ((len & 0xC0) != 0) throw WireError("decode: reserved label type");
    ++pos;
    if (len == 0) return DnsName{std::move(labels)};
    if (pos + len > wire_.size()) throw WireError("decode: truncated label");
    std::string label{reinterpret_cast<const char*>(wire_.data() + pos), len};
    // DnsName enforces LDH labels and the 255-octet bound; surface wire
    // corruption as WireError rather than letting its ctor throw.
    if (!is_valid_label(label)) throw WireError("decode: invalid label bytes");
    total_octets += label.size() + 1;
    if (total_octets > 255) throw WireError("decode: name exceeds 255 octets");
    labels.push_back(std::move(label));
    pos += len;
  }
}

DnsName WireReader::name() { return name_at(pos_, 0); }

Question WireReader::question() {
  Question q;
  q.qname = name();
  q.qtype = static_cast<RrType>(u16());
  q.qclass = static_cast<RrClass>(u16());
  return q;
}

Rdata WireReader::rdata(RrType type, std::uint16_t rdlength) {
  const std::size_t end = pos_ + rdlength;
  require(rdlength);
  // Empty RDATA is legitimate for RFC 2136 delete-RRset tombstones (class
  // ANY/NONE, TTL 0); decode it as an uninterpreted record of the type.
  if (rdlength == 0) return RawRdata{static_cast<std::uint16_t>(type), {}};
  Rdata out;
  switch (type) {
    case RrType::A: {
      if (rdlength != 4) throw WireError("decode: A RDATA must be 4 octets");
      out = ARdata{net::Ipv4Addr{u32()}};
      break;
    }
    case RrType::NS:
      out = NsRdata{name()};
      break;
    case RrType::CNAME:
      out = CnameRdata{name()};
      break;
    case RrType::SOA: {
      SoaRdata soa;
      soa.mname = name();
      soa.rname = name();
      soa.serial = u32();
      soa.refresh = u32();
      soa.retry = u32();
      soa.expire = u32();
      soa.minimum = u32();
      out = std::move(soa);
      break;
    }
    case RrType::PTR:
      out = PtrRdata{name()};
      break;
    case RrType::TXT: {
      TxtRdata txt;
      while (pos_ < end) {
        const std::uint8_t len = u8();
        const auto data = bytes(len);
        txt.strings.emplace_back(reinterpret_cast<const char*>(data.data()), data.size());
      }
      out = std::move(txt);
      break;
    }
    default:
      out = RawRdata{static_cast<std::uint16_t>(type), bytes(rdlength)};
      break;
  }
  if (pos_ != end) throw WireError("decode: RDATA length mismatch");
  return out;
}

ResourceRecord WireReader::rr() {
  ResourceRecord r;
  r.name = name();
  const auto type = static_cast<RrType>(u16());
  r.klass = static_cast<RrClass>(u16());
  r.ttl = u32();
  const std::uint16_t rdlength = u16();
  r.rdata = rdata(type, rdlength);
  return r;
}

// --------------------------------------------------------------- message --

std::vector<std::uint8_t> encode(const Message& m) {
  WireWriter w;
  w.u16(m.id);
  w.u16(flags_to_u16(m.flags));
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authority.size()));
  w.u16(static_cast<std::uint16_t>(m.additional.size()));
  for (const auto& q : m.questions) w.question(q);
  for (const auto& r : m.answers) w.rr(r);
  for (const auto& r : m.authority) w.rr(r);
  for (const auto& r : m.additional) w.rr(r);
  return w.take();
}

Message decode(std::span<const std::uint8_t> wire) {
  WireReader r{wire};
  Message m;
  m.id = r.u16();
  m.flags = flags_from_u16(r.u16());
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();
  m.questions.reserve(qd);
  for (std::uint16_t i = 0; i < qd; ++i) m.questions.push_back(r.question());
  m.answers.reserve(an);
  for (std::uint16_t i = 0; i < an; ++i) m.answers.push_back(r.rr());
  m.authority.reserve(ns);
  for (std::uint16_t i = 0; i < ns; ++i) m.authority.push_back(r.rr());
  m.additional.reserve(ar);
  for (std::uint16_t i = 0; i < ar; ++i) m.additional.push_back(r.rr());
  return m;
}

}  // namespace rdns::dns
