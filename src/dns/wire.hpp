#pragma once
/// \file wire.hpp
/// RFC 1035 §4.1 binary wire format: header, questions, resource records,
/// and §4.1.4 name compression. The in-process transport between resolver
/// and authoritative server round-trips every message through this codec so
/// the format is exercised on the main measurement path, not just in tests.

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "dns/message.hpp"

namespace rdns::dns {

/// Raised by the decoder on malformed input (truncation, bad pointers,
/// compression loops, label overruns).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encode a message; names in all sections are compressed.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

/// Decode a message; throws WireError on malformed input.
[[nodiscard]] Message decode(std::span<const std::uint8_t> wire);

/// Encoder with an explicit compression dictionary; exposed for tests and
/// for incremental encoding.
class WireWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Write a (possibly compressed) domain name.
  void name(const DnsName& n);
  /// Write a name without using or adding compression targets (RFC 3597
  /// asks this of unknown-type RDATA).
  void name_uncompressed(const DnsName& n);

  void question(const Question& q);
  void rr(const ResourceRecord& r);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  void rdata(const Rdata& rd);

  std::vector<std::uint8_t> buf_;
  // canonical name suffix -> offset of its first encoding
  std::vector<std::pair<std::string, std::uint16_t>> targets_;
};

/// Decoder cursor.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t n);

  [[nodiscard]] DnsName name();
  [[nodiscard]] Question question();
  [[nodiscard]] ResourceRecord rr();

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool at_end() const noexcept { return pos_ == wire_.size(); }

 private:
  void require(std::size_t n) const;
  [[nodiscard]] DnsName name_at(std::size_t& pos, int depth) const;
  [[nodiscard]] Rdata rdata(RrType type, std::uint16_t rdlength);

  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

}  // namespace rdns::dns
