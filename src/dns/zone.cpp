#include "dns/zone.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "net/arpa.hpp"
#include "util/strings.hpp"

namespace rdns::dns {

namespace {

std::atomic<ZoneStorage> g_default_storage{ZoneStorage::Compact};

/// Parse a decimal octet label (0..255, no leading zeros — "01" is a
/// different DnsName than "1" and must stay in the map).
[[nodiscard]] bool parse_octet(const std::string& label, int* value) noexcept {
  if (label.empty() || label.size() > 3) return false;
  if (label.size() > 1 && label[0] == '0') return false;
  int v = 0;
  for (const char c : label) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  if (v > 255) return false;
  *value = v;
  return true;
}

/// True when `origin` is a /16 reverse zone B.A.in-addr.arpa; sets `base`
/// to the network address A.B.0.0.
[[nodiscard]] bool reverse_slash16_base(const DnsName& origin, std::uint32_t* base) noexcept {
  const auto& labels = origin.labels();
  if (labels.size() != 4) return false;
  if (!util::iequals(labels[2], "in-addr") || !util::iequals(labels[3], "arpa")) return false;
  int b = 0;
  int a = 0;
  if (!parse_octet(labels[0], &b) || !parse_octet(labels[1], &a)) return false;
  *base = (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16);
  return true;
}

}  // namespace

void Zone::set_default_storage(ZoneStorage mode) noexcept {
  g_default_storage.store(mode, std::memory_order_relaxed);
}

ZoneStorage Zone::default_storage() noexcept {
  return g_default_storage.load(std::memory_order_relaxed);
}

Zone::Zone(DnsName origin, SoaRdata soa, util::NamePool* pool)
    : origin_(std::move(origin)), soa_(std::move(soa)) {
  std::uint32_t base = 0;
  if (default_storage() == ZoneStorage::Compact && reverse_slash16_base(origin_, &base)) {
    if (pool == nullptr) {
      owned_pool_ = std::make_unique<util::NamePool>();
      pool = owned_pool_.get();
    }
    ptrs_ = std::make_unique<CompactPtrStore>(pool, base);
  }
  add(make_ns(origin_, soa_.mname));
}

Zone::~Zone() = default;

bool Zone::contains(const DnsName& name) const noexcept { return name.ends_with(origin_); }

void Zone::bump_serial() noexcept { ++soa_.serial; }

bool Zone::classify(const DnsName& name, std::uint16_t* offset) const noexcept {
  if (ptrs_ == nullptr) return false;
  const auto& labels = name.labels();
  if (labels.size() != 6 || !name.ends_with(origin_)) return false;
  int d = 0;
  int c = 0;
  if (!parse_octet(labels[0], &d) || !parse_octet(labels[1], &c)) return false;
  *offset = static_cast<std::uint16_t>((c << 8) | d);
  return true;
}

DnsName Zone::owner_name(std::uint16_t offset) const {
  return DnsName::must_parse(net::to_arpa(ptrs_->address_of(offset)));
}

void Zone::add(const ResourceRecord& rr) {
  if (!contains(rr.name)) {
    throw std::invalid_argument("Zone::add: owner " + rr.name.to_string() + " outside zone " +
                                origin_.to_string());
  }
  std::uint16_t offset = 0;
  if (rr.type() == RrType::PTR && classify(rr.name, &offset)) {
    const auto& ptr = std::get<PtrRdata>(rr.rdata);
    if (!ptrs_->add(offset, ptr.ptrdname, rr.ttl)) return;  // exact duplicate
    ++record_count_;
    bump_serial();
    return;
  }
  auto& rrs = records_[rr.name];
  if (std::find(rrs.begin(), rrs.end(), rr) != rrs.end()) return;  // exact duplicate
  rrs.push_back(rr);
  ++record_count_;
  bump_serial();
}

std::size_t Zone::remove(const DnsName& name, RrType type) {
  std::uint16_t offset = 0;
  if (type == RrType::PTR && classify(name, &offset)) {
    const std::size_t removed = ptrs_->remove_owner(offset);
    if (removed > 0) {
      record_count_ -= removed;
      bump_serial();
    }
    return removed;
  }
  const auto it = records_.find(name);
  if (it == records_.end()) return 0;
  auto& rrs = it->second;
  const auto new_end = std::remove_if(rrs.begin(), rrs.end(),
                                      [type](const ResourceRecord& r) { return r.type() == type; });
  const auto removed = static_cast<std::size_t>(rrs.end() - new_end);
  rrs.erase(new_end, rrs.end());
  if (rrs.empty()) records_.erase(it);
  if (removed > 0) {
    record_count_ -= removed;
    bump_serial();
  }
  return removed;
}

bool Zone::remove_exact(const ResourceRecord& rr) {
  std::uint16_t offset = 0;
  if (rr.type() == RrType::PTR && classify(rr.name, &offset)) {
    const auto& ptr = std::get<PtrRdata>(rr.rdata);
    if (!ptrs_->remove_exact(offset, ptr.ptrdname, rr.ttl)) return false;
    --record_count_;
    bump_serial();
    return true;
  }
  const auto it = records_.find(rr.name);
  if (it == records_.end()) return false;
  auto& rrs = it->second;
  const auto pos = std::find(rrs.begin(), rrs.end(), rr);
  if (pos == rrs.end()) return false;
  rrs.erase(pos);
  if (rrs.empty()) records_.erase(it);
  --record_count_;
  bump_serial();
  return true;
}

std::size_t Zone::remove_all(const DnsName& name) {
  std::size_t removed = 0;
  std::uint16_t offset = 0;
  if (classify(name, &offset)) removed += ptrs_->remove_owner(offset);
  const auto it = records_.find(name);
  if (it != records_.end()) {
    removed += it->second.size();
    records_.erase(it);
  }
  if (removed > 0) {
    record_count_ -= removed;
    bump_serial();
  }
  return removed;
}

std::vector<ResourceRecord> Zone::find(const DnsName& name, RrType type) const {
  std::vector<ResourceRecord> out;
  if (type == RrType::SOA && name == origin_) {
    out.push_back(make_soa(origin_, soa_));
    return out;
  }
  std::uint16_t offset = 0;
  if ((type == RrType::PTR || type == RrType::ANY) && classify(name, &offset) &&
      ptrs_->has(offset)) {
    std::vector<CompactPtrStore::Found> found;
    ptrs_->find(offset, found);
    const DnsName owner = owner_name(offset);  // stored-case (lowercase) owner, as the map kept
    for (const auto& f : found) {
      out.push_back(make_ptr(owner, DnsName::must_parse(f.target), f.ttl));
    }
  }
  const auto it = records_.find(name);
  if (it == records_.end()) return out;
  for (const auto& rr : it->second) {
    if (type == RrType::ANY || rr.type() == type) out.push_back(rr);
  }
  return out;
}

bool Zone::has_name(const DnsName& name) const noexcept {
  if (name == origin_) return true;  // apex always has the SOA
  std::uint16_t offset = 0;
  if (classify(name, &offset) && ptrs_->has(offset)) return true;
  return records_.find(name) != records_.end();
}

std::size_t Zone::name_count() const noexcept {
  std::size_t n = records_.size();
  if (ptrs_ != nullptr && !ptrs_->empty()) {
    n += ptrs_->owner_count();
    // Owners living in both stores (compact PTR + map TXT, say) count once.
    std::uint16_t offset = 0;
    for (const auto& [name, rrs] : records_) {
      if (classify(name, &offset) && ptrs_->has(offset)) --n;
    }
  }
  return n;
}

std::size_t Zone::ptr_count() const noexcept {
  std::size_t n = ptrs_ != nullptr ? ptrs_->record_count() : 0;
  for (const auto& [name, rrs] : records_) {
    for (const auto& rr : rrs) {
      if (rr.type() == RrType::PTR) ++n;
    }
  }
  return n;
}

std::vector<ResourceRecord> Zone::dump() const {
  std::vector<ResourceRecord> out;
  out.reserve(record_count_ + 1);
  out.push_back(make_soa(origin_, soa_));
  for_each([&out](const ResourceRecord& rr) { out.push_back(rr); });
  return out;
}

void Zone::for_each(const std::function<void(const ResourceRecord&)>& fn) const {
  if (ptrs_ == nullptr || ptrs_->empty()) {
    for (const auto& [name, rrs] : records_) {
      for (const auto& rr : rrs) fn(rr);
    }
    return;
  }
  // Merge the compact cursor (canonical owner order by construction) with
  // the map walk (canonical order by comparator); at an owner present in
  // both, PTRs come first — matching the map's insertion order, where the
  // bridge adds the PTR before any annotation records.
  auto cur = ptrs_->cursor();
  bool cur_valid = cur.next();
  DnsName cur_owner;
  std::uint16_t cur_offset = 0;
  if (cur_valid) {
    cur_offset = cur.offset();
    cur_owner = owner_name(cur_offset);
  }
  auto it = records_.begin();
  while (cur_valid || it != records_.end()) {
    const bool take_compact =
        cur_valid && (it == records_.end() || !(it->first < cur_owner));
    if (take_compact) {
      fn(make_ptr(cur_owner, DnsName::must_parse(std::string{cur.target()}), cur.ttl()));
      cur_valid = cur.next();
      if (cur_valid && cur.offset() != cur_offset) {
        cur_offset = cur.offset();
        cur_owner = owner_name(cur_offset);
      }
    } else {
      for (const auto& rr : it->second) fn(rr);
      ++it;
    }
  }
}

void Zone::for_each_ptr(
    const std::function<void(net::Ipv4Addr, std::string_view, std::uint32_t)>& fn) const {
  if (ptrs_ != nullptr && !ptrs_->empty()) {
    bool map_has_ptr = false;
    for (const auto& [name, rrs] : records_) {
      for (const auto& rr : rrs) {
        if (rr.type() == RrType::PTR) {
          map_has_ptr = true;
          break;
        }
      }
      if (map_has_ptr) break;
    }
    if (!map_has_ptr) {
      // The hot path: no DnsName or ResourceRecord is ever built.
      auto cur = ptrs_->cursor();
      while (cur.next()) fn(ptrs_->address_of(cur.offset()), cur.target(), cur.ttl());
      return;
    }
    // Mixed stores hold PTRs (only possible via hand-built zones): fall
    // back to the merged record walk to keep canonical order.
    std::string scratch;
    for_each([&](const ResourceRecord& rr) {
      if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
        if (const auto a = net::from_arpa(rr.name.to_string())) {
          scratch = ptr->ptrdname.to_string();
          fn(*a, scratch, rr.ttl);
        }
      }
    });
    return;
  }
  std::string scratch;
  for (const auto& [name, rrs] : records_) {
    for (const auto& rr : rrs) {
      if (const auto* ptr = std::get_if<PtrRdata>(&rr.rdata)) {
        if (const auto a = net::from_arpa(name.to_string())) {
          scratch = ptr->ptrdname.to_string();
          fn(*a, scratch, rr.ttl);
        }
      }
    }
  }
}

std::vector<DnsName> Zone::names_with_type(RrType type) const {
  std::vector<DnsName> out;
  if (type == RrType::PTR && ptrs_ != nullptr && !ptrs_->empty()) {
    // Merge distinct compact owners with map owners holding PTRs; equal
    // owners are emitted once.
    auto cur = ptrs_->cursor();
    bool cur_valid = cur.next();
    DnsName cur_owner;
    std::uint16_t cur_offset = 0;
    if (cur_valid) {
      cur_offset = cur.offset();
      cur_owner = owner_name(cur_offset);
    }
    auto it = records_.begin();
    const auto map_owner_has_ptr = [](const std::vector<ResourceRecord>& rrs) {
      return std::any_of(rrs.begin(), rrs.end(),
                         [](const ResourceRecord& rr) { return rr.type() == RrType::PTR; });
    };
    while (cur_valid || it != records_.end()) {
      while (it != records_.end() && !map_owner_has_ptr(it->second)) ++it;
      const bool take_compact =
          cur_valid && (it == records_.end() || !(it->first < cur_owner));
      if (take_compact) {
        if (it != records_.end() && it->first == cur_owner) ++it;  // dedupe
        out.push_back(cur_owner);
        do {  // skip further records at the same owner
          cur_valid = cur.next();
        } while (cur_valid && cur.offset() == cur_offset);
        if (cur_valid) {
          cur_offset = cur.offset();
          cur_owner = owner_name(cur_offset);
        }
      } else if (it != records_.end()) {
        out.push_back(it->first);
        ++it;
      }
    }
    return out;
  }
  for (const auto& [name, rrs] : records_) {
    for (const auto& rr : rrs) {
      if (rr.type() == type) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

std::size_t Zone::populate_generic(net::Ipv4Addr first, net::Ipv4Addr last, const DnsName& suffix,
                                   std::uint32_t ttl) {
  if (first.value() > last.value()) {
    throw std::invalid_argument("Zone::populate_generic: empty range");
  }
  if (ptrs_ != nullptr) {
    const std::uint32_t base = ptrs_->address_of(0).value();
    if ((first.value() & 0xFFFF0000u) != base || (last.value() & 0xFFFF0000u) != base) {
      throw std::invalid_argument("Zone::populate_generic: range outside zone " +
                                  origin_.to_string());
    }
    const std::string suffix_text = suffix.is_root() ? std::string{} : suffix.to_string();
    const std::size_t inserted =
        ptrs_->add_generic_range(static_cast<std::uint16_t>(first.value() & 0xFFFF),
                                 static_cast<std::uint16_t>(last.value() & 0xFFFF), suffix_text,
                                 ttl);
    record_count_ += inserted;
    // One serial bump per inserted record, exactly as repeated add() would.
    soa_.serial += static_cast<std::uint32_t>(inserted);
    return inserted;
  }
  std::size_t inserted = 0;
  for (net::Ipv4Addr a = first;; ++a) {
    const DnsName owner = DnsName::must_parse(net::to_arpa(a));
    const std::string label =
        util::format("host-%u-%u-%u-%u", a.octet(0), a.octet(1), a.octet(2), a.octet(3));
    const std::size_t before = record_count_;
    add(make_ptr(owner, suffix.prepend(label), ttl));
    if (record_count_ != before) ++inserted;
    if (a == last) break;
  }
  return inserted;
}

}  // namespace rdns::dns
