#include "dns/zone.hpp"

#include <algorithm>
#include <stdexcept>

namespace rdns::dns {

Zone::Zone(DnsName origin, SoaRdata soa) : origin_(std::move(origin)), soa_(std::move(soa)) {
  add(make_ns(origin_, soa_.mname));
}

bool Zone::contains(const DnsName& name) const noexcept { return name.ends_with(origin_); }

void Zone::bump_serial() noexcept { ++soa_.serial; }

void Zone::add(const ResourceRecord& rr) {
  if (!contains(rr.name)) {
    throw std::invalid_argument("Zone::add: owner " + rr.name.to_string() + " outside zone " +
                                origin_.to_string());
  }
  auto& rrs = records_[rr.name];
  if (std::find(rrs.begin(), rrs.end(), rr) != rrs.end()) return;  // exact duplicate
  rrs.push_back(rr);
  ++record_count_;
  bump_serial();
}

std::size_t Zone::remove(const DnsName& name, RrType type) {
  const auto it = records_.find(name);
  if (it == records_.end()) return 0;
  auto& rrs = it->second;
  const auto new_end = std::remove_if(rrs.begin(), rrs.end(),
                                      [type](const ResourceRecord& r) { return r.type() == type; });
  const auto removed = static_cast<std::size_t>(rrs.end() - new_end);
  rrs.erase(new_end, rrs.end());
  if (rrs.empty()) records_.erase(it);
  if (removed > 0) {
    record_count_ -= removed;
    bump_serial();
  }
  return removed;
}

bool Zone::remove_exact(const ResourceRecord& rr) {
  const auto it = records_.find(rr.name);
  if (it == records_.end()) return false;
  auto& rrs = it->second;
  const auto pos = std::find(rrs.begin(), rrs.end(), rr);
  if (pos == rrs.end()) return false;
  rrs.erase(pos);
  if (rrs.empty()) records_.erase(it);
  --record_count_;
  bump_serial();
  return true;
}

std::size_t Zone::remove_all(const DnsName& name) {
  const auto it = records_.find(name);
  if (it == records_.end()) return 0;
  const std::size_t removed = it->second.size();
  records_.erase(it);
  record_count_ -= removed;
  bump_serial();
  return removed;
}

std::vector<ResourceRecord> Zone::find(const DnsName& name, RrType type) const {
  std::vector<ResourceRecord> out;
  if (type == RrType::SOA && name == origin_) {
    out.push_back(make_soa(origin_, soa_));
    return out;
  }
  const auto it = records_.find(name);
  if (it == records_.end()) return out;
  for (const auto& rr : it->second) {
    if (type == RrType::ANY || rr.type() == type) out.push_back(rr);
  }
  return out;
}

bool Zone::has_name(const DnsName& name) const noexcept {
  if (name == origin_) return true;  // apex always has the SOA
  return records_.find(name) != records_.end();
}

std::vector<ResourceRecord> Zone::dump() const {
  std::vector<ResourceRecord> out;
  out.reserve(record_count_ + 1);
  out.push_back(make_soa(origin_, soa_));
  for (const auto& [name, rrs] : records_) {
    out.insert(out.end(), rrs.begin(), rrs.end());
  }
  return out;
}

void Zone::for_each(const std::function<void(const ResourceRecord&)>& fn) const {
  for (const auto& [name, rrs] : records_) {
    for (const auto& rr : rrs) fn(rr);
  }
}

std::vector<DnsName> Zone::names_with_type(RrType type) const {
  std::vector<DnsName> out;
  for (const auto& [name, rrs] : records_) {
    for (const auto& rr : rrs) {
      if (rr.type() == type) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;
}

}  // namespace rdns::dns
