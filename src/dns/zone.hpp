#pragma once
/// \file zone.hpp
/// An authoritative zone: an origin (apex) name, an SOA, and a sorted store
/// of resource records. Reverse zones (x.y.z.in-addr.arpa) are ordinary
/// zones whose owners are arpa names and whose data is mostly PTR records;
/// the DHCP→DNS bridge mutates them through this API.
///
/// Storage is two-tier. Owners that are full 4-octet addresses under a /16
/// in-addr.arpa origin keep their PTR records in a CompactPtrStore (16-bit
/// offsets + interned target ids — see ptr_store.hpp) so internet-scale
/// worlds fit in memory; everything else (apex NS, forward zones, TXT at
/// arpa owners, non-/16 origins) lives in the original std::map of
/// ResourceRecords. The split is invisible at this interface: find/dump/
/// for_each/serial semantics are byte-identical to the pure-map zone, which
/// tests/test_ptr_store.cpp asserts by diffing the two representations.
/// Zone::set_default_storage(ZoneStorage::Legacy) restores the old
/// representation globally (bench A/B switch).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "dns/ptr_store.hpp"
#include "dns/rr.hpp"
#include "net/ipv4.hpp"
#include "util/name_pool.hpp"

namespace rdns::dns {

/// Representation used for PTR records of /16 reverse zones created after
/// the switch. Compact is the default; Legacy keeps every record in the
/// std::map (the pre-interning representation, kept for A/B benchmarks).
enum class ZoneStorage { Compact, Legacy };

class Zone {
 public:
  /// Create a zone with the given apex and SOA. An NS record for
  /// `soa.mname` is added automatically (real zones must have one).
  /// `pool` (optional) is the shared hostname intern pool; when null a
  /// compact-eligible zone owns a private pool.
  explicit Zone(DnsName origin, SoaRdata soa, util::NamePool* pool = nullptr);
  ~Zone();

  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;
  // Movable: the compact store and owned pool sit behind unique_ptrs, so
  // their internal pointers survive the move (zonefile.cpp returns zones
  // by value).
  Zone(Zone&&) = default;
  Zone& operator=(Zone&&) = default;

  /// Process-wide storage mode for zones created from now on (existing
  /// zones keep the representation they were built with).
  static void set_default_storage(ZoneStorage mode) noexcept;
  [[nodiscard]] static ZoneStorage default_storage() noexcept;

  [[nodiscard]] const DnsName& origin() const noexcept { return origin_; }
  [[nodiscard]] const SoaRdata& soa() const noexcept { return soa_; }

  /// True when this zone stores its 4-octet PTR owners compactly.
  [[nodiscard]] bool compact() const noexcept { return ptrs_ != nullptr; }

  /// True if `name` falls inside this zone (is the apex or below it).
  [[nodiscard]] bool contains(const DnsName& name) const noexcept;

  /// Add a record (owner must be in the zone; throws otherwise). Exact
  /// duplicates are ignored. Bumps the SOA serial.
  void add(const ResourceRecord& rr);

  /// Remove all records at `name` with type `type`; returns removed count.
  /// Bumps the serial if anything was removed.
  std::size_t remove(const DnsName& name, RrType type);

  /// Remove one exact record (owner, type, rdata); returns whether removed.
  bool remove_exact(const ResourceRecord& rr);

  /// Remove every record at `name`; returns removed count.
  std::size_t remove_all(const DnsName& name);

  /// Records at `name` with `type` (empty if none). Type ANY returns all.
  [[nodiscard]] std::vector<ResourceRecord> find(const DnsName& name, RrType type) const;

  /// True if any record exists at `name` (drives NXDOMAIN vs NODATA).
  [[nodiscard]] bool has_name(const DnsName& name) const noexcept;

  /// Number of records in the zone (excluding the synthesized SOA).
  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }

  /// Number of distinct owner names with data.
  [[nodiscard]] std::size_t name_count() const noexcept;

  /// Number of PTR records (compact + map) without materializing any.
  [[nodiscard]] std::size_t ptr_count() const noexcept;

  [[nodiscard]] std::uint32_t serial() const noexcept { return soa_.serial; }

  /// Set the SOA serial explicitly (zone loads/transfers carry their own).
  void set_serial(std::uint32_t serial) noexcept { soa_.serial = serial; }

  /// All records, in canonical owner order (for dumps and audits).
  [[nodiscard]] std::vector<ResourceRecord> dump() const;

  /// Iterate owner names with at least one record of `type`.
  [[nodiscard]] std::vector<DnsName> names_with_type(RrType type) const;

  /// Apply `fn` to every stored record without copying (bulk snapshots).
  /// Compact PTRs are materialized on the fly in canonical owner order,
  /// interleaved with map records exactly as a pure-map zone would yield
  /// them.
  void for_each(const std::function<void(const ResourceRecord&)>& fn) const;

  /// Streaming PTR walk in canonical owner order with no per-record
  /// DnsName/ResourceRecord materialization: `fn(address, target_text,
  /// ttl)` where target_text is presentation form (case-preserved, no
  /// trailing dot) valid only during the call. Owners that are not arpa
  /// addresses are skipped. This is the sweep hot path at 10M devices.
  void for_each_ptr(
      const std::function<void(net::Ipv4Addr, std::string_view, std::uint32_t)>& fn) const;

  /// Bulk-add generic PTRs host-a-b-c-d.<suffix> for every address in
  /// [first, last] (inclusive), ttl `ttl` — observably identical to
  /// repeated add(make_ptr(...)) (duplicates skipped, serial bumped once
  /// per inserted record) but O(1) memory per record in compact zones.
  /// Returns records inserted.
  std::size_t populate_generic(net::Ipv4Addr first, net::Ipv4Addr last, const DnsName& suffix,
                               std::uint32_t ttl);

 private:
  void bump_serial() noexcept;

  /// True when `name` is a 4-octet owner of this compact zone; sets
  /// `offset` to the low 16 bits of its address.
  [[nodiscard]] bool classify(const DnsName& name, std::uint16_t* offset) const noexcept;

  /// Canonical lowercase owner name for a compact offset.
  [[nodiscard]] DnsName owner_name(std::uint16_t offset) const;

  DnsName origin_;
  SoaRdata soa_;
  std::map<DnsName, std::vector<ResourceRecord>> records_;
  std::size_t record_count_ = 0;
  std::unique_ptr<util::NamePool> owned_pool_;  ///< fallback when no shared pool
  std::unique_ptr<CompactPtrStore> ptrs_;       ///< null for legacy / non-/16 zones
};

}  // namespace rdns::dns
