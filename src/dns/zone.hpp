#pragma once
/// \file zone.hpp
/// An authoritative zone: an origin (apex) name, an SOA, and a sorted store
/// of resource records. Reverse zones (x.y.z.in-addr.arpa) are ordinary
/// zones whose owners are arpa names and whose data is mostly PTR records;
/// the DHCP→DNS bridge mutates them through this API.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dns/rr.hpp"

namespace rdns::dns {

class Zone {
 public:
  /// Create a zone with the given apex and SOA. An NS record for
  /// `soa.mname` is added automatically (real zones must have one).
  Zone(DnsName origin, SoaRdata soa);

  [[nodiscard]] const DnsName& origin() const noexcept { return origin_; }
  [[nodiscard]] const SoaRdata& soa() const noexcept { return soa_; }

  /// True if `name` falls inside this zone (is the apex or below it).
  [[nodiscard]] bool contains(const DnsName& name) const noexcept;

  /// Add a record (owner must be in the zone; throws otherwise). Exact
  /// duplicates are ignored. Bumps the SOA serial.
  void add(const ResourceRecord& rr);

  /// Remove all records at `name` with type `type`; returns removed count.
  /// Bumps the serial if anything was removed.
  std::size_t remove(const DnsName& name, RrType type);

  /// Remove one exact record (owner, type, rdata); returns whether removed.
  bool remove_exact(const ResourceRecord& rr);

  /// Remove every record at `name`; returns removed count.
  std::size_t remove_all(const DnsName& name);

  /// Records at `name` with `type` (empty if none). Type ANY returns all.
  [[nodiscard]] std::vector<ResourceRecord> find(const DnsName& name, RrType type) const;

  /// True if any record exists at `name` (drives NXDOMAIN vs NODATA).
  [[nodiscard]] bool has_name(const DnsName& name) const noexcept;

  /// Number of records in the zone (excluding the synthesized SOA).
  [[nodiscard]] std::size_t record_count() const noexcept { return record_count_; }

  /// Number of distinct owner names with data.
  [[nodiscard]] std::size_t name_count() const noexcept { return records_.size(); }

  [[nodiscard]] std::uint32_t serial() const noexcept { return soa_.serial; }

  /// Set the SOA serial explicitly (zone loads/transfers carry their own).
  void set_serial(std::uint32_t serial) noexcept { soa_.serial = serial; }

  /// All records, in canonical owner order (for dumps and audits).
  [[nodiscard]] std::vector<ResourceRecord> dump() const;

  /// Iterate owner names with at least one record of `type`.
  [[nodiscard]] std::vector<DnsName> names_with_type(RrType type) const;

  /// Apply `fn` to every stored record without copying (bulk snapshots).
  void for_each(const std::function<void(const ResourceRecord&)>& fn) const;

 private:
  void bump_serial() noexcept;

  DnsName origin_;
  SoaRdata soa_;
  std::map<DnsName, std::vector<ResourceRecord>> records_;
  std::size_t record_count_ = 0;
};

}  // namespace rdns::dns
