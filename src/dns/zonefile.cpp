#include "dns/zonefile.hpp"

#include <charconv>
#include <sstream>

#include "util/strings.hpp"

namespace rdns::dns {

namespace {

/// Tokenizer that understands ;-comments, "quoted strings" and
/// ( ) line continuations.
class Tokenizer {
 public:
  explicit Tokenizer(const std::string& text) : text_(text) {}

  /// The tokens of the next logical record line (continuations folded).
  /// `leading_blank` reports whether the physical line began with
  /// whitespace (the "repeat previous owner" convention). Returns false at
  /// end of input.
  bool next_line(std::vector<std::string>& tokens, bool& leading_blank, std::size_t& line_no) {
    tokens.clear();
    int depth = 0;
    bool have_line = false;
    while (pos_ < text_.size()) {
      if (!have_line) {
        line_no = line_;
        leading_blank = pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t');
        have_line = true;
      }
      // Scan one physical line.
      while (pos_ < text_.size() && text_[pos_] != '\n') {
        const char c = text_[pos_];
        if (c == ';') {  // comment to end of line
          while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
          break;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
          ++pos_;
          continue;
        }
        if (c == '(') {
          ++depth;
          ++pos_;
          continue;
        }
        if (c == ')') {
          if (depth == 0) throw ZoneFileError(line_, "unbalanced ')'");
          --depth;
          ++pos_;
          continue;
        }
        if (c == '"') {
          ++pos_;
          std::string token;
          while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\n') throw ZoneFileError(line_, "unterminated string");
            token.push_back(text_[pos_++]);
          }
          if (pos_ >= text_.size()) throw ZoneFileError(line_, "unterminated string");
          ++pos_;  // closing quote
          tokens.push_back("\"" + token);  // marker for string tokens
          continue;
        }
        std::string token;
        while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
               text_[pos_] != ';' && text_[pos_] != '(' && text_[pos_] != ')') {
          token.push_back(text_[pos_++]);
        }
        tokens.push_back(std::move(token));
      }
      // Physical line ended.
      if (pos_ < text_.size()) {
        ++pos_;  // consume '\n'
        ++line_;
      }
      if (depth > 0) continue;          // inside ( ... ): keep folding
      if (!tokens.empty()) return true;  // a complete logical line
      have_line = false;                 // blank/comment-only line: skip
    }
    if (depth > 0) throw ZoneFileError(line_, "unbalanced '('");
    return !tokens.empty();
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

[[nodiscard]] bool is_string_token(const std::string& t) {
  return !t.empty() && t[0] == '"';
}

[[nodiscard]] bool parse_u32(const std::string& t, std::uint32_t& out) {
  if (t.empty() || is_string_token(t)) return false;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), out);
  return ec == std::errc{} && ptr == t.data() + t.size();
}

[[nodiscard]] bool is_class_token(const std::string& t) {
  return util::iequals(t, "IN") || util::iequals(t, "CH") || util::iequals(t, "HS");
}

[[nodiscard]] int type_of_token(const std::string& t) {
  static const std::pair<const char*, RrType> kTypes[] = {
      {"A", RrType::A},     {"NS", RrType::NS},   {"CNAME", RrType::CNAME},
      {"SOA", RrType::SOA}, {"PTR", RrType::PTR}, {"TXT", RrType::TXT},
  };
  for (const auto& [name, type] : kTypes) {
    if (util::iequals(t, name)) return static_cast<int>(type);
  }
  return -1;
}

/// Resolve a possibly-relative name against the current origin.
[[nodiscard]] DnsName resolve_name(const std::string& token, const DnsName& origin,
                                   std::size_t line) {
  if (token == "@") return origin;
  const bool absolute = !token.empty() && token.back() == '.';
  auto parsed = DnsName::parse(token);
  if (!parsed) throw ZoneFileError(line, "malformed name: " + token);
  if (absolute) return *parsed;
  return parsed->concat(origin);
}

}  // namespace

std::string to_zone_file(const Zone& zone) {
  std::ostringstream out;
  const std::string origin = zone.origin().to_canonical_string() + ".";
  out << "$ORIGIN " << origin << "\n";
  out << "$TTL 3600\n";

  const auto owner_text = [&zone](const DnsName& name) -> std::string {
    if (name == zone.origin()) return "@";
    // Render relative to the origin when possible.
    const std::size_t origin_labels = zone.origin().label_count();
    if (name.ends_with(zone.origin()) && name.label_count() > origin_labels) {
      std::vector<std::string> labels(
          name.labels().begin(),
          name.labels().begin() +
              static_cast<std::ptrdiff_t>(name.label_count() - origin_labels));
      return util::join(labels, ".");
    }
    return name.to_canonical_string() + ".";
  };

  for (const auto& rr : zone.dump()) {
    out << owner_text(rr.name) << "\t" << rr.ttl << "\tIN\t" << dns::to_string(rr.type())
        << "\t";
    struct Visitor {
      std::ostream& os;
      void operator()(const ARdata& r) { os << r.address.to_string(); }
      void operator()(const NsRdata& r) { os << r.nsdname.to_canonical_string() << "."; }
      void operator()(const CnameRdata& r) { os << r.cname.to_canonical_string() << "."; }
      void operator()(const SoaRdata& r) {
        os << r.mname.to_canonical_string() << ". " << r.rname.to_canonical_string() << ". ("
           << r.serial << " " << r.refresh << " " << r.retry << " " << r.expire << " "
           << r.minimum << ")";
      }
      void operator()(const PtrRdata& r) { os << r.ptrdname.to_canonical_string() << "."; }
      void operator()(const TxtRdata& r) {
        for (std::size_t i = 0; i < r.strings.size(); ++i) {
          if (i > 0) os << " ";
          os << "\"" << r.strings[i] << "\"";
        }
      }
      void operator()(const RawRdata& r) { os << "\\# " << r.data.size(); }
    };
    std::visit(Visitor{out}, rr.rdata);
    out << "\n";
  }
  return out.str();
}

std::vector<ResourceRecord> parse_zone_file(const std::string& text,
                                            const DnsName& default_origin) {
  std::vector<ResourceRecord> records;
  Tokenizer tokenizer{text};
  DnsName origin = default_origin;
  std::uint32_t default_ttl = 3600;
  DnsName previous_owner;
  bool have_owner = false;

  std::vector<std::string> tokens;
  bool leading_blank = false;
  std::size_t line = 0;
  while (tokenizer.next_line(tokens, leading_blank, line)) {
    // Directives.
    if (util::iequals(tokens[0], "$ORIGIN")) {
      if (tokens.size() != 2) throw ZoneFileError(line, "$ORIGIN needs one argument");
      origin = resolve_name(tokens[1], origin, line);
      continue;
    }
    if (util::iequals(tokens[0], "$TTL")) {
      if (tokens.size() != 2 || !parse_u32(tokens[1], default_ttl)) {
        throw ZoneFileError(line, "$TTL needs a numeric argument");
      }
      continue;
    }
    if (tokens[0].size() > 1 && tokens[0][0] == '$') {
      throw ZoneFileError(line, "unsupported directive: " + tokens[0]);
    }

    // Owner handling: leading whitespace repeats the previous owner.
    std::size_t i = 0;
    DnsName owner;
    if (leading_blank) {
      if (!have_owner) throw ZoneFileError(line, "record without a previous owner");
      owner = previous_owner;
    } else {
      owner = resolve_name(tokens[i++], origin, line);
    }
    previous_owner = owner;
    have_owner = true;

    // Optional TTL and/or class, in either order.
    std::uint32_t ttl = default_ttl;
    RrClass klass = RrClass::IN;
    for (int pass = 0; pass < 2 && i < tokens.size(); ++pass) {
      std::uint32_t maybe_ttl = 0;
      if (parse_u32(tokens[i], maybe_ttl)) {
        ttl = maybe_ttl;
        ++i;
      } else if (is_class_token(tokens[i])) {
        ++i;  // only IN is modelled
      }
    }
    if (i >= tokens.size()) throw ZoneFileError(line, "missing record type");
    const int type_int = type_of_token(tokens[i]);
    if (type_int < 0) throw ZoneFileError(line, "unsupported record type: " + tokens[i]);
    ++i;
    const auto type = static_cast<RrType>(type_int);

    const auto need = [&](std::size_t n) {
      if (tokens.size() - i < n) throw ZoneFileError(line, "truncated RDATA");
    };
    ResourceRecord rr;
    rr.name = owner;
    rr.ttl = ttl;
    rr.klass = klass;
    switch (type) {
      case RrType::A: {
        need(1);
        const auto a = net::Ipv4Addr::parse(tokens[i]);
        if (!a) throw ZoneFileError(line, "malformed A address: " + tokens[i]);
        rr.rdata = ARdata{*a};
        break;
      }
      case RrType::NS:
        need(1);
        rr.rdata = NsRdata{resolve_name(tokens[i], origin, line)};
        break;
      case RrType::CNAME:
        need(1);
        rr.rdata = CnameRdata{resolve_name(tokens[i], origin, line)};
        break;
      case RrType::PTR:
        need(1);
        rr.rdata = PtrRdata{resolve_name(tokens[i], origin, line)};
        break;
      case RrType::SOA: {
        need(7);
        SoaRdata soa;
        soa.mname = resolve_name(tokens[i], origin, line);
        soa.rname = resolve_name(tokens[i + 1], origin, line);
        std::uint32_t values[5];
        for (int v = 0; v < 5; ++v) {
          if (!parse_u32(tokens[i + 2 + static_cast<std::size_t>(v)], values[v])) {
            throw ZoneFileError(line, "malformed SOA numeric field");
          }
        }
        soa.serial = values[0];
        soa.refresh = values[1];
        soa.retry = values[2];
        soa.expire = values[3];
        soa.minimum = values[4];
        rr.rdata = std::move(soa);
        break;
      }
      case RrType::TXT: {
        need(1);
        TxtRdata txt;
        for (; i < tokens.size(); ++i) {
          txt.strings.push_back(is_string_token(tokens[i]) ? tokens[i].substr(1) : tokens[i]);
        }
        rr.rdata = std::move(txt);
        break;
      }
      default:
        throw ZoneFileError(line, "unsupported record type");
    }
    records.push_back(std::move(rr));
  }
  return records;
}

Zone parse_zone(const std::string& text, const DnsName& default_origin) {
  const auto records = parse_zone_file(text, default_origin);
  const ResourceRecord* soa_rr = nullptr;
  for (const auto& rr : records) {
    if (rr.type() == RrType::SOA) {
      if (soa_rr != nullptr) throw ZoneFileError(0, "zone has more than one SOA");
      soa_rr = &rr;
    }
  }
  if (soa_rr == nullptr) throw ZoneFileError(0, "zone has no SOA record");
  Zone zone{soa_rr->name, std::get<SoaRdata>(soa_rr->rdata)};
  for (const auto& rr : records) {
    if (rr.type() == RrType::SOA) continue;
    zone.add(rr);  // duplicates of the auto-added apex NS are ignored
  }
  // Loading records bumped the serial; a loaded zone carries the file's.
  zone.set_serial(std::get<SoaRdata>(soa_rr->rdata).serial);
  return zone;
}

}  // namespace rdns::dns
