#pragma once
/// \file zonefile.hpp
/// RFC 1035 §5 master-file (zone file) serialization and parsing — the
/// interchange format operators actually hold their reverse zones in.
/// The leak auditor consumes these (see examples/zone_audit), so a network
/// operator can audit a `dig AXFR` / IPAM export without running anything
/// else from this library.
///
/// Supported subset: $ORIGIN and $TTL directives, comments (;), relative
/// and absolute owner names, blank owner repetition, optional TTL/class in
/// either order, record types A, NS, CNAME, SOA, PTR, TXT. Parenthesized
/// multi-line SOA values are supported.

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "dns/zone.hpp"

namespace rdns::dns {

class ZoneFileError : public std::runtime_error {
 public:
  ZoneFileError(std::size_t line, const std::string& message)
      : std::runtime_error("zone file line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Serialize a zone to master-file text ($ORIGIN + $TTL + records, SOA
/// first, owners relative to the origin where possible).
[[nodiscard]] std::string to_zone_file(const Zone& zone);

/// Parse master-file text into records. `default_origin` seeds $ORIGIN
/// resolution when the file does not begin with a $ORIGIN directive.
/// Returns the records in file order (including the SOA if present).
/// Throws ZoneFileError with a line number on malformed input.
[[nodiscard]] std::vector<ResourceRecord> parse_zone_file(
    const std::string& text, const DnsName& default_origin = DnsName{});

/// Parse a full zone: requires exactly one SOA record; every owner must be
/// within the SOA's owner (the zone origin).
[[nodiscard]] Zone parse_zone(const std::string& text,
                              const DnsName& default_origin = DnsName{});

}  // namespace rdns::dns
