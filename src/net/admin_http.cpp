#include "net/admin_http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "util/journal.hpp"
#include "util/metrics.hpp"

namespace rdns::net {

namespace {

using Clock = std::chrono::steady_clock;

void fill_sockaddr(const UdpEndpoint& ep, sockaddr_in& sa) {
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.address);
  sa.sin_port = htons(ep.port);
}

[[nodiscard]] const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    default: return "Error";
  }
}

/// Milliseconds left until `deadline`, clamped at 0.
[[nodiscard]] int ms_until(Clock::time_point deadline) noexcept {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now()).count();
  return left > 0 ? static_cast<int>(left) : 0;
}

/// Write all of `data` with a poll-guarded loop (the fd is non-blocking),
/// giving up when `deadline` passes — a peer that reads one byte per poll
/// window cannot hold the connection open past its overall budget.
bool write_all(int fd, std::string_view data, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int left = ms_until(deadline);
      if (left <= 0) return false;
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, left) <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

void set_nonblocking(int fd) { ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK); }

}  // namespace

AdminHttpServer::~AdminHttpServer() { stop(); }

void AdminHttpServer::route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool AdminHttpServer::start(const UdpEndpoint& endpoint, std::string* error) {
  if (running_) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string{"socket: "} + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  fill_sockaddr(endpoint, sa);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = "bind " + endpoint.to_string() + ": " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_.address = ntohl(bound.sin_addr.s_addr);
    bound_.port = ntohs(bound.sin_port);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = std::string{"pipe: "} + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(listen_fd_);
  stop_.store(false, std::memory_order_relaxed);
  running_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void AdminHttpServer::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fd_);
  ::close(wake_write_fd_);
  listen_fd_ = wake_fd_ = wake_write_fd_ = -1;
  running_ = false;
}

void AdminHttpServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfds[2] = {{listen_fd_, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
    const int ready = ::poll(pfds, 2, 250);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nonblocking(fd);
    // Admin traffic is one scrape at a time; handling connections serially
    // on the accept thread keeps the plane single-threaded and unable to
    // amplify load against the serving workers.
    serve_connection(fd);
    ::close(fd);
  }
}

void AdminHttpServer::serve_connection(int fd) {
  std::string request;
  const auto deadline = Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  bool timed_out = false;
  char buf[1024];
  while (request.find("\r\n") == std::string::npos && request.size() < max_request_bytes_) {
    // Deadline checked every iteration — including after a successful recv —
    // so a drip-feeding client (slowloris) is bounded by the connection
    // budget no matter how it paces its bytes.
    if (ms_until(deadline) <= 0) {
      timed_out = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, ms_until(deadline)) < 0) return;
  }

  // Request line: METHOD SP PATH SP VERSION. Anything else is a 400.
  HttpResponse response;
  const std::size_t line_end = request.find("\r\n");
  if (timed_out && line_end == std::string::npos) {
    response = HttpResponse{408, "text/plain; charset=utf-8", "request timeout\n"};
    const std::string head = "HTTP/1.0 408 Request Timeout\r\nContent-Type: " +
                             response.content_type + "\r\nContent-Length: " +
                             std::to_string(response.body.size()) + "\r\nConnection: close\r\n\r\n";
    // Best-effort notice with a short grace window; the deadline has passed.
    (void)write_all(fd, head + response.body, Clock::now() + std::chrono::milliseconds(100));
    return;
  }
  if (line_end == std::string::npos && request.size() >= max_request_bytes_) {
    // Oversize request line: refuse explicitly rather than trying to parse
    // a truncated line (the cap exists so a hostile client cannot make the
    // single-threaded plane buffer unbounded input).
    response = HttpResponse{431, "text/plain; charset=utf-8", "request line too large\n"};
    const std::string head = "HTTP/1.0 431 " + std::string{status_text(431)} +
                             "\r\nContent-Type: " + response.content_type +
                             "\r\nContent-Length: " + std::to_string(response.body.size()) +
                             "\r\nConnection: close\r\n\r\n";
    (void)write_all(fd, head + response.body, deadline);
    return;
  }
  const std::string line = request.substr(0, line_end == std::string::npos ? 0 : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    response = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    const auto it = routes_.find(path);
    if (it == routes_.end()) {
      std::string known = "not found; routes:";
      for (const auto& [route, handler] : routes_) known += " " + route;
      response = HttpResponse{404, "text/plain; charset=utf-8", known + "\n"};
    } else {
      response = it->second(path);
    }
  }

  std::string head = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     status_text(response.status) + "\r\nContent-Type: " +
                     response.content_type + "\r\nContent-Length: " +
                     std::to_string(response.body.size()) + "\r\nConnection: close\r\n\r\n";
  if (write_all(fd, head, deadline)) (void)write_all(fd, response.body, deadline);
}

std::optional<std::string> http_get(const UdpEndpoint& server, const std::string& path,
                                    std::string* error, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string{"socket: "} + std::strerror(errno);
    return std::nullopt;
  }
  struct Closer {
    int fd;
    ~Closer() { ::close(fd); }
  } closer{fd};
  set_nonblocking(fd);
  sockaddr_in sa{};
  fill_sockaddr(server, sa);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno != EINPROGRESS) {
      if (error != nullptr) *error = "connect: " + std::string{std::strerror(errno)};
      return std::nullopt;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      if (error != nullptr) *error = "connect timeout to " + server.to_string();
      return std::nullopt;
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      if (error != nullptr) *error = "connect: " + std::string{std::strerror(soerr)};
      return std::nullopt;
    }
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + server.to_string() +
                              "\r\nConnection: close\r\n\r\n";
  if (!write_all(fd, request, deadline)) {
    if (error != nullptr) *error = "send failed";
    return std::nullopt;
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      reply.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // peer closed: response complete (HTTP/1.0)
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      if (error != nullptr) *error = std::string{"recv: "} + std::strerror(errno);
      return std::nullopt;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      if (error != nullptr) *error = "response timeout";
      return std::nullopt;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) < 0) {
      if (error != nullptr) *error = "poll failed";
      return std::nullopt;
    }
  }
  const std::size_t header_end = reply.find("\r\n\r\n");
  if (header_end == std::string::npos || reply.rfind("HTTP/", 0) != 0) {
    if (error != nullptr) *error = "malformed HTTP response";
    return std::nullopt;
  }
  const std::size_t status_at = reply.find(' ');
  const int status = status_at == std::string::npos ? 0 : std::atoi(reply.c_str() + status_at + 1);
  if (status != 200) {
    if (error != nullptr) *error = "HTTP status " + std::to_string(status);
    return std::nullopt;
  }
  return reply.substr(header_end + 4);
}

std::string prometheus_registry_page(const std::string& default_tool) {
  namespace metrics = util::metrics;
  std::ostringstream out;
  metrics::Registry::global().write_prometheus(out);
  const auto manifest = util::journal::Journal::global().manifest();
  out << "# TYPE rdns_build_info gauge\n";
  out << "rdns_build_info{version=\""
      << metrics::prometheus_label_value(util::journal::version_string()) << "\",tool=\""
      << metrics::prometheus_label_value(manifest.has_value() ? manifest->tool : default_tool)
      << "\"} 1\n";
  return out.str();
}

void install_admin_routes(AdminHttpServer& http, std::string index_body,
                          std::function<std::string()> metrics_page) {
  http.route("/metrics", [page = std::move(metrics_page)](const std::string&) {
    return HttpResponse{200, kPrometheusContentType, page()};
  });
  http.route("/", [body = std::move(index_body)](const std::string&) {
    return HttpResponse{200, "text/plain; charset=utf-8", body};
  });
}

}  // namespace rdns::net
