#pragma once
/// \file admin_http.hpp
/// Minimal HTTP/1.0 admin listener for the live introspection plane: one
/// accept thread, exact-path GET routes, Connection: close. This is an
/// operator endpoint (a Prometheus scrape, `rdns_tool top`, curl) on the
/// loopback/management interface — deliberately not a general web server:
/// no keep-alive, no chunking, no TLS, requests capped at 4 KiB.
///
/// Endpoints reuse net::UdpEndpoint as the generic (address, port) pair —
/// the name says UDP for historical reasons, the struct is transport-free.

#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "net/udp.hpp"

namespace rdns::net {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminHttpServer {
 public:
  /// Handles one GET; the argument is the request path including any query
  /// string ("/stats.json?x=1").
  using Handler = std::function<HttpResponse(const std::string& path)>;

  AdminHttpServer() = default;
  ~AdminHttpServer();

  AdminHttpServer(const AdminHttpServer&) = delete;
  AdminHttpServer& operator=(const AdminHttpServer&) = delete;

  /// Register an exact-match route ("/metrics"). Query strings are stripped
  /// before matching. Must be called before start().
  void route(std::string path, Handler handler);

  /// Bind + listen on `endpoint` (port 0 = kernel-assigned) and launch the
  /// accept thread. Returns false and fills `error` on failure.
  [[nodiscard]] bool start(const UdpEndpoint& endpoint, std::string* error = nullptr);

  /// Stop the accept thread and close the listener. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The actually bound endpoint (resolves port 0). Valid after start().
  [[nodiscard]] UdpEndpoint endpoint() const noexcept { return bound_; }

  /// Per-connection wall-clock budget covering the whole exchange (read
  /// *and* write). A client that drips bytes — the slowloris pattern — is
  /// cut off when the budget expires, even if every individual recv makes
  /// progress. Must be set before start().
  void set_io_timeout_ms(int timeout_ms) noexcept {
    if (timeout_ms > 0) io_timeout_ms_ = timeout_ms;
  }
  [[nodiscard]] int io_timeout_ms() const noexcept { return io_timeout_ms_; }

  /// Request-size cap; a request that reaches it without completing its
  /// request line is answered 431 and the connection closed. Must be set
  /// before start().
  void set_max_request_bytes(std::size_t bytes) noexcept {
    if (bytes >= 16) max_request_bytes_ = bytes;
  }
  [[nodiscard]] std::size_t max_request_bytes() const noexcept { return max_request_bytes_; }

 private:
  void run();
  void serve_connection(int fd);

  std::map<std::string, Handler> routes_;
  std::thread thread_;
  UdpEndpoint bound_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;        ///< pipe read end: interrupts the accept poll
  int wake_write_fd_ = -1;  ///< pipe write end
  std::atomic<bool> stop_{false};
  bool running_ = false;
  int io_timeout_ms_ = 2000;
  std::size_t max_request_bytes_ = 4096;
};

/// Blocking HTTP/1.0 GET against `server`; returns the response body on a
/// 200, nullopt otherwise (error, non-200, timeout). The client side of the
/// admin plane: `rdns_tool top` and the bench A/B scrape use it.
[[nodiscard]] std::optional<std::string> http_get(const UdpEndpoint& server,
                                                  const std::string& path,
                                                  std::string* error = nullptr,
                                                  int timeout_ms = 2000);

/// Prometheus text content type (exposition format 0.0.4).
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/// The page every admin plane serves at /metrics: the global metrics
/// registry in Prometheus text plus an `rdns_build_info` line carrying the
/// binary version and the RunManifest tool name (`default_tool` when no
/// manifest was recorded). Plane-specific gauges are appended by the
/// caller's metrics renderer.
[[nodiscard]] std::string prometheus_registry_page(const std::string& default_tool);

/// Install the routes shared by every admin plane — "/" (a plain-text
/// index, conventionally listing the registered routes) and "/metrics"
/// (rendered by `metrics_page`, served with kPrometheusContentType) — on
/// a not-yet-started server. serve and sweep both build their planes on
/// this plus their own JSON route (/stats.json, /progress.json).
void install_admin_routes(AdminHttpServer& http, std::string index_body,
                          std::function<std::string()> metrics_page);

}  // namespace rdns::net
