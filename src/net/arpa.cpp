#include "net/arpa.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace rdns::net {

std::string to_arpa(Ipv4Addr a) {
  return std::to_string(a.octet(3)) + "." + std::to_string(a.octet(2)) + "." +
         std::to_string(a.octet(1)) + "." + std::to_string(a.octet(0)) + ".in-addr.arpa";
}

std::optional<Ipv4Addr> from_arpa(std::string_view name) noexcept {
  std::string lowered = util::to_lower(name);
  if (!lowered.empty() && lowered.back() == '.') lowered.pop_back();
  constexpr std::string_view kSuffix = ".in-addr.arpa";
  if (!util::ends_with(lowered, kSuffix)) return std::nullopt;
  const std::string_view quad{lowered.data(), lowered.size() - kSuffix.size()};

  const auto parts = util::split(quad, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint8_t octets[4];
  for (int i = 0; i < 4; ++i) {
    const std::string& part = parts[static_cast<std::size_t>(i)];
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > 255) return std::nullopt;
    // arpa names are reversed: first label is the LAST octet.
    octets[3 - i] = static_cast<std::uint8_t>(value);
  }
  return Ipv4Addr{octets[0], octets[1], octets[2], octets[3]};
}

std::string arpa_zone_for(const Prefix& p) {
  const Ipv4Addr a = p.network();
  switch (p.length()) {
    case 24:
      return std::to_string(a.octet(2)) + "." + std::to_string(a.octet(1)) + "." +
             std::to_string(a.octet(0)) + ".in-addr.arpa";
    case 16:
      return std::to_string(a.octet(1)) + "." + std::to_string(a.octet(0)) + ".in-addr.arpa";
    case 8:
      return std::to_string(a.octet(0)) + ".in-addr.arpa";
    default:
      throw std::invalid_argument("arpa_zone_for: only /8, /16, /24 zone cuts supported, got " +
                                  p.to_string());
  }
}

}  // namespace rdns::net
