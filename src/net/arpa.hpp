#pragma once
/// \file arpa.hpp
/// in-addr.arpa conversions (RFC 1035 §3.5). A PTR query for 93.184.216.34
/// asks for the name 34.216.184.93.in-addr.arpa. (paper Example 1).

#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace rdns::net {

/// Reverse-DNS query name for an address: "34.216.184.93.in-addr.arpa".
/// (No trailing dot; DNS names in this library are stored without the root
/// label and compared case-insensitively.)
[[nodiscard]] std::string to_arpa(Ipv4Addr a);

/// Parse "d.c.b.a.in-addr.arpa" (case-insensitive, optional trailing dot)
/// back to an address; nullopt if the name is not a full 4-octet arpa name.
[[nodiscard]] std::optional<Ipv4Addr> from_arpa(std::string_view name) noexcept;

/// The in-addr.arpa zone apex for a /24, /16 or /8 prefix, e.g.
/// 192.0.2.0/24 -> "2.0.192.in-addr.arpa". These are the natural reverse
/// zone cuts; other lengths throw std::invalid_argument.
[[nodiscard]] std::string arpa_zone_for(const Prefix& p);

}  // namespace rdns::net
