#include "net/ip_bitset.hpp"

#include <bit>

namespace rdns::net {

Ipv4Bitset::Ipv4Bitset(const Ipv4Bitset& other) : count_(other.count_) {
  blocks_.reserve(other.blocks_.size());
  for (const auto& [key, block] : other.blocks_) {
    blocks_.emplace(key, std::make_unique<Block>(*block));
  }
}

Ipv4Bitset& Ipv4Bitset::operator=(const Ipv4Bitset& other) {
  if (this == &other) return *this;
  Ipv4Bitset copy{other};
  *this = std::move(copy);
  return *this;
}

bool Ipv4Bitset::insert(Ipv4Addr a) {
  auto& block = blocks_[block_key(a)];
  if (!block) block = std::make_unique<Block>(Block{});
  const std::uint32_t low = a.value() & 0xFFFFu;
  std::uint64_t& word = (*block)[low >> 6];
  const std::uint64_t bit = 1ULL << (low & 63u);
  if ((word & bit) != 0) return false;
  word |= bit;
  ++count_;
  return true;
}

bool Ipv4Bitset::contains(Ipv4Addr a) const noexcept {
  const auto it = blocks_.find(block_key(a));
  if (it == blocks_.end()) return false;
  const std::uint32_t low = a.value() & 0xFFFFu;
  return ((*it->second)[low >> 6] & (1ULL << (low & 63u))) != 0;
}

void Ipv4Bitset::clear() noexcept {
  blocks_.clear();
  count_ = 0;
}

void Ipv4Bitset::merge(const Ipv4Bitset& other) {
  for (const auto& [key, other_block] : other.blocks_) {
    auto& block = blocks_[key];
    if (!block) {
      block = std::make_unique<Block>(*other_block);
      for (const std::uint64_t word : *block) {
        count_ += static_cast<std::uint64_t>(std::popcount(word));
      }
      continue;
    }
    for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
      const std::uint64_t added = (*other_block)[i] & ~(*block)[i];
      (*block)[i] |= (*other_block)[i];
      count_ += static_cast<std::uint64_t>(std::popcount(added));
    }
  }
}

}  // namespace rdns::net
