#pragma once
/// \file ip_bitset.hpp
/// Compact membership set over IPv4 addresses, used for sweep-time
/// de-duplication. A full-space sweep touches millions of addresses;
/// `std::unordered_set<Ipv4Addr>` costs ~30+ bytes and a hash probe per
/// member, while announced space is dense — so we keep one 8 KiB bitmap
/// per touched /16 (lazily allocated) and test/set single bits. Shards of
/// a parallel sweep each fill their own bitset and union them at the end.

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/ipv4.hpp"

namespace rdns::net {

class Ipv4Bitset {
 public:
  Ipv4Bitset() = default;

  Ipv4Bitset(const Ipv4Bitset& other);
  Ipv4Bitset& operator=(const Ipv4Bitset& other);
  Ipv4Bitset(Ipv4Bitset&&) noexcept = default;
  Ipv4Bitset& operator=(Ipv4Bitset&&) noexcept = default;

  /// Set the bit for `a`; returns true if it was not set before.
  bool insert(Ipv4Addr a);

  [[nodiscard]] bool contains(Ipv4Addr a) const noexcept;

  /// Number of set bits.
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  void clear() noexcept;

  /// Set union: absorb every member of `other`.
  void merge(const Ipv4Bitset& other);

 private:
  static constexpr std::size_t kWordsPerBlock = (1u << 16) / 64;  // one /16
  using Block = std::array<std::uint64_t, kWordsPerBlock>;

  [[nodiscard]] static std::uint32_t block_key(Ipv4Addr a) noexcept {
    return a.value() >> 16;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<Block>> blocks_;
  std::uint64_t count_ = 0;
};

}  // namespace rdns::net
