#include "net/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

namespace rdns::net {

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) noexcept {
  std::uint32_t octets[4] = {0, 0, 0, 0};
  int octet_index = 0;
  int digits = 0;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      if (++digits > 3) return std::nullopt;
      octets[octet_index] = octets[octet_index] * 10 + static_cast<std::uint32_t>(c - '0');
      if (octets[octet_index] > 255) return std::nullopt;
    } else if (c == '.') {
      if (digits == 0 || octet_index == 3) return std::nullopt;
      ++octet_index;
      digits = 0;
    } else {
      return std::nullopt;
    }
  }
  if (octet_index != 3 || digits == 0) return std::nullopt;
  return Ipv4Addr{static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                  static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3])};
}

Ipv4Addr Ipv4Addr::must_parse(std::string_view text) {
  const auto a = parse(text);
  if (!a) throw std::invalid_argument("Ipv4Addr: malformed address: " + std::string{text});
  return *a;
}

}  // namespace rdns::net
