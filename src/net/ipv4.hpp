#pragma once
/// \file ipv4.hpp
/// IPv4 address value type. The study is IPv4-only (Section 8 notes that
/// IPv6-scale scanning is out of scope), so the whole library works in terms
/// of this 32-bit value type.

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace rdns::net {

/// An IPv4 address; internally host byte order for cheap arithmetic.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() noexcept = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad text form ("93.184.216.34").
  [[nodiscard]] std::string to_string() const;

  /// Parse dotted-quad; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Addr> parse(std::string_view text) noexcept;

  /// Parse or throw std::invalid_argument; for literals in tests/benches.
  [[nodiscard]] static Ipv4Addr must_parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr operator+(std::uint32_t n) const noexcept {
    return Ipv4Addr{value_ + n};
  }
  [[nodiscard]] constexpr Ipv4Addr operator-(std::uint32_t n) const noexcept {
    return Ipv4Addr{value_ - n};
  }
  Ipv4Addr& operator++() noexcept {
    ++value_;
    return *this;
  }

  constexpr auto operator<=>(const Ipv4Addr&) const noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// The enclosing /24 network address (low octet zeroed). The paper's
/// dynamicity heuristic groups PTR observations by /24 (Section 4.1).
[[nodiscard]] constexpr Ipv4Addr slash24_of(Ipv4Addr a) noexcept {
  return Ipv4Addr{a.value() & 0xFFFFFF00u};
}

}  // namespace rdns::net

template <>
struct std::hash<rdns::net::Ipv4Addr> {
  [[nodiscard]] std::size_t operator()(const rdns::net::Ipv4Addr& a) const noexcept {
    // Fibonacci hashing spreads sequential addresses across buckets.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ULL;
  }
};
