#include "net/mac.hpp"

#include <cstdio>
#include <vector>

namespace rdns::net {

namespace {

/// Representative OUIs per vendor class (one well-known block each).
struct OuiEntry {
  std::array<std::uint8_t, 3> oui;
  MacVendor vendor;
};

constexpr OuiEntry kOuiTable[] = {
    {{0xF0, 0x18, 0x98}, MacVendor::Apple},   {{0x8C, 0x85, 0x90}, MacVendor::Apple},
    {{0x5C, 0x0A, 0x5B}, MacVendor::Samsung}, {{0x78, 0x25, 0xAD}, MacVendor::Samsung},
    {{0xD4, 0xBE, 0xD9}, MacVendor::Dell},    {{0x18, 0xDB, 0xF2}, MacVendor::Dell},
    {{0x54, 0xE1, 0xAD}, MacVendor::Lenovo},  {{0x3C, 0x28, 0x6D}, MacVendor::Google},
    {{0xAC, 0x3A, 0x7A}, MacVendor::Roku},    {{0x34, 0x13, 0xE8}, MacVendor::Intel},
};

}  // namespace

const char* to_string(MacVendor v) noexcept {
  switch (v) {
    case MacVendor::Unknown: return "unknown";
    case MacVendor::Apple: return "apple";
    case MacVendor::Samsung: return "samsung";
    case MacVendor::Dell: return "dell";
    case MacVendor::Lenovo: return "lenovo";
    case MacVendor::Google: return "google";
    case MacVendor::Roku: return "roku";
    case MacVendor::Intel: return "intel";
    case MacVendor::Randomized: return "randomized";
  }
  return "?";
}

std::string Mac::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::optional<Mac> Mac::parse(std::string_view text) noexcept {
  std::array<std::uint8_t, 6> bytes{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (pos + 2 > text.size()) return std::nullopt;
    unsigned value = 0;
    for (int d = 0; d < 2; ++d) {
      const char c = text[pos++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return std::nullopt;
    }
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    if (i < 5) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Mac{bytes};
}

MacVendor Mac::vendor() const noexcept {
  if (locally_administered()) return MacVendor::Randomized;
  for (const auto& entry : kOuiTable) {
    if (entry.oui[0] == bytes_[0] && entry.oui[1] == bytes_[1] && entry.oui[2] == bytes_[2]) {
      return entry.vendor;
    }
  }
  return MacVendor::Unknown;
}

Mac Mac::random(MacVendor vendor, util::Rng& rng) noexcept {
  std::array<std::uint8_t, 6> bytes{};
  if (vendor == MacVendor::Randomized) {
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    bytes[0] = static_cast<std::uint8_t>((bytes[0] | 0x02) & 0xFE);  // local, unicast
  } else {
    // Pick an OUI matching the vendor (first match if several).
    std::array<std::uint8_t, 3> oui{0x02, 0x00, 0x00};
    std::vector<const OuiEntry*> candidates;
    for (const auto& entry : kOuiTable) {
      if (entry.vendor == vendor) candidates.push_back(&entry);
    }
    if (!candidates.empty()) {
      oui = candidates[rng.index(candidates.size())]->oui;
    }
    bytes[0] = oui[0];
    bytes[1] = oui[1];
    bytes[2] = oui[2];
    for (std::size_t i = 3; i < 6; ++i) {
      bytes[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
  return Mac{bytes};
}

}  // namespace rdns::net
