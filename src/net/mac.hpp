#pragma once
/// \file mac.hpp
/// MAC (EUI-48) addresses. DHCP identifies clients by their hardware
/// address (`chaddr`); devices in the simulator each carry one, and the OUI
/// tag lets the DDNS bridge model vendor-specific client behaviour.

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace rdns::net {

/// Rough vendor classes used by the simulator (not a full OUI database).
enum class MacVendor : std::uint8_t {
  Unknown = 0,
  Apple,
  Samsung,
  Dell,
  Lenovo,
  Google,
  Roku,
  Intel,
  Randomized,  ///< locally administered (privacy/randomized MAC)
};

[[nodiscard]] const char* to_string(MacVendor v) noexcept;

class Mac {
 public:
  constexpr Mac() noexcept = default;
  constexpr explicit Mac(const std::array<std::uint8_t, 6>& bytes) noexcept : bytes_(bytes) {}

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const noexcept {
    return bytes_;
  }

  /// "aa:bb:cc:dd:ee:ff".
  [[nodiscard]] std::string to_string() const;

  /// Parse colon-separated hex; nullopt on malformed input.
  [[nodiscard]] static std::optional<Mac> parse(std::string_view text) noexcept;

  /// True if the locally administered bit is set (randomized MACs).
  [[nodiscard]] constexpr bool locally_administered() const noexcept {
    return (bytes_[0] & 0x02) != 0;
  }

  /// Vendor class from the OUI (first three bytes).
  [[nodiscard]] MacVendor vendor() const noexcept;

  /// Generate a MAC with the OUI of `vendor` and random NIC bytes.
  [[nodiscard]] static Mac random(MacVendor vendor, util::Rng& rng) noexcept;

  /// 64-bit key for maps (top 16 bits zero).
  [[nodiscard]] constexpr std::uint64_t key() const noexcept {
    std::uint64_t k = 0;
    for (const auto b : bytes_) k = (k << 8) | b;
    return k;
  }

  constexpr auto operator<=>(const Mac&) const noexcept = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace rdns::net

template <>
struct std::hash<rdns::net::Mac> {
  [[nodiscard]] std::size_t operator()(const rdns::net::Mac& m) const noexcept {
    return static_cast<std::size_t>(m.key() * 0x9E3779B97F4A7C15ULL);
  }
};
