#include "net/prefix.hpp"

#include <charconv>
#include <stdexcept>

namespace rdns::net {

std::vector<Prefix> Prefix::slash24s() const {
  std::vector<Prefix> out;
  if (length_ >= 24) {
    out.emplace_back(slash24_of(addr_), 24);
    return out;
  }
  out.reserve(static_cast<std::size_t>(slash24_count()));
  const std::uint32_t step = 1u << 8;  // one /24
  const std::uint32_t start = addr_.value();
  const std::uint64_t n = slash24_count();
  for (std::uint64_t i = 0; i < n; ++i) {
    out.emplace_back(Ipv4Addr{start + static_cast<std::uint32_t>(i) * step}, 24);
  }
  return out;
}

std::pair<Prefix, Prefix> Prefix::split() const {
  if (length_ >= 32) throw std::logic_error("Prefix::split: cannot split a /32");
  const int child_len = length_ + 1;
  const Prefix lo{addr_, child_len};
  const Prefix hi{Ipv4Addr{addr_.value() | (1u << (32 - child_len))}, child_len};
  return {lo, hi};
}

std::string Prefix::to_string() const {
  return addr_.to_string() + "/" + std::to_string(length_);
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string_view len_text = text.substr(slash + 1);
  int len = -1;
  const auto [ptr, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), len);
  if (ec != std::errc{} || ptr != len_text.data() + len_text.size() || len < 0 || len > 32) {
    return std::nullopt;
  }
  return Prefix{*addr, len};
}

Prefix Prefix::must_parse(std::string_view text) {
  const auto p = parse(text);
  if (!p) throw std::invalid_argument("Prefix: malformed prefix: " + std::string{text});
  return *p;
}

}  // namespace rdns::net
