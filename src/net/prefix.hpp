#pragma once
/// \file prefix.hpp
/// CIDR prefixes. Used for numbering plans (which subprefixes of an
/// announced block are dynamic), scanner target lists, blocklists, and the
/// Fig. 1 roll-up of dynamic /24s to announced prefixes.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.hpp"

namespace rdns::net {

/// An IPv4 CIDR prefix (network address + prefix length 0..32).
class Prefix {
 public:
  constexpr Prefix() noexcept = default;

  /// Construct; host bits of `addr` are zeroed.
  constexpr Prefix(Ipv4Addr addr, int length) noexcept
      : length_(length), addr_(Ipv4Addr{addr.value() & mask_for(length)}) {}

  [[nodiscard]] constexpr Ipv4Addr network() const noexcept { return addr_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }

  /// Netmask as a 32-bit value.
  [[nodiscard]] static constexpr std::uint32_t mask_for(int length) noexcept {
    return length <= 0 ? 0u : (length >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - length)) - 1));
  }

  /// First address (== network()).
  [[nodiscard]] constexpr Ipv4Addr first() const noexcept { return addr_; }
  /// Last address (broadcast for subnets).
  [[nodiscard]] constexpr Ipv4Addr last() const noexcept {
    return Ipv4Addr{addr_.value() | ~mask_for(length_)};
  }

  /// Number of addresses covered (2^(32-len)); 2^32 saturates to max.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Addr a) const noexcept {
    return (a.value() & mask_for(length_)) == addr_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.addr_);
  }

  /// Number of /24 blocks covered; prefixes longer than /24 report 1
  /// (they fall inside a single /24).
  [[nodiscard]] constexpr std::uint64_t slash24_count() const noexcept {
    return length_ >= 24 ? 1 : (std::uint64_t{1} << (24 - length_));
  }

  /// Enumerate the /24 subprefixes (or the single covering /24).
  [[nodiscard]] std::vector<Prefix> slash24s() const;

  /// Split into the two child prefixes of length+1. Requires length < 32.
  [[nodiscard]] std::pair<Prefix, Prefix> split() const;

  /// Text form "a.b.c.d/len".
  [[nodiscard]] std::string to_string() const;

  /// Parse "a.b.c.d/len"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text) noexcept;
  [[nodiscard]] static Prefix must_parse(std::string_view text);

  constexpr auto operator<=>(const Prefix&) const noexcept = default;

 private:
  int length_ = 0;
  Ipv4Addr addr_;
};

/// The /24 containing an address, as a Prefix.
[[nodiscard]] constexpr Prefix slash24_prefix_of(Ipv4Addr a) noexcept {
  return Prefix{slash24_of(a), 24};
}

}  // namespace rdns::net
