#include "net/prefix_set.hpp"

namespace rdns::net {

void PrefixSet::add(const Prefix& p) { add_range(p.first(), p.last()); }

void PrefixSet::add_range(Ipv4Addr first, Ipv4Addr last) {
  std::uint32_t lo = first.value();
  std::uint32_t hi = last.value();
  if (lo > hi) std::swap(lo, hi);

  // Find all ranges that overlap or are adjacent to [lo, hi] and merge.
  auto it = ranges_.lower_bound(lo);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    // prev starts before lo; merge if it overlaps [lo,hi] or abuts it.
    // (prev->second >= lo covers overlap incl. prev->second == UINT32_MAX;
    // the second test covers exact adjacency without overflow.)
    if (prev->second >= lo || prev->second + 1 == lo) it = prev;
  }
  while (it != ranges_.end() && (hi == 0xFFFFFFFFu || it->first <= hi + 1)) {
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(lo, hi);
}

bool PrefixSet::contains(Ipv4Addr a) const noexcept {
  const std::uint32_t v = a.value();
  auto it = ranges_.upper_bound(v);
  if (it == ranges_.begin()) return false;
  --it;
  return v >= it->first && v <= it->second;
}

bool PrefixSet::overlaps(const Prefix& p) const noexcept {
  const std::uint32_t lo = p.first().value();
  const std::uint32_t hi = p.last().value();
  auto it = ranges_.upper_bound(hi);
  if (it == ranges_.begin()) return false;
  --it;
  return it->second >= lo;
}

std::uint64_t PrefixSet::address_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [lo, hi] : ranges_) total += std::uint64_t{hi} - lo + 1;
  return total;
}

std::vector<std::pair<Ipv4Addr, Ipv4Addr>> PrefixSet::ranges() const {
  std::vector<std::pair<Ipv4Addr, Ipv4Addr>> out;
  out.reserve(ranges_.size());
  for (const auto& [lo, hi] : ranges_) out.emplace_back(Ipv4Addr{lo}, Ipv4Addr{hi});
  return out;
}

void MostSpecificMatcher::add(const Prefix& p) {
  auto& bucket = by_length_[static_cast<std::size_t>(p.length())];
  if (bucket.emplace(p.network().value(), p).second) ++count_;
}

std::optional<Prefix> MostSpecificMatcher::match(Ipv4Addr a) const noexcept {
  for (int len = 32; len >= 0; --len) {
    const auto& bucket = by_length_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const std::uint32_t key = a.value() & Prefix::mask_for(len);
    const auto it = bucket.find(key);
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

std::optional<Prefix> MostSpecificMatcher::match(const Prefix& p) const noexcept {
  // Most-specific announced prefix that covers ALL of p.
  for (int len = p.length(); len >= 0; --len) {
    const auto& bucket = by_length_[static_cast<std::size_t>(len)];
    if (bucket.empty()) continue;
    const std::uint32_t key = p.network().value() & Prefix::mask_for(len);
    const auto it = bucket.find(key);
    if (it != bucket.end()) return it->second;
  }
  return std::nullopt;
}

}  // namespace rdns::net
