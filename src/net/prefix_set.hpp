#pragma once
/// \file prefix_set.hpp
/// A set of disjoint IPv4 ranges built from CIDR prefixes, with O(log n)
/// membership tests. Two uses mirror the paper's tooling:
///   - ZMap-style blocklists (opt-out honoring, Section 9), and
///   - mapping a /24 back to the most-specific announced covering prefix
///     (Fig. 1) via `MostSpecificMatcher`.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace rdns::net {

/// Disjoint-interval set over the IPv4 space.
class PrefixSet {
 public:
  void add(const Prefix& p);
  void add_range(Ipv4Addr first, Ipv4Addr last);

  [[nodiscard]] bool contains(Ipv4Addr a) const noexcept;
  /// True if any address of `p` is in the set.
  [[nodiscard]] bool overlaps(const Prefix& p) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }
  [[nodiscard]] std::size_t range_count() const noexcept { return ranges_.size(); }

  /// Total number of addresses covered.
  [[nodiscard]] std::uint64_t address_count() const noexcept;

  /// The merged, disjoint [first,last] ranges in ascending order.
  [[nodiscard]] std::vector<std::pair<Ipv4Addr, Ipv4Addr>> ranges() const;

 private:
  // key = range start, value = range end (inclusive); ranges are disjoint
  // and non-adjacent (adjacent ranges are coalesced on insert).
  std::map<std::uint32_t, std::uint32_t> ranges_;
};

/// Longest-prefix matcher over a static table of announced prefixes.
/// `match` returns the most-specific prefix covering an address, mirroring
/// mapping dynamic /24s "back to the most-specific announced, covering
/// prefix" (Section 4.2).
class MostSpecificMatcher {
 public:
  void add(const Prefix& p);

  /// Most-specific covering prefix, if any.
  [[nodiscard]] std::optional<Prefix> match(Ipv4Addr a) const noexcept;
  [[nodiscard]] std::optional<Prefix> match(const Prefix& p) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

 private:
  // Prefixes bucketed by length, longest first at query time.
  std::vector<std::map<std::uint32_t, Prefix>> by_length_ =
      std::vector<std::map<std::uint32_t, Prefix>>(33);
  std::size_t count_ = 0;
};

}  // namespace rdns::net
