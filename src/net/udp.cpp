#include "net/udp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/ipv4.hpp"

namespace rdns::net {

namespace {

void fill_sockaddr(const UdpEndpoint& ep, sockaddr_in& sa) {
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ep.address);
  sa.sin_port = htons(ep.port);
}

UdpEndpoint from_sockaddr(const sockaddr_in& sa) {
  UdpEndpoint ep;
  ep.address = ntohl(sa.sin_addr.s_addr);
  ep.port = ntohs(sa.sin_port);
  return ep;
}

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string{what} + ": " + std::strerror(errno);
}

[[nodiscard]] int open_nonblocking_udp_fd() {
#if defined(SOCK_NONBLOCK) && defined(SOCK_CLOEXEC)
  return ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
#else
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd >= 0) ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
#endif
}

[[nodiscard]] bool poll_one(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return (pfd.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

std::string UdpEndpoint::to_string() const {
  return Ipv4Addr{address}.to_string() + ":" + std::to_string(port);
}

std::optional<UdpEndpoint> UdpEndpoint::parse(const std::string& text) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) return std::nullopt;
  const auto addr = Ipv4Addr::parse(text.substr(0, colon));
  if (!addr) return std::nullopt;
  unsigned long port = 0;
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) return std::nullopt;
  UdpEndpoint ep;
  ep.address = addr->value();
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

std::optional<UdpSocket> UdpSocket::bind(const UdpEndpoint& local, bool reuse_port,
                                         std::string* error) {
  const int fd = open_nonblocking_udp_fd();
  if (fd < 0) {
    set_error(error, "socket");
    return std::nullopt;
  }
  UdpSocket sock{fd};
  if (reuse_port) {
#ifdef SO_REUSEPORT
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      set_error(error, "setsockopt(SO_REUSEPORT)");
      return std::nullopt;
    }
#else
    set_error(error, "SO_REUSEPORT unsupported on this platform");
    return std::nullopt;
#endif
  }
  sockaddr_in sa{};
  fill_sockaddr(local, sa);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    set_error(error, "bind");
    return std::nullopt;
  }
  return sock;
}

std::optional<UdpSocket> UdpSocket::open(std::string* error) {
  const int fd = open_nonblocking_udp_fd();
  if (fd < 0) {
    set_error(error, "socket");
    return std::nullopt;
  }
  return UdpSocket{fd};
}

bool UdpSocket::connect(const UdpEndpoint& peer, std::string* error) {
  sockaddr_in sa{};
  fill_sockaddr(peer, sa);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    set_error(error, "connect");
    return false;
  }
  return true;
}

std::optional<UdpEndpoint> UdpSocket::local_endpoint() const {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) return std::nullopt;
  return from_sockaddr(sa);
}

bool UdpSocket::send(std::span<const std::uint8_t> payload, const UdpEndpoint& peer) {
  sockaddr_in sa{};
  fill_sockaddr(peer, sa);
  const auto sent = ::sendto(fd_, payload.data(), payload.size(), 0,
                             reinterpret_cast<const sockaddr*>(&sa), sizeof(sa));
  return sent == static_cast<ssize_t>(payload.size());
}

bool UdpSocket::send(std::span<const std::uint8_t> payload) {
  const auto sent = ::send(fd_, payload.data(), payload.size(), 0);
  return sent == static_cast<ssize_t>(payload.size());
}

std::optional<std::size_t> UdpSocket::recv(std::span<std::uint8_t> buffer,
                                           UdpEndpoint* peer_out) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  // MSG_TRUNC makes recvfrom report the datagram's true length even when
  // it exceeds the buffer — the truncation signal the header promises.
  const auto got = ::recvfrom(fd_, buffer.data(), buffer.size(), MSG_TRUNC,
                              reinterpret_cast<sockaddr*>(&sa), &len);
  if (got < 0) return std::nullopt;
  if (peer_out != nullptr) *peer_out = from_sockaddr(sa);
  return static_cast<std::size_t>(got);
}

std::size_t UdpSocket::recv_batch(std::vector<UdpDatagram>& out, std::size_t max_batch,
                                  std::size_t max_payload) {
  if (max_batch == 0) return 0;
#if defined(__linux__)
  // recvmmsg: one syscall drains a burst. Stack-capped batch size keeps
  // the iovec/header arrays small; callers wanting more call again.
  constexpr std::size_t kMaxVecs = 64;
  const std::size_t batch = std::min(max_batch, kMaxVecs);
  std::vector<std::vector<std::uint8_t>> buffers(batch);
  mmsghdr headers[kMaxVecs];
  iovec iovecs[kMaxVecs];
  sockaddr_in sources[kMaxVecs];
  std::memset(headers, 0, sizeof(mmsghdr) * batch);
  for (std::size_t i = 0; i < batch; ++i) {
    buffers[i].resize(max_payload);
    iovecs[i].iov_base = buffers[i].data();
    iovecs[i].iov_len = buffers[i].size();
    headers[i].msg_hdr.msg_iov = &iovecs[i];
    headers[i].msg_hdr.msg_iovlen = 1;
    headers[i].msg_hdr.msg_name = &sources[i];
    headers[i].msg_hdr.msg_namelen = sizeof(sources[i]);
  }
  const int got = ::recvmmsg(fd_, headers, static_cast<unsigned>(batch), MSG_DONTWAIT, nullptr);
  if (got <= 0) return 0;
  for (int i = 0; i < got; ++i) {
    UdpDatagram d;
    d.truncated = (headers[i].msg_hdr.msg_flags & MSG_TRUNC) != 0;
    buffers[static_cast<std::size_t>(i)].resize(headers[i].msg_len);
    d.payload = std::move(buffers[static_cast<std::size_t>(i)]);
    d.peer = from_sockaddr(sources[i]);
    out.push_back(std::move(d));
  }
  return static_cast<std::size_t>(got);
#else
  // Portable fallback: loop single recvs until the queue is dry.
  std::size_t got = 0;
  std::vector<std::uint8_t> buffer(max_payload);
  while (got < max_batch) {
    UdpEndpoint peer;
    const auto n = recv(buffer, &peer);
    if (!n) break;
    UdpDatagram d;
    d.truncated = *n > buffer.size();
    d.payload.assign(buffer.begin(),
                     buffer.begin() + static_cast<std::ptrdiff_t>(std::min(*n, buffer.size())));
    d.peer = peer;
    out.push_back(std::move(d));
    ++got;
  }
  return got;
#endif
}

std::size_t UdpSocket::send_batch(const UdpDatagram* first, std::size_t count) {
  if (count == 0) return 0;
#if defined(__linux__)
  constexpr std::size_t kMaxVecs = 64;
  std::size_t sent_total = 0;
  while (sent_total < count) {
    const std::size_t batch = std::min(count - sent_total, kMaxVecs);
    mmsghdr headers[kMaxVecs];
    iovec iovecs[kMaxVecs];
    sockaddr_in dests[kMaxVecs];
    std::memset(headers, 0, sizeof(mmsghdr) * batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const UdpDatagram& d = first[sent_total + i];
      iovecs[i].iov_base = const_cast<std::uint8_t*>(d.payload.data());
      iovecs[i].iov_len = d.payload.size();
      fill_sockaddr(d.peer, dests[i]);
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
      headers[i].msg_hdr.msg_name = &dests[i];
      headers[i].msg_hdr.msg_namelen = sizeof(dests[i]);
    }
    const int sent = ::sendmmsg(fd_, headers, static_cast<unsigned>(batch), MSG_DONTWAIT);
    if (sent <= 0) break;
    sent_total += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < batch) break;  // back-pressure
  }
  return sent_total;
#else
  std::size_t sent_total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!send(first[i].payload, first[i].peer)) break;
    ++sent_total;
  }
  return sent_total;
#endif
}

std::size_t UdpSocket::send_batch(const UdpSendView* first, std::size_t count) {
  if (count == 0) return 0;
#if defined(__linux__)
  constexpr std::size_t kMaxVecs = 64;
  std::size_t sent_total = 0;
  while (sent_total < count) {
    const std::size_t batch = std::min(count - sent_total, kMaxVecs);
    mmsghdr headers[kMaxVecs];
    iovec iovecs[kMaxVecs];
    sockaddr_in dests[kMaxVecs];
    std::memset(headers, 0, sizeof(mmsghdr) * batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const UdpSendView& v = first[sent_total + i];
      iovecs[i].iov_base = const_cast<std::uint8_t*>(v.payload.data());
      iovecs[i].iov_len = v.payload.size();
      fill_sockaddr(v.peer, dests[i]);
      headers[i].msg_hdr.msg_iov = &iovecs[i];
      headers[i].msg_hdr.msg_iovlen = 1;
      headers[i].msg_hdr.msg_name = &dests[i];
      headers[i].msg_hdr.msg_namelen = sizeof(dests[i]);
    }
    const int sent = ::sendmmsg(fd_, headers, static_cast<unsigned>(batch), MSG_DONTWAIT);
    if (sent <= 0) break;
    sent_total += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < batch) break;  // back-pressure
  }
  return sent_total;
#else
  std::size_t sent_total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (!send(first[i].payload, first[i].peer)) break;
    ++sent_total;
  }
  return sent_total;
#endif
}

bool UdpSocket::wait_readable(int timeout_ms) const { return poll_one(fd_, POLLIN, timeout_ms); }

bool UdpSocket::wait_writable(int timeout_ms) const { return poll_one(fd_, POLLOUT, timeout_ms); }

}  // namespace rdns::net
