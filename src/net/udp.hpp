#pragma once
/// \file udp.hpp
/// Thin RAII wrapper over a non-blocking IPv4 UDP socket: the first layer
/// of this codebase that meets the hardware. Everything above it (the
/// resolver's UdpTransport, the serving loop) speaks datagrams through
/// this class, so the batched-syscall surface (`recvmmsg`/`sendmmsg` on
/// Linux, a portable loop elsewhere) lives in exactly one place.
///
/// Design points:
///   - non-blocking by construction; readiness waits go through
///     wait_readable()/wait_writable() (poll(2)) with millisecond deadlines;
///   - SO_REUSEPORT is opt-in at bind time — the serving loop shards one
///     port across N worker sockets and lets the kernel hash flows;
///   - truncation is surfaced, not hidden: a datagram longer than the
///     caller's buffer reports its true length (Linux MSG_TRUNC semantics)
///     so DNS code can decide to retry-over-TCP / drop explicitly.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace rdns::net {

/// An IPv4 endpoint (host-order address value + port), convertible to and
/// from the textual "a.b.c.d:port" form used by --transport udp://... URIs.
struct UdpEndpoint {
  std::uint32_t address = 0;  ///< host byte order (0 = INADDR_ANY)
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;
  /// Parse "a.b.c.d:port"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<UdpEndpoint> parse(const std::string& text);

  [[nodiscard]] bool operator==(const UdpEndpoint& other) const noexcept = default;
};

/// One datagram in a batched send/receive: payload bytes plus the peer
/// endpoint (source on receive, destination on send).
struct UdpDatagram {
  std::vector<std::uint8_t> payload;
  UdpEndpoint peer;
  /// True when the kernel had more bytes than `payload` could hold; the
  /// payload carries the truncated prefix (DNS: a TC-style signal).
  bool truncated = false;
};

/// A borrowed-payload datagram for zero-copy batched sends: points into a
/// caller-owned buffer (e.g. the serve loop's per-batch reply slab) that
/// must stay alive across the send_batch call.
struct UdpSendView {
  std::span<const std::uint8_t> payload;
  UdpEndpoint peer;
};

/// Non-blocking IPv4/UDP socket. Move-only; the fd closes on destruction.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Create a socket bound to `local` (port 0 = kernel-assigned). With
  /// `reuse_port`, multiple sockets may bind the same endpoint and the
  /// kernel load-balances inbound datagrams between them (SO_REUSEPORT).
  /// Returns nullopt and fills `error` on failure.
  [[nodiscard]] static std::optional<UdpSocket> bind(const UdpEndpoint& local, bool reuse_port,
                                                     std::string* error = nullptr);

  /// Create an unbound socket for client use (bound implicitly on first
  /// send); `connect()` may pin the peer afterwards.
  [[nodiscard]] static std::optional<UdpSocket> open(std::string* error = nullptr);

  /// Pin the default peer: send() without an endpoint goes here, and the
  /// kernel filters inbound datagrams to this source.
  [[nodiscard]] bool connect(const UdpEndpoint& peer, std::string* error = nullptr);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Endpoint actually bound (resolves port 0 after bind).
  [[nodiscard]] std::optional<UdpEndpoint> local_endpoint() const;

  /// Send one datagram to `peer` (or the connected peer when omitted).
  /// Returns false on EWOULDBLOCK or any other send failure.
  [[nodiscard]] bool send(std::span<const std::uint8_t> payload, const UdpEndpoint& peer);
  [[nodiscard]] bool send(std::span<const std::uint8_t> payload);

  /// Receive one datagram into `buffer`; returns the datagram's *true*
  /// length (which may exceed buffer.size() — truncation), the source in
  /// `peer_out` (optional), or nullopt when nothing is queued.
  [[nodiscard]] std::optional<std::size_t> recv(std::span<std::uint8_t> buffer,
                                                UdpEndpoint* peer_out = nullptr);

  /// Batched receive: drain up to `max_batch` queued datagrams in one
  /// syscall where the platform has recvmmsg, else a recv loop. Each
  /// payload is capped at `max_payload` bytes with `truncated` set when
  /// the wire datagram was longer. Appends to `out`; returns the number
  /// of datagrams received (0 = nothing queued).
  std::size_t recv_batch(std::vector<UdpDatagram>& out, std::size_t max_batch,
                         std::size_t max_payload = kDefaultPayloadCap);

  /// Batched send of pre-addressed datagrams [first, first+count); one
  /// sendmmsg where available, else a send loop. Returns datagrams handed
  /// to the kernel (short counts happen under back-pressure; callers
  /// treat unsent datagrams as dropped — UDP semantics).
  std::size_t send_batch(const UdpDatagram* first, std::size_t count);

  /// Same batched send over borrowed payload views — the iovecs reference
  /// the caller's buffers directly, so assembled replies go from slab to
  /// kernel without an owning copy per datagram.
  std::size_t send_batch(const UdpSendView* first, std::size_t count);

  /// Block up to `timeout_ms` for readability/writability (poll). Returns
  /// true when ready, false on timeout. Negative timeout = wait forever.
  [[nodiscard]] bool wait_readable(int timeout_ms) const;
  [[nodiscard]] bool wait_writable(int timeout_ms) const;

  /// Default per-datagram payload cap for batched receives: the classic
  /// EDNS0-sized DNS buffer.
  static constexpr std::size_t kDefaultPayloadCap = 4096;

 private:
  explicit UdpSocket(int fd) noexcept : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace rdns::net
