#include "scan/campaign.hpp"

#include "util/strings.hpp"

namespace rdns::scan {

SupplementalCampaign::SupplementalCampaign(sim::World& world,
                                           std::vector<ReactiveEngine::Target> targets)
    : SupplementalCampaign(world, std::move(targets), CampaignWindow{},
                           ReactiveEngine::Config{}) {}

SupplementalCampaign::SupplementalCampaign(sim::World& world,
                                           std::vector<ReactiveEngine::Target> targets,
                                           CampaignWindow window)
    : SupplementalCampaign(world, std::move(targets), window, ReactiveEngine::Config{}) {}

SupplementalCampaign::SupplementalCampaign(sim::World& world,
                                           std::vector<ReactiveEngine::Target> targets,
                                           CampaignWindow window, ReactiveEngine::Config config)
    : world_(&world), engine_(world, std::move(targets), config), window_(window) {}

void SupplementalCampaign::run() {
  const util::SimTime from = util::to_sim_time(window_.from);
  const util::SimTime to = util::to_sim_time(window_.to) + util::kDay - 1;
  engine_.run(from, to);
}

CampaignTotals SupplementalCampaign::totals() const {
  CampaignTotals t;
  t.icmp_responses = engine_.icmp_responses();
  t.rdns_responses = engine_.rdns_ok();
  for (const auto& [name, obs] : engine_.networks()) {
    t.icmp_unique_ips += obs.icmp_responsive.size();
    t.rdns_unique_ips += obs.rdns_with_ptr.size();
    t.rdns_unique_ptrs += obs.unique_ptrs.size();
  }
  return t;
}

std::vector<NetworkRow> SupplementalCampaign::network_rows() const {
  std::vector<NetworkRow> rows;
  for (const auto& [name, obs] : engine_.networks()) {
    NetworkRow row;
    row.name = name;
    if (const sim::Organization* org =
            const_cast<sim::World*>(world_)->org_by_name(name)) {
      row.type = sim::to_string(org->type());
    }
    row.target_size = obs.target_addresses;
    row.addresses_observed = obs.icmp_responsive.size();
    row.percent_observed = obs.target_addresses == 0
                               ? 0.0
                               : 100.0 * static_cast<double>(row.addresses_observed) /
                                     static_cast<double>(obs.target_addresses);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<ReactiveEngine::Target> paper_targets(const sim::World& world) {
  std::vector<ReactiveEngine::Target> targets;
  for (const auto& org : world.orgs()) {
    const auto& name = org->name();
    // The campaign targets the paper-style anonymized networks only.
    if (name.rfind("Academic-", 0) == 0 || name.rfind("Enterprise-", 0) == 0 ||
        name.rfind("ISP-", 0) == 0) {
      const auto& spec = org->spec();
      targets.push_back(ReactiveEngine::Target{
          name, spec.measurement_targets.empty() ? spec.announced : spec.measurement_targets});
    }
  }
  return targets;
}

}  // namespace rdns::scan
