#pragma once
/// \file campaign.hpp
/// The supplemental measurement campaign: wires a ReactiveEngine to a set
/// of target networks over a date window and summarizes the outcome in the
/// shape of the paper's Tables 3 and 4.

#include <string>
#include <vector>

#include "scan/reactive.hpp"

namespace rdns::scan {

struct CampaignWindow {
  util::CivilDate from{2021, 10, 25};
  util::CivilDate to{2021, 12, 5};  ///< inclusive
};

/// Table 3 shape: measurement totals.
struct CampaignTotals {
  std::uint64_t icmp_responses = 0;
  std::uint64_t icmp_unique_ips = 0;
  std::uint64_t rdns_responses = 0;
  std::uint64_t rdns_unique_ips = 0;
  std::uint64_t rdns_unique_ptrs = 0;
};

/// Table 4 shape: one row per targeted network.
struct NetworkRow {
  std::string name;
  std::string type;           ///< org type string
  std::uint64_t target_size = 0;
  std::uint64_t addresses_observed = 0;  ///< ICMP-responsive uniques
  double percent_observed = 0.0;
};

class SupplementalCampaign {
 public:
  SupplementalCampaign(sim::World& world, std::vector<ReactiveEngine::Target> targets,
                       CampaignWindow window, ReactiveEngine::Config config);
  SupplementalCampaign(sim::World& world, std::vector<ReactiveEngine::Target> targets,
                       CampaignWindow window);
  SupplementalCampaign(sim::World& world, std::vector<ReactiveEngine::Target> targets);

  /// Run the full campaign (drives the world clock).
  void run();

  [[nodiscard]] ReactiveEngine& engine() noexcept { return engine_; }
  [[nodiscard]] const ReactiveEngine& engine() const noexcept { return engine_; }

  [[nodiscard]] CampaignTotals totals() const;
  [[nodiscard]] std::vector<NetworkRow> network_rows() const;
  [[nodiscard]] const CampaignWindow& window() const noexcept { return window_; }

 private:
  sim::World* world_;
  ReactiveEngine engine_;
  CampaignWindow window_;
};

/// Builds the paper's 9-network target list from a world created by
/// make_paper_world() (see sim/world recipes in the benches): three
/// academic, three enterprise, three ISP networks.
[[nodiscard]] std::vector<ReactiveEngine::Target> paper_targets(const sim::World& world);

}  // namespace rdns::scan
