#include "scan/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace rdns::scan {

namespace {

namespace journal = rdns::util::journal;

void append_string_field(std::string& out, const char* key, const std::string& value) {
  out += ",\"";
  out += key;
  out += "\":\"";
  util::metrics::append_json_escaped(out, value);
  out += "\"";
}

/// Inverse of the manifest writer for the two fields it encodes specially:
/// world_digest travels as a 16-digit hex string (exact through JSON
/// readers that store numbers as doubles).
std::uint64_t parse_hex_u64(const std::string& text) {
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4U;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint64_t>(c - 'A' + 10);
    else return 0;
  }
  return value;
}

journal::RunManifest manifest_from_object(const journal::JsonValue& v) {
  journal::RunManifest m;
  m.tool = v.get_string("tool");
  m.version = v.get_string("version");
  m.seed = static_cast<std::uint64_t>(v.get_int("seed"));
  m.world_digest = parse_hex_u64(v.get_string("world_digest"));
  m.faults = v.get_string("faults", "none");
  m.threads = static_cast<unsigned>(v.get_int("threads"));
  m.events_schema = v.get_string("events_schema");
  m.observability_schema = v.get_string("observability_schema");
  return m;
}

bool io_fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool save_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint,
                     std::string* error) {
  const SweepCheckpointConfig& cfg = checkpoint.config;
  const SweepProgress& p = checkpoint.progress;

  std::string header = "{\"schema\":\"";
  header += kCheckpointSchema;
  header += "\"";
  append_string_field(header, "mode", cfg.mode);
  append_string_field(header, "from", cfg.from);
  append_string_field(header, "to", cfg.to);
  header += util::format(",\"every_days\":%d,\"hour\":%d", cfg.every_days, cfg.hour);
  header += ",\"manifest\":";
  header += journal::manifest_json(cfg.manifest, /*include_threads=*/false);
  header += "}\n";

  std::string progress = "{\"";
  progress += "day\":\"";
  util::metrics::append_json_escaped(progress, p.day);
  progress += "\"";
  progress += util::format(
      ",\"day_ordinal\":%llu,\"shards_done\":%llu,\"shards_total\":%llu",
      static_cast<unsigned long long>(p.day_ordinal),
      static_cast<unsigned long long>(p.shards_done),
      static_cast<unsigned long long>(p.shards_total));
  progress += p.day_complete ? ",\"day_complete\":true" : ",\"day_complete\":false";
  progress += util::format(",\"csv_bytes\":%llu,\"rows\":%llu",
                           static_cast<unsigned long long>(p.csv_bytes),
                           static_cast<unsigned long long>(p.rows));
  progress += "}\n";

  // Write-then-rename: a crash mid-save leaves the previous checkpoint
  // intact, never a torn file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::out | std::ios::trunc};
    if (!out) return io_fail(error, "cannot write " + tmp);
    out << header << progress;
    out.flush();
    if (!out) return io_fail(error, "write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return io_fail(error, "cannot rename " + tmp + " to " + path);
  }
  return true;
}

std::optional<SweepCheckpoint> load_checkpoint(const std::string& path, std::string* error) {
  const auto fail = [&](std::string message) -> std::optional<SweepCheckpoint> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  std::ifstream in{path};
  if (!in) return fail("cannot open checkpoint " + path);
  std::string header_line;
  std::string progress_line;
  if (!std::getline(in, header_line) || header_line.empty()) {
    return fail("checkpoint " + path + " is empty or truncated");
  }
  // Accept (and take the last of) multiple progress records so an
  // append-style writer would also load; the canonical file has one.
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) progress_line = line;
  }
  if (progress_line.empty()) {
    return fail("checkpoint " + path + " has no progress record");
  }

  std::string parse_error;
  const auto header = journal::parse_json(header_line, &parse_error);
  if (!header || header->kind != journal::JsonValue::Kind::Object) {
    return fail("checkpoint " + path + " header is not valid JSON: " + parse_error);
  }
  const std::string schema = header->get_string("schema");
  if (schema != kCheckpointSchema) {
    return fail("checkpoint " + path + " has schema \"" + schema + "\", expected \"" +
                kCheckpointSchema + "\"");
  }
  const auto progress = journal::parse_json(progress_line, &parse_error);
  if (!progress || progress->kind != journal::JsonValue::Kind::Object) {
    return fail("checkpoint " + path + " progress record is not valid JSON: " + parse_error);
  }

  SweepCheckpoint cp;
  cp.config.mode = header->get_string("mode", "wire");
  cp.config.from = header->get_string("from");
  cp.config.to = header->get_string("to");
  cp.config.every_days = static_cast<int>(header->get_int("every_days", 1));
  cp.config.hour = static_cast<int>(header->get_int("hour", 9));
  const journal::JsonValue* manifest = header->find("manifest");
  if (manifest == nullptr || manifest->kind != journal::JsonValue::Kind::Object) {
    return fail("checkpoint " + path + " header has no manifest object");
  }
  cp.config.manifest = manifest_from_object(*manifest);

  cp.progress.day = progress->get_string("day");
  cp.progress.day_ordinal = static_cast<std::uint64_t>(progress->get_int("day_ordinal"));
  cp.progress.shards_done = static_cast<std::uint64_t>(progress->get_int("shards_done"));
  cp.progress.shards_total = static_cast<std::uint64_t>(progress->get_int("shards_total"));
  cp.progress.day_complete = progress->get_bool("day_complete");
  cp.progress.csv_bytes = static_cast<std::uint64_t>(progress->get_int("csv_bytes"));
  cp.progress.rows = static_cast<std::uint64_t>(progress->get_int("rows"));
  if (cp.progress.day.empty()) {
    return fail("checkpoint " + path + " progress record has no day");
  }
  if (cp.progress.shards_done > cp.progress.shards_total) {
    return fail("checkpoint " + path + " progress is inconsistent (shards_done > shards_total)");
  }
  return cp;
}

bool checkpoints_compatible(const SweepCheckpointConfig& saved,
                            const SweepCheckpointConfig& current, std::string* why) {
  const auto fail = [&](const char* field) {
    if (why != nullptr) *why = field;
    return false;
  };
  if (saved.mode != current.mode) return fail("mode");
  if (saved.from != current.from) return fail("from");
  if (saved.to != current.to) return fail("to");
  if (saved.every_days != current.every_days) return fail("every_days");
  if (saved.hour != current.hour) return fail("hour");
  return journal::manifests_compatible(saved.manifest, current.manifest, why);
}

}  // namespace rdns::scan
