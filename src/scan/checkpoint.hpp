#pragma once
/// \file checkpoint.hpp
/// Checkpoint/resume for long wire sweeps ("rdns.checkpoint.v1").
///
/// A full-address-space sweep is hours of work; a crash near the end used
/// to mean starting over. The wire sweep commits its output in shard order
/// (OrderedMergeBuffer), so at any instant the CSV is a *prefix* of the
/// final artifact plus possibly an uncommitted tail. A checkpoint records
/// that committed prefix: which day of the schedule is in flight, how many
/// shards of it have reached the sink, and the CSV byte offset at that
/// point. Resume truncates the CSV back to the recorded offset, rebuilds
/// the world from the same seed (sweeps are read-only observations, so
/// world evolution is observation-independent), fast-forwards to the
/// checkpointed day, and re-runs the sweep with the completed shards
/// skipped — producing a byte-identical final CSV at any thread count.
///
/// The file is two JSON lines, rewritten atomically (tmp + rename) on
/// every save: a header carrying the schema, the sweep configuration and
/// the RunManifest (seed, world digest, chaos profile, version), then one
/// progress record. Loading verifies the schema and rejects malformed
/// files with an error message instead of undefined state.

#include <cstdint>
#include <optional>
#include <string>

#include "util/journal.hpp"

namespace rdns::scan {

inline constexpr const char* kCheckpointSchema = "rdns.checkpoint.v1";

/// Everything that determines the sweep's output byte stream. Two runs may
/// hand off through a checkpoint only if all of this matches (see
/// checkpoints_compatible); the manifest covers seed/world/faults/version,
/// the rest pins the sweep schedule itself.
struct SweepCheckpointConfig {
  util::journal::RunManifest manifest;
  std::string mode = "wire";   ///< sweep mode ("wire"; bulk is cheap enough to re-run)
  std::string from;            ///< first sweep date, "YYYY-MM-DD"
  std::string to;              ///< last sweep date, "YYYY-MM-DD"
  int every_days = 1;
  int hour = 9;                ///< hour-of-day each sweep runs at
};

/// The committed prefix: everything up to (day_ordinal, shards_done) has
/// reached the CSV, which was `csv_bytes` long at that point.
struct SweepProgress {
  std::string day;                  ///< date of the sweep in flight, "YYYY-MM-DD"
  std::uint64_t day_ordinal = 0;    ///< 0-based index of that day in the schedule
  std::uint64_t shards_done = 0;    ///< shards of `day` committed to the sink
  std::uint64_t shards_total = 0;
  bool day_complete = false;        ///< `day` finished (resume starts the next day)
  std::uint64_t csv_bytes = 0;      ///< CSV stream offset after the committed prefix
  std::uint64_t rows = 0;           ///< cumulative rows across completed work
};

struct SweepCheckpoint {
  SweepCheckpointConfig config;
  SweepProgress progress;
};

/// Atomically (write tmp, rename over) persist the checkpoint. Returns
/// false and fills `error` when the file cannot be written.
bool save_checkpoint(const std::string& path, const SweepCheckpoint& checkpoint,
                     std::string* error = nullptr);

/// Load and validate a checkpoint file. Returns nullopt and fills `error`
/// on a missing, truncated or malformed file — callers exit cleanly, they
/// never resume from garbage.
[[nodiscard]] std::optional<SweepCheckpoint> load_checkpoint(const std::string& path,
                                                             std::string* error = nullptr);

/// True when a run configured as `current` may resume from a checkpoint
/// written by `saved`: identical schedule fields and compatible manifests
/// (seed, world digest, chaos profile, version, schemas — thread counts
/// are ignored, determinism across them is the point). On mismatch `why`
/// names the first differing field.
[[nodiscard]] bool checkpoints_compatible(const SweepCheckpointConfig& saved,
                                          const SweepCheckpointConfig& current,
                                          std::string* why = nullptr);

}  // namespace rdns::scan
