#include "scan/csv_replay.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/log.hpp"

namespace rdns::scan {

ReplayStats replay_csv(std::istream& in, SnapshotSink& sink) {
  ReplayStats stats;
  util::CsvReader reader{in};
  util::CsvRow row;
  bool have_date = false;
  util::CivilDate current_date;

  while (reader.next(row)) {
    if (row.size() < 3) {
      ++stats.skipped;
      continue;
    }
    util::CivilDate date;
    try {
      date = util::parse_date(row[0]);
    } catch (const std::invalid_argument&) {
      // Tolerate a header row or malformed dates.
      ++stats.skipped;
      continue;
    }
    const auto address = net::Ipv4Addr::parse(row[1]);
    const auto ptr = dns::DnsName::parse(row[2]);
    if (!address || !ptr || ptr->is_root()) {
      ++stats.skipped;
      continue;
    }
    if (have_date && date != current_date) {
      sink.on_sweep_end(current_date);
      ++stats.sweeps;
    }
    current_date = date;
    have_date = true;
    sink.on_row(date, *address, *ptr);
    ++stats.rows;
  }
  if (have_date) {
    sink.on_sweep_end(current_date);
    ++stats.sweeps;
  }
  if (stats.skipped > 0) {
    util::log_info("replay_csv: skipped " + std::to_string(stats.skipped) +
                   " malformed rows");
  }
  return stats;
}

ReplayStats replay_csv_text(const std::string& text, SnapshotSink& sink) {
  std::istringstream in{text};
  return replay_csv(in, sink);
}

}  // namespace rdns::scan
