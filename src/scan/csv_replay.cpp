#include "scan/csv_replay.hpp"

#include <sstream>

#include "util/csv.hpp"
#include "util/log.hpp"

namespace rdns::scan {

namespace {

/// One parsed logical line, produced by a parallel map stage and emitted
/// serially in input order.
struct ParsedLine {
  bool valid = false;
  bool degraded = false;  ///< kDegradedSentinel row: counted, not emitted
  util::CivilDate date;
  net::Ipv4Addr address;
  dns::DnsName ptr;
};

/// True if the line is only whitespace (CsvReader semantics: skipped
/// entirely, not counted as malformed).
bool is_blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Read the next logical CSV line: getline plus quote balancing, exactly
/// as util::CsvReader does (a quoted field may span physical lines).
bool next_logical_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t quotes = 0;
    for (const char c : line) quotes += (c == '"');
    while (quotes % 2 == 1) {
      std::string more;
      if (!std::getline(in, more)) {
        throw std::invalid_argument("replay_csv: unterminated quoted field at end of input");
      }
      line.push_back('\n');
      line.append(more);
      for (const char c : more) quotes += (c == '"');
    }
    if (is_blank(line)) continue;
    return true;
  }
  return false;
}

/// Parse one logical line into a row; invalid rows keep valid == false.
ParsedLine parse_line(const std::string& line) {
  ParsedLine out;
  const util::CsvRow row = util::csv_parse_line(line);
  if (row.size() < 3) return out;
  try {
    out.date = util::parse_date(row[0]);
  } catch (const std::invalid_argument&) {
    // Tolerate a header row or malformed dates.
    return out;
  }
  const auto address = net::Ipv4Addr::parse(row[1]);
  const auto ptr = dns::DnsName::parse(row[2]);
  if (!address || !ptr || ptr->is_root()) return out;
  out.valid = true;
  out.address = *address;
  if (row[2] == kDegradedSentinel) {
    // A shard the recording sweep degraded on: a gap in coverage, not a
    // PTR observation. Keep the date (it belongs to that sweep) but do
    // not feed the sentinel into the analysis pipeline.
    out.degraded = true;
    return out;
  }
  out.ptr = *ptr;
  return out;
}

}  // namespace

ReplayStats replay_csv(std::istream& in, SnapshotSink& sink, util::ThreadPool* pool_opt) {
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  ReplayStats stats;
  bool have_date = false;
  util::CivilDate current_date;

  // Batches bound memory: the reader thread accumulates a batch of logical
  // lines, workers parse fixed chunks of it, and the batch is re-emitted
  // in order before the next one is read.
  constexpr std::size_t kChunkLines = 1024;
  const std::size_t batch_lines = kChunkLines * std::max(1u, pool.size());
  std::vector<std::string> batch;
  std::vector<ParsedLine> parsed;
  batch.reserve(batch_lines);

  const auto emit_batch = [&] {
    if (batch.empty()) return;
    parsed.assign(batch.size(), ParsedLine{});
    pool.parallel_for_chunks(batch.size(), kChunkLines,
                             [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
                               for (std::uint64_t i = begin; i < end; ++i) {
                                 parsed[i] = parse_line(batch[i]);
                               }
                             });
    for (const ParsedLine& row : parsed) {
      if (!row.valid) {
        ++stats.skipped;
        continue;
      }
      if (have_date && row.date != current_date) {
        sink.on_sweep_end(current_date);
        ++stats.sweeps;
      }
      current_date = row.date;
      have_date = true;
      if (row.degraded) {
        ++stats.degraded;
        continue;
      }
      sink.on_row(row.date, row.address, row.ptr);
      ++stats.rows;
    }
    batch.clear();
  };

  std::string line;
  while (next_logical_line(in, line)) {
    batch.push_back(std::move(line));
    if (batch.size() >= batch_lines) emit_batch();
  }
  emit_batch();

  if (have_date) {
    sink.on_sweep_end(current_date);
    ++stats.sweeps;
  }
  if (stats.skipped > 0) {
    util::log_info("replay_csv: skipped " + std::to_string(stats.skipped) +
                   " malformed rows");
  }
  return stats;
}

ReplayStats replay_csv_text(const std::string& text, SnapshotSink& sink,
                            util::ThreadPool* pool) {
  std::istringstream in{text};
  return replay_csv(in, sink, pool);
}

}  // namespace rdns::scan
