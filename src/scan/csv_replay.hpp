#pragma once
/// \file csv_replay.hpp
/// Replay recorded sweep data through the analysis pipeline. The scanners
/// write `(date, ip, ptr)` CSV rows (the same schema as the OpenINTEL and
/// Rapid7 data sets the paper used); this module reads them back and feeds
/// any SnapshotSink — so the Section 4/5 analyses run unchanged on
/// real-world exports without a simulator in sight.

#include <iosfwd>
#include <string>

#include "scan/rdns_snapshot.hpp"
#include "util/thread_pool.hpp"

namespace rdns::scan {

struct ReplayStats {
  std::uint64_t rows = 0;
  std::uint64_t skipped = 0;   ///< malformed rows (logged, not fatal)
  std::uint64_t degraded = 0;  ///< kDegradedSentinel rows (shards a faulty sweep gave up on)
  std::uint64_t sweeps = 0;    ///< distinct dates seen (in order)
};

/// Stream CSV rows into `sink`. Rows must be ordered by date (as the
/// scanners write them); a change of date emits on_sweep_end for the
/// previous date. A trailing on_sweep_end is emitted at end of input.
/// Rows that fail to parse are counted in `skipped` and dropped — real
/// measurement data always contains junk.
///
/// Parsing is chunked map-reduce: batches of logical lines are split into
/// fixed chunks, parsed in parallel on `pool` (nullptr = the global pool),
/// and re-emitted to the sink strictly in input order — the sink sees the
/// exact serial sequence at every thread count.
ReplayStats replay_csv(std::istream& in, SnapshotSink& sink,
                       util::ThreadPool* pool = nullptr);

/// Convenience: replay from an in-memory document.
ReplayStats replay_csv_text(const std::string& text, SnapshotSink& sink,
                            util::ThreadPool* pool = nullptr);

}  // namespace rdns::scan
