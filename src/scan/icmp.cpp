#include "scan/icmp.hpp"

#include <cmath>

#include "scan/permutation.hpp"
#include "util/faults.hpp"
#include "util/rng.hpp"

namespace rdns::scan {

IcmpScanner::IcmpScanner(sim::World& world, IcmpScanConfig config)
    : world_(&world), config_(config) {}

IcmpSweepResult IcmpScanner::sweep(const std::vector<net::Prefix>& targets) {
  IcmpSweepResult result;
  result.started = world_->now();

  // Flatten targets into one index space for the permutation.
  std::uint64_t total = 0;
  std::vector<std::pair<std::uint64_t, net::Prefix>> offsets;  // start index -> prefix
  offsets.reserve(targets.size());
  for (const auto& p : targets) {
    offsets.emplace_back(total, p);
    total += p.size();
  }
  if (total == 0) return result;

  ScanPermutation perm{total, config_.seed ^ (0x9E3779B9ULL * ++sweep_counter_)};
  const util::SimTime now = world_->now();
  while (const auto index = perm.next()) {
    // Map the flat index back to an address (offsets are ascending).
    std::size_t lo = 0, hi = offsets.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (offsets[mid].first <= *index) lo = mid;
      else hi = mid - 1;
    }
    const net::Ipv4Addr addr =
        offsets[lo].second.first() + static_cast<std::uint32_t>(*index - offsets[lo].first);
    if (blocklist_.contains(addr)) {
      ++result.blocklisted_skipped;
      continue;
    }
    ++result.probes_sent;
    bool alive = world_->ping(addr, now);
    // Chaos profile: the echo reply is lost on our side — the host looks
    // down for this probe even though it answered. Decided per (addr, t),
    // so the outcome is identical however the sweep is ordered.
    if (alive && util::faults::active() != nullptr &&
        util::faults::Injector::global().should_fail(
            util::faults::Site::IcmpProbeLoss,
            util::mix64(addr.value()) ^ static_cast<std::uint64_t>(now))) {
      alive = false;
    }
    if (alive) result.responsive.push_back(addr);
  }
  result.duration =
      static_cast<util::SimTime>(std::ceil(static_cast<double>(result.probes_sent) /
                                           config_.rate_pps));
  total_probes_ += result.probes_sent;
  total_responses_ += result.responsive.size();
  return result;
}

}  // namespace rdns::scan
