#pragma once
/// \file icmp.hpp
/// ZMap-like ICMP sweep scanner: random-permutation target order, token-
/// bucket rate limiting, prefix blocklist (the opt-out mechanism of the
/// paper's Section 9), and reachable-hosts-only output (ZMap "only includes
/// hosts that were reachable in its output").

#include <cstdint>
#include <vector>

#include "net/prefix.hpp"
#include "net/prefix_set.hpp"
#include "sim/world.hpp"
#include "util/token_bucket.hpp"

namespace rdns::scan {

struct IcmpScanConfig {
  double rate_pps = 10000.0;  ///< probes per (simulated) second
  double burst = 256.0;
  std::uint64_t seed = 0x5CA2;
};

struct IcmpSweepResult {
  util::SimTime started = 0;
  /// Virtual sweep duration implied by the rate limit.
  util::SimTime duration = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t blocklisted_skipped = 0;
  /// Responsive addresses, in probe order.
  std::vector<net::Ipv4Addr> responsive;
};

class IcmpScanner {
 public:
  IcmpScanner(sim::World& world, IcmpScanConfig config = {});

  /// Add an opt-out prefix; its addresses are never probed.
  void blocklist(const net::Prefix& p) { blocklist_.add(p); }

  /// Sweep all host addresses of `targets` at the world's current time.
  /// The sweep is logically instantaneous (its virtual duration at the
  /// configured rate is reported in the result).
  [[nodiscard]] IcmpSweepResult sweep(const std::vector<net::Prefix>& targets);

  [[nodiscard]] std::uint64_t total_probes() const noexcept { return total_probes_; }
  [[nodiscard]] std::uint64_t total_responses() const noexcept { return total_responses_; }

 private:
  sim::World* world_;
  IcmpScanConfig config_;
  net::PrefixSet blocklist_;
  std::uint64_t sweep_counter_ = 0;
  std::uint64_t total_probes_ = 0;
  std::uint64_t total_responses_ = 0;
};

}  // namespace rdns::scan
