#include "scan/permutation.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace rdns::scan {

namespace {
[[nodiscard]] std::uint64_t next_pow2(std::uint64_t n) noexcept {
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

ScanPermutation::ScanPermutation(std::uint64_t n, std::uint64_t seed) : n_(n) {
  if (n == 0) throw std::invalid_argument("ScanPermutation: n must be > 0");
  modulus_ = next_pow2(n < 4 ? 4 : n);
  util::Rng rng{seed};
  // Hull-Dobell full-period conditions for modulus 2^k:
  //   increment odd; multiplier ≡ 1 (mod 4).
  multiplier_ = (static_cast<std::uint64_t>(rng.next()) & (modulus_ - 1) & ~3ULL) | 1ULL;
  if (modulus_ > 4) multiplier_ |= 4ULL;  // avoid the degenerate multiplier 1
  increment_ = (static_cast<std::uint64_t>(rng.next()) & (modulus_ - 1)) | 1ULL;
  start_ = static_cast<std::uint64_t>(rng.next()) & (modulus_ - 1);
  state_ = start_;
}

std::optional<std::uint64_t> ScanPermutation::next() noexcept {
  while (produced_ < n_) {
    const std::uint64_t value = state_;
    state_ = (state_ * multiplier_ + increment_) & (modulus_ - 1);
    if (value < n_) {
      ++produced_;
      return value;
    }
  }
  return std::nullopt;
}

void ScanPermutation::reset() noexcept {
  state_ = start_;
  produced_ = 0;
}

}  // namespace rdns::scan
