#pragma once
/// \file permutation.hpp
/// ZMap-style address-space permutation. ZMap visits targets in a random
/// order derived from a cyclic group so that probe load spreads across
/// networks; we reproduce the behaviour with a full-period LCG (Hull-Dobell
/// conditions) over the next power of two, skipping out-of-range values.
/// Every value in [0, n) is produced exactly once per cycle.

#include <cstdint>
#include <optional>

namespace rdns::scan {

class ScanPermutation {
 public:
  /// Permutation of [0, n); `seed` varies the visit order.
  ScanPermutation(std::uint64_t n, std::uint64_t seed);

  /// Next index, or nullopt once all n values have been produced.
  [[nodiscard]] std::optional<std::uint64_t> next() noexcept;

  /// Restart the cycle (same order).
  void reset() noexcept;

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }

 private:
  std::uint64_t n_;
  std::uint64_t modulus_;    ///< power of two >= n
  std::uint64_t multiplier_; ///< a ≡ 1 (mod 4)
  std::uint64_t increment_;  ///< odd
  std::uint64_t start_;
  std::uint64_t state_;
  std::uint64_t produced_ = 0;
};

}  // namespace rdns::scan
