#include "scan/progress.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "dns/admin.hpp"  // RateWindows
#include "net/admin_http.hpp"
#include "util/ascii_chart.hpp"
#include "util/journal.hpp"
#include "util/mem.hpp"
#include "util/metrics.hpp"

namespace rdns::scan {

namespace {

namespace metrics = rdns::util::metrics;
namespace journal = rdns::util::journal;

/// Slot word layout (must match ShardProbe::publish).
enum Word : std::size_t {
  kDone = 0,
  kRows,
  kQueries,
  kRetries,
  kDegraded,
  kReruns,
};

/// Gauges mirroring the latest aggregate into the metrics registry, so a
/// plain /metrics scrape (or the final snapshot) carries the live view.
struct ProgressGauges {
  metrics::Gauge& rows_per_s = metrics::gauge("sweep.progress_rows_per_s");
  metrics::Gauge& percent = metrics::gauge("sweep.progress_percent");
  metrics::Gauge& shards_done = metrics::gauge("sweep.progress_shards_done");
  metrics::Gauge& eta_s = metrics::gauge("sweep.progress_eta_s");
  metrics::Counter& torn_reads = metrics::counter("sweep.progress_torn_reads");
};

ProgressGauges& progress_gauges() {
  static ProgressGauges g;
  return g;
}

std::string format_status_line(const SweepProgressPlane::Snapshot& snap,
                               const std::string& spark) {
  char buf[256];
  std::string eta = "--";
  if (snap.eta_s >= 0) eta = std::to_string(static_cast<std::uint64_t>(snap.eta_s)) + "s";
  std::snprintf(buf, sizeof buf,
                "sweep %s %5.1f%% (%" PRIu64 "/%" PRIu64 " /24s) | %" PRIu64
                " rows | %.0f rows/s | retries %" PRIu64 " | degraded %" PRIu64 " | eta %s",
                snap.day.empty() ? "-" : snap.day.c_str(), snap.percent, snap.shards_done,
                snap.shards_total, snap.rows, snap.rows_per_s_1s, snap.retries, snap.degraded,
                eta.c_str());
  std::string line{buf};
  if (!spark.empty()) {
    line += " [";
    line += spark;
    line += "]";
  }
  return line;
}

}  // namespace

/// RateWindows are kept out of the header (dns/admin.hpp stays a .cpp-only
/// dependency of the scan module).
struct ProgressRates {
  dns::RateWindows rows;
  dns::RateWindows shards;
};

// -- ShardProbe ---------------------------------------------------------------

void SweepProgressPlane::ShardProbe::on_shard_finish(std::uint64_t rows, std::uint64_t queries,
                                                     std::uint64_t retries, bool degraded,
                                                     std::uint64_t reruns) noexcept {
  ++done_;
  rows_ += rows;
  queries_ += queries;
  retries_ += retries;
  if (degraded) ++degraded_;
  reruns_ += reruns;
  publish();
}

void SweepProgressPlane::ShardProbe::publish() noexcept {
  // Seqlock write (dns::ServeIntrospection's protocol): odd epoch marks
  // the slot in flux, the release fence orders the payload before it, and
  // the final release store publishes epoch+2 with the payload visible.
  const std::uint64_t e = slot_.epoch.load(std::memory_order_relaxed);
  slot_.epoch.store(e + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot_.words[kDone].store(done_, std::memory_order_relaxed);
  slot_.words[kRows].store(rows_, std::memory_order_relaxed);
  slot_.words[kQueries].store(queries_, std::memory_order_relaxed);
  slot_.words[kRetries].store(retries_, std::memory_order_relaxed);
  slot_.words[kDegraded].store(degraded_, std::memory_order_relaxed);
  slot_.words[kReruns].store(reruns_, std::memory_order_relaxed);
  slot_.epoch.store(e + 2, std::memory_order_release);
}

// -- SweepProgressPlane -------------------------------------------------------

SweepProgressPlane::SweepProgressPlane() : SweepProgressPlane(Options{}) {}

SweepProgressPlane::SweepProgressPlane(const Options& options)
    : options_(options),
      rates_(std::make_unique<ProgressRates>()),
      started_at_(std::chrono::steady_clock::now()) {
  if (options_.aggregate_interval_ms == 0) options_.aggregate_interval_ms = 250;
}

SweepProgressPlane::~SweepProgressPlane() { stop(); }

void SweepProgressPlane::start() {
  if (running_) return;
  stop_.store(false, std::memory_order_relaxed);
  started_at_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run(); });
  running_ = true;
}

void SweepProgressPlane::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_cv_.notify_all();
  thread_.join();
  running_ = false;
  aggregate_pass();  // fold the final probe state
  if (options_.tty_status) {
    std::fputs("\n", stderr);
    std::fflush(stderr);
  }
}

void SweepProgressPlane::run() {
  std::unique_lock<std::mutex> lock{wake_mu_};
  while (!stop_.load(std::memory_order_relaxed)) {
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.aggregate_interval_ms));
    if (stop_.load(std::memory_order_relaxed)) break;
    lock.unlock();
    aggregate_pass();
    lock.lock();
  }
}

void SweepProgressPlane::begin_pass(std::size_t shards_total, std::size_t skipped,
                                    std::string day, util::SimTime now) {
  std::uint64_t totals[ShardProbe::kWords] = {};
  fold_totals(totals, nullptr);
  pass_base_done_.store(totals[kDone], std::memory_order_relaxed);
  pass_total_.store(shards_total, std::memory_order_relaxed);
  pass_skipped_.store(skipped, std::memory_order_relaxed);
  sim_now_.store(static_cast<std::uint64_t>(now), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock{day_mu_};
    day_ = std::move(day);
  }
}

SweepProgressPlane::ShardProbe* SweepProgressPlane::acquire_probe() {
  std::lock_guard<std::mutex> lock{probes_mu_};
  if (!free_.empty()) {
    ShardProbe* probe = free_.back();
    free_.pop_back();
    return probe;
  }
  probes_.push_back(std::make_unique<ShardProbe>());
  return probes_.back().get();
}

void SweepProgressPlane::release_probe(ShardProbe* probe) {
  if (probe == nullptr) return;
  probe->publish();
  std::lock_guard<std::mutex> lock{probes_mu_};
  free_.push_back(probe);
}

void SweepProgressPlane::fold_totals(std::uint64_t (&totals)[ShardProbe::kWords],
                                     std::size_t* probe_count) const {
  std::lock_guard<std::mutex> lock{probes_mu_};
  if (probe_count != nullptr) *probe_count = probes_.size();
  for (const auto& probe : probes_) {
    const ShardProbe::Slot& slot = probe->slot_;
    std::uint64_t words[ShardProbe::kWords] = {};
    bool consistent = false;
    for (int attempt = 0; attempt < 64 && !consistent; ++attempt) {
      const std::uint64_t e1 = slot.epoch.load(std::memory_order_acquire);
      if (e1 & 1) continue;  // writer mid-publish
      for (std::size_t w = 0; w < ShardProbe::kWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      consistent = slot.epoch.load(std::memory_order_relaxed) == e1;
    }
    // After 64 attempts use the torn copy anyway: progress is advisory,
    // and the next pass (250 ms later) self-heals. Count it.
    if (!consistent) progress_gauges().torn_reads.inc();
    for (std::size_t w = 0; w < ShardProbe::kWords; ++w) totals[w] += words[w];
  }
}

void SweepProgressPlane::aggregate_now() { aggregate_pass(); }

void SweepProgressPlane::aggregate_pass() {
  std::lock_guard<std::mutex> pass_lock{pass_mu_};
  std::uint64_t totals[ShardProbe::kWords] = {};
  Snapshot snap;
  fold_totals(totals, &snap.probes);

  const std::uint64_t skipped = pass_skipped_.load(std::memory_order_relaxed);
  const std::uint64_t base = pass_base_done_.load(std::memory_order_relaxed);
  const std::uint64_t done_in_pass = totals[kDone] > base ? totals[kDone] - base : 0;
  snap.shards_total = pass_total_.load(std::memory_order_relaxed);
  snap.shards_done = std::min<std::uint64_t>(done_in_pass + skipped, snap.shards_total);
  snap.rows = totals[kRows];
  snap.queries = totals[kQueries];
  snap.retries = totals[kRetries];
  snap.degraded = totals[kDegraded];
  snap.reruns = totals[kReruns];
  snap.uptime_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                started_at_)
                      .count();
  {
    std::lock_guard<std::mutex> lock{day_mu_};
    snap.day = day_;
  }

  rates_->rows.add_sample(snap.uptime_s, snap.rows);
  rates_->shards.add_sample(snap.uptime_s, totals[kDone]);
  snap.rows_per_s_1s = rates_->rows.rate(1.0);
  snap.rows_per_s_10s = rates_->rows.rate(10.0);
  snap.rows_per_s_60s = rates_->rows.rate(60.0);
  snap.shards_per_s_10s = rates_->shards.rate(10.0);
  if (snap.shards_total > 0) {
    snap.percent =
        100.0 * static_cast<double>(snap.shards_done) / static_cast<double>(snap.shards_total);
    if (snap.shards_per_s_10s > 0) {
      snap.eta_s = static_cast<double>(snap.shards_total - snap.shards_done) /
                   snap.shards_per_s_10s;
    }
  }
  util::mem::update_peak_rss_gauge();
  snap.peak_rss_bytes = util::mem::peak_rss_bytes();

  ProgressGauges& gauges = progress_gauges();
  gauges.rows_per_s.set(static_cast<std::int64_t>(snap.rows_per_s_1s));
  gauges.percent.set(static_cast<std::int64_t>(snap.percent));
  gauges.shards_done.set(static_cast<std::int64_t>(snap.shards_done));
  gauges.eta_s.set(static_cast<std::int64_t>(snap.eta_s > 0 ? snap.eta_s : 0));

  rate_history_.push_back(snap.rows_per_s_1s);
  while (rate_history_.size() > 64) rate_history_.pop_front();

  {
    std::lock_guard<std::mutex> lock{agg_mu_};
    latest_ = snap;
  }

  ++passes_;
  // Journal cadence: sim-time stamped (the sweep clock is frozen per
  // pass, so non-decreasing `t` holds across passes) but only when armed
  // — the default journal stream stays wall-time free and deterministic.
  if (options_.journal_every > 0 && passes_ % options_.journal_every == 0 &&
      snap.shards_total > 0) {
    if (auto* j = journal::active()) {
      journal::Event e{"sweep.progress",
                       static_cast<util::SimTime>(sim_now_.load(std::memory_order_relaxed))};
      e.str("day", snap.day)
          .unum("shards_done", snap.shards_done)
          .unum("shards_total", snap.shards_total)
          .unum("rows", snap.rows)
          .unum("retries", snap.retries)
          .unum("degraded", snap.degraded)
          .real("rows_per_s", snap.rows_per_s_1s)
          .real("percent", snap.percent);
      j->emit(e);
    }
  }

  if (options_.tty_status) {
    // Rendered inline (pass_mu_ is held): re-entering render_status_line
    // here would self-deadlock on the history lock.
    const std::string spark = util::render_sparkline(
        std::vector<double>(rate_history_.begin(), rate_history_.end()), 24);
    const std::string line = format_status_line(snap, spark);
    std::fprintf(stderr, "\r%s\x1b[K", line.c_str());
    std::fflush(stderr);
  }
}

SweepProgressPlane::Snapshot SweepProgressPlane::snapshot() const {
  std::lock_guard<std::mutex> lock{agg_mu_};
  return latest_;
}

std::string SweepProgressPlane::render_progress_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\"schema\":\"rdns.sweep-progress.v1\"";
  out += ",\"uptime_s\":" + metrics::json_number(snap.uptime_s);
  out += ",\"day\":\"";
  metrics::append_json_escaped(out, snap.day);
  out += "\",\"shards\":{\"done\":" + std::to_string(snap.shards_done);
  out += ",\"total\":" + std::to_string(snap.shards_total);
  out += ",\"degraded\":" + std::to_string(snap.degraded);
  out += ",\"reruns\":" + std::to_string(snap.reruns) + "}";
  // Shards are /24-aligned slices of the announced space, so "shards
  // done" is the "/24s completed" number operators think in.
  out += ",\"slash24_done\":" + std::to_string(snap.shards_done);
  out += ",\"rows\":" + std::to_string(snap.rows);
  out += ",\"queries\":" + std::to_string(snap.queries);
  out += ",\"retries\":" + std::to_string(snap.retries);
  out += ",\"rows_per_s\":{\"1s\":" + metrics::json_number(snap.rows_per_s_1s);
  out += ",\"10s\":" + metrics::json_number(snap.rows_per_s_10s);
  out += ",\"60s\":" + metrics::json_number(snap.rows_per_s_60s) + "}";
  out += ",\"percent\":" + metrics::json_number(snap.percent);
  out += ",\"eta_s\":" + metrics::json_number(snap.eta_s);
  out += ",\"peak_rss_bytes\":" + std::to_string(snap.peak_rss_bytes);
  out += ",\"probes\":" + std::to_string(snap.probes);
  out += "}";
  return out;
}

std::string SweepProgressPlane::render_status_line() const {
  const Snapshot snap = snapshot();
  std::string spark;
  {
    std::lock_guard<std::mutex> lock{pass_mu_};
    spark = util::render_sparkline(
        std::vector<double>(rate_history_.begin(), rate_history_.end()), 24);
  }
  return format_status_line(snap, spark);
}

std::string SweepProgressPlane::render_prometheus() const {
  const Snapshot snap = snapshot();
  std::string out = net::prometheus_registry_page("sweep");
  out += "# TYPE rdns_sweep_rows_per_s gauge\n";
  out += "rdns_sweep_rows_per_s{window=\"1s\"} " + metrics::json_number(snap.rows_per_s_1s) + "\n";
  out += "rdns_sweep_rows_per_s{window=\"10s\"} " + metrics::json_number(snap.rows_per_s_10s) + "\n";
  out += "rdns_sweep_rows_per_s{window=\"60s\"} " + metrics::json_number(snap.rows_per_s_60s) + "\n";
  out += "# TYPE rdns_sweep_percent gauge\n";
  out += "rdns_sweep_percent " + metrics::json_number(snap.percent) + "\n";
  out += "# TYPE rdns_sweep_shards_done gauge\n";
  out += "rdns_sweep_shards_done " + std::to_string(snap.shards_done) + "\n";
  return out;
}

void SweepProgressPlane::install_http_routes(net::AdminHttpServer& http) {
  net::install_admin_routes(http, "rdns sweep progress plane\nroutes: /metrics /progress.json\n",
                            [this] { return render_prometheus(); });
  http.route("/progress.json", [this](const std::string&) {
    return net::HttpResponse{200, "application/json", render_progress_json()};
  });
}

}  // namespace rdns::scan
