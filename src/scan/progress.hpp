#pragma once
/// \file progress.hpp
/// Live progress plane for wire sweeps — the scan-side sibling of
/// dns::ServeIntrospection (PR 7), built on the same seqlock probe
/// design:
///
///   sweep workers --> ShardProbe (per-lease seqlock slot, relaxed words)
///                         |
///                  aggregation thread (~250 ms): fold slots -> totals,
///                  RateWindows rows/s + shards/s, ETA, peak RSS, and
///                  sweep.* gauges in the metrics registry
///                         |
///        +----------------+--------------------+
///        |                |                    |
///   --progress TTY    sweep.progress       /progress.json + /metrics
///   status line       journal events       (net::AdminHttpServer)
///   (sparkline)       (sim-time stamped)
///
/// Probes are leased, not thread-bound: a worker acquires one per shard
/// task and releases it when the shard ends, so each slot always has
/// exactly one writer (the seqlock invariant) while the pool is free to
/// run shards on any thread. Probe counters are cumulative; a released
/// probe carries its totals to the next lease-holder.
///
/// Determinism contract: the plane only *observes*. Shard order, resolver
/// id seeds and the ordered-merge consumer are untouched, so the sweep
/// CSV stays byte-identical at any thread count with the plane armed.
/// `sweep.progress` journal events are stamped with the frozen sim clock
/// (non-decreasing `t` holds) but their interleaving with worker-emitted
/// shard events depends on wall time — which is why the plane is opt-in
/// (--progress / --admin-port) and byte-identity is promised for the CSV,
/// not the journal, when armed.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/time.hpp"

namespace rdns::net {
class AdminHttpServer;
}  // namespace rdns::net

namespace rdns::scan {

class SweepProgressPlane {
 public:
  struct Options {
    unsigned aggregate_interval_ms = 250;
    /// Render a `\r` status line (with a rows/s sparkline) to stderr on
    /// every aggregation pass.
    bool tty_status = false;
    /// Emit a `sweep.progress` journal event every N aggregation passes
    /// (0 = never). Default 4 passes = roughly one event per second.
    unsigned journal_every = 4;
  };

  /// One aggregated view of the sweep, atomic as a whole (copied out of
  /// the aggregator under a mutex, like ServeIntrospection::Aggregate).
  struct Snapshot {
    std::uint64_t shards_done = 0;   ///< includes checkpoint-skipped shards
    std::uint64_t shards_total = 0;
    std::uint64_t rows = 0;
    std::uint64_t queries = 0;
    std::uint64_t retries = 0;
    std::uint64_t degraded = 0;
    std::uint64_t reruns = 0;
    double rows_per_s_1s = 0;
    double rows_per_s_10s = 0;
    double rows_per_s_60s = 0;
    double shards_per_s_10s = 0;
    double percent = 0;     ///< shards done / total, 0..100
    double eta_s = -1;      ///< wall-clock estimate; < 0 = unknown yet
    double uptime_s = 0;
    std::uint64_t peak_rss_bytes = 0;
    std::size_t probes = 0;
    std::string day;        ///< civil date of the active sweep pass
  };

  /// Per-lease seqlock probe: the owning worker accumulates plain local
  /// counters and publish() writes them into an epoch-versioned slot of
  /// relaxed atomics (write side of dns::ServeIntrospection's protocol).
  class ShardProbe {
   public:
    /// Publish current totals so a freshly leased probe becomes visible
    /// to the aggregator before its first shard completes.
    void on_shard_start() noexcept { publish(); }
    void on_shard_finish(std::uint64_t rows, std::uint64_t queries, std::uint64_t retries,
                         bool degraded, std::uint64_t reruns) noexcept;
    /// Publish the cumulative counters (seqlock write protocol).
    void publish() noexcept;

   private:
    friend class SweepProgressPlane;
    static constexpr std::size_t kWords = 6;

    struct Slot {
      std::atomic<std::uint64_t> epoch{0};
      std::atomic<std::uint64_t> words[kWords] = {};
    };

    std::uint64_t done_ = 0;
    std::uint64_t rows_ = 0;
    std::uint64_t queries_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t degraded_ = 0;
    std::uint64_t reruns_ = 0;
    Slot slot_;
  };

  SweepProgressPlane();
  explicit SweepProgressPlane(const Options& options);
  ~SweepProgressPlane();

  SweepProgressPlane(const SweepProgressPlane&) = delete;
  SweepProgressPlane& operator=(const SweepProgressPlane&) = delete;

  /// Launch the aggregation thread. Idempotent.
  void start();
  /// Final aggregation pass, stop the thread, finish the TTY line.
  void stop();

  /// Announce one sweep pass (sweep_wire calls this before sharding).
  /// `skipped` shards were committed by a checkpointed predecessor and
  /// count as done immediately; `now` stamps this pass's journal events.
  void begin_pass(std::size_t shards_total, std::size_t skipped, std::string day,
                  util::SimTime now);

  /// Lease a probe for one shard task (creates one if all are leased; the
  /// pool bounds concurrency, so the pool size bounds the probe count).
  ShardProbe* acquire_probe();
  void release_probe(ShardProbe* probe);

  /// Fold the probe slots now (also runs every aggregate_interval_ms on
  /// the plane thread).
  void aggregate_now();
  [[nodiscard]] Snapshot snapshot() const;

  /// `rdns.sweep-progress.v1` JSON document for /progress.json.
  [[nodiscard]] std::string render_progress_json() const;
  /// The --progress TTY line (no trailing newline or carriage return).
  [[nodiscard]] std::string render_status_line() const;
  /// /metrics page: shared registry prefix + rdns_sweep_* gauges.
  [[nodiscard]] std::string render_prometheus() const;
  /// Register /progress.json plus the shared "/" and /metrics routes.
  void install_http_routes(net::AdminHttpServer& http);

 private:
  void fold_totals(std::uint64_t (&totals)[ShardProbe::kWords], std::size_t* probe_count) const;
  void aggregate_pass();
  void run();

  Options options_;

  mutable std::mutex probes_mu_;  ///< guards probes_ and free_
  std::vector<std::unique_ptr<ShardProbe>> probes_;
  std::vector<ShardProbe*> free_;

  std::atomic<std::uint64_t> pass_total_{0};
  std::atomic<std::uint64_t> pass_base_done_{0};  ///< probe shards done when the pass began
  std::atomic<std::uint64_t> pass_skipped_{0};
  std::atomic<std::uint64_t> sim_now_{0};
  mutable std::mutex day_mu_;
  std::string day_;

  mutable std::mutex agg_mu_;  ///< guards latest_
  Snapshot latest_;

  mutable std::mutex pass_mu_;  ///< serializes aggregate passes + their state below
  std::unique_ptr<struct ProgressRates> rates_;  ///< RateWindows live in the .cpp
  std::deque<double> rate_history_;
  unsigned passes_ = 0;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::chrono::steady_clock::time_point started_at_{};
};

/// RAII lease used by sweep_wire workers; tolerates a null plane.
class ProgressProbeLease {
 public:
  explicit ProgressProbeLease(SweepProgressPlane* plane)
      : plane_(plane), probe_(plane != nullptr ? plane->acquire_probe() : nullptr) {}
  ~ProgressProbeLease() {
    if (probe_ != nullptr) plane_->release_probe(probe_);
  }
  ProgressProbeLease(const ProgressProbeLease&) = delete;
  ProgressProbeLease& operator=(const ProgressProbeLease&) = delete;

  [[nodiscard]] SweepProgressPlane::ShardProbe* probe() const noexcept { return probe_; }

 private:
  SweepProgressPlane* plane_;
  SweepProgressPlane::ShardProbe* probe_;
};

}  // namespace rdns::scan
