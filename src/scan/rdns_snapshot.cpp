#include "scan/rdns_snapshot.hpp"

#include <unordered_set>

#include "util/strings.hpp"

namespace rdns::scan {

void CsvSnapshotSink::on_row(const util::CivilDate& date, net::Ipv4Addr address,
                             const dns::DnsName& ptr) {
  writer_.row(util::format_date(date), address.to_string(), ptr.to_canonical_string());
}

std::uint64_t sweep_bulk(const sim::World& world, const util::CivilDate& date,
                         SnapshotSink& sink) {
  std::uint64_t rows = 0;
  world.snapshot_ptrs([&](net::Ipv4Addr a, const dns::DnsName& ptr) {
    sink.on_row(date, a, ptr);
    ++rows;
  });
  sink.on_sweep_end(date);
  return rows;
}

std::uint64_t sweep_wire(sim::World& world, const util::CivilDate& date, SnapshotSink& sink,
                         dns::ResolverStats* stats_out) {
  dns::StubResolver resolver{world, /*retries=*/1};
  std::uint64_t rows = 0;
  for (const auto& prefix : world.announced_prefixes()) {
    for (std::uint64_t v = prefix.first().value(); v <= prefix.last().value(); ++v) {
      const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
      const auto result = resolver.lookup_ptr(a, world.now());
      if (result.status == dns::LookupStatus::Ok && result.ptr) {
        sink.on_row(date, a, *result.ptr);
        ++rows;
      }
    }
  }
  if (stats_out != nullptr) *stats_out = resolver.stats();
  sink.on_sweep_end(date);
  return rows;
}

SweepDriver::SweepDriver(sim::World& world, int hour_of_day, int every_days, int second_hour)
    : world_(&world),
      hour_of_day_(hour_of_day),
      every_days_(every_days),
      second_hour_(second_hour) {}

namespace {

/// De-duplicates by address within one sweep (union-of-instants mode) and
/// defers on_sweep_end to the driver.
class UnionPass final : public SnapshotSink {
 public:
  UnionPass(SnapshotSink& inner) : inner_(&inner) {}

  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override {
    if (!seen_.insert(address).second) return;
    inner_->on_row(date, address, ptr);
    ++rows_;
  }

  void finish(const util::CivilDate& date) {
    inner_->on_sweep_end(date);
    seen_.clear();
  }

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

 private:
  SnapshotSink* inner_;
  std::unordered_set<net::Ipv4Addr> seen_;
  std::uint64_t rows_ = 0;
};

/// A sink wrapper suppressing on_sweep_end from the inner bulk passes.
class NoEndSink final : public SnapshotSink {
 public:
  explicit NoEndSink(SnapshotSink& inner) : inner_(&inner) {}
  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override {
    inner_->on_row(date, address, ptr);
  }

 private:
  SnapshotSink* inner_;
};

}  // namespace

SweepStats SweepDriver::run(const util::CivilDate& from, const util::CivilDate& to,
                            SnapshotSink& sink) {
  SweepStats stats;
  for (util::CivilDate date = from; !(to < date); date = util::add_days(date, every_days_)) {
    const util::SimTime at = util::to_sim_time(date) + hour_of_day_ * util::kHour;
    if (at < world_->now()) continue;  // never rewind the clock
    world_->run_until(at);
    if (second_hour_ < 0) {
      stats.total_rows += sweep_bulk(*world_, date, sink);
    } else {
      UnionPass unioned{sink};
      NoEndSink pass{unioned};
      const std::uint64_t before = unioned.rows();
      (void)sweep_bulk(*world_, date, pass);
      world_->run_until(util::to_sim_time(date) + second_hour_ * util::kHour);
      (void)sweep_bulk(*world_, date, pass);
      unioned.finish(date);
      stats.total_rows += unioned.rows() - before;
    }
    ++stats.sweeps;
  }
  return stats;
}

}  // namespace rdns::scan
