#include "scan/rdns_snapshot.hpp"

#include <cstdio>
#include <mutex>

#include "net/ip_bitset.hpp"
#include "scan/progress.hpp"
#include "util/faults.hpp"
#include "util/flight.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/trace.hpp"

namespace rdns::scan {

namespace {

namespace metrics = rdns::util::metrics;

/// Sweep throughput accounting. Everything here is deterministic: rows and
/// shard/org partitions depend only on the world and the sweep schedule,
/// never on the thread count.
struct SweepMetrics {
  metrics::Counter& rows = metrics::counter("sweep.rows");
  metrics::Counter& sweeps = metrics::counter("sweep.sweeps");
  metrics::Counter& bulk_passes = metrics::counter("sweep.bulk_passes");
  metrics::Counter& wire_shards = metrics::counter("sweep.wire_shards");
  metrics::Counter& shard_reruns = metrics::counter("sweep.shard_reruns");
  metrics::Counter& degraded_shards = metrics::counter("sweep.degraded_shards");
  metrics::Counter& rrl_throttled = metrics::counter("sweep.rrl_throttled");
  metrics::Counter& refused = metrics::counter("sweep.refused");
  metrics::Histogram& org_rows = metrics::histogram(
      "sweep.org_rows", metrics::Histogram::exponential_bounds(16, 4, 10));
  metrics::Histogram& shard_rows = metrics::histogram(
      "sweep.shard_rows", metrics::Histogram::linear_bounds(32, 32, 8));
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics m;
  return m;
}

}  // namespace

void append_snapshot_row(std::string& out, std::string_view date_text, net::Ipv4Addr address,
                         std::string_view ptr_text) {
  out.append(date_text);  // "YYYY-MM-DD": never needs quoting
  out.push_back(',');
  char quad[16];
  const int quad_len = std::snprintf(quad, sizeof quad, "%u.%u.%u.%u", address.octet(0),
                                     address.octet(1), address.octet(2), address.octet(3));
  out.append(quad, static_cast<std::size_t>(quad_len));
  out.push_back(',');
  const std::size_t field_start = out.size();
  bool needs_quoting = false;
  for (char c : ptr_text) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    needs_quoting |= (c == ',' || c == '"' || c == '\r' || c == '\n');
    out.push_back(c);
  }
  if (needs_quoting) {
    // Unreachable for valid hostnames; redo through csv_escape so the
    // bytes match util::CsvWriter exactly even for hostile inputs.
    const std::string field = out.substr(field_start);
    out.resize(field_start);
    out.append(util::csv_escape(field));
  }
  out.push_back('\n');
}

void CsvSnapshotSink::on_row(const util::CivilDate& date, net::Ipv4Addr address,
                             const dns::DnsName& ptr) {
  line_.clear();
  append_snapshot_row(line_, util::format_date(date), address, ptr.to_string());
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
}

void CsvSnapshotSink::on_raw_rows(std::string_view bytes, std::uint64_t /*rows*/) {
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void CsvSnapshotSink::on_shard_degraded(const util::CivilDate& date, net::Ipv4Addr first,
                                        net::Ipv4Addr /*last*/) {
  line_.clear();
  append_snapshot_row(line_, util::format_date(date), first, kDegradedSentinel);
  out_->write(line_.data(), static_cast<std::streamsize>(line_.size()));
}

std::uint64_t sweep_bulk(const sim::World& world, const util::CivilDate& date,
                         SnapshotSink& sink, util::ThreadPool* pool_opt) {
  const auto span = util::trace::Tracer::global().scope("bulk_pass");
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  SweepMetrics& sm = sweep_metrics();
  sm.bulk_passes.inc();

  const auto& orgs = world.orgs();
  std::uint64_t rows = 0;
  if (sink.wants_raw_rows()) {
    // Streaming path: workers render each org's rows straight to CSV bytes
    // (no DnsName or row-vector materialization — the 10M-device sweeps
    // would otherwise copy every hostname twice); the fold hands the
    // blocks to the sink in org order, so the byte stream is identical to
    // the per-row path below.
    struct OrgBlob {
      std::string bytes;
      std::uint64_t rows = 0;
    };
    const std::string date_text = util::format_date(date);
    util::map_reduce_chunks<OrgBlob>(
        pool, orgs.size(), /*chunk=*/1,
        [&](std::size_t ci, std::uint64_t, std::uint64_t) {
          OrgBlob out;
          orgs[ci]->for_each_ptr_text(
              [&](net::Ipv4Addr a, std::string_view target, std::uint32_t /*ttl*/) {
                append_snapshot_row(out.bytes, date_text, a, target);
                ++out.rows;
              });
          return out;
        },
        [&](std::size_t ci, OrgBlob&& blob) {
          sm.org_rows.observe(static_cast<double>(blob.rows));
          sink.on_raw_rows(blob.bytes, blob.rows);
          rows += blob.rows;
          if (auto* j = util::journal::active()) {
            util::journal::Event e{"sweep.org", world.now()};
            e.str("org", orgs[ci]->name()).unum("rows", blob.rows);
            j->emit(e);
          }
        });
    sm.rows.inc(rows);
    if (auto* j = util::journal::active()) {
      util::journal::Event e{"sweep.pass", world.now()};
      e.str("date", util::format_date(date)).unum("rows", rows);
      j->emit(e);
    }
    sink.on_sweep_end(date);
    return rows;
  }
  using Rows = std::vector<std::pair<net::Ipv4Addr, dns::DnsName>>;
  // One chunk per org: for_each_ptr only reads zone state, so orgs snapshot
  // concurrently; the fold visits them in org order — the serial iteration
  // order of World::snapshot_ptrs — keeping the byte stream identical.
  util::map_reduce_chunks<Rows>(
      pool, orgs.size(), /*chunk=*/1,
      [&](std::size_t ci, std::uint64_t, std::uint64_t) {
        Rows out;
        orgs[ci]->for_each_ptr(
            [&](net::Ipv4Addr a, const dns::DnsName& ptr) { out.emplace_back(a, ptr); });
        return out;
      },
      [&](std::size_t ci, Rows&& org_rows) {
        sm.org_rows.observe(static_cast<double>(org_rows.size()));
        for (auto& [a, ptr] : org_rows) {
          sink.on_row(date, a, ptr);
          ++rows;
        }
        // The fold runs on the calling thread in org order, so these events
        // land in the same order at any thread count.
        if (auto* j = util::journal::active()) {
          util::journal::Event e{"sweep.org", world.now()};
          e.str("org", orgs[ci]->name()).unum("rows", org_rows.size());
          j->emit(e);
        }
      });
  sm.rows.inc(rows);
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"sweep.pass", world.now()};
    e.str("date", util::format_date(date)).unum("rows", rows);
    j->emit(e);
  }
  sink.on_sweep_end(date);
  return rows;
}

std::vector<SweepShard> shard_address_space(const std::vector<net::Prefix>& prefixes) {
  std::vector<SweepShard> shards;
  for (const auto& prefix : prefixes) {
    const std::uint64_t first = prefix.first().value();
    const std::uint64_t last = prefix.last().value();
    for (std::uint64_t base = first; base <= last;) {
      // Advance to the end of the covering /24 (or the prefix, whichever
      // comes first) so shards never straddle a /24 boundary.
      const std::uint64_t slash24_end = (base | 0xFFULL);
      SweepShard shard;
      shard.first = static_cast<std::uint32_t>(base);
      shard.last = static_cast<std::uint32_t>(std::min(last, slash24_end));
      shards.push_back(shard);
      base = static_cast<std::uint64_t>(shard.last) + 1;
    }
  }
  return shards;
}

std::uint64_t sweep_wire(sim::World& world, const util::CivilDate& date, SnapshotSink& sink,
                         dns::ResolverStats* stats_out, util::ThreadPool* pool_opt,
                         const WireSweepOptions& options) {
  const auto span = util::trace::Tracer::global().scope("wire_sweep");
  util::ThreadPool& pool = pool_opt != nullptr ? *pool_opt : util::ThreadPool::global();
  SweepMetrics& sm = sweep_metrics();
  const auto shards = shard_address_space(world.announced_prefixes());
  sm.wire_shards.inc(shards.size());

  // Per-shard result rows, funnelled through a bounded reorder buffer so
  // the sink observes them in shard order — byte-identical to the serial
  // walk — while workers run ahead by at most `capacity` shards.
  struct ShardRows {
    std::vector<std::pair<net::Ipv4Addr, dns::DnsName>> rows;
    /// Raw-sink path: rows pre-rendered to CSV bytes in the worker
    /// (append_snapshot_row); `rows` stays empty and row_count counts.
    std::string bytes;
    std::uint64_t row_count = 0;
    /// Pre-rendered journal events for this shard (empty when disabled).
    /// Workers render into a per-shard buffer; the merge consumer appends
    /// them in shard order, so the journal stream is thread-invariant.
    std::string journal_lines;
    /// Both attempts exhausted the retry budget: no rows, one sentinel.
    bool degraded = false;
    /// Already emitted by a checkpointed predecessor run (resume path).
    bool skipped = false;
  };
  // Captured once: toggling the journal mid-sweep must not tear the stream.
  util::journal::Journal* const jrn = util::journal::active();
  const bool raw = sink.wants_raw_rows();
  const std::string date_text = util::format_date(date);
  std::uint64_t rows_emitted = 0;
  std::size_t shards_done = 0;
  util::OrderedMergeBuffer<ShardRows> merge{
      /*capacity=*/std::size_t{8} * pool.size(),
      [&](std::size_t seq, ShardRows&& shard_rows) {
        if (shard_rows.degraded) {
          sink.on_shard_degraded(date, net::Ipv4Addr{shards[seq].first},
                                 net::Ipv4Addr{shards[seq].last});
        } else if (raw) {
          sink.on_raw_rows(shard_rows.bytes, shard_rows.row_count);
          rows_emitted += shard_rows.row_count;
        } else {
          for (auto& [address, ptr] : shard_rows.rows) {
            sink.on_row(date, address, ptr);
            ++rows_emitted;
          }
        }
        if (jrn != nullptr && !shard_rows.journal_lines.empty()) {
          jrn->append_raw(shard_rows.journal_lines);
        }
        ++shards_done;
        if (options.on_shard_done && !shard_rows.skipped) {
          options.on_shard_done(shards_done, shards.size(), rows_emitted);
        }
      }};

  // Retry/timeout counters and per-org server stats accumulate per shard
  // and fold under a mutex; every field is a sum, so the totals are
  // independent of merge order (and therefore of the thread count).
  dns::ResolverStats resolver_totals;
  std::vector<dns::ServerStats> server_totals(world.orgs().size());
  std::mutex stats_mutex;
  const util::SimTime now = world.now();
  const sim::World& frozen = world;

  // Shard retry budget from the armed chaos profile (0 = unlimited, the
  // fault-free fast path: one attempt, no budget accounting).
  const util::faults::Injector* const inj = util::faults::active();
  const std::uint64_t budget = inj != nullptr ? inj->profile().shard_retry_budget : 0;
  const int max_attempts = budget > 0 ? 2 : 1;

  if (options.progress != nullptr) {
    options.progress->begin_pass(shards.size(), options.skip_shards, date_text, now);
  }

  pool.parallel_for_chunks(
      shards.size(), /*chunk=*/1,
      [&](std::size_t shard_index, std::uint64_t /*begin*/, std::uint64_t /*end*/) {
        if (shard_index < options.skip_shards) {
          ShardRows done;
          done.skipped = true;
          merge.put(shard_index, std::move(done));
          return;
        }
        ShardRows out;
        const ProgressProbeLease lease{options.progress};
        try {
          const SweepShard& shard = shards[shard_index];
          util::flight::record(util::flight::Kind::ShardStart, shard.first, shard_index);
          if (lease.probe() != nullptr) lease.probe()->on_shard_start();
          // Transport per shard: the in-process frozen view by default, or
          // a caller-supplied socket transport (UDP sweeps). Only the
          // in-process view carries per-org server stats to fold back.
          std::unique_ptr<dns::Transport> owned_transport;
          sim::FrozenDnsView* view = nullptr;
          if (options.make_transport) {
            owned_transport = options.make_transport();
          } else {
            auto frozen_view = std::make_unique<sim::FrozenDnsView>(frozen);
            view = frozen_view.get();
            owned_transport = std::move(frozen_view);
          }
          dns::Transport& transport = *owned_transport;
          dns::ResolverStats shard_stats;
          util::journal::Buffer buf;
          bool exhausted = false;
          std::uint64_t reruns = 0;
          for (int attempt = 0; attempt < max_attempts; ++attempt) {
            out.rows.clear();
            out.bytes.clear();
            out.row_count = 0;
            // One resolver per shard attempt, transaction ids seeded by the
            // shard index (re-run attempts perturb the seed so their query
            // stream differs): the stream of shard k / attempt a is the
            // same no matter which worker runs it.
            const std::uint64_t id_seed =
                0x1D5EEDULL ^ util::mix64(shard_index + 1) ^
                (attempt == 0 ? 0ULL
                              : util::mix64(0xFA117EDULL + static_cast<std::uint64_t>(attempt)));
            dns::StubResolver resolver{transport, /*retries=*/1, id_seed};
            if (budget > 0) {
              dns::RetryPolicy policy;
              policy.retry_budget = budget;
              resolver.set_retry_policy(policy);
            }
            if (jrn != nullptr) resolver.set_retry_journal(&buf);
            for (std::uint64_t v = shard.first; v <= shard.last; ++v) {
              const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
              const auto result = resolver.lookup_ptr(a, now);
              if (result.status == dns::LookupStatus::Ok && result.ptr) {
                if (raw) {
                  append_snapshot_row(out.bytes, date_text, a, result.ptr->to_string());
                } else {
                  out.rows.emplace_back(a, *result.ptr);
                }
                ++out.row_count;
              }
            }
            shard_stats += resolver.stats();
            exhausted = resolver.budget_exhausted();
            if (jrn != nullptr) {
              const dns::ResolverStats& rs = resolver.stats();
              util::journal::Event e{"sweep.shard", now};
              e.str("first", net::Ipv4Addr{shard.first}.to_string())
                  .str("last", net::Ipv4Addr{shard.last}.to_string())
                  .unum("rows", out.row_count)
                  .unum("ok", rs.ok)
                  .unum("nxdomain", rs.nxdomain)
                  .unum("servfail", rs.servfail)
                  .unum("timeout", rs.timeout);
              if (max_attempts > 1) {
                e.unum("attempt", static_cast<std::uint64_t>(attempt))
                    .boolean("exhausted", exhausted);
              }
              buf.emit(e);
            }
            if (!exhausted) break;
            if (attempt + 1 < max_attempts) {
              sm.shard_reruns.inc();
              ++reruns;
            }
          }
          if (exhausted) {
            // Graceful degradation: both attempts burned their budget, so
            // the shard's rows are untrustworthy — drop them, record the
            // gap. The sweep keeps going.
            out.rows.clear();
            out.bytes.clear();
            out.row_count = 0;
            out.degraded = true;
            sm.degraded_shards.inc();
            if (jrn != nullptr) {
              util::journal::Event e{"sweep.shard_degraded", now};
              e.str("first", net::Ipv4Addr{shard.first}.to_string())
                  .str("last", net::Ipv4Addr{shard.last}.to_string());
              buf.emit(e);
            }
          }
          if (out.degraded) {
            util::flight::record(util::flight::Kind::ShardDegrade, shard.first, shard_index);
          } else {
            util::flight::record(util::flight::Kind::ShardFinish, out.row_count, shard_index);
          }
          if (lease.probe() != nullptr) {
            lease.probe()->on_shard_finish(out.row_count, shard_stats.queries_sent,
                                           shard_stats.retries, out.degraded, reruns);
          }
          sm.shard_rows.observe(static_cast<double>(out.row_count));
          if (jrn != nullptr) out.journal_lines = buf.take();
          std::lock_guard lock{stats_mutex};
          resolver_totals += shard_stats;
          if (view != nullptr) view->merge_into(server_totals);
        } catch (...) {
          // The merge cursor must advance even for a failed shard, or
          // producers behind it would block forever.
          merge.put(shard_index, ShardRows{});
          throw;
        }
        merge.put(shard_index, std::move(out));
      });

  world.merge_server_stats(server_totals);
  if (stats_out != nullptr) *stats_out = resolver_totals;
  sm.rows.inc(rows_emitted);
  // Server-side defense signals folded from the per-shard resolvers: TC
  // slips (RRL throttling) and REFUSED outcomes from a defended target.
  if (resolver_totals.rrl_throttled > 0) sm.rrl_throttled.inc(resolver_totals.rrl_throttled);
  if (resolver_totals.refused > 0) sm.refused.inc(resolver_totals.refused);
  if (jrn != nullptr) {
    util::journal::Event e{"sweep.pass", now};
    e.str("date", util::format_date(date)).unum("rows", rows_emitted);
    jrn->emit(e);
  }
  sink.on_sweep_end(date);
  return rows_emitted;
}

SweepDriver::SweepDriver(sim::World& world, int hour_of_day, int every_days, int second_hour)
    : world_(&world),
      hour_of_day_(hour_of_day),
      every_days_(every_days),
      second_hour_(second_hour) {}

namespace {

/// De-duplicates by address within one sweep (union-of-instants mode) and
/// defers on_sweep_end to the driver. Announced space is dense, so the
/// seen-set is a per-/16 bitmap (net::Ipv4Bitset) — one bit per address
/// instead of a hash-set node; see bench_micro_components for the
/// serial-path win.
class UnionPass final : public SnapshotSink {
 public:
  UnionPass(SnapshotSink& inner) : inner_(&inner) {}

  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override {
    if (!seen_.insert(address)) return;
    inner_->on_row(date, address, ptr);
    ++rows_;
  }

  void finish(const util::CivilDate& date) {
    inner_->on_sweep_end(date);
    seen_.clear();
  }

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }

 private:
  SnapshotSink* inner_;
  net::Ipv4Bitset seen_;
  std::uint64_t rows_ = 0;
};

/// A sink wrapper suppressing on_sweep_end from the inner bulk passes.
class NoEndSink final : public SnapshotSink {
 public:
  explicit NoEndSink(SnapshotSink& inner) : inner_(&inner) {}
  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override {
    inner_->on_row(date, address, ptr);
  }

 private:
  SnapshotSink* inner_;
};

}  // namespace

SweepStats SweepDriver::run(const util::CivilDate& from, const util::CivilDate& to,
                            SnapshotSink& sink) {
  SweepStats stats;
  for (util::CivilDate date = from; !(to < date); date = util::add_days(date, every_days_)) {
    const auto day_span = util::trace::Tracer::global().scope("day");
    const util::SimTime at = util::to_sim_time(date) + hour_of_day_ * util::kHour;
    if (at < world_->now()) continue;  // never rewind the clock
    world_->run_until(at);
    if (second_hour_ < 0) {
      stats.total_rows += sweep_bulk(*world_, date, sink);
    } else {
      UnionPass unioned{sink};
      NoEndSink pass{unioned};
      const std::uint64_t before = unioned.rows();
      (void)sweep_bulk(*world_, date, pass);
      world_->run_until(util::to_sim_time(date) + second_hour_ * util::kHour);
      (void)sweep_bulk(*world_, date, pass);
      unioned.finish(date);
      stats.total_rows += unioned.rows() - before;
    }
    ++stats.sweeps;
    sweep_metrics().sweeps.inc();
  }
  return stats;
}

}  // namespace rdns::scan
