#pragma once
/// \file rdns_snapshot.hpp
/// Full-address-space reverse DNS sweeps, modelled on the two data sets the
/// paper uses (Section 3): OpenINTEL (daily snapshots) and Rapid7 Project
/// Sonar (one weekday per week). Rows carry the same schema as those data
/// sets: (date, address, PTR hostname).
///
/// Two sweep paths exist:
///   - the bulk path reads the zones directly (what a full sweep observes,
///     in O(records) instead of O(address space)); used by long campaigns;
///   - the wire path issues real PTR queries for every address through the
///     resolver, exercising the full DNS codec; tests assert both paths
///     agree, and short sweeps can afford it.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dns/resolver.hpp"
#include "sim/world.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace rdns::scan {

class SweepProgressPlane;

/// Sentinel PTR value recorded for a /24 shard whose retry budget was
/// exhausted on every attempt (graceful degradation instead of aborting
/// the sweep). A valid DNS name under the reserved "invalid." TLD, so CSV
/// rows stay parseable; csv_replay skips and counts these rows.
inline constexpr const char* kDegradedSentinel = "degraded.invalid.";

/// Receives sweep output. `on_row` is called once per (address, PTR) pair;
/// `on_sweep_end` once per completed sweep; `on_shard_degraded` once per
/// /24 shard the wire sweep gave up on (both attempts exhausted their
/// retry budget under an armed chaos profile).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void on_row(const util::CivilDate& date, net::Ipv4Addr address,
                      const dns::DnsName& ptr) = 0;
  virtual void on_sweep_end(const util::CivilDate& /*date*/) {}
  virtual void on_shard_degraded(const util::CivilDate& /*date*/, net::Ipv4Addr /*first*/,
                                 net::Ipv4Addr /*last*/) {}

  /// Streaming opt-in: a sink returning true receives its rows as blocks
  /// of pre-rendered CSV bytes via on_raw_rows instead of per-row on_row
  /// calls. Sweeps then render rows with append_snapshot_row inside the
  /// worker threads — no DnsName materialization, no per-row virtual
  /// dispatch — while the block order (and therefore the byte stream)
  /// stays identical to the on_row path at every thread count.
  [[nodiscard]] virtual bool wants_raw_rows() const noexcept { return false; }
  /// `bytes` holds `rows` rows rendered by append_snapshot_row. Only
  /// called when wants_raw_rows() is true; on_sweep_end/on_shard_degraded
  /// fire as usual.
  virtual void on_raw_rows(std::string_view /*bytes*/, std::uint64_t /*rows*/) {}
};

/// Append one "date,address,ptr\n" CSV row to `out`, byte-for-byte what
/// CsvSnapshotSink's on_row path writes through util::CsvWriter: `ptr_text`
/// (presentation form, no trailing dot) is lowercased while copying, and a
/// field that would need RFC 4180 quoting — impossible for valid dates,
/// addresses and LDH hostnames, but kept for safety — is escaped exactly
/// like util::csv_escape. The shared renderer is what guarantees the raw
/// and per-row sink paths produce identical artifacts.
void append_snapshot_row(std::string& out, std::string_view date_text, net::Ipv4Addr address,
                         std::string_view ptr_text);

/// Forwards rows to a CSV stream (date, ip, ptr) — the on-disk format.
/// Degraded shards become one sentinel row (date, first, kDegradedSentinel)
/// so the gap is visible in the artifact itself.
class CsvSnapshotSink final : public SnapshotSink {
 public:
  explicit CsvSnapshotSink(std::ostream& out) : out_(&out) {}
  void on_row(const util::CivilDate& date, net::Ipv4Addr address,
              const dns::DnsName& ptr) override;
  void on_shard_degraded(const util::CivilDate& date, net::Ipv4Addr first,
                         net::Ipv4Addr last) override;
  [[nodiscard]] bool wants_raw_rows() const noexcept override { return true; }
  void on_raw_rows(std::string_view bytes, std::uint64_t rows) override;

 private:
  std::ostream* out_;
  std::string line_;  ///< reused row buffer for the per-row path
};

/// Summary statistics across sweeps (Table 1 columns).
struct SweepStats {
  std::uint64_t sweeps = 0;
  std::uint64_t total_rows = 0;       ///< "# responses"
  std::uint64_t unique_ptrs = 0;      ///< filled by UniquePtrTracker
};

/// Performs one full sweep at the world's current time via the bulk path.
///
/// Orgs are read concurrently on the pool (`nullptr` = the global pool) —
/// zone reads are const and independent per org — and each org's rows are
/// folded into `sink` in org order, so the output byte stream is identical
/// to the serial walk at every thread count.
std::uint64_t sweep_bulk(const sim::World& world, const util::CivilDate& date,
                         SnapshotSink& sink, util::ThreadPool* pool = nullptr);

/// One shard of a wire sweep: a /24-aligned slice of an announced prefix.
/// Shard boundaries depend only on the announced prefixes, never on the
/// thread count, so each shard's query stream (resolver transaction ids
/// included) is reproducible at any pool size.
struct SweepShard {
  std::uint32_t first = 0;       ///< first address value (inclusive)
  std::uint32_t last = 0;        ///< last address value (inclusive)
};

/// Split announced prefixes into per-/24 shards (smaller prefixes become
/// one shard each). Exposed for the scaling bench and tests.
[[nodiscard]] std::vector<SweepShard> shard_address_space(
    const std::vector<net::Prefix>& prefixes);

/// Tuning for one wire sweep, used by checkpoint/resume.
struct WireSweepOptions {
  /// Shards [0, skip_shards) were already emitted by a previous
  /// (checkpointed) run: they are neither queried nor re-emitted, so the
  /// remaining output byte stream continues exactly where the previous
  /// run's committed prefix ended.
  std::size_t skip_shards = 0;
  /// Fired in shard order after each shard's output reached the sink;
  /// shards skipped via `skip_shards` advance the count but do not fire
  /// (they were committed by the previous run). `rows_so_far` counts rows
  /// emitted by THIS call. This is the checkpoint hook: when it fires,
  /// everything up to `shards_done` is a committed prefix.
  std::function<void(std::size_t shards_done, std::size_t shards_total,
                     std::uint64_t rows_so_far)> on_shard_done;
  /// When set, each shard resolves through a transport built here (one per
  /// shard, owned by the worker) instead of the in-process FrozenDnsView —
  /// e.g. a dns::UdpTransport aimed at a live `rdns_tool serve` instance.
  /// Per-org server statistics then stay on the serving side; resolver
  /// statistics accumulate as usual. The world is still consulted for the
  /// announced prefixes (shard layout) and the sweep schedule, so a UDP
  /// sweep against a server built from the same seed/scale reproduces the
  /// in-process CSV byte for byte (faults disarmed).
  std::function<std::unique_ptr<dns::Transport>()> make_transport;
  /// Live progress plane (scan/progress.hpp). Observe-only: workers lease
  /// a seqlock probe per shard and the plane aggregates on its own
  /// thread, so arming it never changes the CSV byte stream. Null = off.
  SweepProgressPlane* progress = nullptr;
};

/// Performs one full sweep by issuing a wire-format PTR query per address
/// of every announced prefix. Returns rows emitted.
///
/// The address space is sharded per /24; each shard runs on the pool
/// (`nullptr` = the global pool) with its own StubResolver over a
/// read-only World view, and shard outputs funnel through a bounded
/// ordered-merge buffer — so the rows reaching `sink` are byte-identical
/// to the serial run at every thread count. Requires a frozen sim clock
/// (no concurrent run_until), which is how scanners already operate.
///
/// Resilience: when a chaos profile with a shard retry budget is armed,
/// each shard's resolver runs under that budget; a shard that exhausts it
/// is re-run once with a fresh resolver, and if the retry also exhausts,
/// the shard is recorded as degraded (sink.on_shard_degraded + journal
/// sweep.shard_degraded) instead of aborting the sweep.
std::uint64_t sweep_wire(sim::World& world, const util::CivilDate& date, SnapshotSink& sink,
                         dns::ResolverStats* stats_out = nullptr,
                         util::ThreadPool* pool = nullptr,
                         const WireSweepOptions& options = {});

/// Drives a periodic sweep campaign: advances the world to `hour_of_day` on
/// each sweep date and invokes the bulk sweep.
///
/// Real full-space sweeps take many hours, so a single day's sweep observes
/// records that exist at *different times of day*. Passing `second_hour`
/// (e.g. 21) makes each sweep the union of two instants — records present
/// at either moment are reported once — which is what lets daily snapshots
/// see both office-hours clients and evening/residential clients, as
/// OpenINTEL and Rapid7 do.
class SweepDriver {
 public:
  /// `every_days` = 1 reproduces OpenINTEL, 7 reproduces Rapid7 Sonar.
  SweepDriver(sim::World& world, int hour_of_day, int every_days, int second_hour = -1);

  /// Sweep from `from` to `to` inclusive; returns per-campaign stats.
  SweepStats run(const util::CivilDate& from, const util::CivilDate& to, SnapshotSink& sink);

 private:
  sim::World* world_;
  int hour_of_day_;
  int every_days_;
  int second_hour_;
};

}  // namespace rdns::scan
