#include "scan/reactive.hpp"

#include "util/faults.hpp"
#include "util/flight.hpp"
#include "util/journal.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace rdns::scan {

using util::SimTime;
using util::kMinute;

namespace {

namespace metrics = rdns::util::metrics;

/// Campaign accounting (Fig. 5 reactive loop). The engine is a serial
/// event loop, so every series is deterministic for a given config/seed.
struct CampaignMetrics {
  metrics::Counter& icmp_probes = metrics::counter("campaign.icmp_probes");
  metrics::Counter& icmp_responses = metrics::counter("campaign.icmp_responses");
  metrics::Counter& rdns_lookups = metrics::counter("campaign.rdns_lookups");
  metrics::Counter& rdns_ok = metrics::counter("campaign.rdns_ok");
  metrics::Counter& groups_opened = metrics::counter("campaign.groups_opened");
  metrics::Counter& groups_closed = metrics::counter("campaign.groups_closed");
  metrics::Counter& sweep_rounds = metrics::counter("campaign.sweep_rounds");
  /// Which back-off slot each probe fired from: occupancy of the schedule
  /// (12x5min, 6x10min, 3x20min, 2x30min, then hourly).
  metrics::Histogram& backoff_probe_index = metrics::histogram(
      "campaign.backoff_probe_index", {1, 3, 6, 12, 18, 21, 23, 36, 72});
};

CampaignMetrics& campaign_metrics() {
  static CampaignMetrics m;
  return m;
}

namespace journal = rdns::util::journal;

/// One back-off step: the engine committed to re-probing `group` after
/// `next_s` seconds, having completed `probes_done` probes in the current
/// phase. The auditor replays these against BackoffSchedule (Table 2).
void journal_backoff(const GroupSummary& group, int probes_done, SimTime next_s, SimTime now) {
  util::flight::record(util::flight::Kind::CampaignBackoff, static_cast<std::uint64_t>(next_s),
                       static_cast<std::uint32_t>(probes_done));
  if (auto* j = journal::active()) {
    journal::Event e{"campaign.backoff", now};
    e.unum("group", group.group_id).num("n", probes_done).num("next_s", next_s);
    j->emit(e);
  }
}

}  // namespace

SimTime BackoffSchedule::interval_after(int probes_done) noexcept {
  if (probes_done < 12) return 5 * kMinute;   // 1st hour
  if (probes_done < 18) return 10 * kMinute;  // 2nd hour
  if (probes_done < 21) return 20 * kMinute;  // 3rd hour
  if (probes_done < 23) return 30 * kMinute;  // 4th hour
  return 60 * kMinute;                        // steady state
}

SimTime BackoffSchedule::offset_of(int i) noexcept {
  SimTime t = 0;
  for (int k = 0; k < i; ++k) t += interval_after(k);
  return t;
}

ReactiveEngine::ReactiveEngine(sim::World& world, std::vector<Target> targets)
    : ReactiveEngine(world, std::move(targets), Config{}) {}

ReactiveEngine::ReactiveEngine(sim::World& world, std::vector<Target> targets, Config config)
    : world_(&world),
      targets_(std::move(targets)),
      config_(config),
      icmp_(world, IcmpScanConfig{config.icmp_rate_pps, 256.0, config.seed}),
      resolver_(world, /*retries=*/0, config.seed ^ 0x12D5),
      rdns_bucket_(config.rdns_rate_pps, config.rdns_rate_pps) {
  for (const auto& target : targets_) {
    auto& obs = networks_[target.network];
    for (const auto& p : target.prefixes) obs.target_addresses += p.size();
  }
  // Resilience against an armed chaos profile. Lossy ICMP: require a
  // second failed probe (re-checked at the same Table 2 slot) before
  // inferring departure, so probe loss is not booked as a client leaving.
  // Flaky DNS: let the serial resolver retry lost/truncated exchanges once
  // with its deterministic backoff. Both knobs are no-ops without faults,
  // keeping fault-free journals byte-identical to earlier runs.
  if (const auto* inj = util::faults::active()) {
    if (inj->profile().p(util::faults::Site::IcmpProbeLoss) > 0 &&
        config_.offline_confirm_probes < 2) {
      config_.offline_confirm_probes = 2;
    }
    const auto& p = inj->profile();
    if (p.p(util::faults::Site::DnsTimeout) > 0 || p.p(util::faults::Site::DnsServfail) > 0 ||
        p.p(util::faults::Site::DnsTruncate) > 0) {
      resolver_.set_retry_policy(dns::RetryPolicy{});
    }
  }
}

void ReactiveEngine::schedule(SimTime t, ActionKind kind, net::Ipv4Addr address) {
  actions_.push(Action{t, next_seq_++, kind, address});
}

void ReactiveEngine::run(SimTime from, SimTime to) {
  const auto span = util::trace::Tracer::global().scope("campaign");
  // The campaign resolver is serial, so its dns.lookup events interleave
  // deterministically with the campaign.* stream.
  resolver_.set_journal(util::journal::active());
  end_time_ = to;
  schedule(from, ActionKind::Sweep, net::Ipv4Addr{});
  while (!actions_.empty() && actions_.top().time <= to) {
    const Action action = actions_.top();
    actions_.pop();
    world_->run_until(action.time);
    switch (action.kind) {
      case ActionKind::Sweep:
        do_sweep();
        break;
      case ActionKind::Probe:
        do_probe(action.address);
        break;
      case ActionKind::SpotRdns:
        do_spot_rdns(action.address);
        break;
    }
  }
  world_->run_until(to);
  flush_hour();
}

void ReactiveEngine::flush_hour() {
  if (current_hour_ < 0) return;
  auto& activity = hourly_[current_hour_];
  activity.icmp_ok += hour_icmp_addrs_.size();
  activity.rdns_ok += hour_rdns_addrs_.size();
  hour_icmp_addrs_.clear();
  hour_rdns_addrs_.clear();
}

void ReactiveEngine::note_hourly(net::Ipv4Addr address, SimTime now, bool is_rdns) {
  const std::int64_t hour = now / util::kHour;
  if (hour != current_hour_) {
    flush_hour();
    current_hour_ = hour;
  }
  (is_rdns ? hour_rdns_addrs_ : hour_icmp_addrs_).insert(address);
}

void ReactiveEngine::open_group(net::Ipv4Addr address) {
  GroupSummary group;
  group.group_id = groups_.size() + 1;
  group.address = address;
  if (const sim::Organization* org = world_->org_of(address)) group.network = org->name();
  group.started = world_->now();
  group.last_icmp_ok = world_->now();
  group.icmp_ok = 1;

  Tracked tracked;
  tracked.group_index = groups_.size();
  groups_.push_back(std::move(group));
  tracked_.emplace(address, tracked);
  campaign_metrics().groups_opened.inc();
  networks_[groups_.back().network].groups += 1;
  if (auto* j = util::journal::active()) {
    const GroupSummary& g = groups_.back();
    util::journal::Event e{"campaign.group_open", world_->now()};
    e.unum("group", g.group_id).str("ip", address.to_string()).str("network", g.network);
    j->emit(e);
  }

  // Spot rDNS lookup to record the PTR value (Fig. 5, phase 1), then the
  // first reactive ping five minutes in.
  schedule(world_->now(), ActionKind::SpotRdns, address);
  schedule(world_->now() + BackoffSchedule::interval_after(0), ActionKind::Probe, address);
  journal_backoff(groups_.back(), 0, BackoffSchedule::interval_after(0), world_->now());
}

void ReactiveEngine::do_sweep() {
  const auto span = util::trace::Tracer::global().scope("sweep_round");
  campaign_metrics().sweep_rounds.inc();
  const SimTime now = world_->now();
  for (const auto& target : targets_) {
    const IcmpSweepResult result = icmp_.sweep(target.prefixes);
    icmp_probes_ += result.probes_sent;
    icmp_responses_ += result.responsive.size();
    campaign_metrics().icmp_probes.inc(result.probes_sent);
    campaign_metrics().icmp_responses.inc(result.responsive.size());
    auto& obs = networks_[target.network];
    for (const net::Ipv4Addr addr : result.responsive) {
      obs.icmp_responsive.insert(addr);
      note_hourly(addr, now, /*is_rdns=*/false);
      if (tracked_.find(addr) == tracked_.end()) open_group(addr);
    }
  }
  if (now + config_.sweep_interval <= end_time_) {
    schedule(now + config_.sweep_interval, ActionKind::Sweep, net::Ipv4Addr{});
  }
}

dns::LookupResult ReactiveEngine::lookup(net::Ipv4Addr address, GroupSummary& group,
                                         const char* kind) {
  // Rate-limit lookups to the authoritative servers (§6.1). The bucket is
  // sized so back-off-paced probes essentially never wait, but bulk misuse
  // would.
  SimTime now = world_->now();
  if (!rdns_bucket_.try_acquire(now)) {
    now = rdns_bucket_.next_available(now);
    world_->run_until(now);
    (void)rdns_bucket_.try_acquire(now);
  }
  const auto result = resolver_.lookup_ptr(address, now);
  ++rdns_lookups_;
  campaign_metrics().rdns_lookups.inc();
  auto& day = daily_errors_[util::day_index(now)];
  ++day.lookups;
  switch (result.status) {
    case dns::LookupStatus::Ok: {
      ++rdns_ok_;
      campaign_metrics().rdns_ok.inc();
      ++group.rdns_ok;
      note_hourly(address, now, /*is_rdns=*/true);
      auto& obs = networks_[group.network];
      obs.rdns_with_ptr.insert(address);
      if (result.ptr) obs.unique_ptrs.insert(result.ptr->to_canonical_string());
      break;
    }
    case dns::LookupStatus::NxDomain:
      ++group.rdns_nxdomain;
      ++day.nxdomain;
      break;
    case dns::LookupStatus::ServFail:
      ++group.rdns_servfail;
      ++day.servfail;
      break;
    case dns::LookupStatus::Timeout:
      ++group.rdns_timeout;
      ++day.timeout;
      break;
    default:
      ++day.servfail;  // fold rare outcomes into server failures
      break;
  }
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"campaign.rdns", now};
    e.unum("group", group.group_id)
        .str("ip", address.to_string())
        .str("kind", kind)
        .str("status", dns::to_string(result.status));
    if (result.status == dns::LookupStatus::Ok && result.ptr) {
      e.str("name", result.ptr->to_canonical_string());
    }
    j->emit(e);
  }
  return result;
}

void ReactiveEngine::do_spot_rdns(net::Ipv4Addr address) {
  const auto it = tracked_.find(address);
  if (it == tracked_.end()) return;
  Tracked& tracked = it->second;
  GroupSummary& group = groups_[tracked.group_index];
  const auto result = lookup(address, group, "spot");
  if (result.status == dns::LookupStatus::Ok && result.ptr) {
    group.first_ptr = result.ptr->to_canonical_string();
    group.last_ptr = group.first_ptr;
    group.spot_rdns_ok = true;
    return;
  }
  // The PTR may simply not have been added yet (phase-1 NXDOMAIN nuance,
  // §6.2); retry a couple of times.
  if (++tracked.spot_attempts <= config_.spot_retries) {
    schedule(world_->now() + 5 * kMinute, ActionKind::SpotRdns, address);
  }
}

void ReactiveEngine::close_group(net::Ipv4Addr address, Tracked& tracked) {
  campaign_metrics().groups_closed.inc();
  GroupSummary& group = groups_[tracked.group_index];
  group.closed = true;
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"campaign.group_close", world_->now()};
    e.unum("group", group.group_id)
        .str("ip", address.to_string())
        .boolean("reverted", group.reverted)
        .boolean("reliable", group.reliable)
        .boolean("successful", group.successful())
        .num("last_ok", group.last_icmp_ok)
        .num("gone", group.ptr_observed_gone);
    if (group.ptr_observed_gone != 0) e.real("linger_min", group.linger_minutes());
    j->emit(e);
  }
  tracked_.erase(address);
}

void ReactiveEngine::do_probe(net::Ipv4Addr address) {
  const auto it = tracked_.find(address);
  if (it == tracked_.end()) return;
  Tracked& tracked = it->second;
  GroupSummary& group = groups_[tracked.group_index];
  const SimTime now = world_->now();

  // Give up on groups that never resolve (client returned, or the PTR
  // never reverts).
  if (group.offline_detected != 0 && now - group.offline_detected > config_.max_follow) {
    close_group(address, tracked);
    return;
  }

  bool alive = world_->ping(address, now);
  // Chaos profile: the echo reply is lost scanner-side. Same (addr, t)
  // entity as IcmpScanner so both probers see one consistent network.
  if (alive && util::faults::active() != nullptr &&
      util::faults::Injector::global().should_fail(
          util::faults::Site::IcmpProbeLoss,
          util::mix64(address.value()) ^ static_cast<std::uint64_t>(now))) {
    alive = false;
  }
  ++icmp_probes_;
  CampaignMetrics& cm = campaign_metrics();
  cm.icmp_probes.inc();
  cm.backoff_probe_index.observe(static_cast<double>(tracked.probes_in_phase));
  util::flight::record(util::flight::Kind::ProbeSent, address.value(),
                       static_cast<std::uint32_t>(tracked.probes_in_phase));
  // Emitted before any follow-up lookup: the lookup can advance the sim
  // clock past `now` (rate limiting), and the stream must stay monotonic.
  if (auto* j = util::journal::active()) {
    util::journal::Event e{"campaign.probe", now};
    e.unum("group", group.group_id)
        .str("ip", address.to_string())
        .boolean("ok", alive)
        .str("phase", tracked.phase == Phase::Online ? "online" : "follow")
        .num("n", tracked.probes_in_phase);
    j->emit(e);
  }

  if (tracked.phase == Phase::Online) {
    if (alive) {
      ++icmp_responses_;
      cm.icmp_responses.inc();
      ++group.icmp_ok;
      group.last_icmp_ok = now;
      // A response clears any pending offline suspicion: the earlier miss
      // was probe loss (or a blip), not departure.
      tracked.online_fails = 0;
      tracked.first_fail = 0;
      note_hourly(address, now, /*is_rdns=*/false);
      ++tracked.probes_in_phase;
      schedule(now + BackoffSchedule::interval_after(tracked.probes_in_phase), ActionKind::Probe,
               address);
      journal_backoff(group, tracked.probes_in_phase,
                      BackoffSchedule::interval_after(tracked.probes_in_phase), now);
    } else {
      ++group.icmp_fail;
      ++tracked.online_fails;
      if (tracked.first_fail == 0) tracked.first_fail = now;
      if (tracked.online_fails < config_.offline_confirm_probes) {
        // A single miss could be injected probe loss. Distinguish loss
        // from departure by re-probing at the SAME Table 2 slot (n does
        // not advance), and only treat a consecutive miss as offline.
        if (auto* j = util::journal::active()) {
          util::journal::Event e{"campaign.recheck", now};
          e.unum("group", group.group_id)
              .str("ip", address.to_string())
              .num("n", tracked.probes_in_phase)
              .num("fails", tracked.online_fails);
          j->emit(e);
        }
        schedule(now + BackoffSchedule::interval_after(tracked.probes_in_phase), ActionKind::Probe,
                 address);
        journal_backoff(group, tracked.probes_in_phase,
                        BackoffSchedule::interval_after(tracked.probes_in_phase), now);
        return;
      }
      // Departure is dated to the first miss of the confirmed run — that
      // is when the client actually stopped answering.
      group.offline_detected = tracked.first_fail;
      // The gap that detected the disappearance bounds the timing error.
      group.reliable =
          BackoffSchedule::interval_after(tracked.probes_in_phase) <= config_.reliable_gap;
      tracked.phase = Phase::Follow;
      tracked.probes_in_phase = 0;
      // Begin reactive rDNS follow-up immediately (Fig. 5, phase 3).
      do_follow_lookup(address, tracked, group);
    }
    return;
  }

  // Follow phase: ping and rDNS both follow the back-off schedule.
  if (alive) {
    // The client answers again: the "offline" inference was a blip (a
    // napping phone missing one probe). The group's timing can no longer
    // be trusted — close it unresolved; the next hourly sweep re-detects
    // the client and opens a fresh group. This is the main source of the
    // paper's inconclusive groups (Table 5: only 9.3% successful).
    ++icmp_responses_;
    cm.icmp_responses.inc();
    note_hourly(address, now, /*is_rdns=*/false);
    close_group(address, tracked);
    return;
  }
  ++group.icmp_fail;
  do_follow_lookup(address, tracked, group);
}

void ReactiveEngine::do_follow_lookup(net::Ipv4Addr address, Tracked& tracked,
                                      GroupSummary& group) {
  const auto result = lookup(address, group, "follow");
  const SimTime now = world_->now();
  if (result.status == dns::LookupStatus::Ok && result.ptr) {
    const std::string ptr = result.ptr->to_canonical_string();
    if (!group.last_ptr.empty() && ptr != group.last_ptr) {
      // PTR changed under us: reverted to a generic name or reassigned.
      group.ptr_observed_gone = now;
      group.reverted = group.spot_rdns_ok;
      close_group(address, tracked);
      return;
    }
    group.last_ptr = ptr;
  } else if (result.status == dns::LookupStatus::NxDomain) {
    if (group.spot_rdns_ok) {
      group.ptr_observed_gone = now;
      group.reverted = true;
    }
    close_group(address, tracked);
    return;
  }
  // Errors and unchanged PTRs continue along the back-off schedule.
  ++tracked.probes_in_phase;
  schedule(now + BackoffSchedule::interval_after(tracked.probes_in_phase), ActionKind::Probe,
           address);
  journal_backoff(group, tracked.probes_in_phase,
                  BackoffSchedule::interval_after(tracked.probes_in_phase), now);
}

}  // namespace rdns::scan
