#pragma once
/// \file reactive.hpp
/// The paper's supplemental measurement (Section 6.1, Fig. 5): an hourly
/// ICMP sweep detects clients joining; a reactive prober then follows each
/// client with the Table 2 back-off schedule; once the client goes silent,
/// reactive rDNS lookups (same back-off) watch for the PTR being removed or
/// reverted. Every (address, activity period) becomes a measurement group;
/// timing analysis (Table 5, Fig. 7) runs over the group summaries.

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dns/resolver.hpp"
#include "net/prefix.hpp"
#include "scan/icmp.hpp"
#include "sim/world.hpp"
#include "util/time.hpp"
#include "util/token_bucket.hpp"

namespace rdns::scan {

/// Table 2: "12 times in the 1st hour at 5-minute intervals, 6 times in the
/// 2nd hour at 10-minute intervals, 3 times in the 3rd hour at 20-minute
/// intervals, 2 times in the 4th hour at 30-minute intervals, until client
/// goes offline once at 60-minute intervals".
struct BackoffSchedule {
  /// Interval to wait after having completed `probes_done` probes in the
  /// current phase.
  [[nodiscard]] static util::SimTime interval_after(int probes_done) noexcept;

  /// Cumulative offset of probe `i` (0-based) from the phase start.
  [[nodiscard]] static util::SimTime offset_of(int i) noexcept;
};

/// One measurement group: an address/activity-period pair (Section 6.1).
struct GroupSummary {
  std::uint64_t group_id = 0;
  net::Ipv4Addr address;
  std::string network;          ///< organization name

  util::SimTime started = 0;          ///< first responsive ICMP (client seen)
  util::SimTime last_icmp_ok = 0;
  util::SimTime offline_detected = 0; ///< first failed reactive ping (0 = never)
  util::SimTime ptr_observed_gone = 0;///< first rDNS showing removal/change

  std::string first_ptr;  ///< PTR at join (spot lookup), empty if none
  std::string last_ptr;   ///< most recent PTR value observed

  int icmp_ok = 0;
  int icmp_fail = 0;
  int rdns_ok = 0;
  int rdns_nxdomain = 0;
  int rdns_servfail = 0;
  int rdns_timeout = 0;

  bool spot_rdns_ok = false;  ///< join-time PTR captured
  bool closed = false;        ///< lifecycle resolved (or given up)
  bool reverted = false;      ///< PTR present at join, gone/changed at end
  bool reliable = false;      ///< offline detected within a short ping gap

  /// Minutes between the last responsive ICMP probe and the rDNS probe
  /// that observed the PTR gone (Fig. 7's x-axis). Only meaningful for
  /// reverted groups.
  [[nodiscard]] double linger_minutes() const noexcept {
    return static_cast<double>(ptr_observed_gone - last_icmp_ok) / 60.0;
  }

  /// Table 5 "successful responses": complete join→present→leave→gone
  /// lifecycle with the key lookups answered.
  [[nodiscard]] bool successful() const noexcept {
    return closed && spot_rdns_ok && icmp_ok >= 1 && offline_detected != 0 &&
           ptr_observed_gone != 0;
  }
};

/// Per-network aggregates (Tables 3/4).
struct NetworkObservation {
  std::uint64_t target_addresses = 0;
  std::unordered_set<net::Ipv4Addr> icmp_responsive;
  std::unordered_set<net::Ipv4Addr> rdns_with_ptr;
  std::unordered_set<std::string> unique_ptrs;
  std::uint64_t groups = 0;
};

/// Daily DNS-outcome counters (Fig. 6).
struct DailyErrorCounts {
  std::uint64_t lookups = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t servfail = 0;
  std::uint64_t timeout = 0;
};

/// Hourly activity (Fig. 11): the number of ACTIVE CLIENTS INFERRED per
/// hour — unique addresses with at least one successful ICMP response, and
/// unique addresses whose PTR was successfully observed. The rDNS counts
/// pan out lower "due to the reactive nature of the rDNS measurement"
/// (lookups only fire around client transitions).
struct HourlyActivity {
  std::uint64_t icmp_ok = 0;  ///< unique ICMP-responsive addresses
  std::uint64_t rdns_ok = 0;  ///< unique addresses with a PTR observed
};

class ReactiveEngine {
 public:
  struct Target {
    std::string network;  ///< must match the org name in the world
    std::vector<net::Prefix> prefixes;
  };

  struct Config {
    util::SimTime sweep_interval = util::kHour;
    double icmp_rate_pps = 10000.0;
    double rdns_rate_pps = 100.0;    ///< "we rate-limit requests" (§6.1)
    util::SimTime max_follow = 6 * util::kHour;  ///< give up on a group after this
    int spot_retries = 2;            ///< extra join-time PTR attempts
    util::SimTime reliable_gap = 30 * util::kMinute;
    /// Consecutive failed online-phase probes required before the client
    /// is declared offline. 1 = first miss wins (the paper's behaviour on
    /// a clean network). When a chaos profile injects ICMP probe loss the
    /// engine raises this to 2 so a single lost echo reply is re-checked
    /// at the same Table 2 slot instead of being mistaken for departure.
    int offline_confirm_probes = 1;
    std::uint64_t seed = 0xF00D5EED;
  };

  ReactiveEngine(sim::World& world, std::vector<Target> targets, Config config);
  ReactiveEngine(sim::World& world, std::vector<Target> targets);  ///< default Config

  /// Run the campaign over [from, to] (absolute simulated times). Drives
  /// the world clock.
  void run(util::SimTime from, util::SimTime to);

  [[nodiscard]] const std::vector<GroupSummary>& groups() const noexcept { return groups_; }
  [[nodiscard]] const std::map<std::string, NetworkObservation>& networks() const noexcept {
    return networks_;
  }
  [[nodiscard]] const std::map<std::int64_t, DailyErrorCounts>& daily_errors() const noexcept {
    return daily_errors_;
  }
  [[nodiscard]] const std::map<std::int64_t, HourlyActivity>& hourly_activity() const noexcept {
    return hourly_;
  }

  [[nodiscard]] std::uint64_t icmp_responses() const noexcept { return icmp_responses_; }
  [[nodiscard]] std::uint64_t icmp_probes() const noexcept { return icmp_probes_; }
  [[nodiscard]] std::uint64_t rdns_lookups() const noexcept { return rdns_lookups_; }
  [[nodiscard]] std::uint64_t rdns_ok() const noexcept { return rdns_ok_; }

 private:
  enum class Phase { Online, Follow };
  struct Tracked {
    std::size_t group_index;
    Phase phase = Phase::Online;
    int probes_in_phase = 0;
    int spot_attempts = 0;
    int online_fails = 0;        ///< consecutive failed online probes
    util::SimTime first_fail = 0;  ///< time of the first of those fails
  };
  enum class ActionKind { Sweep, Probe, SpotRdns };
  struct Action {
    util::SimTime time;
    std::uint64_t seq;
    ActionKind kind;
    net::Ipv4Addr address;
  };
  struct Later {
    bool operator()(const Action& a, const Action& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void schedule(util::SimTime t, ActionKind kind, net::Ipv4Addr address);
  void do_sweep();
  void do_probe(net::Ipv4Addr address);
  void do_spot_rdns(net::Ipv4Addr address);
  /// Issue one rate-limited PTR lookup and update counters; returns result.
  /// `kind` tags the journal event ("spot" join-time capture vs "follow"
  /// reactive watch) so an auditor can replay spot_rdns_ok exactly.
  dns::LookupResult lookup(net::Ipv4Addr address, GroupSummary& group, const char* kind);
  void open_group(net::Ipv4Addr address);
  void close_group(net::Ipv4Addr address, Tracked& tracked);
  /// Follow-phase rDNS step: watches for the PTR being removed/changed and
  /// schedules the next probe.
  void do_follow_lookup(net::Ipv4Addr address, Tracked& tracked, GroupSummary& group);
  /// Per-hour unique-address accounting (Fig. 11 series).
  void note_hourly(net::Ipv4Addr address, util::SimTime now, bool is_rdns);
  void flush_hour();

  sim::World* world_;
  std::vector<Target> targets_;
  Config config_;
  IcmpScanner icmp_;
  dns::StubResolver resolver_;
  util::TokenBucket rdns_bucket_;

  std::priority_queue<Action, std::vector<Action>, Later> actions_;
  std::uint64_t next_seq_ = 0;
  util::SimTime end_time_ = 0;

  std::unordered_map<net::Ipv4Addr, Tracked> tracked_;
  std::int64_t current_hour_ = -1;
  std::unordered_set<net::Ipv4Addr> hour_icmp_addrs_;
  std::unordered_set<net::Ipv4Addr> hour_rdns_addrs_;
  std::vector<GroupSummary> groups_;
  std::map<std::string, NetworkObservation> networks_;
  std::map<std::int64_t, DailyErrorCounts> daily_errors_;
  std::map<std::int64_t, HourlyActivity> hourly_;
  std::uint64_t icmp_responses_ = 0;
  std::uint64_t icmp_probes_ = 0;
  std::uint64_t rdns_lookups_ = 0;
  std::uint64_t rdns_ok_ = 0;
};

}  // namespace rdns::scan
