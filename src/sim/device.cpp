#include "sim/device.hpp"

namespace rdns::sim {

namespace {
[[nodiscard]] const DeviceProfile& profile_for(DeviceKind kind) {
  for (const auto& p : device_profiles()) {
    if (p.kind == kind) return p;
  }
  static const DeviceProfile kFallback{};
  return kFallback;
}

[[nodiscard]] dhcp::ClientIdentity make_identity(const Device::Init& init, util::Rng& rng) {
  dhcp::ClientIdentity id;
  id.mac = init.mac;
  const DeviceProfile& profile = profile_for(init.kind);
  if (!init.host_name.empty() && rng.chance(profile.sends_host_name)) {
    id.host_name = init.host_name;
  }
  return id;
}
}  // namespace

Device::Device(const Init& init)
    : id_(init.id),
      kind_(init.kind),
      owner_(init.owner_given_name),
      host_name_(init.host_name),
      mac_(init.mac),
      probe_reliability_(init.probe_reliability),
      clean_release_(init.clean_release),
      participation_(init.participation),
      first_active_(init.first_active),
      client_([&] {
        util::Rng rng{init.seed};
        return dhcp::DhcpClient{make_identity(init, rng), rng.next()};
      }()) {
  util::Rng rng{util::mix64(init.seed ^ 0x9E37)};
  responds_to_ping_ = rng.chance(init.responds_to_ping);
}

bool Device::exists_on(const util::CivilDate& date) const noexcept {
  return !first_active_ || !(date < *first_active_);
}

Device::Init make_device_init(std::uint64_t id, DeviceKind kind, const std::string& owner,
                              bool use_owner_name, util::Rng& rng) {
  const DeviceProfile* profile = nullptr;
  for (const auto& p : device_profiles()) {
    if (p.kind == kind) {
      profile = &p;
      break;
    }
  }
  static const DeviceProfile kFallback{};
  if (profile == nullptr) profile = &kFallback;

  Device::Init init;
  init.id = id;
  init.kind = kind;
  init.owner_given_name = (profile->personal && use_owner_name) ? owner : std::string{};
  init.host_name = make_host_name(kind, owner, profile->personal && use_owner_name, rng);
  init.mac = net::Mac::random(profile->vendor, rng);
  init.responds_to_ping = profile->responds_to_ping;
  init.probe_reliability = profile->probe_reliability;
  init.clean_release = profile->clean_release;
  // Phones nearly always travel with their owner; other devices less so.
  switch (kind) {
    case DeviceKind::Iphone:
    case DeviceKind::GalaxyPhone:
    case DeviceKind::AndroidPhone:
    case DeviceKind::GenericPhone:
      init.participation = 0.95;
      break;
    case DeviceKind::Roku:
    case DeviceKind::Printer:
    case DeviceKind::StaticServer:
      init.participation = 1.0;
      break;
    default:
      init.participation = 0.65;
      break;
  }
  init.seed = rng.next();
  return init;
}

}  // namespace rdns::sim
