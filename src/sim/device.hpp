#pragma once
/// \file device.hpp
/// A simulated client device: identity (MAC, DHCP Host Name), behavioural
/// knobs (ping responsiveness, clean-release probability), and its DHCP
/// client. Devices are owned by users; the World drives their join/leave
/// events from the owner's schedule.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dhcp/client.hpp"
#include "sim/namegen.hpp"
#include "util/time.hpp"

namespace rdns::sim {

class Device {
 public:
  struct Init {
    std::uint64_t id = 0;
    DeviceKind kind = DeviceKind::Iphone;
    std::string owner_given_name;  ///< empty for ownerless devices
    std::string host_name;         ///< DHCP option 12 payload; may be empty
    net::Mac mac;
    double responds_to_ping = 0.8;
    double probe_reliability = 0.9;
    double clean_release = 0.35;
    /// Probability the device accompanies its owner on any given presence
    /// interval (phones ~always, laptops less).
    double participation = 1.0;
    /// The device does not exist before this date (Fig. 8: the
    /// galaxy-note9 bought on Cyber Monday).
    std::optional<util::CivilDate> first_active;
    std::uint64_t seed = 0;
  };

  explicit Device(const Init& init);

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] DeviceKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& owner() const noexcept { return owner_; }
  [[nodiscard]] const std::string& host_name() const noexcept { return host_name_; }
  [[nodiscard]] const net::Mac& mac() const noexcept { return mac_; }
  [[nodiscard]] double participation() const noexcept { return participation_; }
  [[nodiscard]] bool exists_on(const util::CivilDate& date) const noexcept;

  /// Host-level ping behaviour (the network may still filter; that is the
  /// organization's ingress policy, applied by the World). Decided once per
  /// device: a host either runs a firewall or does not.
  [[nodiscard]] bool responds_to_ping() const noexcept { return responds_to_ping_; }

  /// Probability each individual probe is answered while online (sleeping
  /// phones miss probes).
  [[nodiscard]] double probe_reliability() const noexcept { return probe_reliability_; }

  /// Per-leave decision: does the device send DHCP RELEASE this time?
  [[nodiscard]] bool decide_clean_release(util::Rng& rng) const noexcept {
    return rng.chance(clean_release_);
  }
  /// Per-interval decision: does the device accompany its owner?
  [[nodiscard]] bool decide_participation(util::Rng& rng) const noexcept {
    return rng.chance(participation_);
  }

  [[nodiscard]] dhcp::DhcpClient& client() noexcept { return client_; }
  [[nodiscard]] const dhcp::DhcpClient& client() const noexcept { return client_; }

  // -- runtime state (managed by the World) ---------------------------------
  bool online = false;
  util::SimTime online_since = 0;
  /// Segment the device is currently bound to. Roaming students join a
  /// different (building) segment per presence interval — the §8
  /// geotemporal-tracking surface.
  std::size_t active_segment = 0;

 private:
  std::uint64_t id_;
  DeviceKind kind_;
  std::string owner_;
  std::string host_name_;
  net::Mac mac_;
  bool responds_to_ping_;
  double probe_reliability_;
  double clean_release_;
  double participation_;
  std::optional<util::CivilDate> first_active_;
  dhcp::DhcpClient client_;
};

/// Build a Device::Init for a sampled device kind.
[[nodiscard]] Device::Init make_device_init(std::uint64_t id, DeviceKind kind,
                                            const std::string& owner, bool use_owner_name,
                                            util::Rng& rng);

}  // namespace rdns::sim
