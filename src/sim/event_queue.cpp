#include "sim/event_queue.hpp"

#include <memory>
#include <stdexcept>

namespace rdns::sim {

void EventQueue::schedule(util::SimTime t, Callback cb) {
  if (t < now_) throw std::logic_error("EventQueue::schedule: time is in the past");
  queue_.push(Entry{t, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_repeating(util::SimTime first, util::SimTime interval,
                                    std::function<bool()> cb) {
  if (interval <= 0) throw std::invalid_argument("schedule_repeating: interval must be > 0");
  // Self-rescheduling wrapper; captures *this via pointer, safe because the
  // queue owns the callback and outlives it.
  auto wrapper = std::make_shared<std::function<void()>>();
  *wrapper = [this, interval, cb = std::move(cb), wrapper]() {
    if (cb()) schedule(now_ + interval, *wrapper);
  };
  schedule(first, *wrapper);
}

void EventQueue::run_until(util::SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    // Copy out before pop; the callback may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    ++executed_;
    entry.callback();
  }
  if (t > now_) now_ = t;
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  ++executed_;
  entry.callback();
  return true;
}

void EventQueue::warp_to(util::SimTime t) {
  if (!queue_.empty() && queue_.top().time < t) {
    throw std::logic_error("EventQueue::warp_to: events pending before target time");
  }
  if (t > now_) now_ = t;
}

}  // namespace rdns::sim
