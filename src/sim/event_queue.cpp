#include "sim/event_queue.hpp"

#include <memory>
#include <stdexcept>

namespace rdns::sim {
namespace {

// Self-rescheduling tick for schedule_repeating. The body lives in a
// shared_ptr owned by the queued entry (never by itself — a lambda that
// captured its own shared_ptr would be a reference cycle and leak); when a
// tick declines to reschedule, the last owner dies with the entry.
void schedule_tick(EventQueue& queue, util::SimTime at, util::SimTime interval,
                   const std::shared_ptr<std::function<bool()>>& body) {
  // Capturing the queue by reference is safe: it owns the entry and
  // outlives every callback it runs.
  queue.schedule(at, [&queue, interval, body] {
    if ((*body)()) schedule_tick(queue, queue.now() + interval, interval, body);
  });
}

}  // namespace

void EventQueue::schedule(util::SimTime t, Callback cb) {
  if (t < now_) throw std::logic_error("EventQueue::schedule: time is in the past");
  queue_.push(Entry{t, next_seq_++, std::move(cb)});
}

void EventQueue::schedule_repeating(util::SimTime first, util::SimTime interval,
                                    std::function<bool()> cb) {
  if (interval <= 0) throw std::invalid_argument("schedule_repeating: interval must be > 0");
  schedule_tick(*this, first, interval,
                std::make_shared<std::function<bool()>>(std::move(cb)));
}

void EventQueue::run_until(util::SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    // Copy out before pop; the callback may schedule new events.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    ++executed_;
    entry.callback();
  }
  if (t > now_) now_ = t;
}

bool EventQueue::run_next() {
  if (queue_.empty()) return false;
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.time;
  ++executed_;
  entry.callback();
  return true;
}

void EventQueue::warp_to(util::SimTime t) {
  if (!queue_.empty() && queue_.top().time < t) {
    throw std::logic_error("EventQueue::warp_to: events pending before target time");
  }
  if (t > now_) now_ = t;
}

}  // namespace rdns::sim
