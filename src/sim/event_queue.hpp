#pragma once
/// \file event_queue.hpp
/// Discrete-event core: a time-ordered queue of callbacks plus the
/// simulation clock. Ties are broken by insertion order so runs are fully
/// deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace rdns::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute simulated time `t` (must be >= now()).
  void schedule(util::SimTime t, Callback cb);

  /// Schedule `cb` every `interval` seconds starting at `first`, until it
  /// returns false.
  void schedule_repeating(util::SimTime first, util::SimTime interval,
                          std::function<bool()> cb);

  /// Run all events with time <= t; afterwards now() == t.
  void run_until(util::SimTime t);

  /// Run a single event if one is pending; returns false when empty.
  bool run_next();

  [[nodiscard]] util::SimTime now() const noexcept { return now_; }
  /// Jump the clock forward without running events (initialization only;
  /// throws std::logic_error if events are pending before `t`).
  void warp_to(util::SimTime t);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    util::SimTime time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace rdns::sim
