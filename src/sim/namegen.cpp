#include "sim/namegen.hpp"

#include <unordered_map>

#include "util/strings.hpp"

namespace rdns::sim {

const char* to_string(DeviceKind k) noexcept {
  switch (k) {
    case DeviceKind::Iphone: return "iphone";
    case DeviceKind::Ipad: return "ipad";
    case DeviceKind::MacbookAir: return "macbook-air";
    case DeviceKind::MacbookPro: return "macbook-pro";
    case DeviceKind::Macbook: return "macbook";
    case DeviceKind::GalaxyPhone: return "galaxy-phone";
    case DeviceKind::AndroidPhone: return "android-phone";
    case DeviceKind::GenericPhone: return "phone";
    case DeviceKind::DellLaptop: return "dell-laptop";
    case DeviceKind::LenovoLaptop: return "lenovo-laptop";
    case DeviceKind::WindowsLaptop: return "windows-laptop";
    case DeviceKind::WindowsDesktop: return "windows-desktop";
    case DeviceKind::Chromebook: return "chromebook";
    case DeviceKind::Roku: return "roku";
    case DeviceKind::Printer: return "printer";
    case DeviceKind::StaticServer: return "server";
    case DeviceKind::kCount: break;
  }
  return "?";
}

const char* device_term(DeviceKind k) noexcept {
  switch (k) {
    case DeviceKind::Iphone: return "iphone";
    case DeviceKind::Ipad: return "ipad";
    case DeviceKind::MacbookAir: return "air";
    case DeviceKind::MacbookPro: return "mbp";
    case DeviceKind::Macbook: return "macbook";
    case DeviceKind::GalaxyPhone: return "galaxy";
    case DeviceKind::AndroidPhone: return "android";
    case DeviceKind::GenericPhone: return "phone";
    case DeviceKind::DellLaptop: return "dell";
    case DeviceKind::LenovoLaptop: return "lenovo";
    case DeviceKind::WindowsLaptop: return "laptop";
    case DeviceKind::WindowsDesktop: return "desktop";
    case DeviceKind::Chromebook: return "chrome";
    case DeviceKind::Roku: return "roku";
    default: return "";
  }
}

const std::vector<DeviceProfile>& device_profiles() {
  using V = net::MacVendor;
  static const std::vector<DeviceProfile> kProfiles = {
      // kind                      weight personal sendsHN ping  reliab release vendor
      {DeviceKind::Iphone,         0.26,  true,    0.97,   0.55, 0.80,  0.45,   V::Apple},
      {DeviceKind::Ipad,           0.07,  true,    0.95,   0.50, 0.78,  0.40,   V::Apple},
      {DeviceKind::MacbookAir,     0.07,  true,    0.95,   0.80, 0.92,  0.50,   V::Apple},
      {DeviceKind::MacbookPro,     0.08,  true,    0.95,   0.80, 0.92,  0.50,   V::Apple},
      {DeviceKind::Macbook,        0.03,  true,    0.95,   0.80, 0.92,  0.50,   V::Apple},
      {DeviceKind::GalaxyPhone,    0.10,  true,    0.90,   0.45, 0.78,  0.35,   V::Samsung},
      {DeviceKind::AndroidPhone,   0.08,  true,    0.85,   0.40, 0.75,  0.30,   V::Samsung},
      {DeviceKind::GenericPhone,   0.05,  true,    0.90,   0.45, 0.78,  0.35,   V::Unknown},
      {DeviceKind::DellLaptop,     0.05,  true,    0.90,   0.85, 0.93,  0.30,   V::Dell},
      {DeviceKind::LenovoLaptop,   0.04,  true,    0.90,   0.85, 0.93,  0.30,   V::Lenovo},
      {DeviceKind::WindowsLaptop,  0.07,  true,    0.95,   0.85, 0.93,  0.30,   V::Intel},
      {DeviceKind::WindowsDesktop, 0.05,  true,    0.95,   0.90, 0.98,  0.20,   V::Intel},
      {DeviceKind::Chromebook,     0.03,  true,    0.90,   0.70, 0.85,  0.40,   V::Google},
      {DeviceKind::Roku,           0.02,  false,   0.90,   0.60, 0.97,  0.05,   V::Roku},
  };
  return kProfiles;
}

const std::vector<std::string>& given_names() {
  // Top 50 given names for US newborns 2000-2020 by popularity, as used on
  // the Fig. 2 x-axis of the paper (48 listed there + the next two ranks).
  static const std::vector<std::string> kNames = {
      "jacob",    "michael",   "emma",        "william", "ethan",   "olivia",  "matthew",
      "emily",    "daniel",    "noah",        "joshua",  "isabella","alexander","joseph",
      "james",    "andrew",    "sophia",      "christopher","anthony","david", "madison",
      "logan",    "benjamin",  "ryan",        "abigail", "john",    "elijah",  "mason",
      "samuel",   "dylan",     "nicholas",    "jayden",  "liam",    "elizabeth","christian",
      "gabriel",  "tyler",     "jonathan",    "nathan",  "jordan",  "hannah",  "aiden",
      "jackson",  "alexis",    "caleb",       "lucas",   "angel",   "brandon", "brian",
      "ava",
  };
  return kNames;
}

int given_name_rank(const std::string& lower_name) noexcept {
  static const std::unordered_map<std::string, int> kRanks = [] {
    std::unordered_map<std::string, int> m;
    const auto& names = given_names();
    for (std::size_t i = 0; i < names.size(); ++i) m.emplace(names[i], static_cast<int>(i));
    return m;
  }();
  const auto it = kRanks.find(lower_name);
  return it == kRanks.end() ? -1 : it->second;
}

const std::vector<std::string>& city_names() {
  static const std::vector<std::string> kCities = {
      // Cities that are also given names (the §5.1 confusion source):
      "jackson", "charlotte", "austin", "madison", "jordan",
      // Ordinary city names / airport-style codes:
      "dallas", "denver", "seattle", "boston", "chicago", "phoenix", "atlanta",
      "houston", "miami", "portland", "omaha", "tucson", "memphis", "fresno",
      "nyc", "lax", "ord", "iad", "sea",
  };
  return kCities;
}

const std::vector<std::string>& generic_router_terms() {
  static const std::vector<std::string> kTerms = {
      "north", "south", "east", "west", "core", "edge", "border", "agg",
      "dist", "gw", "rtr", "sw", "ae", "eth", "vlan", "uplink", "transit", "peer",
  };
  return kTerms;
}

std::string sample_given_name(util::Rng& rng) {
  // Zipf s=0.6 over the 50 ranks: popular names dominate but the tail is
  // still visible, mirroring the SSA distribution shape.
  static const util::ZipfSampler kSampler{given_names().size(), 0.6};
  return given_names()[kSampler.sample(rng)];
}

DeviceKind sample_device_kind(util::Rng& rng) {
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const auto& p : device_profiles()) w.push_back(p.weight);
    return w;
  }();
  return device_profiles()[rng.weighted_index(kWeights)].kind;
}

namespace {

[[nodiscard]] std::string capitalize(const std::string& lower) {
  std::string out = lower;
  if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  return out;
}

[[nodiscard]] std::string random_hex(util::Rng& rng, int digits) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(static_cast<std::size_t>(digits));
  for (int i = 0; i < digits; ++i) out.push_back(kHex[rng.index(16)]);
  return out;
}

[[nodiscard]] std::string random_serial(util::Rng& rng, int length) {
  static const char* kAlnum = "ABCDEFGHJKLMNPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) out.push_back(kAlnum[rng.index(34)]);
  return out;
}

}  // namespace

std::string make_host_name(DeviceKind kind, const std::string& owner, bool use_owner_name,
                           util::Rng& rng) {
  const std::string name = capitalize(owner);
  const bool personal = use_owner_name && !owner.empty();
  switch (kind) {
    case DeviceKind::Iphone:
      return personal ? name + "'s iPhone" : "iPhone-" + random_serial(rng, 6);
    case DeviceKind::Ipad:
      return personal ? name + "'s iPad" : "iPad-" + random_serial(rng, 6);
    case DeviceKind::MacbookAir:
      return personal ? name + "s-Air" : "MacBook-Air-" + random_serial(rng, 4);
    case DeviceKind::MacbookPro:
      return personal ? name + "s-MBP" : "MacBook-Pro-" + random_serial(rng, 4);
    case DeviceKind::Macbook:
      return personal ? name + "s-MacBook" : "MacBook-" + random_serial(rng, 4);
    case DeviceKind::GalaxyPhone: {
      static const char* kModels[] = {"s10", "s21", "note9", "note10", "a52"};
      const char* model = kModels[rng.index(5)];
      return personal ? name + "s-Galaxy-" + capitalize(model)
                      : std::string{"Galaxy-"} + capitalize(model);
    }
    case DeviceKind::AndroidPhone:
      // Some users rename their phone; default Android names are opaque.
      return personal && rng.chance(0.4) ? name + "s-Android"
                                         : "android-" + random_hex(rng, 16);
    case DeviceKind::GenericPhone:
      return personal ? name + "'s Phone" : "Phone-" + random_serial(rng, 6);
    case DeviceKind::DellLaptop: {
      static const char* kModels[] = {"Latitude", "XPS", "Inspiron"};
      return personal ? name + "s-Dell-" + kModels[rng.index(3)]
                      : "Dell-" + std::string{kModels[rng.index(3)]} + "-" + random_serial(rng, 4);
    }
    case DeviceKind::LenovoLaptop:
      return personal ? name + "s-Lenovo-ThinkPad" : "Lenovo-" + random_serial(rng, 6);
    case DeviceKind::WindowsLaptop:
      // Windows suggests LAPTOP-<serial>, but plenty of users rename.
      return personal && rng.chance(0.45) ? name + "s-Laptop"
                                          : "LAPTOP-" + random_serial(rng, 7);
    case DeviceKind::WindowsDesktop:
      return personal && rng.chance(0.35) ? name + "s-Desktop"
                                          : "DESKTOP-" + random_serial(rng, 7);
    case DeviceKind::Chromebook:
      return personal ? name + "s-Chromebook" : "chrome-" + random_hex(rng, 8);
    case DeviceKind::Roku:
      return "Roku-" + random_serial(rng, 6);
    case DeviceKind::Printer:
      return "printer-" + random_hex(rng, 4);
    case DeviceKind::StaticServer:
      return "srv-" + random_hex(rng, 4);
    case DeviceKind::kCount:
      break;
  }
  return "device-" + random_hex(rng, 6);
}

std::string make_router_name(util::Rng& rng) {
  const std::string& city = rng.pick(city_names());
  const std::string& role = rng.pick(generic_router_terms());
  return util::format("et-%zu-%zu-%zu.%s%zu.%s", rng.index(4), rng.index(2), rng.index(8),
                      role.c_str(), rng.index(4) + 1, city.c_str());
}

}  // namespace rdns::sim
