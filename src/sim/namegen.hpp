#pragma once
/// \file namegen.hpp
/// Corpora and generators for the synthetic Internet's hostnames:
///   - the top-50 US given names (2000-2020, per SSA popularity) that the
///     paper matches PTR records against (they are the x-axis of Fig. 2);
///   - device-type terms (the co-occurring terms of Fig. 3: ipad, air,
///     laptop, phone, dell, desktop, iphone, mbp, android, macbook, galaxy,
///     lenovo, chrome, roku);
///   - router-level hostname generation with city names and generic
///     direction/role terms (the §5.1 false-positive source: city names
///     like Jackson or Charlotte overlap with given names);
///   - device Host Name formation ("Brian's iPhone", "DESKTOP-4F2K9QX", ...).

#include <cstdint>
#include <string>
#include <vector>

#include "net/mac.hpp"
#include "util/rng.hpp"

namespace rdns::sim {

/// Device archetypes in the population. The mix mirrors the terms the
/// paper observed co-appearing with given names (Fig. 3).
enum class DeviceKind : std::uint8_t {
  Iphone = 0,
  Ipad,
  MacbookAir,
  MacbookPro,   ///< "mbp"
  Macbook,
  GalaxyPhone,  ///< e.g. galaxy-note9
  AndroidPhone, ///< generic android-<hex> (no owner name)
  GenericPhone, ///< "Brian's Phone"
  DellLaptop,
  LenovoLaptop,
  WindowsLaptop,
  WindowsDesktop,
  Chromebook,
  Roku,
  Printer,
  StaticServer,
  kCount,
};

[[nodiscard]] const char* to_string(DeviceKind k) noexcept;

/// The Fig. 3 keyword this device kind contributes to hostnames (e.g.
/// Iphone -> "iphone"); empty for kinds without a device-type term.
[[nodiscard]] const char* device_term(DeviceKind k) noexcept;

/// Behavioural and naming profile of a device kind.
struct DeviceProfile {
  DeviceKind kind = DeviceKind::Iphone;
  double weight = 1.0;            ///< prevalence in the population
  bool personal = true;           ///< hostname can carry the owner's name
  double sends_host_name = 1.0;   ///< probability the DHCP client sends opt 12
  double responds_to_ping = 0.8;  ///< host-level ping responsiveness (firewall)
  /// Per-probe answer probability while online (phones sleep and miss
  /// probes; this produces the noisy groups of the paper's Table 5 funnel).
  double probe_reliability = 0.9;
  double clean_release = 0.35;    ///< probability of DHCP RELEASE on leave
  net::MacVendor vendor = net::MacVendor::Unknown;
};

/// The built-in population mix.
[[nodiscard]] const std::vector<DeviceProfile>& device_profiles();

/// Top-50 US given names, most popular first (paper Fig. 2 x-axis).
[[nodiscard]] const std::vector<std::string>& given_names();

/// Rank of a (lowercased) given name in given_names(); -1 if absent.
[[nodiscard]] int given_name_rank(const std::string& lower_name) noexcept;

/// City names used in router-level hostnames; includes cities that double
/// as given names (jackson, charlotte, austin, madison, jordan).
[[nodiscard]] const std::vector<std::string>& city_names();

/// Generic router-level terms (direction/role words the paper's §5.1
/// filtering step excludes: north, south, core, edge, ...).
[[nodiscard]] const std::vector<std::string>& generic_router_terms();

/// Sample a given name by SSA-like popularity (Zipf over the top-50).
[[nodiscard]] std::string sample_given_name(util::Rng& rng);

/// Sample a device kind from the population mix.
[[nodiscard]] DeviceKind sample_device_kind(util::Rng& rng);

/// The raw Host Name a device of `kind` owned by `owner` announces via
/// DHCP option 12. Examples:
///   Iphone + "Brian"       -> "Brian's iPhone"
///   GalaxyPhone + "Brian"  -> "Brians-Galaxy-Note9" (model varies)
///   WindowsDesktop         -> "DESKTOP-4F2K9QX" (ownerless)
///   AndroidPhone           -> "android-3fa9c14b2d17e05a"
/// `use_owner_name` selects between the personal and anonymous form for
/// kinds that support both.
[[nodiscard]] std::string make_host_name(DeviceKind kind, const std::string& owner,
                                         bool use_owner_name, util::Rng& rng);

/// A router-level hostname label sequence, e.g. "et-0-0-1.cr2.jackson"
/// (to be concatenated with the operator's suffix). These populate the
/// static infrastructure ranges and are what the §5.1 city-name guard must
/// not confuse with client devices.
[[nodiscard]] std::string make_router_name(util::Rng& rng);

}  // namespace rdns::sim
