#include "sim/org.hpp"

#include <stdexcept>

#include "net/arpa.hpp"

namespace rdns::sim {

namespace {

/// The /16-aligned reverse-zone cuts covering a prefix.
[[nodiscard]] std::vector<net::Prefix> covering_slash16s(const net::Prefix& p) {
  std::vector<net::Prefix> out;
  if (p.length() >= 16) {
    out.emplace_back(p.network(), 16);
    return out;
  }
  const std::uint64_t count = std::uint64_t{1} << (16 - p.length());
  for (std::uint64_t i = 0; i < count; ++i) {
    out.emplace_back(net::Ipv4Addr{p.network().value() + static_cast<std::uint32_t>(i << 16)},
                     16);
  }
  return out;
}

[[nodiscard]] bool is_phone(DeviceKind k) noexcept {
  return k == DeviceKind::Iphone || k == DeviceKind::GalaxyPhone ||
         k == DeviceKind::AndroidPhone || k == DeviceKind::GenericPhone;
}

[[nodiscard]] DeviceKind sample_phone_kind(util::Rng& rng) {
  static const std::vector<DeviceKind> kKinds = {DeviceKind::Iphone, DeviceKind::GalaxyPhone,
                                                 DeviceKind::AndroidPhone,
                                                 DeviceKind::GenericPhone};
  static const std::vector<double> kWeights = {0.52, 0.22, 0.16, 0.10};
  return kKinds[rng.weighted_index(kWeights)];
}

[[nodiscard]] DeviceKind sample_companion_kind(util::Rng& rng) {
  DeviceKind k = sample_device_kind(rng);
  // Companions are the non-phone fleet (tablets, laptops, desktops, ...).
  for (int guard = 0; guard < 64 && is_phone(k); ++guard) k = sample_device_kind(rng);
  return k;
}

}  // namespace

Organization::Organization(OrgSpec spec)
    : spec_(std::move(spec)),
      rng_(util::mix64(spec_.seed ^ 0x0A6A71Au)),
      dns_(spec_.dns_faults, util::mix64(spec_.seed ^ 0xD45F)) {
  build_zones();
  build_segments();
  build_static_ranges();
  // Fail fast on bad scripted-user references even though the population
  // itself is built lazily (first users() touch).
  for (const auto& su : spec_.scripted_users) {
    if (su.segment >= segments_.size()) {
      throw std::invalid_argument("Organization: scripted user references missing segment");
    }
  }
}

void Organization::build_zones() {
  dns::SoaRdata soa;
  soa.mname = spec_.suffix.prepend("ns1");
  soa.rname = spec_.suffix.prepend("hostmaster");
  soa.serial = 2021102700;
  std::unordered_set<std::uint32_t> seen;
  for (const auto& prefix : spec_.announced) {
    for (const auto& p16 : covering_slash16s(prefix)) {
      if (!seen.insert(p16.network().value()).second) continue;
      dns_.add_zone(dns::DnsName::must_parse(net::arpa_zone_for(p16)), soa);
    }
  }
  if (spec_.forward_updates) {
    dns_.add_zone(spec_.suffix, soa);
  }
}

void Organization::build_segments() {
  for (const auto& seg_spec : spec_.segments) {
    if (seg_spec.prefix.length() < 16) {
      throw std::invalid_argument("Organization: segment prefix must be /16 or longer: " +
                                  seg_spec.prefix.to_string());
    }
    Segment segment;
    segment.spec = seg_spec;

    dhcp::AddressPool pool;
    pool.add_prefix(seg_spec.prefix);

    dhcp::DhcpServerConfig server_config;
    server_config.server_id = seg_spec.prefix.first();
    server_config.lease_seconds = seg_spec.lease_seconds;
    segment.dhcp = std::make_unique<dhcp::DhcpServer>(server_config, std::move(pool));

    dhcp::DdnsConfig ddns;
    ddns.policy = seg_spec.ddns_policy;
    ddns.removal = seg_spec.removal;
    ddns.reverse_zone = dns::DnsName::must_parse(
        net::arpa_zone_for(net::Prefix{seg_spec.prefix.network(), 16}));
    if (spec_.forward_updates) ddns.forward_zone = spec_.suffix;
    ddns.domain_suffix = spec_.suffix.prepend(seg_spec.label);
    ddns.generic_suffix = spec_.suffix.prepend("dynamic");
    segment.bridge = std::make_unique<dhcp::DdnsBridge>(ddns, transport_, rng_.next());

    dhcp::DdnsBridge* bridge = segment.bridge.get();
    dhcp::LeaseObserver observer;
    observer.on_bound = [bridge](const dhcp::Lease& lease, util::SimTime now) {
      bridge->on_lease_bound(lease, now);
    };
    observer.on_end = [bridge](const dhcp::Lease& lease, dhcp::LeaseEndReason reason,
                               util::SimTime now) {
      bridge->on_lease_end(lease, reason, now);
    };
    segment.dhcp->add_observer(std::move(observer));

    // StaticGeneric segments publish their fixed-form names up front (the
    // "dynamic DHCP but static rDNS" configuration from the §4.1
    // validation). On a fault-free server the bulk fill is observably
    // identical to the per-address RFC 2136 wire path but O(1) memory per
    // record; with faults configured some updates must be lost, so the
    // real wire path stays in charge.
    if (seg_spec.ddns_policy == dhcp::DdnsPolicy::StaticGeneric) {
      const bool faultless = spec_.dns_faults.servfail_probability == 0.0 &&
                             spec_.dns_faults.timeout_probability == 0.0;
      if (faultless) {
        dns_.populate_generic(seg_spec.prefix.first() + 1, seg_spec.prefix.last() - 1,
                              ddns.generic_suffix, ddns.ttl);
      } else {
        segment.bridge->populate_static(seg_spec.prefix.first() + 1, seg_spec.prefix.last() - 1,
                                        0);
      }
    }

    segments_.push_back(std::move(segment));
  }
}

void Organization::build_static_ranges() {
  for (const auto& range : spec_.static_ranges) {
    dns::Zone* zone = dns_.find_zone(
        dns::DnsName::must_parse(net::arpa_zone_for(net::Prefix{range.prefix.network(), 16})));
    if (zone == nullptr) {
      throw std::invalid_argument("Organization: static range " + range.prefix.to_string() +
                                  " outside announced space");
    }
    for (std::uint64_t v = range.prefix.first().value() + 1; v < range.prefix.last().value();
         ++v) {
      if (!rng_.chance(range.fill)) continue;
      const net::Ipv4Addr a{static_cast<std::uint32_t>(v)};
      dns::DnsName target;
      if (range.style == StaticRangeSpec::Style::RouterNames) {
        target = dns::DnsName::must_parse(make_router_name(rng_)).concat(spec_.suffix);
      } else {
        target = spec_.suffix.prepend("static").prepend(dhcp::generic_label(a));
      }
      zone->add(dns::make_ptr(dns::DnsName::must_parse(net::to_arpa(a)), target, 86400));
      if (rng_.chance(range.pingable)) static_pingable_.insert(a);
    }
  }
}

void Organization::build_population() const {
  population_built_ = true;
  // Scripted users first so their device ids (and MAC/seed streams) are
  // stable regardless of population sizes.
  for (const auto& su : spec_.scripted_users) {
    User user;
    user.given_name = su.given_name;
    user.schedule = su.schedule;
    user.segment = su.segment;
    user.rng = rng_.fork(rng_.next());
    for (const auto& d : su.devices) {
      Device::Init init = make_device_init(next_device_id_++, d.kind, su.given_name,
                                           /*use_owner_name=*/true, rng_);
      init.host_name = d.host_name;  // exact scripted Host Name
      init.first_active = d.first_active;
      init.participation = d.participation;
      // Case-study devices are dependably observable (the paper could only
      // tell Brian's story because his devices answered probes).
      init.responds_to_ping = 1.0;
      init.probe_reliability = 0.93;
      user.devices.push_back(std::make_unique<Device>(init));
    }
    users_.push_back(std::move(user));
  }

  for (std::size_t si = 0; si < segments_.size(); ++si) {
    const SegmentSpec& seg = segments_[si].spec;
    for (int i = 0; i < seg.user_count; ++i) {
      User user;
      user.given_name = sample_given_name(rng_);
      user.schedule = seg.schedule;
      user.segment = si;
      user.rng = rng_.fork(rng_.next());
      const bool uses_name = rng_.chance(seg.named_device_frac);

      // Everyone carries a phone; companions are optional.
      std::vector<DeviceKind> kinds{sample_phone_kind(rng_)};
      if (rng_.chance(0.7)) kinds.push_back(sample_companion_kind(rng_));
      if (rng_.chance(0.3)) kinds.push_back(sample_companion_kind(rng_));
      if (rng_.chance(0.1)) kinds.push_back(sample_companion_kind(rng_));

      for (const DeviceKind kind : kinds) {
        Device::Init init =
            make_device_init(next_device_id_++, kind, user.given_name, uses_name, rng_);
        init.responds_to_ping *= seg.ping_response_scale;
        if (seg.clean_release_override >= 0.0) {
          init.clean_release = seg.clean_release_override;
        }
        user.devices.push_back(std::make_unique<Device>(init));
      }
      users_.push_back(std::move(user));
    }

    // Always-on devices (media boxes, printers) on the dynamic range.
    static const std::vector<DeviceKind> kAlwaysOnKinds = {
        DeviceKind::Roku, DeviceKind::Printer, DeviceKind::StaticServer};
    for (int i = 0; i < seg.always_on_count; ++i) {
      User user;
      user.schedule = ScheduleKind::AlwaysOn;
      user.segment = si;
      user.rng = rng_.fork(rng_.next());
      const DeviceKind kind = kAlwaysOnKinds[rng_.index(kAlwaysOnKinds.size())];
      Device::Init init = make_device_init(next_device_id_++, kind, "", false, rng_);
      init.responds_to_ping *= seg.ping_response_scale;
      user.devices.push_back(std::make_unique<Device>(init));
      users_.push_back(std::move(user));
    }
  }
}

std::size_t Organization::device_count() const {
  std::size_t n = 0;
  for (const auto& user : users()) n += user.devices.size();
  return n;
}

bool Organization::icmp_reaches(net::Ipv4Addr a) const noexcept {
  if (!spec_.blocks_icmp) return true;
  for (const auto& allowed : spec_.icmp_allowlist) {
    if (allowed == a) return true;
  }
  return false;
}

void Organization::for_each_ptr(
    const std::function<void(net::Ipv4Addr, const dns::DnsName&)>& fn) const {
  for (const dns::Zone* zone : static_cast<const dns::AuthoritativeServer&>(dns_).zones()) {
    zone->for_each_ptr([&fn](net::Ipv4Addr a, std::string_view target, std::uint32_t /*ttl*/) {
      fn(a, dns::DnsName::must_parse(target));
    });
  }
}

void Organization::for_each_ptr_text(
    const std::function<void(net::Ipv4Addr, std::string_view, std::uint32_t)>& fn) const {
  for (const dns::Zone* zone : static_cast<const dns::AuthoritativeServer&>(dns_).zones()) {
    zone->for_each_ptr(fn);
  }
}

void Organization::for_each_a(
    const std::function<void(const dns::DnsName&, net::Ipv4Addr)>& fn) const {
  for (const dns::Zone* zone : dns_.zones()) {
    zone->for_each([&fn](const dns::ResourceRecord& rr) {
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) fn(rr.name, a->address);
    });
  }
}

std::size_t Organization::ptr_count() const noexcept {
  std::size_t n = 0;
  for (const dns::Zone* zone : static_cast<const dns::AuthoritativeServer&>(dns_).zones()) {
    n += zone->ptr_count();
  }
  return n;
}

}  // namespace rdns::sim
