#pragma once
/// \file org.hpp
/// Simulated organizations: an announced address block with a numbering
/// plan (static infrastructure ranges, dynamic client segments), an
/// authoritative DNS server hosting the reverse zones, per-segment DHCP
/// servers wired to DDNS bridges, and a population of users and devices.
///
/// This mirrors the paper's §4.1 validation network: "a single /16 prefix
/// with a numbering plan in which some subprefixes are used for dynamic
/// allocations whereas other subprefixes contain static allocations".

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "dhcp/ddns.hpp"
#include "dhcp/server.hpp"
#include "dns/server.hpp"
#include "sim/device.hpp"
#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace rdns::sim {

/// A dynamic client segment of the numbering plan.
struct SegmentSpec {
  std::string label = "wifi";           ///< subdomain for published names
  PresenceVenue venue = PresenceVenue::Campus;
  net::Prefix prefix;                   ///< addresses served by this segment
  ScheduleKind schedule = ScheduleKind::OfficeWorker;
  int user_count = 0;
  int always_on_count = 0;              ///< roku/printer-style always-on devices
  dhcp::DdnsPolicy ddns_policy = dhcp::DdnsPolicy::CarryOverClientId;
  dhcp::RemovalBehavior removal = dhcp::RemovalBehavior::RemovePtr;
  std::uint32_t lease_seconds = 3600;
  /// Fraction of personal devices whose Host Name carries the owner's name.
  double named_device_frac = 0.75;
  /// Scales host-level ping responsiveness (ISP-B's 0.3% responsiveness).
  double ping_response_scale = 1.0;
  /// If >= 0, forces every device's clean-DHCP-RELEASE probability (the
  /// release-behaviour ablation; default -1 keeps per-device profiles).
  double clean_release_override = -1.0;
};

/// A statically numbered range (no DHCP, no dynamicity).
struct StaticRangeSpec {
  enum class Style { RouterNames, GenericNames };
  net::Prefix prefix;
  Style style = Style::GenericNames;
  double fill = 0.5;           ///< fraction of addresses with a PTR
  double pingable = 0.7;       ///< fraction of filled addresses answering pings
};

/// A hand-authored user for case studies (the Brians of Fig. 8).
struct ScriptedUser {
  std::string given_name;
  ScheduleKind schedule = ScheduleKind::ResidentStudent;
  std::size_t segment = 0;
  struct Dev {
    DeviceKind kind = DeviceKind::Iphone;
    std::string host_name;  ///< exact DHCP Host Name, e.g. "Brian's iPad"
    std::optional<util::CivilDate> first_active;
    double participation = 0.9;
  };
  std::vector<Dev> devices;
};

struct OrgSpec {
  std::string name;        ///< e.g. "Academic-A" (paper-style anonymized)
  OrgType type = OrgType::Academic;
  dns::DnsName suffix;     ///< registered domain, e.g. bayfield-university.edu
  std::vector<net::Prefix> announced;
  /// Address space a supplemental measurement should probe ("For large
  /// networks, we dig a little deeper to observe which IP subnet ...
  /// contains the most dynamically assigned hosts, and target this address
  /// space only", §6.1). Empty = the full announced space.
  std::vector<net::Prefix> measurement_targets;
  std::vector<SegmentSpec> segments;
  std::vector<StaticRangeSpec> static_ranges;
  std::vector<ScriptedUser> scripted_users;
  bool blocks_icmp = false;
  std::vector<net::Ipv4Addr> icmp_allowlist;  ///< respond despite blocking
  /// Keep a forward zone (<suffix>) in sync with leases as well — the
  /// paper's §10 future-work observation that forward DNS "can also be
  /// dynamically updated by DHCP servers".
  bool forward_updates = false;
  /// Students roam across the org's Campus segments, one (building) segment
  /// per presence interval — §8's "track a Brian around campus as he goes
  /// from lecture to lecture" when building-level subnet assignments are
  /// known.
  bool students_roam = false;
  /// Transient failure behaviour of the org's authoritative servers (the
  /// Fig. 6 error taxonomy: SERVFAIL, timeouts).
  dns::FaultPolicy dns_faults;
  CovidTimeline covid = CovidTimeline::standard();
  std::uint64_t seed = 1;
};

/// A user with their personal device fleet.
struct User {
  std::string given_name;  ///< empty if unnamed
  ScheduleKind schedule = ScheduleKind::OfficeWorker;
  std::size_t segment = 0;
  util::Rng rng;           ///< per-user decision stream
  std::vector<std::unique_ptr<Device>> devices;
};

class Organization {
 public:
  /// Builds zones, DHCP servers, bridges, static PTRs and the population.
  explicit Organization(OrgSpec spec);

  Organization(const Organization&) = delete;
  Organization& operator=(const Organization&) = delete;

  struct Segment {
    SegmentSpec spec;
    std::unique_ptr<dhcp::DhcpServer> dhcp;
    std::unique_ptr<dhcp::DdnsBridge> bridge;
  };

  [[nodiscard]] const OrgSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] OrgType type() const noexcept { return spec_.type; }

  [[nodiscard]] dns::AuthoritativeServer& dns() noexcept { return dns_; }
  [[nodiscard]] const dns::AuthoritativeServer& dns() const noexcept { return dns_; }
  [[nodiscard]] dns::Transport& dns_transport() noexcept { return transport_; }

  [[nodiscard]] std::vector<Segment>& segments() noexcept { return segments_; }

  /// The user population. Materialized lazily on first touch: a freshly
  /// built org holds only its zones and DHCP plumbing, so worlds that are
  /// swept but never simulated (the internet-scale benches) skip the
  /// per-user device allocations entirely. The population built on demand
  /// is byte-identical to the eagerly built one — nothing consumes the
  /// org's RNG between construction and this call.
  [[nodiscard]] std::vector<User>& users() {
    ensure_population();
    return users_;
  }
  [[nodiscard]] const std::vector<User>& users() const {
    ensure_population();
    return users_;
  }

  /// True once the user population has been materialized (observability
  /// for the lazy-build invariant; sweeps alone must not flip this).
  [[nodiscard]] bool population_materialized() const noexcept { return population_built_; }

  /// Total devices across all users (materializes the population).
  [[nodiscard]] std::size_t device_count() const;

  /// ICMP ingress policy: can probes reach `a` at all?
  [[nodiscard]] bool icmp_reaches(net::Ipv4Addr a) const noexcept;

  /// Statically numbered hosts that answer pings.
  [[nodiscard]] bool static_host_pingable(net::Ipv4Addr a) const noexcept {
    return static_pingable_.count(a) > 0;
  }

  /// Apply `fn` to every PTR record currently in the org's zones
  /// (bulk-snapshot path used by the full-space sweeps).
  void for_each_ptr(const std::function<void(net::Ipv4Addr, const dns::DnsName&)>& fn) const;

  /// Allocation-free variant: target names arrive as presentation text
  /// (case-preserved, no trailing dot) valid only during the callback.
  /// Same records in the same order as for_each_ptr. The sweep hot path.
  void for_each_ptr_text(
      const std::function<void(net::Ipv4Addr, std::string_view, std::uint32_t)>& fn) const;

  /// Apply `fn` to every forward A record (owner name, address) — present
  /// only when the org maintains a forward zone (spec().forward_updates).
  void for_each_a(const std::function<void(const dns::DnsName&, net::Ipv4Addr)>& fn) const;

  /// Total PTR records currently published.
  [[nodiscard]] std::size_t ptr_count() const noexcept;

 private:
  void build_zones();
  void build_segments();
  void build_static_ranges();
  void build_population() const;
  void ensure_population() const {
    if (!population_built_) build_population();
  }

  OrgSpec spec_;
  mutable util::Rng rng_;  ///< consumed by the deferred population build
  dns::AuthoritativeServer dns_;
  dns::LoopbackTransport transport_{dns_};
  std::vector<Segment> segments_;
  mutable std::vector<User> users_;
  std::unordered_set<net::Ipv4Addr> static_pingable_;
  mutable std::uint64_t next_device_id_ = 1;
  mutable bool population_built_ = false;
};

}  // namespace rdns::sim
