#include "sim/policy.hpp"

namespace rdns::sim {

using util::CivilDate;

const char* to_string(OrgType t) noexcept {
  switch (t) {
    case OrgType::Academic: return "academic";
    case OrgType::Isp: return "isp";
    case OrgType::Enterprise: return "enterprise";
    case OrgType::Government: return "government";
    case OrgType::Other: return "other";
  }
  return "?";
}

const char* to_string(ScheduleKind k) noexcept {
  switch (k) {
    case ScheduleKind::OfficeWorker: return "office-worker";
    case ScheduleKind::Student: return "student";
    case ScheduleKind::ResidentStudent: return "resident-student";
    case ScheduleKind::HomeResident: return "home-resident";
    case ScheduleKind::AlwaysOn: return "always-on";
  }
  return "?";
}

namespace {
[[nodiscard]] bool in_range(const CivilDate& d, const CivilDate& from,
                            const CivilDate& to) noexcept {
  return !(d < from) && d < to;
}
}  // namespace

bool HolidayCalendar::is_thanksgiving_break(const CivilDate& date) noexcept {
  if (date.month != 11) return false;
  const CivilDate thanks = util::thanksgiving(date.year);
  // Wednesday before through the Sunday after (travel days included).
  const auto day = util::days_from_civil(date);
  const auto t = util::days_from_civil(thanks);
  return day >= t - 1 && day <= t + 3;
}

bool HolidayCalendar::is_christmas_break(const CivilDate& date) noexcept {
  return (date.month == 12 && date.day >= 21) || (date.month == 1 && date.day <= 3);
}

bool HolidayCalendar::is_fall_break(const CivilDate& date) noexcept {
  // Dutch-style autumn holiday week (visible at the end of October in
  // Fig. 10).
  return date.month == 10 && date.day >= 19 && date.day <= 27;
}

bool HolidayCalendar::is_carnaval(const CivilDate& date) noexcept {
  // The Carnaval dip the paper spots in Rapid7 data in late February 2020.
  return date.year == 2020 && date.month == 2 && date.day >= 22 && date.day <= 26;
}

bool HolidayCalendar::is_summer_break(const CivilDate& date) noexcept {
  return date.month == 7 || (date.month == 8 && date.day <= 20);
}

double HolidayCalendar::presence_factor(ScheduleKind kind, PresenceVenue venue,
                                        const CivilDate& date) noexcept {
  const bool travel_break = is_thanksgiving_break(date) || is_christmas_break(date) ||
                            is_fall_break(date) || is_carnaval(date);
  switch (kind) {
    case ScheduleKind::OfficeWorker:
      if (is_christmas_break(date)) return 0.25;
      if (travel_break) return 0.6;
      return 1.0;
    case ScheduleKind::Student:
      if (travel_break) return 0.1;
      if (is_summer_break(date)) return 0.15;
      return 1.0;
    case ScheduleKind::ResidentStudent:
      // Residents leave campus over breaks (Fig. 8: Brians disappear over
      // Thanksgiving weekend).
      if (travel_break) return 0.15;
      if (is_summer_break(date)) return 0.3;
      return 1.0;
    case ScheduleKind::HomeResident:
      // Home presence rises a little on breaks.
      return venue == PresenceVenue::Home && travel_break ? 1.1 : 1.0;
    case ScheduleKind::AlwaysOn:
      return 1.0;
  }
  return 1.0;
}

CovidTimeline CovidTimeline::standard() {
  std::vector<CovidPhase> phases;
  // Pre-pandemic: no phases needed (factor defaults to 1).
  // First lockdown: offices/education empty out, housing residents stay in
  // (and are in their rooms all day), home daytime presence jumps.
  phases.push_back({CivilDate{2020, 3, 16}, CivilDate{2020, 6, 1}, 0.15, 1.35, 1.5,
                    "first lockdown"});
  // Cautious summer 2020 reopening.
  phases.push_back({CivilDate{2020, 6, 1}, CivilDate{2020, 9, 1}, 0.45, 1.15, 1.3,
                    "summer 2020 partial reopening"});
  // Autumn 2020 second wave.
  phases.push_back({CivilDate{2020, 9, 1}, CivilDate{2020, 10, 15}, 0.6, 1.1, 1.25,
                    "autumn 2020"});
  phases.push_back({CivilDate{2020, 10, 15}, CivilDate{2021, 3, 1}, 0.25, 1.3, 1.45,
                    "second wave restrictions"});
  // Spring 2021: slow loosening.
  phases.push_back({CivilDate{2021, 3, 1}, CivilDate{2021, 6, 15}, 0.45, 1.2, 1.3,
                    "spring 2021"});
  phases.push_back({CivilDate{2021, 6, 15}, CivilDate{2021, 9, 1}, 0.7, 1.1, 1.15,
                    "summer 2021"});
  // Autumn 2021: mostly back (Fig. 9: Academic-B returns to pre-pandemic
  // levels by September 2021).
  phases.push_back({CivilDate{2021, 9, 1}, CivilDate{2021, 11, 25}, 0.95, 1.0, 1.05,
                    "autumn 2021 reopening"});
  phases.push_back({CivilDate{2021, 11, 25}, CivilDate{2022, 1, 15}, 0.7, 1.1, 1.2,
                    "winter 2021 wave"});
  return CovidTimeline{std::move(phases)};
}

double CovidTimeline::factor(PresenceVenue venue, const CivilDate& date) const noexcept {
  double f = 1.0;
  for (const auto& phase : phases_) {
    if (in_range(date, phase.from, phase.to)) {
      switch (venue) {
        case PresenceVenue::Campus: f = phase.campus_factor; break;
        case PresenceVenue::Housing: f = phase.housing_factor; break;
        case PresenceVenue::Home: f = phase.home_factor; break;
      }
    }
  }
  return f;
}

}  // namespace rdns::sim
