#pragma once
/// \file policy.hpp
/// Behavioural policy layers: the holiday calendar and the COVID-19
/// timeline. These produce the longitudinal shapes of the paper's case
/// studies — the March-2020 crossover between education buildings and
/// student housing (Fig. 10), the lockdown dips and recoveries (Fig. 9),
/// Thanksgiving emptying campus housing (Fig. 8), Christmas breaks and the
/// February-2020 Carnaval dip.

#include <string>
#include <vector>

#include "util/time.hpp"

namespace rdns::sim {

/// Organization categories (the paper's Fig. 4 classification).
enum class OrgType : std::uint8_t {
  Academic = 0,
  Isp,
  Enterprise,
  Government,
  Other,
};

[[nodiscard]] const char* to_string(OrgType t) noexcept;

/// User schedule archetypes.
enum class ScheduleKind : std::uint8_t {
  OfficeWorker = 0,  ///< enterprise/government/academic staff: 9-to-5-ish
  Student,           ///< commuting student: lecture blocks on weekdays
  ResidentStudent,   ///< campus housing: evenings/nights + weekends
  HomeResident,      ///< ISP subscriber: evenings + weekends at home
  AlwaysOn,          ///< infrastructure-ish devices on dynamic ranges
};

[[nodiscard]] const char* to_string(ScheduleKind k) noexcept;

/// Where presence physically happens; decides which COVID factor applies.
enum class PresenceVenue : std::uint8_t {
  Campus = 0,  ///< education buildings / offices
  Housing,     ///< on-campus housing
  Home,        ///< residential ISP
};

/// Static holiday calendar (US + the Dutch breaks visible in Fig. 10).
class HolidayCalendar {
 public:
  /// Multiplier on the probability of on-venue presence; 1 = normal.
  /// Resident students and office workers travel over breaks (factor < 1);
  /// home residents are if anything more present (factor >= 1).
  [[nodiscard]] static double presence_factor(ScheduleKind kind, PresenceVenue venue,
                                              const util::CivilDate& date) noexcept;

  [[nodiscard]] static bool is_thanksgiving_break(const util::CivilDate& date) noexcept;
  [[nodiscard]] static bool is_christmas_break(const util::CivilDate& date) noexcept;
  [[nodiscard]] static bool is_fall_break(const util::CivilDate& date) noexcept;
  [[nodiscard]] static bool is_carnaval(const util::CivilDate& date) noexcept;
  [[nodiscard]] static bool is_summer_break(const util::CivilDate& date) noexcept;
};

/// One phase of an organization's COVID-19 response.
struct CovidPhase {
  util::CivilDate from;
  util::CivilDate to;  ///< exclusive
  double campus_factor = 1.0;   ///< education buildings / offices
  double housing_factor = 1.0;  ///< on-campus housing occupancy & in-room time
  double home_factor = 1.0;     ///< residential daytime boost (>1 = WFH)
  std::string label;
};

/// A piecewise-constant policy timeline. Phases may overlap earlier ones;
/// the LAST matching phase wins, so org-specific overlays can be appended
/// on top of the standard timeline.
class CovidTimeline {
 public:
  CovidTimeline() = default;
  explicit CovidTimeline(std::vector<CovidPhase> phases) : phases_(std::move(phases)) {}

  /// The default pandemic arc used by most simulated organizations.
  [[nodiscard]] static CovidTimeline standard();

  /// A timeline with no pandemic at all (ablation / pre-2020 periods).
  [[nodiscard]] static CovidTimeline none() { return CovidTimeline{}; }

  void add_phase(CovidPhase phase) { phases_.push_back(std::move(phase)); }

  /// Presence factor for a venue on a date (1.0 outside all phases).
  [[nodiscard]] double factor(PresenceVenue venue, const util::CivilDate& date) const noexcept;

  [[nodiscard]] const std::vector<CovidPhase>& phases() const noexcept { return phases_; }

 private:
  std::vector<CovidPhase> phases_;
};

}  // namespace rdns::sim
