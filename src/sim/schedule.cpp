#include "sim/schedule.hpp"

#include <algorithm>

namespace rdns::sim {

using util::SimTime;
using util::kHour;
using util::kMinute;

namespace {

constexpr double clamp01(double v) noexcept { return v < 0 ? 0 : (v > 1 ? 1 : v); }

[[nodiscard]] SimTime jittered(util::Rng& rng, double hours_mean, double hours_stddev) {
  const double h = rng.normal(hours_mean, hours_stddev);
  return static_cast<SimTime>(h * 3600.0);
}

void office_worker(DayPlan& plan, const util::CivilDate& date, double p, util::Rng& rng) {
  const bool weekend = util::is_weekend(util::weekday_of(date));
  const double present_p = weekend ? 0.04 : clamp01(0.9 * p);
  if (!rng.chance(present_p)) return;
  const SimTime start = jittered(rng, 8.5, 0.6);
  const SimTime end = jittered(rng, 17.25, 0.8);
  if (end > start + 30 * kMinute) plan.intervals.push_back({start, end});
}

void student(DayPlan& plan, const util::CivilDate& date, double p, util::Rng& rng) {
  const bool weekend = util::is_weekend(util::weekday_of(date));
  const double present_p = weekend ? 0.05 : clamp01(0.85 * p);
  if (!rng.chance(present_p)) return;
  const int blocks = 1 + static_cast<int>(rng.chance(0.55));
  SimTime cursor = jittered(rng, 8.75, 0.7);
  for (int b = 0; b < blocks; ++b) {
    const SimTime length = jittered(rng, 2.2, 0.6);
    if (length < 30 * kMinute) continue;
    const SimTime end = cursor + length;
    if (end > 19 * kHour) break;
    plan.intervals.push_back({cursor, end});
    cursor = end + jittered(rng, 1.2, 0.4);  // lunch / travel gap
  }
}

void resident_student(DayPlan& plan, const util::CivilDate& date, double housing_factor,
                      double holiday_factor, util::Rng& rng) {
  // Occupancy: most residents are around every evening; breaks empty the
  // dorms, lockdowns keep residents in their rooms longer.
  const double present_p = clamp01(0.93 * holiday_factor * std::min(housing_factor, 1.1));
  if (!rng.chance(present_p)) return;
  // Overnight block: evening until the next morning.
  const SimTime evening = jittered(rng, 17.5, 1.3);
  const SimTime morning = 24 * kHour + jittered(rng, 8.5, 1.0);
  plan.intervals.push_back({evening, morning});
  // Daytime in-room presence: common on weekends, and on weekdays when
  // classes are remote (housing_factor > 1 encodes lockdown).
  const bool weekend = util::is_weekend(util::weekday_of(date));
  const double daytime_p = weekend ? 0.55 : clamp01((housing_factor - 1.0) * 1.8);
  if (rng.chance(daytime_p)) {
    const SimTime start = jittered(rng, 10.0, 1.0);
    const SimTime end = jittered(rng, 16.5, 1.0);
    if (end > start + kHour) plan.intervals.push_back({start, end});
  }
}

void home_resident(DayPlan& plan, const util::CivilDate& date, double home_factor,
                   double holiday_factor, util::Rng& rng) {
  const bool weekend = util::is_weekend(util::weekday_of(date));
  const double base_p = weekend ? 0.95 : 0.9;
  if (!rng.chance(clamp01(base_p * holiday_factor))) return;
  if (weekend) {
    const SimTime start = jittered(rng, 9.5, 1.2);
    const SimTime end = jittered(rng, 23.8, 0.8);
    if (end > start + kHour) plan.intervals.push_back({start, end});
  } else {
    const SimTime start = jittered(rng, 18.0, 0.8);
    const SimTime end = jittered(rng, 23.5, 0.7);
    if (end > start + 30 * kMinute) plan.intervals.push_back({start, end});
    // Work-from-home daytime block during the pandemic.
    const double wfh_p = clamp01((home_factor - 1.0) * 1.6);
    if (rng.chance(wfh_p)) {
      const SimTime ws = jittered(rng, 8.75, 0.5);
      const SimTime we = jittered(rng, 17.0, 0.7);
      if (we > ws + kHour) plan.intervals.push_back({ws, we});
    }
  }
}

}  // namespace

std::vector<Interval> normalize_intervals(std::vector<Interval> intervals) {
  std::vector<Interval> cleaned;
  for (auto& iv : intervals) {
    if (iv.start < 0) iv.start = 0;
    if (iv.end > iv.start) cleaned.push_back(iv);
  }
  std::sort(cleaned.begin(), cleaned.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  for (const auto& iv : cleaned) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

DayPlan plan_day(ScheduleKind kind, const util::CivilDate& date, const PlanContext& ctx,
                 util::Rng& rng) {
  DayPlan plan;
  switch (kind) {
    case ScheduleKind::OfficeWorker:
      office_worker(plan, date, ctx.covid_factor * ctx.holiday_factor, rng);
      break;
    case ScheduleKind::Student:
      student(plan, date, ctx.covid_factor * ctx.holiday_factor, rng);
      break;
    case ScheduleKind::ResidentStudent:
      resident_student(plan, date, ctx.covid_factor, ctx.holiday_factor, rng);
      break;
    case ScheduleKind::HomeResident:
      home_resident(plan, date, ctx.covid_factor, ctx.holiday_factor, rng);
      break;
    case ScheduleKind::AlwaysOn:
      plan.intervals.push_back({0, 24 * kHour});
      break;
  }
  plan.intervals = normalize_intervals(std::move(plan.intervals));
  return plan;
}

}  // namespace rdns::sim
