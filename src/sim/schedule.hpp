#pragma once
/// \file schedule.hpp
/// Presence-interval generation. For each (user, day) the planner produces
/// the intervals during which the user is at the venue — and therefore
/// during which their devices join the venue's network. Intervals may run
/// past midnight (resident students' overnight presence); the World
/// schedules the absolute join/leave events.

#include <vector>

#include "sim/policy.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace rdns::sim {

/// One presence interval, in seconds relative to the day's midnight.
/// `end` may exceed 24h (overnight stay).
struct Interval {
  util::SimTime start = 0;
  util::SimTime end = 0;

  [[nodiscard]] util::SimTime duration() const noexcept { return end - start; }
};

/// A user's plan for a single civil day.
struct DayPlan {
  std::vector<Interval> intervals;  ///< disjoint, ascending

  [[nodiscard]] bool present() const noexcept { return !intervals.empty(); }
};

/// Inputs that modulate a day's plan.
struct PlanContext {
  double covid_factor = 1.0;    ///< CovidTimeline::factor for the venue
  double holiday_factor = 1.0;  ///< HolidayCalendar::presence_factor
};

/// Generate the presence plan for a schedule kind on a date.
///
/// Archetype summaries (all times jittered per user/day):
///   OfficeWorker:    weekdays ~08:30-17:15, present with p = 0.9*f
///   Student:         weekday lecture blocks (1-2 of 1.5-3h between
///                    08:45-17:30), p = 0.85*f
///   ResidentStudent: overnight ~17:30-08:30(+1d) daily, p = 0.93*f_housing;
///                    extra daytime in-room hours when classes are remote
///   HomeResident:    weekday evenings ~18:00-23:30, long weekend blocks;
///                    daytime presence added when home_factor > 1 (WFH)
///   AlwaysOn:        00:00-24:00 every day
[[nodiscard]] DayPlan plan_day(ScheduleKind kind, const util::CivilDate& date,
                               const PlanContext& ctx, util::Rng& rng);

/// Clamp/merge helper used by the planner (exposed for tests): sorts
/// intervals, merges overlaps, drops empty ones.
[[nodiscard]] std::vector<Interval> normalize_intervals(std::vector<Interval> intervals);

}  // namespace rdns::sim
